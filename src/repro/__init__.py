"""Graph-Based Procedural Abstraction — CGO 2007 reproduction.

The package reproduces Dreweke et al., "Graph-Based Procedural
Abstraction" (CGO 2007): post link-time code compaction that mines the
data-flow graphs of basic blocks for frequent fragments and outlines
them into procedures, together with every substrate the paper's system
needs (ARM-subset ISA and simulator, a size-oriented mini-C compiler,
the binary rewriting framework, the DgSpan/Edgar graph miners, and the
suffix-trie baseline).

Typical use::

    from repro import PAConfig, run_pa, compile_to_module
    from repro.binary import layout
    from repro.sim import run_image

    module = compile_to_module(open("prog.c").read())
    before = run_image(layout(module))
    result = run_pa(module, PAConfig(miner="edgar"))
    after = run_image(layout(module))
    assert after.output == before.output
    print(result.saved, "instructions saved")

See ``DESIGN.md`` for the architecture and ``EXPERIMENTS.md`` for the
paper-vs-measured record.
"""

from repro.binary.blocks import module_from_asm
from repro.binary.layout import layout
from repro.binary.loader import load_image
from repro.binary.program import BasicBlock, Function, Module
from repro.minicc.driver import (
    compile_to_asm,
    compile_to_image,
    compile_to_module,
)
from repro.pa.driver import PAConfig, PAResult, run_pa
from repro.pa.sfx import SFXConfig, run_sfx
from repro.sim.machine import run_image
from repro.workloads import PROGRAMS, compile_workload, verify_workload

__version__ = "1.0.0"

__all__ = [
    "module_from_asm",
    "layout",
    "load_image",
    "Module",
    "Function",
    "BasicBlock",
    "compile_to_asm",
    "compile_to_image",
    "compile_to_module",
    "PAConfig",
    "PAResult",
    "run_pa",
    "SFXConfig",
    "run_sfx",
    "run_image",
    "PROGRAMS",
    "compile_workload",
    "verify_workload",
    "__version__",
]
