"""Abstract domains for the whole-module abstract interpreter.

Three cooperating lattices, shared by :mod:`repro.verify.absint`:

* **Values** — a constant/interval domain for register contents, with
  two symbolic refinements that the stack discipline needs:
  :class:`StackAddr` (an address a fixed number of bytes below the
  *function-entry* stack pointer) and :data:`RETADDR` (the value the
  link register held at function entry — the return address).  The
  interval part widens aggressively: PA only needs enough arithmetic to
  follow ``sp`` adjustments and small pointer offsets, not a full
  value-range analysis.
* **Stack height** — derived, not stored: the height of the stack is
  whatever depth ``sp``'s abstract value carries, so there is exactly
  one source of truth for where the stack pointer is.
* **Frame slots + initialized-ness** — a finite map from byte depths
  (positive = below the function-entry ``sp``, i.e. this function's own
  frame) to abstract values.  Freshly allocated slots are
  :data:`UNINIT`; a slot holding :data:`RETADDR` is a saved link
  register, which nothing but the matching ``pop``/deallocation may
  touch.

All values are immutable and compare structurally, as the worklist
solver requires.  Joins are monotone over finite-height lattices:
intervals are capped in width and magnitude, frame maps only ever hold
finitely many slots (allocation is explicit), so every chain
stabilises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

#: Interval endpoints beyond this magnitude widen to TOP.
MAGNITUDE_CAP = 1 << 24
#: Intervals wider than this widen to TOP (bounds the join chain).
WIDTH_CAP = 64


class _Singleton:
    """A named lattice constant (``repr`` is the name, identity is eq)."""

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:
        return self._name


#: No value yet (unreachable); the identity of :func:`join_values`.
BOT = _Singleton("BOT")
#: Any initialized value.
TOP = _Singleton("TOP")
#: A value that may be uninitialized garbage (never written, or
#: clobbered by a call).  Deliberately absorbs every join partner: once
#: garbage may flow in, the slot or register stays suspect.
UNINIT = _Singleton("UNINIT")
#: The function's own return address (``lr`` at entry).  A frame slot
#: holding this is a *saved* return address.
RETADDR = _Singleton("RETADDR")


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]`` (a constant when equal)."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    @property
    def is_const(self) -> bool:
        return self.lo == self.hi

    def __repr__(self) -> str:
        if self.is_const:
            return f"={self.lo}"
        return f"[{self.lo}, {self.hi}]"


@dataclass(frozen=True)
class StackAddr:
    """An address ``depth`` bytes below the function-entry ``sp``.

    ``depth`` may be negative: the address then lies *above* the entry
    stack pointer, in memory the caller owns.  ``sp`` itself carries
    ``StackAddr(height)`` where ``height`` is the current stack height.
    """

    depth: int

    def __repr__(self) -> str:
        return f"sp0-{self.depth}" if self.depth >= 0 else \
            f"sp0+{-self.depth}"


#: The value lattice: BOT < {Interval, StackAddr, RETADDR} < TOP, with
#: UNINIT absorbing everything it meets.
AbsVal = object


def const(value: int) -> Interval:
    """The singleton interval for one known machine word."""
    return Interval(value, value)


def _widen(lo: int, hi: int) -> AbsVal:
    if hi - lo > WIDTH_CAP or abs(lo) > MAGNITUDE_CAP \
            or abs(hi) > MAGNITUDE_CAP:
        return TOP
    return Interval(lo, hi)


def join_values(a: AbsVal, b: AbsVal) -> AbsVal:
    """Least upper bound of two abstract values."""
    if a is BOT:
        return b
    if b is BOT:
        return a
    if a is UNINIT or b is UNINIT:
        return UNINIT
    if a == b:
        return a
    if isinstance(a, Interval) and isinstance(b, Interval):
        return _widen(min(a.lo, b.lo), max(a.hi, b.hi))
    return TOP


def add_values(a: AbsVal, b: AbsVal) -> AbsVal:
    """Abstract addition (used for ``add``/``sub``/address math)."""
    if a is BOT or b is BOT:
        return BOT
    if a is UNINIT or b is UNINIT:
        return UNINIT
    if isinstance(a, Interval) and isinstance(b, Interval):
        return _widen(a.lo + b.lo, a.hi + b.hi)
    # stack addresses shift by known offsets and nothing else
    if isinstance(a, StackAddr) and isinstance(b, Interval) \
            and b.is_const:
        return StackAddr(a.depth - b.lo)
    if isinstance(b, StackAddr) and isinstance(a, Interval) \
            and a.is_const:
        return StackAddr(b.depth - a.lo)
    return TOP


def negate_value(a: AbsVal) -> AbsVal:
    if isinstance(a, Interval):
        return _widen(-a.hi, -a.lo)
    if a in (BOT, UNINIT):
        return a
    return TOP


def stack_depth_of(value: AbsVal) -> Optional[int]:
    """The depth a value addresses, if it is a tracked stack address."""
    if isinstance(value, StackAddr):
        return value.depth
    return None


# ----------------------------------------------------------------------
# the frame-slot map
# ----------------------------------------------------------------------
#: Immutable frame: sorted ``(depth, value)`` pairs.  Depths are byte
#: offsets below the function-entry ``sp``; only word-aligned slots the
#: function explicitly allocated (push / ``sub sp``) are tracked.
Frame = Tuple[Tuple[int, AbsVal], ...]

EMPTY_FRAME: Frame = ()


def frame_from_dict(slots: Mapping[int, AbsVal]) -> Frame:
    return tuple(sorted(slots.items()))


def frame_to_dict(frame: Frame) -> Dict[int, AbsVal]:
    return dict(frame)


def join_frames(a: Frame, b: Frame) -> Frame:
    """Pointwise join; slots tracked on only one side are dropped.

    Dropping (rather than keeping as UNINIT) is the *may*-direction
    over-approximation for everything except initialized-ness, which
    deliberately errs silent: a slot allocated on only one path will be
    re-allocated (and re-marked UNINIT) before any same-path read.
    """
    if a == b:
        return a
    da, db = dict(a), dict(b)
    merged: Dict[int, AbsVal] = {}
    for depth in da.keys() & db.keys():
        merged[depth] = join_values(da[depth], db[depth])
    return frame_from_dict(merged)


# ----------------------------------------------------------------------
# the combined machine state
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AbsState:
    """One abstract machine state: sixteen registers plus the frame.

    The stack height is not stored separately — it is the depth of the
    ``sp`` register's :class:`StackAddr` value (``None`` when ``sp``
    escaped tracking).  ``escaped`` is sticky: a stack address was
    stored to untracked memory, so any later call may alias the frame.
    ``bottom`` marks the unreachable state, the solver's optimistic
    initial fact.
    """

    regs: Tuple[AbsVal, ...]
    frame: Frame = EMPTY_FRAME
    escaped: bool = False
    bottom: bool = False

    @property
    def height(self) -> Optional[int]:
        """Bytes of stack below the function-entry ``sp`` (None=lost)."""
        return stack_depth_of(self.regs[13])

    def reg(self, num: int) -> AbsVal:
        return self.regs[num]

    def with_reg(self, num: int, value: AbsVal) -> "AbsState":
        regs = self.regs[:num] + (value,) + self.regs[num + 1:]
        return AbsState(regs=regs, frame=self.frame,
                        escaped=self.escaped)

    def with_frame(self, frame: Frame) -> "AbsState":
        return AbsState(regs=self.regs, frame=frame,
                        escaped=self.escaped)


BOTTOM_STATE = AbsState(regs=(BOT,) * 16, frame=EMPTY_FRAME, bottom=True)


def entry_state() -> AbsState:
    """The abstract state at a function entry.

    Argument and callee-saved registers hold the caller's (initialized)
    values, ``sp`` sits at height 0 and ``lr`` holds the return
    address.  The frame is empty: nothing is allocated yet.
    """
    regs: list = [TOP] * 16
    regs[13] = StackAddr(0)
    regs[14] = RETADDR
    return AbsState(regs=tuple(regs), frame=EMPTY_FRAME)


def join_states(a: AbsState, b: AbsState) -> AbsState:
    if a.bottom:
        return b
    if b.bottom:
        return a
    if a == b:
        return a
    regs = tuple(
        join_values(ra, rb) for ra, rb in zip(a.regs, b.regs)
    )
    return AbsState(regs=regs, frame=join_frames(a.frame, b.frame),
                    escaped=a.escaped or b.escaped)


def allocate(frame: Frame, old_height: int, new_height: int) -> Frame:
    """Mark the word slots in ``(old_height, new_height]`` UNINIT."""
    slots = dict(frame)
    depth = old_height + 4
    while depth <= new_height:
        slots[depth] = UNINIT
        depth += 4
    return frame_from_dict(slots)


def deallocate(frame: Frame, new_height: int) -> Frame:
    """Drop every slot strictly below the new stack pointer."""
    return tuple(
        (depth, value) for depth, value in frame if depth <= new_height
    )


def retaddr_depths(frame: Frame) -> Tuple[int, ...]:
    """Depths of every slot currently holding a saved return address."""
    return tuple(d for d, v in frame if v is RETADDR)


def iter_slots(frame: Frame) -> Iterable[Tuple[int, AbsVal]]:
    return iter(frame)
