"""Symbolic per-block evaluation for translation validation.

Evaluating a basic block symbolically yields, for every architectural
resource, a *term* — a nested tuple describing the value as a function
of the block's inputs.  Two instruction sequences that produce equal
terms for every register, the flags, memory, and the control-flow exit
compute the same thing, whatever the concrete inputs were.  That is
exactly the obligation the translation validator discharges: extraction
only relinearizes (within the dependence order) and outlines code, so
the rewritten block — with this round's outlined calls inlined back and
cross-jump tails followed — must evaluate to *structurally identical*
terms.

Term grammar (all hashable nested tuples)::

    ("init", r)                 resource value at block entry
                                (r = register number, "flags", "mem")
    ("const", v)                a known integer
    ("label", name)             the address of a label
    ("retaddr", n)              lr after the n-th inlined call
    (mnemonic, a, b[, flags])   a data-processing result
    ("mvn", a) / ("zext8", a)   unary operators
    (shift_op, a, amount)       a shifted operand (lsl/lsr/asr/ror)
    ("flagsof", m, ...)         NZCV after a flag-setting instruction
    ("cond", cc, flags)         a condition evaluated against flags
    ("ite", c, t, e)            conditional merge
    ("select", mem, addr, w)    a w-byte load
    ("store", mem, addr, w, v)  memory after a w-byte store
    ("call", n, f, ...)         the n-th opaque call's effect node
    ("swi", n, imm, ...)        the n-th software interrupt's effect
    ("fx", effect, field)       one output of an opaque effect
    ("fall",)                   fall-through exit

Opaque calls are numbered by a per-evaluation sequence counter, so the
k-th call of the original block and the k-th call of the rewritten block
(inlined calls excluded — they were not calls before the rewrite) yield
the same effect node given the same inputs.  Soundness note: every
simplification here (read-over-write, ``lsl #0``, constant folding)
maps a term to a semantically equal term, so equal final terms really do
imply equivalence; the converse direction is deliberately incomplete —
a mismatch may be a false alarm in principle, but for the transformations
the extractor performs (dependence-respecting relinearization plus
outlining) term shapes are preserved exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instructions import (
    CARRY_READERS,
    DATAPROC_3OP,
    DATAPROC_COMPARE,
    Instruction,
)
from repro.isa.operands import Imm, LabelRef, Mem, Reg, ShiftedReg
from repro.isa.registers import LR, PC, SP

Term = tuple

#: The fall-through exit marker.
FALL: Term = ("fall",)

#: Longest cross-jump tail chain the evaluator will follow.
MAX_TAIL_CHAIN = 16


class SymEvalError(Exception):
    """The evaluator met a shape it cannot model soundly.

    The validator treats this as a verification failure (cannot prove),
    never as a pass.
    """


def init_reg(r: int) -> Term:
    return ("init", r)


@dataclass
class SymState:
    """Symbolic machine state: 16 registers, flags, memory, exit."""

    regs: List[Term] = field(
        default_factory=lambda: [init_reg(r) for r in range(16)]
    )
    flags: Term = ("init", "flags")
    mem: Term = ("init", "mem")
    #: Control-flow exit term; None while the block is still running.
    exit: Optional[Term] = None


# ----------------------------------------------------------------------
# term helpers
# ----------------------------------------------------------------------
def add_const(value: Term, k: int) -> Term:
    """``value + k`` with constant folding and affine canonicalization."""
    if k == 0:
        return value
    if value[0] == "const":
        return ("const", value[1] + k)
    if value[0] == "add" and value[2][0] == "const":
        return add_const(value[1], value[2][1] + k)
    if value[0] == "sub" and value[2][0] == "const":
        return add_const(value[1], k - value[2][1])
    if k > 0:
        return ("add", value, ("const", k))
    return ("sub", value, ("const", -k))


def affine(term: Term) -> Tuple[Optional[Term], int]:
    """Decompose *term* as ``base + offset`` (base None for constants)."""
    if term[0] == "const":
        return None, term[1]
    if term[0] == "add" and term[2][0] == "const":
        base, off = affine(term[1])
        return base, off + term[2][1]
    if term[0] == "sub" and term[2][0] == "const":
        base, off = affine(term[1])
        return base, off - term[2][1]
    return term, 0


def _ranges_disjoint(a: Term, wa: int, b: Term, wb: int) -> bool:
    """True when the two accesses provably touch disjoint bytes."""
    base_a, off_a = affine(a)
    base_b, off_b = affine(b)
    if base_a != base_b:
        return False  # different bases: unknown aliasing
    return off_a + wa <= off_b or off_b + wb <= off_a


def select(mem: Term, addr: Term, width: int) -> Term:
    """A *width*-byte load, simplified through provably distinct stores."""
    probe = mem
    while probe[0] == "store":
        __, below, st_addr, st_width, value = probe
        if st_addr == addr and st_width == width:
            # A byte store keeps only the low 8 bits of its value.
            return ("zext8", value) if width == 1 else value
        if _ranges_disjoint(st_addr, st_width, addr, width):
            probe = below
            continue
        break  # possible overlap: stay opaque
    return ("select", probe, addr, width)


def ite(cond: Term, then: Term, other: Term) -> Term:
    return then if then == other else ("ite", cond, then, other)


# ----------------------------------------------------------------------
# the evaluator
# ----------------------------------------------------------------------
class BlockEvaluator:
    """Evaluates one instruction sequence to a :class:`SymState`.

    *inline_calls* maps this round's outlined symbols to their bodies
    (bracket and return already stripped — see ``validate.outlined_body``);
    a ``bl`` to one of them executes the body in place, after setting
    ``lr`` to a fresh ``("retaddr", n)`` marker exactly as the real
    ``bl`` would.  *tails* maps this round's cross-jump tail labels to
    the tail block's instructions; a final unconditional ``b`` to one of
    them continues into the tail.
    """

    def __init__(
        self,
        inline_calls: Optional[Dict[str, List[Instruction]]] = None,
        tails: Optional[Dict[str, List[Instruction]]] = None,
    ) -> None:
        self.inline_calls = inline_calls or {}
        self.tails = tails or {}
        self._seq = 0
        self._inline = 0

    def evaluate(self, instructions: Sequence[Instruction]) -> SymState:
        """Run *instructions* as one extended block; returns final state."""
        self._seq = 0
        self._inline = 0
        state = SymState()
        insns = list(instructions)
        followed_tail = False
        chain = 0
        i = 0
        while i < len(insns):
            insn = insns[i]
            last = i == len(insns) - 1
            if (
                last
                and insn.mnemonic == "b"
                and not insn.is_conditional
                and insn.label_target in self.tails
            ):
                chain += 1
                if chain > MAX_TAIL_CHAIN:
                    raise SymEvalError("cross-jump tail chain too long")
                followed_tail = True
                insns = list(self.tails[insn.label_target])
                i = 0
                continue
            self._step(state, insn, last)
            i += 1
        if state.exit is None:
            if followed_tail:
                # A tail that falls through would resume at a different
                # physical location than the original block did.
                raise SymEvalError("cross-jump tail falls through")
            state.exit = FALL
        return state

    # ------------------------------------------------------------------
    def _step(self, state: SymState, insn: Instruction,
              last: bool) -> None:
        if state.exit is not None:
            raise SymEvalError(
                f"instruction after control transfer: {insn}"
            )
        m = insn.mnemonic
        if m == "bl":
            self._call(state, insn)
            return
        if m in ("b", "bx"):
            self._branch_exit(state, insn, last)
            return

        cond = self._cond(state, insn)
        reg_updates: Dict[int, Term] = {}
        new_flags: Optional[Term] = None
        new_mem: Optional[Term] = None
        exit_value: Optional[Term] = None

        if m in DATAPROC_3OP:
            a = self._reg(state, insn.operands[1].num)
            b = self._flex(state, insn.operands[2])
            if m == "add" and b[0] == "const":
                value = add_const(a, b[1])
            elif m == "sub" and b[0] == "const":
                value = add_const(a, -b[1])
            elif m in CARRY_READERS:
                value = (m, a, b, state.flags)
            else:
                value = (m, a, b)
            reg_updates[insn.operands[0].num] = value
            if insn.set_flags:
                new_flags = self._flagsof(m, a, b, state)
        elif m in ("mov", "mvn"):
            value = self._flex(state, insn.operands[1])
            if m == "mvn":
                value = ("mvn", value)
            reg_updates[insn.operands[0].num] = value
            if insn.set_flags:
                new_flags = ("flagsof", m, value)
        elif m in DATAPROC_COMPARE:
            a = self._reg(state, insn.operands[0].num)
            b = self._flex(state, insn.operands[1])
            new_flags = self._flagsof(m, a, b, state)
        elif m == "mul":
            a = self._reg(state, insn.operands[1].num)
            b = self._reg(state, insn.operands[2].num)
            reg_updates[insn.operands[0].num] = ("mul", a, b)
            if insn.set_flags:
                new_flags = ("flagsof", "mul", a, b)
        elif m == "mla":
            a = self._reg(state, insn.operands[1].num)
            b = self._reg(state, insn.operands[2].num)
            c = self._reg(state, insn.operands[3].num)
            reg_updates[insn.operands[0].num] = ("mla", a, b, c)
            if insn.set_flags:
                new_flags = ("flagsof", "mla", a, b, c)
        elif m in ("ldr", "ldrb"):
            if isinstance(insn.operands[1], LabelRef):
                reg_updates[insn.operands[0].num] = self._literal(
                    insn.operands[1].name
                )
            else:
                addr, base_update = self._address(state, insn.operands[1])
                value = select(state.mem, addr, 4 if m == "ldr" else 1)
                reg_updates[insn.operands[0].num] = value
                if base_update is not None:
                    # rd == base with writeback: the load wins on ARM
                    reg_updates.setdefault(*base_update)
        elif m in ("str", "strb"):
            addr, base_update = self._address(state, insn.operands[1])
            value = self._reg(state, insn.operands[0].num)
            new_mem = ("store", state.mem, addr,
                       4 if m == "str" else 1, value)
            if base_update is not None:
                reg_updates[base_update[0]] = base_update[1]
        elif m == "push":
            regs = insn.operands[0].regs
            sp_new = add_const(self._reg(state, SP), -4 * len(regs))
            mem = state.mem
            for slot, r in enumerate(regs):
                mem = ("store", mem, add_const(sp_new, 4 * slot), 4,
                       self._reg(state, r))
            new_mem = mem
            reg_updates[SP] = sp_new
        elif m == "pop":
            regs = insn.operands[0].regs
            sp_old = self._reg(state, SP)
            for slot, r in enumerate(regs):
                value = select(state.mem, add_const(sp_old, 4 * slot), 4)
                if r == PC:
                    exit_value = value
                else:
                    reg_updates[r] = value
            reg_updates[SP] = add_const(sp_old, 4 * len(regs))
        elif m == "swi":
            effect = ("swi", self._seq, insn.operands[0].value,
                      self._reg(state, 0), self._reg(state, 1),
                      self._reg(state, 2), self._reg(state, 3), state.mem)
            self._seq += 1
            reg_updates[0] = ("fx", effect, 0)
            new_flags = ("fx", effect, "flags")
            new_mem = ("fx", effect, "mem")
        else:  # pragma: no cover — mnemonic set is closed
            raise SymEvalError(f"unmodelled mnemonic: {m}")

        if PC in reg_updates:
            exit_value = reg_updates.pop(PC)

        for r, value in reg_updates.items():
            state.regs[r] = (
                value if cond is None else ite(cond, value, state.regs[r])
            )
        if new_flags is not None:
            state.flags = (
                new_flags if cond is None
                else ite(cond, new_flags, state.flags)
            )
        if new_mem is not None:
            state.mem = (
                new_mem if cond is None else ite(cond, new_mem, state.mem)
            )
        if exit_value is not None:
            if not last:
                raise SymEvalError(
                    f"mid-block control transfer: {insn}"
                )
            state.exit = (
                exit_value if cond is None else ite(cond, exit_value, FALL)
            )

    # ------------------------------------------------------------------
    def _call(self, state: SymState, insn: Instruction) -> None:
        callee = insn.label_target
        if callee in self.inline_calls:
            if insn.is_conditional:
                raise SymEvalError(
                    f"conditional call to outlined symbol: {insn}"
                )
            state.regs[LR] = ("retaddr", self._inline)
            self._inline += 1
            for body_insn in self.inline_calls[callee]:
                self._step(state, body_insn, last=False)
            return
        cond = self._cond(state, insn)
        effect = ("call", self._seq, callee,
                  self._reg(state, 0), self._reg(state, 1),
                  self._reg(state, 2), self._reg(state, 3),
                  self._reg(state, SP), state.mem)
        self._seq += 1
        outputs = {r: ("fx", effect, r) for r in (0, 1, 2, 3, 12)}
        outputs[LR] = ("fx", effect, "ret")
        for r, value in outputs.items():
            state.regs[r] = (
                value if cond is None else ite(cond, value, state.regs[r])
            )
        new_flags = ("fx", effect, "flags")
        new_mem = ("fx", effect, "mem")
        state.flags = (
            new_flags if cond is None else ite(cond, new_flags, state.flags)
        )
        state.mem = (
            new_mem if cond is None else ite(cond, new_mem, state.mem)
        )

    def _branch_exit(self, state: SymState, insn: Instruction,
                     last: bool) -> None:
        if not last:
            raise SymEvalError(f"mid-block control transfer: {insn}")
        cond = self._cond(state, insn)
        if insn.mnemonic == "b":
            target: Term = ("label", insn.label_target)
        else:  # bx
            target = self._reg(state, insn.operands[0].num)
        state.exit = target if cond is None else ite(cond, target, FALL)

    # ------------------------------------------------------------------
    def _cond(self, state: SymState, insn: Instruction) -> Optional[Term]:
        if not insn.is_conditional:
            return None
        return ("cond", insn.cond, state.flags)

    def _reg(self, state: SymState, r: int) -> Term:
        if r == PC:
            # pc reads as the instruction address + 8; blocks have no
            # fixed address at this level, so a pc read is unmodelled.
            raise SymEvalError("pc read outside branch context")
        return state.regs[r]

    def _flex(self, state: SymState, op: object) -> Term:
        if isinstance(op, Reg):
            return self._reg(state, op.num)
        if isinstance(op, Imm):
            return ("const", op.value)
        if isinstance(op, ShiftedReg):
            value = self._reg(state, op.num)
            if op.amount == 0 and op.shift_op == "lsl":
                return value
            return (op.shift_op, value, op.amount)
        raise SymEvalError(f"unmodelled operand: {op!r}")

    def _flagsof(self, m: str, a: Term, b: Term,
                 state: SymState) -> Term:
        if m in CARRY_READERS:
            return ("flagsof", m, a, b, state.flags)
        return ("flagsof", m, a, b)

    def _address(self, state: SymState, mem: Mem
                 ) -> Tuple[Term, Optional[Tuple[int, Term]]]:
        """(effective address, optional base writeback update)."""
        base = self._reg(state, mem.base)
        if mem.index is not None:
            offset_term: Term = ("add", base,
                                 self._reg(state, mem.index))
        else:
            offset_term = add_const(base, mem.offset)
        if mem.pre:
            addr = offset_term
            update = (mem.base, offset_term) if mem.writeback else None
        else:  # post-indexed: access at base, then write back base+offset
            addr = base
            update = (mem.base, offset_term)
        return addr, update

    def _literal(self, name: str) -> Term:
        """The value of an ``ldr rX, =name`` literal load."""
        if name.isdigit() or (name.startswith("-") and name[1:].isdigit()):
            return ("const", int(name))
        return ("label", name)
