"""Concrete dataflow passes over the module CFG.

Four analyses, all built on the generic solver of
:mod:`repro.verify.dataflow`:

* :class:`LivenessAnalysis` — full per-resource liveness (all sixteen
  registers plus the NZCV flags), backward.  The lr-only special case
  that patched the rijndael miscompile is now the single-register
  projection :func:`live_out_blocks`.
* :class:`MaybeUndefAnalysis` — forward "possibly undefined" resource
  tracking.  Function entries start with the flags undefined (the AAPCS
  makes no promise about NZCV), and a call leaves the caller-saved
  scratch registers ``r1``-``r3``/``r12`` and the flags holding callee
  garbage.
* :class:`FlagDefAnalysis` — condition-flag def-use: which flag-setting
  sites reach each flag consumer.  The definition sites distinguish
  real setters from call clobbers and from the undefined entry state,
  which is what the linter's ``undefined-flag-read`` rule keys on.
* :class:`StackDepthAnalysis` — forward per-function stack depth (bytes
  pushed since function entry) as a small set of possibilities;
  ``TOP`` when ``sp`` escapes affine tracking.

Resources are register numbers ``0..15`` plus the string ``"flags"``;
memory is deliberately not a liveness resource here (the DFG builder
owns memory ordering).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.binary.program import BasicBlock, Module
from repro.dfg.builder import FLAGS, MEM, _accesses
from repro.isa.instructions import Instruction
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import SP
from repro.telemetry import GLOBAL as _TELEMETRY

from repro.verify.cfg import BlockKey, ModuleCFG, build_module_cfg
from repro.verify.dataflow import (
    BACKWARD,
    FORWARD,
    Analysis,
    DataflowResult,
    solve,
)

Resource = object  # int register number or the FLAGS string

EMPTY: FrozenSet[Resource] = frozenset()

#: Registers a ``bl`` leaves holding callee garbage (caller-saved
#: scratch minus the return-value register).
CALL_CLOBBERED: FrozenSet[Resource] = frozenset({1, 2, 3, 12, FLAGS})


def insn_accesses(insn: Instruction) -> Tuple[Set[Resource], Set[Resource]]:
    """(reads, writes) register/flag resources — the DFG builder's
    model with the memory pseudo-resource filtered out."""
    reads, writes = _accesses(insn)
    reads.discard(MEM)
    writes.discard(MEM)
    return reads, writes


# ----------------------------------------------------------------------
# liveness
# ----------------------------------------------------------------------
class LivenessAnalysis(Analysis):
    """Backward may-liveness of registers and flags.

    A write kills only when unconditional (a predicated write may not
    execute); every read — including the implicit flags read of a
    predicated instruction — generates.  Nothing is assumed live at CFG
    exits: a return's ``lr``/``r0`` reads are explicit in the
    instruction model, so the boundary stays empty.
    """

    direction = BACKWARD

    def boundary(self, cfg: ModuleCFG, key: BlockKey) -> FrozenSet[Resource]:
        return EMPTY

    def initial(self, cfg: ModuleCFG, key: BlockKey) -> FrozenSet[Resource]:
        return EMPTY

    def join(self, a: FrozenSet[Resource],
             b: FrozenSet[Resource]) -> FrozenSet[Resource]:
        return a | b

    def transfer(self, key: BlockKey, block: BasicBlock,
                 live_out: FrozenSet[Resource]) -> FrozenSet[Resource]:
        live = set(live_out)
        for insn in reversed(block.instructions):
            reads, writes = insn_accesses(insn)
            if not insn.is_conditional:
                live -= writes
            live |= reads
        return frozenset(live)


def liveness(module: Module,
             cfg: Optional[ModuleCFG] = None) -> DataflowResult:
    """Solve full liveness; facts are frozensets of live resources."""
    cfg = cfg or build_module_cfg(module)
    with _TELEMETRY.span("verify.pass", analysis="liveness"):
        return solve(cfg, LivenessAnalysis())


def live_out_blocks(module: Module, resource: Resource,
                    cfg: Optional[ModuleCFG] = None) -> Set[BlockKey]:
    """Blocks whose *resource* is consumed on some path after them."""
    result = liveness(module, cfg)
    return {
        key for key, live in result.out_facts.items() if resource in live
    }


# ----------------------------------------------------------------------
# possibly-undefined resources
# ----------------------------------------------------------------------
class MaybeUndefAnalysis(Analysis):
    """Forward may-analysis of undefined registers and flags.

    At a function entry every register holds the caller's value — a
    legitimate thing to read (prologues save callee-saved registers by
    reading them) — but the flags are undefined.  After a call, the
    flags and the non-result scratch registers hold callee garbage.  A
    conditional write does not definitely define.
    """

    direction = FORWARD

    def boundary(self, cfg: ModuleCFG, key: BlockKey) -> FrozenSet[Resource]:
        return frozenset({FLAGS})

    def initial(self, cfg: ModuleCFG, key: BlockKey) -> FrozenSet[Resource]:
        return EMPTY

    def join(self, a: FrozenSet[Resource],
             b: FrozenSet[Resource]) -> FrozenSet[Resource]:
        return a | b

    def transfer(self, key: BlockKey, block: BasicBlock,
                 undef: FrozenSet[Resource]) -> FrozenSet[Resource]:
        state = set(undef)
        for insn in block.instructions:
            step_undef(state, insn)
        return frozenset(state)


def step_undef(state: Set[Resource], insn: Instruction) -> None:
    """Advance the possibly-undefined set across one instruction."""
    __, writes = insn_accesses(insn)
    clobbers = call_clobbers(insn)
    if not insn.is_conditional:
        state -= writes - clobbers
    state |= clobbers


def call_clobbers(insn: Instruction) -> FrozenSet[Resource]:
    """Resources an instruction leaves in an unspecified state."""
    if insn.is_call:
        return CALL_CLOBBERED
    if insn.mnemonic == "swi":
        return frozenset({FLAGS})
    return EMPTY


def maybe_undef(module: Module,
                cfg: Optional[ModuleCFG] = None) -> DataflowResult:
    cfg = cfg or build_module_cfg(module)
    with _TELEMETRY.span("verify.pass", analysis="maybe_undef"):
        return solve(cfg, MaybeUndefAnalysis())


# ----------------------------------------------------------------------
# condition-flag def-use
# ----------------------------------------------------------------------
#: Flag definition sites.  ``("set", func, block, index)`` is a real
#: flag-setting instruction *or* a call to a flag-writing callee,
#: ``("clobber", func, block, index)`` a call to a callee outside the
#: module (NZCV unspecified per the AAPCS), ``("undef", func)`` the
#: entry state.
FlagDef = Tuple

UseSite = Tuple[str, int, int]

#: Per-function flag effect: "none" (NZCV provably preserved), "may"
#: (some path writes), "must" (every return is preceded by a write).
FlagEffect = str


class FlagDefinedAnalysis(Analysis):
    """Forward must-analysis: are the flags definitely written since
    function entry?  Needed to decide whether a callee *must* define
    NZCV before returning (the common case for outlined comparison
    fragments)."""

    direction = FORWARD

    def __init__(self, summaries: Dict[str, FlagEffect]) -> None:
        self.summaries = summaries

    def boundary(self, cfg: ModuleCFG, key: BlockKey) -> bool:
        return False

    def initial(self, cfg: ModuleCFG, key: BlockKey) -> bool:
        return True  # optimistic for a must-analysis

    def join(self, a: bool, b: bool) -> bool:
        return a and b

    def transfer(self, key: BlockKey, block: BasicBlock,
                 defined: bool) -> bool:
        for insn in block.instructions:
            defined = step_flag_defined(defined, insn, self.summaries)
        return defined


def step_flag_defined(defined: bool, insn: Instruction,
                      summaries: Dict[str, FlagEffect]) -> bool:
    """Advance the "flags definitely written" fact by one instruction."""
    if insn.writes_flags() and not insn.is_conditional:
        return True
    if insn.is_call:
        effect = summaries.get(insn.label_target)
        if effect == "must":
            return True
        if effect is None:
            return False  # unknown callee: NZCV unspecified
        # "may"/"none": whatever held before still holds (the callee's
        # write, when it happens, is itself a definition)
    return defined


def flag_effect_summaries(
    module: Module, cfg: Optional[ModuleCFG] = None, max_iterations: int = 5
) -> Dict[str, FlagEffect]:
    """Per-function NZCV effect, iterated over the call graph.

    The simulator's ``swi`` syscalls never touch NZCV, and every callee
    in a linted module is visible, so calls can be classified precisely:
    an outlined helper whose body carries no flag setter is transparent,
    and one whose body unconditionally compares *defines* the flags its
    caller then branches on — both shapes the extractor produces on
    purpose.
    """
    cfg = cfg or build_module_cfg(module)
    names = {func.name for func in module.functions}
    reach: Dict[str, Set[BlockKey]] = {
        func.name: (cfg.reachable([(func.name, 0)]) if func.blocks
                    else set())
        for func in module.functions
    }
    summaries: Dict[str, FlagEffect] = {name: "none" for name in names}
    for __ in range(max_iterations):
        result = solve(cfg, FlagDefinedAnalysis(summaries))
        updated: Dict[str, FlagEffect] = {}
        for func in module.functions:
            may = False
            for key in reach[func.name]:
                for insn in cfg.blocks[key].instructions:
                    if insn.writes_flags():
                        may = True
                    elif insn.is_call:
                        target = insn.label_target
                        if target not in names \
                                or summaries[target] != "none":
                            may = True
            if not may:
                updated[func.name] = "none"
                continue
            must = True
            for key in reach[func.name]:
                defined = result.in_facts[key]
                for insn in cfg.blocks[key].instructions:
                    if insn.is_return and not defined:
                        must = False
                    defined = step_flag_defined(defined, insn, summaries)
            updated[func.name] = "must" if must else "may"
        if updated == summaries:
            break
        summaries = updated
    return summaries


class FlagDefAnalysis(Analysis):
    """Forward reaching-definitions restricted to the NZCV flags."""

    direction = FORWARD

    def __init__(self, summaries: Dict[str, FlagEffect]) -> None:
        self.summaries = summaries

    def boundary(self, cfg: ModuleCFG, key: BlockKey) -> FrozenSet[FlagDef]:
        return frozenset({("undef", key[0])})

    def initial(self, cfg: ModuleCFG, key: BlockKey) -> FrozenSet[FlagDef]:
        return frozenset()

    def join(self, a: FrozenSet[FlagDef],
             b: FrozenSet[FlagDef]) -> FrozenSet[FlagDef]:
        return a | b

    def transfer(self, key: BlockKey, block: BasicBlock,
                 defs: FrozenSet[FlagDef]) -> FrozenSet[FlagDef]:
        state = set(defs)
        for index, insn in enumerate(block.instructions):
            step_flag_defs(state, key, index, insn, self.summaries)
        return frozenset(state)


def step_flag_defs(state: Set[FlagDef], key: BlockKey, index: int,
                   insn: Instruction,
                   summaries: Dict[str, FlagEffect]) -> None:
    """Advance the reaching flag-definition set across one instruction.

    ``swi`` is transparent (the simulator's syscalls preserve NZCV);
    calls are classified by *summaries* — transparent, a definition, or
    (for callees outside the module) a clobber.
    """
    if insn.writes_flags():
        site = ("set", key[0], key[1], index)
        if insn.is_conditional:
            state.add(site)      # may execute: old defs survive
        else:
            state.clear()
            state.add(site)
    elif insn.is_call:
        effect = summaries.get(insn.label_target)
        if effect == "must":
            state.clear()
            state.add(("set", key[0], key[1], index))
        elif effect == "may":
            state.add(("set", key[0], key[1], index))
        elif effect is None:
            state.clear()
            state.add(("clobber", key[0], key[1], index))
        # "none": the callee provably preserves NZCV


def flag_def_use(
    module: Module, cfg: Optional[ModuleCFG] = None
) -> Dict[UseSite, FrozenSet[FlagDef]]:
    """Def-use chains for the flags: use site -> reaching definitions."""
    cfg = cfg or build_module_cfg(module)
    summaries = flag_effect_summaries(module, cfg)
    with _TELEMETRY.span("verify.pass", analysis="flag_def_use"):
        result = solve(cfg, FlagDefAnalysis(summaries))
    chains: Dict[UseSite, FrozenSet[FlagDef]] = {}
    for key in cfg.keys:
        state = set(result.in_facts[key])
        for index, insn in enumerate(cfg.blocks[key].instructions):
            if insn.reads_flags():
                chains[(key[0], key[1], index)] = frozenset(state)
            step_flag_defs(state, key, index, insn, summaries)
    return chains


# ----------------------------------------------------------------------
# stack depth
# ----------------------------------------------------------------------
#: ``TOP`` means sp escaped affine tracking (e.g. ``mov sp, r0``).
TOP = None

#: A stack-depth fact: the set of possible byte depths, or :data:`TOP`.
DepthSet = Optional[FrozenSet[int]]

#: Beyond this many distinct depths the fact widens to TOP — both a
#: termination guarantee (an unbalanced loop otherwise grows the set
#: forever) and a report-noise cap.
MAX_DEPTHS = 16


def sp_delta(insn: Instruction,
             summaries: Optional[Dict[str, Optional[int]]] = None
             ) -> Optional[int]:
    """Bytes of stack the instruction *grows* (sp decrement positive).

    Returns 0 for instructions that leave ``sp`` alone and ``None`` when
    the effect cannot be tracked affinely.  *summaries* supplies the net
    stack effect of called functions (see :func:`function_summaries`);
    without it calls are assumed balanced — true for convention-
    respecting code, but an outlined helper may legitimately carry an
    unmatched ``push`` or ``pop`` that its call sites compensate.
    """
    if insn.mnemonic == "push":
        return 4 * len(insn.operands[0].regs)
    if insn.mnemonic == "pop":
        regs = insn.operands[0].regs
        if SP in regs:
            return None  # pop into sp: value comes from memory
        return -4 * len(regs)
    if insn.is_call:
        if summaries is None:
            return 0
        return summaries.get(insn.label_target, 0)
    writes_sp = SP in insn.regs_written()
    if not writes_sp:
        return 0
    if (
        insn.mnemonic in ("add", "sub")
        and insn.operands[0] == Reg(SP)
        and insn.operands[1] == Reg(SP)
        and isinstance(insn.operands[2], Imm)
    ):
        value = insn.operands[2].value
        return value if insn.mnemonic == "sub" else -value
    if insn.mnemonic in ("ldr", "ldrb", "str", "strb"):
        mem = insn.operands[1]
        if isinstance(mem, Mem) and mem.writeback and mem.base == SP \
                and mem.index is None:
            return -mem.offset  # writeback adds the offset to sp
    return None


class StackDepthAnalysis(Analysis):
    """Forward per-function stack depth in bytes since function entry.

    Facts are frozensets of possible depths, or :data:`TOP`.  Function
    entries start at depth 0; cross-function edges (shared cross-jump
    tails) simply propagate the feeders' depths, which agree in any
    balanced program.
    """

    direction = FORWARD

    def __init__(self,
                 summaries: Optional[Dict[str, Optional[int]]] = None
                 ) -> None:
        self.summaries = summaries

    def boundary(self, cfg: ModuleCFG, key: BlockKey) -> DepthSet:
        return frozenset({0})

    def initial(self, cfg: ModuleCFG, key: BlockKey) -> DepthSet:
        return frozenset()

    def join(self, a: DepthSet, b: DepthSet) -> DepthSet:
        if a is TOP or b is TOP:
            return TOP
        merged = a | b
        return TOP if len(merged) > MAX_DEPTHS else merged

    def transfer(self, key: BlockKey, block: BasicBlock,
                 depths: DepthSet) -> DepthSet:
        for insn in block.instructions:
            depths = step_depth(depths, insn, self.summaries)
        return depths


def step_depth(depths: DepthSet, insn: Instruction,
               summaries: Optional[Dict[str, Optional[int]]] = None
               ) -> DepthSet:
    """Advance a depth set across one instruction (TOP-propagating)."""
    if depths is TOP:
        return TOP
    delta = sp_delta(insn, summaries)
    if delta is None:
        return TOP
    if delta == 0:
        return depths
    moved = frozenset(d + delta for d in depths)
    if insn.is_conditional:
        moved = moved | depths
    return TOP if len(moved) > MAX_DEPTHS else moved


def return_depth(cfg: ModuleCFG, result: DataflowResult, key: BlockKey,
                 index: int,
                 summaries: Optional[Dict[str, Optional[int]]] = None
                 ) -> DepthSet:
    """Depth set at the moment a return at (*key*, *index*) transfers.

    For ``pop {…, pc}`` the pop has restored ``sp`` by the time control
    leaves; for lr-based returns ``sp`` is unchanged.
    """
    depths = result.in_facts[key]
    block = cfg.blocks[key]
    for ii in range(index):
        depths = step_depth(depths, block.instructions[ii], summaries)
    insn = block.instructions[index]
    if insn.mnemonic == "pop":
        depths = step_depth(depths, insn, summaries)
    return depths


def function_summaries(
    module: Module, cfg: Optional[ModuleCFG] = None, max_iterations: int = 4
) -> Dict[str, Optional[int]]:
    """Net stack effect of every function (bytes grown at return).

    Convention-respecting functions summarize to 0; an outlined helper
    with an unmatched ``push`` summarizes to its residue.  ``TOP`` when
    the function's returns disagree or escape tracking.  Summaries are
    iterated to a fixpoint so helpers-calling-helpers resolve.
    """
    cfg = cfg or build_module_cfg(module)
    reach_cache: Dict[str, set] = {}
    summaries: Dict[str, Optional[int]] = {}
    for __ in range(max_iterations):
        result = solve(cfg, StackDepthAnalysis(summaries))
        updated: Dict[str, Optional[int]] = {}
        for func in module.functions:
            if not func.blocks:
                updated[func.name] = 0
                continue
            if func.name not in reach_cache:
                reach_cache[func.name] = cfg.reachable([(func.name, 0)])
            depths_seen = set()
            top = False
            for key in reach_cache[func.name]:
                block = cfg.blocks[key]
                for ii, insn in enumerate(block.instructions):
                    if insn.is_return:
                        at = return_depth(cfg, result, key, ii, summaries)
                        if at is TOP:
                            top = True
                        else:
                            depths_seen |= at
            if top or len(depths_seen) > 1:
                updated[func.name] = TOP
            elif depths_seen:
                updated[func.name] = depths_seen.pop()
            else:
                updated[func.name] = 0  # never returns (exits via swi)
        if updated == summaries:
            break
        summaries = updated
    return summaries


def stack_depths(
    module: Module,
    cfg: Optional[ModuleCFG] = None,
    summaries: Optional[Dict[str, Optional[int]]] = None,
) -> DataflowResult:
    cfg = cfg or build_module_cfg(module)
    with _TELEMETRY.span("verify.pass", analysis="stack_depth"):
        return solve(cfg, StackDepthAnalysis(summaries))
