"""Static verification: dataflow analyses, the module linter, and the
per-round translation validator.

This package is the independent checker of the abstraction pipeline
(ISSUE: the transformation and its verifier are separate code paths so
one catches the other's bugs).  Layering:

* :mod:`repro.verify.cfg` — module-wide CFG over basic blocks,
* :mod:`repro.verify.dataflow` — the generic worklist solver,
* :mod:`repro.verify.passes` — liveness, maybe-undefined, flag def-use
  and stack-depth analyses built on the solver,
* :mod:`repro.verify.domains` — abstract value/stack/frame lattices,
* :mod:`repro.verify.absint` — the interprocedural abstract interpreter
  (``repro audit``, the sp-fragility facts, the lint v2 rules),
* :mod:`repro.verify.lint` — the invariant linter (``repro lint``),
* :mod:`repro.verify.symeval` — symbolic per-block evaluation,
* :mod:`repro.verify.validate` — the per-round translation validator
  behind ``repro pa --verify``.
"""

from repro.verify.absint import (
    AbsEvent,
    AuditResult,
    FuncSummary,
    audit_module,
    module_summaries,
)
from repro.verify.cfg import BlockKey, ModuleCFG, build_module_cfg
from repro.verify.dataflow import (
    Analysis,
    BACKWARD,
    ConvergenceError,
    DataflowResult,
    FORWARD,
    solve,
)
from repro.verify.lint import Finding, LintReport, Severity, lint_module
from repro.verify.passes import (
    flag_def_use,
    flag_effect_summaries,
    function_summaries,
    live_out_blocks,
    liveness,
    maybe_undef,
    stack_depths,
)
from repro.verify.symeval import BlockEvaluator, SymEvalError, SymState
from repro.verify.validate import (
    Counterexample,
    RoundVerification,
    StructureError,
    TranslationValidationError,
    VerificationError,
    outlined_body,
    snapshot_module,
    verify_round,
)

__all__ = [
    "AbsEvent",
    "Analysis",
    "AuditResult",
    "BACKWARD",
    "BlockEvaluator",
    "BlockKey",
    "ConvergenceError",
    "Counterexample",
    "FuncSummary",
    "audit_module",
    "module_summaries",
    "DataflowResult",
    "FORWARD",
    "Finding",
    "LintReport",
    "ModuleCFG",
    "RoundVerification",
    "Severity",
    "StructureError",
    "SymEvalError",
    "SymState",
    "TranslationValidationError",
    "VerificationError",
    "build_module_cfg",
    "flag_def_use",
    "flag_effect_summaries",
    "function_summaries",
    "lint_module",
    "live_out_blocks",
    "liveness",
    "maybe_undef",
    "outlined_body",
    "snapshot_module",
    "solve",
    "stack_depths",
    "verify_round",
]
