"""Per-round translation validation of the abstraction rewrites.

After every extraction round the driver (under ``--verify``) calls
:func:`verify_round` with the module as it was *before* the round and
the round's extraction records.  The validator

1. re-lints the whole module (structural invariants must survive every
   round, not just the final one), and
2. proves each rewritten basic block equivalent to its original by
   symbolic evaluation (:mod:`repro.verify.symeval`): this round's
   outlined calls are inlined back into the rewritten block, this
   round's cross-jump tails are followed through their ``b``, and the
   resulting terms for every register, the flags, memory, and the
   control-flow exit must be structurally identical.

The transformation and this checker deliberately share no code with the
extraction path: extraction reasons forward from dependence graphs,
validation re-derives block semantics from the instruction stream alone,
so each catches the other's bugs.

Inlining note: an outlined procedure that contains a call is bracketed
``push {lr}`` … ``pop {pc}``.  The bracket shifts ``sp`` by one word for
the body, which legality makes unobservable by rejecting any fragment
that uses ``sp`` under a bracket (``bl`` excepted — the mini-C ABI
passes arguments in registers, never on the stack, so a callee never
reads the caller's frame).  :func:`outlined_body` therefore strips the
bracket and re-checks that guarantee defensively; a violation is a
verification failure, not a silent pass.

``lr`` is special-cased once: an inserted ``bl`` clobbers ``lr``, which
is only legal when ``lr`` is dead out of the rewritten block.  The
driver passes the pre-round ``lr`` liveness so the validator can excuse
*exactly* that clobber — a call-rewritten block where ``lr`` was live
out still fails, which is precisely the historical rijndael miscompile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.binary.program import Function, Module
from repro.isa.instructions import Instruction
from repro.isa.registers import LR, PC, SP, reg_name
from repro.report.ledger import GLOBAL as _LEDGER
from repro.resilience.faultinject import fault
from repro.telemetry import GLOBAL as _TELEMETRY

from repro.verify.lint import LintReport, lint_module
from repro.verify.symeval import BlockEvaluator, SymEvalError, SymState

#: One function's blocks in a snapshot: (labels, instructions) pairs.
SnapshotBlocks = List[Tuple[Tuple[str, ...], Tuple[Instruction, ...]]]
#: A whole-module snapshot, function order preserved.
ModuleSnapshot = List[Tuple[str, SnapshotBlocks]]


class VerificationError(RuntimeError):
    """Base class of all translation-validation failures."""


class StructureError(VerificationError):
    """The rewritten module's shape cannot be aligned with its original."""


@dataclass(frozen=True)
class Counterexample:
    """A rewritten block whose symbolic value differs from its original."""

    function: str
    old_block: int
    new_block: int
    resource: str             #: "r4", "flags", "mem" or "exit"
    old_term: str
    new_term: str
    old_instructions: Tuple[str, ...]
    new_instructions: Tuple[str, ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "function": self.function,
            "old_block": self.old_block,
            "new_block": self.new_block,
            "resource": self.resource,
            "old_term": self.old_term,
            "new_term": self.new_term,
            "old_instructions": list(self.old_instructions),
            "new_instructions": list(self.new_instructions),
        }


class TranslationValidationError(VerificationError):
    """Raised when a round's rewrite could not be proven equivalent."""

    def __init__(self, message: str,
                 counterexample: Optional[Counterexample] = None,
                 lint_report: Optional[LintReport] = None) -> None:
        super().__init__(message)
        self.counterexample = counterexample
        self.lint_report = lint_report


@dataclass
class RoundVerification:
    """Statistics of one successful :func:`verify_round`."""

    round: int
    blocks_total: int = 0
    blocks_checked: int = 0
    blocks_identical: int = 0
    lint_findings: int = 0
    lr_exemptions: int = 0
    new_symbols: List[str] = field(default_factory=list)


def snapshot_module(module: Module) -> ModuleSnapshot:
    """An immutable copy of every function's blocks (labels + insns)."""
    return [
        (
            func.name,
            [
                (tuple(block.labels), tuple(block.instructions))
                for block in func.blocks
            ],
        )
        for func in module.functions
    ]


def outlined_body(func: Function) -> List[Instruction]:
    """The outlined procedure's body with bracket/return stripped.

    Re-checks the legality guarantees the stripping relies on; any
    violation raises :class:`StructureError`.
    """
    if len(func.blocks) != 1:
        raise StructureError(
            f"outlined procedure {func.name} has {len(func.blocks)} blocks"
        )
    insns = list(func.blocks[0].instructions)
    if not insns:
        raise StructureError(f"outlined procedure {func.name} is empty")
    first, final = insns[0], insns[-1]
    bracketed = (
        first.mnemonic == "push"
        and tuple(first.operands[0].regs) == (LR,)
        and final.mnemonic == "pop"
        and tuple(final.operands[0].regs) == (PC,)
    )
    if bracketed:
        body = insns[1:-1]
    elif final.is_return and final.mnemonic == "mov":
        body = insns[:-1]
    else:
        raise StructureError(
            f"outlined procedure {func.name} has no recognized "
            f"prologue/epilogue"
        )
    for insn in body:
        if insn.is_terminator or (insn.is_branch and not insn.is_call):
            raise StructureError(
                f"control transfer inside outlined body {func.name}: {insn}"
            )
        if bracketed and not insn.is_call and (
            SP in insn.regs_read() or SP in insn.regs_written()
        ):
            # Stripping the bracket is only faithful when the body never
            # observes the shifted sp; legality promises this.
            raise StructureError(
                f"sp use under the lr bracket in {func.name}: {insn}"
            )
    return body


def _find_tails(module: Module, tail_labels: Set[str]
                ) -> Dict[str, List[Instruction]]:
    tails: Dict[str, List[Instruction]] = {}
    for func in module.functions:
        for block in func.blocks:
            for label in block.labels:
                if label in tail_labels:
                    tails[label] = list(block.instructions)
    missing = tail_labels - set(tails)
    if missing:
        raise StructureError(
            f"cross-jump tail labels not found: {sorted(missing)}"
        )
    return tails


def _align_function(
    name: str,
    old_blocks: SnapshotBlocks,
    func: Function,
    tail_labels: Set[str],
) -> List[Tuple[int, int, Tuple[Instruction, ...], Tuple[Instruction, ...]]]:
    """Pair old block indices with new ones; survivors get head+tail.

    Returns ``(old_index, new_index, old_insns, new_insns)`` tuples.
    A cross-jump inserts exactly one new tail block per function per
    round (the batch conflict rules guarantee it), so the only legal
    shapes are "same length" and "one longer with a this-round tail".
    """
    new_blocks = func.blocks
    tails_here = [
        bi for bi, block in enumerate(new_blocks)
        if set(block.labels) & tail_labels
    ]
    pairs = []
    if len(new_blocks) == len(old_blocks) and not tails_here:
        mapping = [(k, k, False) for k in range(len(old_blocks))]
    elif len(new_blocks) == len(old_blocks) + 1 and len(tails_here) == 1:
        t = tails_here[0]
        if t == 0:
            raise StructureError(
                f"{name}: cross-jump tail has no survivor head before it"
            )
        mapping = (
            [(k, k, False) for k in range(t - 1)]
            + [(t - 1, t - 1, True)]
            + [(k, k + 1, False) for k in range(t, len(old_blocks))]
        )
    else:
        raise StructureError(
            f"{name}: {len(old_blocks)} blocks became {len(new_blocks)} "
            f"(tails here: {tails_here})"
        )
    for old_index, new_index, is_survivor in mapping:
        old_labels, old_insns = old_blocks[old_index]
        new_block = new_blocks[new_index]
        if tuple(new_block.labels) != old_labels:
            raise StructureError(
                f"{name} block {old_index}: labels changed from "
                f"{list(old_labels)} to {list(new_block.labels)}"
            )
        new_insns = tuple(new_block.instructions)
        if is_survivor:
            new_insns += tuple(new_blocks[new_index + 1].instructions)
        pairs.append((old_index, new_index, old_insns, new_insns))
    return pairs


def _terms_equal(a: object, b: object, memo: Set[Tuple[int, int]]) -> bool:
    """Structural term equality that respects subterm sharing.

    Terms are nested tuples that share subterms as a DAG (one evaluator
    reuses the object for every later read of a value), but ``a`` and
    ``b`` come from *independent* evaluators, so plain ``==`` unfolds
    both DAGs into trees — exponential on long dependency chains (a
    rijndael block stalls a single C-level tuple compare for minutes).
    Memoising visited ``(id, id)`` pairs keeps the walk linear in the
    number of distinct pairs.  Iterative, so term depth (~ block
    length plus inlined call bodies) cannot overflow the stack.
    """
    stack = [(a, b)]
    while stack:
        x, y = stack.pop()
        if x is y:
            continue
        if type(x) is tuple and type(y) is tuple:
            if len(x) != len(y):
                return False
            key = (id(x), id(y))
            if key in memo:
                continue
            memo.add(key)
            stack.extend(zip(x, y))
        elif x != y:
            return False
    return True


def _render_term(term: object, max_nodes: int = 200) -> str:
    """``repr``-like rendering truncated to *max_nodes* tuple nodes.

    Counterexample records must stay bounded even when the disagreeing
    terms are huge (see :func:`_terms_equal` on why they can be)."""
    budget = [max_nodes]

    def walk(t: object) -> str:
        if type(t) is not tuple:
            return repr(t)
        if budget[0] <= 0:
            return "..."
        budget[0] -= 1
        return "(" + ", ".join(walk(part) for part in t) + ")"

    return walk(term)


def _compare(old: SymState, new: SymState,
             exempt_lr: bool) -> Optional[Tuple[str, object, object]]:
    """First mismatching resource between two symbolic states, if any."""
    memo: Set[Tuple[int, int]] = set()
    for r in range(16):
        if r == PC:
            continue
        if not _terms_equal(old.regs[r], new.regs[r], memo):
            if r == LR and exempt_lr:
                continue
            return reg_name(r), old.regs[r], new.regs[r]
    if not _terms_equal(old.flags, new.flags, memo):
        return "flags", old.flags, new.flags
    if not _terms_equal(old.mem, new.mem, memo):
        return "mem", old.mem, new.mem
    if not _terms_equal(old.exit, new.exit, memo):
        return "exit", old.exit, new.exit
    return None


def verify_round(
    module: Module,
    snapshot: ModuleSnapshot,
    records: Sequence[object],
    pre_lr_live: Set[Tuple[str, int]],
    round_index: int = 0,
) -> RoundVerification:
    """Prove one round's rewrites equivalent; raise on any failure.

    *snapshot* is the module as :func:`snapshot_module` saw it before
    the round, *records* the round's :class:`ExtractionRecord` list and
    *pre_lr_live* the pre-round block set where ``lr`` is live out
    (see the module docstring for why the validator needs it).
    """
    fault("verify.round")
    with _TELEMETRY.span("pa.verify", round=round_index):
        return _verify_round(
            module, snapshot, records, pre_lr_live, round_index
        )


def _verify_round(
    module: Module,
    snapshot: ModuleSnapshot,
    records: Sequence[object],
    pre_lr_live: Set[Tuple[str, int]],
    round_index: int,
) -> RoundVerification:
    call_symbols = {
        r.new_symbol for r in records if r.method == "call"
    }
    tail_labels = {
        r.new_symbol for r in records if r.method == "crossjump"
    }
    stats = RoundVerification(
        round=round_index,
        new_symbols=sorted(call_symbols | tail_labels),
    )

    report = lint_module(module)
    stats.lint_findings = len(report.findings)
    if not report.ok:
        if _LEDGER.enabled:
            _LEDGER.emit(
                "verify.lint",
                round=round_index,
                ok=False,
                errors=[f.to_dict() for f in report.errors],
            )
        raise TranslationValidationError(
            f"round {round_index}: module fails lint with "
            f"{len(report.errors)} error(s): "
            + "; ".join(
                f"[{f.rule}] {f.location}: {f.message}"
                for f in report.errors[:5]
            ),
            lint_report=report,
        )

    inline_calls = {
        symbol: outlined_body(module.function(symbol))
        for symbol in call_symbols
    }
    tails = _find_tails(module, tail_labels)

    new_functions = {func.name: func for func in module.functions}
    snapshot_names = {name for name, __ in snapshot}
    appeared = set(new_functions) - snapshot_names
    if appeared - call_symbols:
        raise StructureError(
            f"unexpected new functions: {sorted(appeared - call_symbols)}"
        )
    missing = snapshot_names - set(new_functions)
    if missing:
        raise StructureError(f"functions disappeared: {sorted(missing)}")

    # Chaos hook: when armed, forge an equivalence failure for the first
    # genuinely rewritten block — exercising the driver's rollback +
    # blocklist + retry path against a real candidate's origin.
    forced = fault("verify.counterexample") is not None

    for name, old_blocks in snapshot:
        func = new_functions[name]
        for old_index, new_index, old_insns, new_insns in _align_function(
            name, old_blocks, func, tail_labels
        ):
            stats.blocks_total += 1
            if old_insns == new_insns:
                stats.blocks_identical += 1
                continue
            if forced:
                counterexample = Counterexample(
                    function=name,
                    old_block=old_index,
                    new_block=new_index,
                    resource="injected",
                    old_term="<injected>",
                    new_term="<injected>",
                    old_instructions=tuple(str(i) for i in old_insns),
                    new_instructions=tuple(str(i) for i in new_insns),
                )
                if _LEDGER.enabled:
                    _LEDGER.emit(
                        "verify.counterexample",
                        round=round_index,
                        injected=True,
                        **counterexample.to_dict(),
                    )
                raise TranslationValidationError(
                    f"round {round_index}: injected counterexample for "
                    f"{name} block {old_index}",
                    counterexample=counterexample,
                )
            stats.blocks_checked += 1
            exempt_lr = (
                any(
                    insn.is_call and insn.label_target in call_symbols
                    for insn in new_insns
                )
                and (name, old_index) not in pre_lr_live
            )
            if exempt_lr:
                stats.lr_exemptions += 1
            try:
                old_state = BlockEvaluator().evaluate(old_insns)
                new_state = BlockEvaluator(
                    inline_calls=inline_calls, tails=tails
                ).evaluate(new_insns)
            except SymEvalError as exc:
                raise TranslationValidationError(
                    f"round {round_index}: cannot evaluate "
                    f"{name} block {old_index}: {exc}"
                ) from exc
            mismatch = _compare(old_state, new_state, exempt_lr)
            if _TELEMETRY.enabled:
                _TELEMETRY.count("verify.equivalence.checks")
            if mismatch is None:
                continue
            resource, old_term, new_term = mismatch
            counterexample = Counterexample(
                function=name,
                old_block=old_index,
                new_block=new_index,
                resource=resource,
                old_term=_render_term(old_term),
                new_term=_render_term(new_term),
                old_instructions=tuple(str(i) for i in old_insns),
                new_instructions=tuple(str(i) for i in new_insns),
            )
            if _LEDGER.enabled:
                _LEDGER.emit(
                    "verify.counterexample",
                    round=round_index,
                    **counterexample.to_dict(),
                )
            raise TranslationValidationError(
                f"round {round_index}: {name} block {old_index} is not "
                f"equivalent to its rewrite (resource {resource}: "
                f"{counterexample.old_term} != {counterexample.new_term})",
                counterexample=counterexample,
            )

    if _TELEMETRY.enabled:
        _TELEMETRY.count("verify.rounds")
        _TELEMETRY.count("verify.blocks.checked", stats.blocks_checked)
        _TELEMETRY.count(
            "verify.blocks.identical", stats.blocks_identical
        )
    if _LEDGER.enabled:
        _LEDGER.emit(
            "verify.round",
            round=round_index,
            ok=True,
            blocks_total=stats.blocks_total,
            blocks_checked=stats.blocks_checked,
            blocks_identical=stats.blocks_identical,
            lint_findings=stats.lint_findings,
            lr_exemptions=stats.lr_exemptions,
            new_symbols=stats.new_symbols,
        )
    return stats
