"""The module linter: structural and semantic invariant checks.

``repro lint`` (and the ``--verify`` translation validator, which
re-lints after every extraction round) checks a :class:`Module` against
the invariants the whole pipeline silently relies on.  Rule catalogue:

==========================  ========  =====================================
rule                        severity  meaning
==========================  ========  =====================================
``undefined-label``         error     a branch or ``ldr =`` target no label
                                      defines
``duplicate-label``         error     one name defined at two addresses
``mid-block-transfer``      error     a control transfer before the final
                                      slot of its block
``function-fallthrough``    error     a function's last block can fall
                                      through (into the next function or
                                      its own literal pool)
``pool-range``              error     a literal-pool reference beyond the
                                      ±4 KiB pc-relative range
``stack-imbalance``         error     a function's returns are reached at
                                      inconsistent stack depths
``stack-nonzero-return``    warning   a function consistently returns at a
                                      non-zero depth (legitimate only for
                                      an outlined helper whose call sites
                                      all compensate)
``stack-negative``          warning   ``sp`` can rise above the function
                                      entry value (pop without push —
                                      legitimate only for an outlined
                                      helper reading its caller's frame)
``stack-unknown``           info      ``sp`` escaped affine tracking
``undefined-flag-read``     error     a conditional (or carry-consuming)
                                      instruction whose flags may be
                                      undefined or call-clobbered on some
                                      path
``undefined-register-read`` warning   a read of a register holding callee
                                      garbage after a call
``unreachable-block``       warning   a block no function entry reaches
``empty-block``             info      a block with no instructions
``unbalanced-stack``        error     paths merge at provably different
                                      stack heights (absint)
``clobbered-saved-lr``      error     a store provably overwrites a saved
                                      return address on the stack (absint)
``uninit-read``             warning   a stack slot is read before any
                                      write reaches it (absint)
``caller-frame-escape``     warning   the function provably touches stack
                                      memory its caller owns (absint —
                                      what makes a helper sp-fragile)
``unbounded-stack-growth``  warning   a loop whose net sp delta is
                                      non-zero (absint)
``dead-store``              info      an unconditional register write no
                                      path ever reads
==========================  ========  =====================================

The six ``absint``-backed rules come from the abstract interpreter of
:mod:`repro.verify.absint` — proven facts, not pattern heuristics.

Severities: an *error* means layout, execution, or a later abstraction
round can go wrong; a *warning* is suspicious but can be benign dead
code; *info* is diagnostic only.  :meth:`LintReport.to_dict` is the JSON
shape (schema ``repro.verify.lint/2``) consumed by CI.  Schema ``/2``
extends ``/1`` additively: same top-level keys, new rule names.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.binary.pools import plan_pool, pseudo_literal
from repro.binary.program import Module
from repro.dfg.builder import FLAGS
from repro.isa.instructions import Instruction
from repro.isa.registers import reg_name
from repro.telemetry import GLOBAL as _TELEMETRY

from repro.verify.absint import (
    CALLER_READ,
    CALLER_WRITE,
    GROWTH_CYCLE,
    HEIGHT_MISMATCH,
    NEGATIVE_HEIGHT,
    RETADDR_CLOBBER,
    UNINIT_READ,
    AuditResult,
    audit_module,
)
from repro.verify.cfg import ModuleCFG, build_module_cfg
from repro.verify.passes import (
    TOP,
    flag_def_use,
    function_summaries,
    insn_accesses,
    liveness,
    maybe_undef,
    stack_depths,
    step_depth,
    step_undef,
)

#: Version tag of the lint JSON schema.
LINT_SCHEMA = "repro.verify.lint/2"

#: The pc-relative reach of a literal load (matches the layout check).
POOL_RANGE = 4096


class Severity(enum.IntEnum):
    """Ordered severity levels (higher is worse)."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to a module location."""

    rule: str
    severity: Severity
    message: str
    function: str
    block: Optional[int] = None
    insn: Optional[int] = None
    text: Optional[str] = None

    @property
    def location(self) -> str:
        parts = [self.function]
        if self.block is not None:
            parts.append(f"block {self.block}")
        if self.insn is not None:
            parts.append(f"insn {self.insn}")
        return ", ".join(parts)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "function": self.function,
            "block": self.block,
            "insn": self.insn,
            "text": self.text,
        }


@dataclass
class LintReport:
    """All findings of one lint run."""

    findings: List[Finding] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def ok(self) -> bool:
        """True when no *error*-severity finding exists."""
        return not self.errors

    def counts(self) -> Dict[str, int]:
        counts = {str(level): 0 for level in Severity}
        for finding in self.findings:
            counts[str(finding.severity)] += 1
        return counts

    def by_rule(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for finding in self.findings:
            tally[finding.rule] = tally.get(finding.rule, 0) + 1
        return tally

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": LINT_SCHEMA,
            "ok": self.ok,
            "counts": self.counts(),
            "rules": self.by_rule(),
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """Human-readable listing, worst findings first."""
        if not self.findings:
            return "clean: no findings"
        lines = []
        ordered = sorted(
            self.findings,
            key=lambda f: (-int(f.severity), f.function, f.block or 0,
                           f.insn or 0),
        )
        for finding in ordered:
            lines.append(
                f"{finding.severity}: [{finding.rule}] {finding.location}: "
                f"{finding.message}"
            )
        counts = self.counts()
        lines.append(
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['info']} info"
        )
        return "\n".join(lines)


def _is_exit_swi(insn: Instruction) -> bool:
    """True for the unconditional ``swi #0`` program-exit idiom."""
    return (
        insn.mnemonic == "swi"
        and not insn.is_conditional
        and insn.operands[0].value == 0
    )


def _is_control_transfer(insn: Instruction) -> bool:
    return insn.is_terminator or (insn.is_branch and not insn.is_call)


# ----------------------------------------------------------------------
# the linter
# ----------------------------------------------------------------------
def lint_module(module: Module,
                cfg: Optional[ModuleCFG] = None,
                audit: Optional[AuditResult] = None) -> LintReport:
    """Run every lint rule over *module*; returns the full report.

    Pass a precomputed *audit* (from :func:`audit_module`) to share the
    abstract-interpretation fixpoint with a caller that already ran it.
    """
    with _TELEMETRY.span("verify.lint"):
        cfg = cfg or build_module_cfg(module)
        report = LintReport()
        _check_labels(module, report)
        _check_block_shape(module, cfg, report)
        _check_pool_range(module, report)
        _check_stack(module, cfg, report)
        _check_undefined_reads(module, cfg, report)
        _check_reachability(module, cfg, report)
        _check_absint(module, cfg, report, audit)
        _check_dead_stores(module, cfg, report)
    if _TELEMETRY.enabled:
        _TELEMETRY.count("verify.lint.runs")
        _TELEMETRY.count("verify.lint.blocks", len(cfg.keys))
        _TELEMETRY.count("verify.lint.findings", len(report.findings))
    return report


def _check_labels(module: Module, report: LintReport) -> None:
    """undefined-label and duplicate-label."""
    defined: Dict[str, str] = {}  # label -> "func/block" description
    for func in module.functions:
        for place, name in [(f"function {func.name}", func.name)] + [
            (f"{func.name} block {bi}", label)
            for bi, block in enumerate(func.blocks)
            for label in block.labels
            if label != func.name
        ]:
            if name in defined:
                report.findings.append(Finding(
                    rule="duplicate-label", severity=Severity.ERROR,
                    message=f"label {name!r} already defined at "
                            f"{defined[name]}",
                    function=func.name,
                ))
            else:
                defined[name] = place

    all_labels = module.defined_labels()
    for func in module.functions:
        for bi, block in enumerate(func.blocks):
            for ii, insn in enumerate(block.instructions):
                target = insn.label_target
                if target is not None and target not in all_labels:
                    report.findings.append(Finding(
                        rule="undefined-label", severity=Severity.ERROR,
                        message=f"branch target {target!r} is not defined",
                        function=func.name, block=bi, insn=ii,
                        text=str(insn),
                    ))
                literal = pseudo_literal(insn)
                if literal is not None:
                    name = literal.name
                    numeric = name.isdigit() or (
                        name.startswith("-") and name[1:].isdigit()
                    )
                    if not numeric and name not in all_labels:
                        report.findings.append(Finding(
                            rule="undefined-label", severity=Severity.ERROR,
                            message=f"literal reference ={name} is not "
                                    f"defined",
                            function=func.name, block=bi, insn=ii,
                            text=str(insn),
                        ))


def _check_block_shape(module: Module, cfg: ModuleCFG,
                       report: LintReport) -> None:
    """mid-block-transfer, function-fallthrough and empty-block."""
    for func in module.functions:
        for bi, block in enumerate(func.blocks):
            if not block.instructions:
                report.findings.append(Finding(
                    rule="empty-block", severity=Severity.INFO,
                    message="block holds no instructions",
                    function=func.name, block=bi,
                ))
                continue
            for ii, insn in enumerate(block.instructions[:-1]):
                if _is_control_transfer(insn):
                    report.findings.append(Finding(
                        rule="mid-block-transfer", severity=Severity.ERROR,
                        message="control transfer before the final slot",
                        function=func.name, block=bi, insn=ii,
                        text=str(insn),
                    ))
        if func.blocks:
            last = func.blocks[-1]
            if last.falls_through and not (
                last.instructions and _is_exit_swi(last.instructions[-1])
            ):
                report.findings.append(Finding(
                    rule="function-fallthrough", severity=Severity.ERROR,
                    message="the function's last block can fall through "
                            "past the function boundary",
                    function=func.name, block=len(func.blocks) - 1,
                ))


def _check_pool_range(module: Module, report: LintReport) -> None:
    """pool-range: replicate the layout address assignment exactly."""
    addr = 0
    for func in module.functions:
        pending: List[Tuple[int, int, object, int]] = []  # bi, ii, lit, at
        for bi, block in enumerate(func.blocks):
            for ii, insn in enumerate(block.instructions):
                literal = pseudo_literal(insn)
                if literal is not None:
                    pending.append((bi, ii, literal, addr))
                addr += 4
        pool = plan_pool(func.iter_instructions())
        slot_addr = {
            literal: addr + 4 * slot
            for slot, literal in enumerate(pool.literals)
        }
        addr += 4 * len(pool)
        for bi, ii, literal, at in pending:
            offset = slot_addr[literal] - (at + 8)
            if not -POOL_RANGE < offset < POOL_RANGE:
                report.findings.append(Finding(
                    rule="pool-range", severity=Severity.ERROR,
                    message=f"literal ={literal} is {offset} bytes from "
                            f"its pool slot (pc-relative reach is "
                            f"±{POOL_RANGE - 1})",
                    function=func.name, block=bi, insn=ii,
                ))


def _check_stack(module: Module, cfg: ModuleCFG,
                 report: LintReport) -> None:
    """stack-imbalance, stack-nonzero-return, stack-negative, stack-unknown.

    Runs the interprocedural variant of the depth pass: each call applies
    its callee's net stack effect, so callers of deliberately imbalanced
    outlined helpers still check out.  Per function, *inconsistent*
    return depths are an error; a consistent non-zero depth is only a
    warning because an outlined helper may carry an unmatched push or pop
    that every call site compensates.
    """
    summaries = function_summaries(module, cfg)
    result = stack_depths(module, cfg, summaries)
    unknown_reported: Set[str] = set()
    return_sites: Dict[str, List[Tuple[int, int, Instruction, frozenset]]]
    return_sites = {}
    for key in cfg.keys:
        func_name, bi = key
        depths = result.in_facts[key]
        if depths == frozenset():
            continue  # unreachable; reported separately
        for ii, insn in enumerate(cfg.blocks[key].instructions):
            after = step_depth(depths, insn, summaries)
            if after is TOP and depths is not TOP:
                if func_name not in unknown_reported:
                    unknown_reported.add(func_name)
                    report.findings.append(Finding(
                        rule="stack-unknown", severity=Severity.INFO,
                        message="sp escapes affine tracking here; stack "
                                "checks are suppressed downstream",
                        function=func_name, block=bi, insn=ii,
                        text=str(insn),
                    ))
            if after is not TOP and any(d < 0 for d in after):
                report.findings.append(Finding(
                    rule="stack-negative", severity=Severity.WARNING,
                    message="sp can rise above its function-entry value "
                            f"(depths {sorted(after)})",
                    function=func_name, block=bi, insn=ii,
                    text=str(insn),
                ))
            if insn.is_return:
                # For pop {…, pc} the pop has restored sp by the time
                # control leaves; for lr-based returns sp is unchanged.
                at_return = after if insn.mnemonic == "pop" else depths
                if at_return is not TOP:
                    return_sites.setdefault(func_name, []).append(
                        (bi, ii, insn, at_return)
                    )
            depths = after

    for func_name, sites in return_sites.items():
        union = frozenset().union(*(at for __, __, __, at in sites))
        if len(union) > 1:
            bi, ii, insn, __ = sites[0]
            report.findings.append(Finding(
                rule="stack-imbalance", severity=Severity.ERROR,
                message="returns of this function are reached at "
                        f"inconsistent stack depths {sorted(union)}",
                function=func_name, block=bi, insn=ii, text=str(insn),
            ))
        elif union and next(iter(union)) != 0:
            bi, ii, insn, __ = sites[0]
            depth = next(iter(union))
            report.findings.append(Finding(
                rule="stack-nonzero-return", severity=Severity.WARNING,
                message=f"function consistently returns at depth {depth}; "
                        "legitimate only if every call site compensates",
                function=func_name, block=bi, insn=ii, text=str(insn),
            ))


def _check_undefined_reads(module: Module, cfg: ModuleCFG,
                           report: LintReport) -> None:
    """undefined-flag-read and undefined-register-read."""
    chains = flag_def_use(module, cfg)
    for (func_name, bi, ii), defs in sorted(chains.items()):
        bad = sorted(d for d in defs if d[0] in ("undef", "clobber"))
        if bad:
            insn = cfg.blocks[(func_name, bi)].instructions[ii]
            sources = ", ".join(
                f"undefined at entry of {d[1]}" if d[0] == "undef"
                else "clobbered by call to unknown callee at "
                     f"{d[1]} block {d[2]} insn {d[3]}"
                for d in bad
            )
            report.findings.append(Finding(
                rule="undefined-flag-read", severity=Severity.ERROR,
                message=f"flags may be unset on some path ({sources})",
                function=func_name, block=bi, insn=ii, text=str(insn),
            ))

    undef = maybe_undef(module, cfg)
    for key in cfg.keys:
        state = set(undef.in_facts[key])
        for ii, insn in enumerate(cfg.blocks[key].instructions):
            if insn.mnemonic not in ("bl", "swi"):
                # bl/swi read sets model the calling convention, not
                # real operand reads — checking them would flag every
                # call to a function taking fewer than four arguments.
                reads, __ = insn_accesses(insn)
                bad_regs = sorted(
                    r for r in reads if r != FLAGS and r in state
                )
                if bad_regs:
                    names = ", ".join(reg_name(r) for r in bad_regs)
                    report.findings.append(Finding(
                        rule="undefined-register-read",
                        severity=Severity.WARNING,
                        message=f"reads {names} which may hold callee "
                                f"garbage after a call",
                        function=key[0], block=key[1], insn=ii,
                        text=str(insn),
                    ))
            step_undef(state, insn)


def _check_reachability(module: Module, cfg: ModuleCFG,
                        report: LintReport) -> None:
    """unreachable-block — one finding per dead *region*, not per block.

    Dead library helpers the linker kept are common (a whole never-called
    function body is one connected unreachable region); reporting every
    block of it separately would drown real findings.
    """
    reached = cfg.reachable()
    dead = [key for key in cfg.keys if key not in reached]
    dead_set = set(dead)
    visited: Set[Tuple[str, int]] = set()
    for key in dead:
        if key in visited:
            continue
        if any(p in dead_set and p not in visited for p in cfg.pred[key]):
            continue  # not a region head; will be swept from its head
        region = [key]
        visited.add(key)
        stack = [key]
        while stack:
            for nxt in cfg.succ[stack.pop()]:
                if nxt in dead_set and nxt not in visited:
                    visited.add(nxt)
                    region.append(nxt)
                    stack.append(nxt)
        labels = cfg.blocks[key].labels
        name = f" ({labels[0]})" if labels else ""
        report.findings.append(Finding(
            rule="unreachable-block", severity=Severity.WARNING,
            message=f"no function entry reaches this block{name}; "
                    f"{len(region)} block(s) dead from here",
            function=key[0], block=key[1],
        ))
    # safety net: dead cycles with no head still get reported
    for key in dead:
        if key not in visited:
            visited.add(key)
            report.findings.append(Finding(
                rule="unreachable-block", severity=Severity.WARNING,
                message="no function entry reaches this block",
                function=key[0], block=key[1],
            ))


#: Event kind -> (lint rule, severity) for the absint-backed rules.
_ABSINT_RULES = {
    RETADDR_CLOBBER: ("clobbered-saved-lr", Severity.ERROR),
    HEIGHT_MISMATCH: ("unbalanced-stack", Severity.ERROR),
    UNINIT_READ: ("uninit-read", Severity.WARNING),
    CALLER_READ: ("caller-frame-escape", Severity.WARNING),
    CALLER_WRITE: ("caller-frame-escape", Severity.WARNING),
    NEGATIVE_HEIGHT: ("caller-frame-escape", Severity.WARNING),
    GROWTH_CYCLE: ("unbounded-stack-growth", Severity.WARNING),
}


def _check_absint(module: Module, cfg: ModuleCFG, report: LintReport,
                  audit: Optional[AuditResult]) -> None:
    """The six absint-backed rules: each event maps to one finding."""
    audit = audit or audit_module(module, cfg)
    for event in audit.events:
        rule, severity = _ABSINT_RULES[event.kind]
        text = None
        if event.insn is not None:
            key = (event.function, event.block)
            text = str(cfg.blocks[key].instructions[event.insn])
        report.findings.append(Finding(
            rule=rule, severity=severity, message=event.detail,
            function=event.function, block=event.block,
            insn=event.insn, text=text,
        ))


#: Mnemonics safe to flag as dead stores: pure register computations
#: with no memory, flag, control or convention side effects.
_PURE_WRITERS = frozenset(
    {"and", "eor", "sub", "rsb", "add", "adc", "sbc", "rsc", "orr",
     "bic", "mov", "mvn", "mul", "mla"}
)


def _check_dead_stores(module: Module, cfg: ModuleCFG,
                       report: LintReport) -> None:
    """dead-store: an unconditional register write no path reads."""
    result = liveness(module, cfg)
    for key in cfg.keys:
        live = set(result.out_facts[key])
        block = cfg.blocks[key]
        dead: List[Tuple[int, Instruction, int]] = []
        for ii in range(len(block.instructions) - 1, -1, -1):
            insn = block.instructions[ii]
            reads, writes = insn_accesses(insn)
            if (
                insn.mnemonic in _PURE_WRITERS
                and not insn.is_conditional
                and not insn.set_flags
                and len(writes) == 1
            ):
                rd = next(iter(writes))
                if isinstance(rd, int) and rd < 13 and rd not in live:
                    dead.append((ii, insn, rd))
            if not insn.is_conditional:
                live -= writes
            live |= reads
        for ii, insn, rd in reversed(dead):
            report.findings.append(Finding(
                rule="dead-store", severity=Severity.INFO,
                message=f"writes {reg_name(rd)} but no path reads it "
                        f"afterwards",
                function=key[0], block=key[1], insn=ii, text=str(insn),
            ))
