"""Interprocedural abstract interpretation over the module CFG.

One worklist fixpoint (the generic solver of
:mod:`repro.verify.dataflow`) interprets every instruction over the
three domains of :mod:`repro.verify.domains`: constant/interval register
values, symbolic stack height with frame-slot tracking, and
initialized-ness of registers and stack slots.  Interprocedural
precision comes from per-function :class:`FuncSummary` records iterated
to a fixpoint over the call graph, the same shape as
``flag_effect_summaries`` in :mod:`repro.verify.passes`.

The analysis is *optimistic about aliasing* in one documented way:
stores through pointers it cannot prove stack-derived do not invalidate
tracked frame slots.  Passing a stack address to a callee (or spilling
one to untracked memory) conservatively forgets every slot except saved
return addresses, which no legal code may alias.  The dynamic sanitizer
(:mod:`repro.sim.sanitize`) is the cross-check for exactly this gap.

Consumers:

* :func:`module_summaries` — per-function facts for
  ``pa/legality.py``'s sp-fragility gate (proven, not heuristic);
* :func:`audit_module` — the full :class:`AuditResult` (summaries plus
  site-level events) behind the ``audit`` CLI subcommand and the lint
  v2 rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.binary.program import BasicBlock, Module
from repro.isa.instructions import (
    DATAPROC_3OP,
    DATAPROC_COMPARE,
    DATAPROC_MOVE,
    Instruction,
)
from repro.isa.operands import Imm, LabelRef, Mem, Reg, ShiftedReg
from repro.isa.registers import PC, SP
from repro.telemetry import GLOBAL as _TELEMETRY

from repro.verify.cfg import BlockKey, ModuleCFG, build_module_cfg
from repro.verify.dataflow import FORWARD, Analysis, DataflowResult, solve
from repro.verify.domains import (
    BOT,
    BOTTOM_STATE,
    RETADDR,
    TOP,
    UNINIT,
    AbsState,
    AbsVal,
    Interval,
    StackAddr,
    add_values,
    allocate,
    const,
    deallocate,
    entry_state,
    frame_from_dict,
    join_states,
    join_values,
    negate_value,
    stack_depth_of,
)

#: Fixpoint bound for the summary iteration (call-graph depth of the
#: helpers-calling-helpers chains PA produces is small).
SUMMARY_ITERATIONS = 4

# event kinds -----------------------------------------------------------
CALLER_READ = "caller-frame-read"
CALLER_WRITE = "caller-frame-write"
RETADDR_CLOBBER = "retaddr-clobber"
UNINIT_READ = "uninit-slot-read"
NEGATIVE_HEIGHT = "negative-height"
HEIGHT_MISMATCH = "height-mismatch"
GROWTH_CYCLE = "growth-cycle"

#: Versioned schema of the ``audit --json`` payload.
AUDIT_SCHEMA = "repro.verify.audit/1"
#: Event kinds that are outright miscompiles (audit exits 1 on them);
#: everything else is legitimate — if unusual — code shape.
ERROR_KINDS = frozenset({RETADDR_CLOBBER, HEIGHT_MISMATCH})


@dataclass(frozen=True)
class AbsEvent:
    """One site-level fact the interpreter proved.

    ``insn`` is ``None`` for block-level events (join mismatches);
    ``depth`` carries the entry-relative byte depth for stack events.
    """

    kind: str
    function: str
    block: int
    insn: Optional[int]
    detail: str
    depth: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "function": self.function,
            "block": self.block,
            "insn": self.insn,
            "detail": self.detail,
            "depth": self.depth,
        }


@dataclass(frozen=True)
class FuncSummary:
    """Per-function invariants, the interprocedural currency.

    ``net_delta`` is the stack bytes still allocated when the function
    returns (0 for convention-respecting code, ``None`` when unknown or
    inconsistent).  ``caller_reads``/``caller_writes`` are the relative
    depths (≤ 0, bytes below the *callee's* entry ``sp``) at which the
    function provably touches memory its caller owns.
    """

    net_delta: Optional[int] = 0
    height_known: bool = True
    max_height: int = 0
    caller_reads: Tuple[int, ...] = ()
    caller_writes: Tuple[int, ...] = ()
    retaddr_slots: Tuple[int, ...] = ()
    returns: int = 0
    has_negative_height: bool = False

    @property
    def touches_caller_frame(self) -> bool:
        return bool(self.caller_reads or self.caller_writes
                    or self.has_negative_height)

    @property
    def fragile(self) -> bool:
        """True when calling this function under a ``push {lr}`` bracket
        (or from any context it was not extracted from) is unsafe."""
        return (
            not self.height_known
            or self.net_delta != 0
            or self.touches_caller_frame
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "net_delta": self.net_delta,
            "height_known": self.height_known,
            "max_height": self.max_height,
            "caller_reads": list(self.caller_reads),
            "caller_writes": list(self.caller_writes),
            "retaddr_slots": list(self.retaddr_slots),
            "returns": self.returns,
            "has_negative_height": self.has_negative_height,
            "touches_caller_frame": self.touches_caller_frame,
            "fragile": self.fragile,
        }


#: Registers a call leaves holding callee garbage (scratch minus the
#: return value) — mirrors ``passes.CALL_CLOBBERED`` for values.
_CALL_GARBAGE = (1, 2, 3, 12)


def _flex_value(regs: List[AbsVal], op: object) -> AbsVal:
    if isinstance(op, Imm):
        return const(op.value)
    if isinstance(op, Reg):
        return regs[op.num]
    if isinstance(op, ShiftedReg):
        value = regs[op.num]
        if value is UNINIT or value is BOT:
            return value
        if isinstance(value, Interval) and op.shift_op == "lsl":
            # widening is applied by the abstract add
            return add_values(
                const(0),
                Interval(value.lo << op.amount, value.hi << op.amount),
            )
        return TOP
    return TOP


class _Sink:
    """Collects events during the extraction walk (None while solving)."""

    def __init__(self) -> None:
        self.events: List[AbsEvent] = []
        self.site: Tuple[str, int, Optional[int]] = ("", 0, None)

    def emit(self, kind: str, detail: str,
             depth: Optional[int] = None) -> None:
        func, block, insn = self.site
        self.events.append(
            AbsEvent(kind, func, block, insn, detail, depth)
        )


def _wipe_untrusted(frame: Dict[int, AbsVal]) -> None:
    """Forget every slot value except saved return addresses."""
    for depth, value in frame.items():
        if value is not RETADDR:
            frame[depth] = TOP


def _set_sp(regs: List[AbsVal], frame: Dict[int, AbsVal],
            value: AbsVal) -> None:
    """Move ``sp``, allocating/deallocating tracked slots to match."""
    old_h = stack_depth_of(regs[SP])
    regs[SP] = value
    new_h = stack_depth_of(value)
    if old_h is None or new_h is None:
        return
    # grow: fresh slots hold garbage; shrink: slots below sp are gone
    if new_h > old_h:
        for depth, slot in allocate(frame_from_dict(frame), old_h, new_h):
            frame[depth] = slot
    elif new_h < old_h:
        for depth in [d for d in frame if d > new_h]:
            del frame[depth]


def _mem_depth(regs: List[AbsVal], mem: Mem) -> Optional[int]:
    """Depth a load/store addresses, when provably stack-relative."""
    base_depth = stack_depth_of(regs[mem.base])
    if base_depth is None or mem.index is not None:
        return None
    if mem.pre:
        return base_depth - mem.offset
    return base_depth  # post-indexed: the access uses the raw base


def _mem_writeback(regs: List[AbsVal], mem: Mem) -> Optional[AbsVal]:
    """New base value for writeback forms, else None."""
    if not mem.writeback:
        return None
    if mem.index is not None:
        return add_values(regs[mem.base], regs[mem.index])
    return add_values(regs[mem.base], const(mem.offset))


def _load_slot(frame: Dict[int, AbsVal], depth: int, height: Optional[int],
               sink: Optional[_Sink], what: str) -> AbsVal:
    """Read the tracked slot at *depth*, emitting events as proven."""
    if depth <= 0:
        if sink:
            sink.emit(CALLER_READ,
                      f"{what} reads caller-owned stack at entry-relative "
                      f"depth {depth}", depth)
        return TOP
    if height is not None and depth > height:
        if sink:
            sink.emit(UNINIT_READ,
                      f"{what} reads below sp (deallocated stack) at "
                      f"depth {depth}", depth)
        return UNINIT
    value = frame.get(depth, TOP)
    if value is UNINIT and sink:
        sink.emit(UNINIT_READ,
                  f"{what} reads stack slot at depth {depth} before any "
                  f"write reaches it", depth)
    return value


def _store_slot(frame: Dict[int, AbsVal], depth: int,
                height: Optional[int], value: AbsVal, word: bool,
                sink: Optional[_Sink], what: str) -> None:
    if depth <= 0:
        if sink:
            sink.emit(CALLER_WRITE,
                      f"{what} writes caller-owned stack at entry-relative "
                      f"depth {depth}", depth)
        return
    if frame.get(depth) is RETADDR:
        if sink:
            sink.emit(RETADDR_CLOBBER,
                      f"{what} overwrites the saved return address at "
                      f"depth {depth}", depth)
    if height is not None and depth <= height:
        frame[depth] = value if word and depth % 4 == 0 else TOP


def _apply_call(regs: List[AbsVal], frame: Dict[int, AbsVal],
                summary: Optional[FuncSummary], callee: str,
                escaped: bool, sink: Optional[_Sink]) -> None:
    """Transfer a ``bl`` through its callee's summary."""
    height = stack_depth_of(regs[SP])
    # a stack pointer visible in the argument registers (or previously
    # spilled) may let the callee write anywhere in our frame
    args_escape = any(
        isinstance(regs[r], StackAddr) for r in (0, 1, 2, 3)
    )
    if args_escape or escaped:
        _wipe_untrusted(frame)

    if summary is not None and height is not None:
        for rel in summary.caller_writes:
            depth = height + rel
            if frame.get(depth) is RETADDR and sink:
                sink.emit(RETADDR_CLOBBER,
                          f"call to {callee} overwrites the saved return "
                          f"address at depth {depth} (callee writes its "
                          f"entry-relative depth {rel})", depth)
            if depth > 0:
                frame[depth] = TOP
            elif sink:
                # the callee reaches through our whole frame into the
                # memory *our* caller owns: the access is transitively
                # ours, so our own summary must carry it
                sink.emit(CALLER_WRITE,
                          f"call to {callee} writes caller-owned stack "
                          f"at entry-relative depth {depth}", depth)
        for rel in summary.caller_reads:
            depth = height + rel
            if depth > 0 and frame.get(depth) is UNINIT and sink:
                sink.emit(UNINIT_READ,
                          f"call to {callee} reads stack slot at depth "
                          f"{depth} before any write reaches it", depth)
            elif depth <= 0 and sink:
                sink.emit(CALLER_READ,
                          f"call to {callee} reads caller-owned stack "
                          f"at entry-relative depth {depth}", depth)
    elif summary is not None and summary.touches_caller_frame:
        _wipe_untrusted(frame)

    if summary is None or summary.net_delta == 0:
        pass  # convention: sp preserved
    elif summary.net_delta is None or height is None:
        regs[SP] = TOP
    else:
        _set_sp(regs, frame, StackAddr(height + summary.net_delta))
    if summary is not None and not summary.height_known:
        _wipe_untrusted(frame)

    regs[0] = TOP
    for r in _CALL_GARBAGE:
        regs[r] = UNINIT
    regs[14] = TOP  # lr now holds the return site, a code address


def _step_core(regs: List[AbsVal], frame: Dict[int, AbsVal],
               insn: Instruction,
               summaries: Optional[Dict[str, FuncSummary]],
               escaped: List[bool],
               sink: Optional[_Sink]) -> None:
    """Unconditional single-instruction transfer, mutating in place."""
    m = insn.mnemonic
    ops = insn.operands
    height = stack_depth_of(regs[SP])
    what = str(insn)

    if m in DATAPROC_3OP:
        rd = ops[0].num
        a = regs[ops[1].num]
        b = _flex_value(regs, ops[2])
        if m == "add":
            value = add_values(a, b)
        elif m == "sub":
            value = add_values(a, negate_value(b))
        elif m == "rsb":
            value = add_values(negate_value(a), b)
        elif a is UNINIT or b is UNINIT:
            value = UNINIT
        else:
            value = TOP
        if rd == SP:
            _set_sp(regs, frame, value)
            new_h = stack_depth_of(value)
            if sink and new_h is not None and new_h < 0:
                sink.emit(NEGATIVE_HEIGHT,
                          f"{what} raises sp {-new_h} bytes above its "
                          f"function-entry value")
        else:
            regs[rd] = value
    elif m in DATAPROC_MOVE:
        rd = ops[0].num
        value = _flex_value(regs, ops[1])
        if m == "mvn":
            value = UNINIT if value is UNINIT else TOP
        if rd == SP:
            _set_sp(regs, frame, value)
        elif rd != PC:
            regs[rd] = value
    elif m in DATAPROC_COMPARE:
        pass  # flags only; the flag passes own NZCV
    elif m in ("mul", "mla"):
        srcs = [regs[op.num] for op in ops[1:]]
        regs[ops[0].num] = UNINIT if any(
            s is UNINIT for s in srcs) else TOP
    elif m in ("ldr", "ldrb"):
        if isinstance(ops[1], LabelRef):
            regs[ops[0].num] = TOP  # a constant address
        else:
            mem = ops[1]
            depth = _mem_depth(regs, mem)
            if depth is None:
                value = TOP
            else:
                value = _load_slot(frame, depth, height, sink, what)
                if m == "ldrb" and value not in (UNINIT,):
                    value = TOP  # one byte of a tracked word
            wb = _mem_writeback(regs, mem)
            if wb is not None:
                if mem.base == SP:
                    _set_sp(regs, frame, wb)
                else:
                    regs[mem.base] = wb
            regs[ops[0].num] = value
    elif m in ("str", "strb"):
        mem = ops[1]
        value = regs[ops[0].num]
        depth = _mem_depth(regs, mem)
        if depth is not None:
            _store_slot(frame, depth, height, value, m == "str",
                        sink, what)
        elif isinstance(value, StackAddr):
            # a stack address leaks to untracked memory: any later call
            # may write through it
            escaped[0] = True
        wb = _mem_writeback(regs, mem)
        if wb is not None:
            if mem.base == SP:
                _set_sp(regs, frame, wb)
            else:
                regs[mem.base] = wb
    elif m == "push":
        regs_list = ops[0].regs
        count = len(regs_list)
        if height is not None:
            new_h = height + 4 * count
            pushed = [regs[r] for r in regs_list]  # before sp moves
            _set_sp(regs, frame, StackAddr(new_h))  # allocates slots
            for i, value in enumerate(pushed):
                depth = new_h - 4 * i
                _store_slot(frame, depth, new_h, value, True, sink,
                            what)
        else:
            regs[SP] = add_values(regs[SP], const(-4 * count))
    elif m == "pop":
        regs_list = ops[0].regs
        count = len(regs_list)
        if height is not None:
            values = []
            for i, r in enumerate(regs_list):
                depth = height - 4 * i
                values.append((r, _load_slot(frame, depth, height, sink,
                                             what)))
            new_h = height - 4 * count
            for r, value in values:
                if r not in (SP, PC):
                    regs[r] = value
            if sink and new_h < 0:
                sink.emit(NEGATIVE_HEIGHT,
                          f"{what} raises sp {-new_h} bytes above its "
                          f"function-entry value")
            if SP in regs_list:
                regs[SP] = TOP  # restored from memory, then bumped
                for depth in [d for d in frame]:
                    del frame[depth]
            else:
                _set_sp(regs, frame, StackAddr(new_h))
        else:
            for r in regs_list:
                if r not in (SP, PC):
                    regs[r] = TOP
            regs[SP] = add_values(regs[SP], const(4 * count))
    elif m == "bl":
        summary = None
        if summaries is not None:
            summary = summaries.get(insn.label_target)
        _apply_call(regs, frame, summary, insn.label_target or "?",
                    escaped[0], sink)
    elif m == "swi":
        regs[0] = TOP
    # b / bx: no register effects


def step_state(state: AbsState, insn: Instruction,
               summaries: Optional[Dict[str, FuncSummary]] = None,
               sink: Optional[_Sink] = None) -> AbsState:
    """Advance one abstract state across one instruction."""
    if state.bottom:
        return state
    regs = list(state.regs)
    frame = dict(state.frame)
    escaped = [state.escaped]
    _step_core(regs, frame, insn, summaries, escaped, sink)
    after = AbsState(regs=tuple(regs), frame=frame_from_dict(frame),
                     escaped=escaped[0])
    if insn.is_conditional:
        # the instruction may not execute; events stay (may-semantics)
        return join_states(state, after)
    return after


class AbsIntAnalysis(Analysis):
    """The forward abstract-interpretation dataflow problem."""

    direction = FORWARD

    def __init__(self, summaries: Dict[str, FuncSummary]) -> None:
        self.summaries = summaries

    def boundary(self, cfg: ModuleCFG, key: BlockKey) -> AbsState:
        return entry_state()

    def initial(self, cfg: ModuleCFG, key: BlockKey) -> AbsState:
        return BOTTOM_STATE

    def join(self, a: AbsState, b: AbsState) -> AbsState:
        return join_states(a, b)

    def transfer(self, key: BlockKey, block: BasicBlock,
                 state: AbsState) -> AbsState:
        for insn in block.instructions:
            state = step_state(state, insn, self.summaries)
        return state


@dataclass
class AuditResult:
    """Everything one audit run proved about a module."""

    summaries: Dict[str, FuncSummary]
    events: List[AbsEvent]
    result: DataflowResult
    iterations: int = 1

    def functions_dict(self) -> Dict[str, Dict[str, object]]:
        return {
            name: summary.to_dict()
            for name, summary in sorted(self.summaries.items())
        }

    @property
    def ok(self) -> bool:
        """No proven-miscompile event (see :data:`ERROR_KINDS`)."""
        return not any(e.kind in ERROR_KINDS for e in self.events)

    def to_payload(self, source: str = "") -> Dict[str, object]:
        """The versioned ``audit --json`` payload (:data:`AUDIT_SCHEMA`)."""
        errors = sum(1 for e in self.events if e.kind in ERROR_KINDS)
        return {
            "schema": AUDIT_SCHEMA,
            "source": source,
            "ok": errors == 0,
            "iterations": self.iterations,
            "counts": {"events": len(self.events), "errors": errors},
            "functions": self.functions_dict(),
            "events": [e.to_dict() for e in self.events],
        }


def _return_height(state: AbsState, block: BasicBlock, upto: int,
                   summaries: Dict[str, FuncSummary]) -> Optional[int]:
    """Height when the return at index *upto* transfers control."""
    for insn in block.instructions[:upto]:
        state = step_state(state, insn, summaries)
    ret = block.instructions[upto]
    if ret.mnemonic == "pop":
        state = step_state(state, ret, summaries)
    return state.height


def _walk_blocks(
    cfg: ModuleCFG,
    result: DataflowResult,
    summaries: Dict[str, FuncSummary],
) -> Tuple[List[AbsEvent], Dict[BlockKey, Tuple[bool, int, bool, Tuple[int, ...]]]]:
    """One global pass: collect events and per-block height stats.

    Returns the events plus ``key -> (height_known, max_height,
    has_negative, retaddr_depths)`` for summary aggregation.
    """
    events: List[AbsEvent] = []
    stats: Dict[BlockKey, Tuple[bool, int, bool, Tuple[int, ...]]] = {}
    for key in cfg.keys:
        state = result.in_facts[key]
        if state.bottom:
            continue
        sink = _Sink()
        known, max_h, negative = True, 0, False
        retaddrs: Set[int] = set()
        for index, insn in enumerate(cfg.blocks[key].instructions):
            h = state.height
            if h is None:
                known = False
            else:
                max_h = max(max_h, h)
                if h < 0:
                    negative = True
            for depth, value in state.frame:
                if value is RETADDR:
                    retaddrs.add(depth)
            sink.site = (key[0], key[1], index)
            state = step_state(state, insn, summaries, sink)
        h = state.height
        if h is None:
            known = False
        else:
            max_h = max(max_h, h)
            if h < 0:
                negative = True
        events.extend(sink.events)
        stats[key] = (known, max_h, negative, tuple(sorted(retaddrs)))
    return events, stats


def _join_mismatches(cfg: ModuleCFG, result: DataflowResult,
                     reachable: Set[BlockKey]) -> List[AbsEvent]:
    """Blocks where joining predecessors lost the stack height.

    Reported only at the frontier (some incoming height still known);
    a lost height inside a cycle is unbounded growth, elsewhere an
    unbalanced merge.
    """
    events: List[AbsEvent] = []
    entries = set(cfg.entries)
    for key in cfg.keys:
        if key not in reachable:
            continue
        state = result.in_facts[key]
        if state.bottom or state.height is not None:
            continue
        incoming: List[Optional[int]] = [
            result.out_facts[p].height for p in cfg.pred[key]
            if not result.out_facts[p].bottom
        ]
        if key in entries:
            incoming.append(0)
        if not any(h is not None for h in incoming):
            continue  # downstream of the original loss
        in_cycle = key in cfg.reachable(list(cfg.succ[key]))
        kind = GROWTH_CYCLE if in_cycle else HEIGHT_MISMATCH
        detail = (
            "stack height does not stabilise around this loop (net "
            "per-iteration sp delta is non-zero)"
            if in_cycle else
            "incoming paths reach this block at different stack heights"
        )
        events.append(AbsEvent(kind, key[0], key[1], None, detail))
    return events


def _extract_summaries(
    module: Module,
    cfg: ModuleCFG,
    result: DataflowResult,
    summaries: Dict[str, FuncSummary],
    reach: Dict[str, Set[BlockKey]],
) -> Tuple[Dict[str, FuncSummary], List[AbsEvent]]:
    events, stats = _walk_blocks(cfg, result, summaries)
    events_by_key: Dict[BlockKey, List[AbsEvent]] = {}
    for event in events:
        if event.kind in (CALLER_READ, CALLER_WRITE):
            events_by_key.setdefault(
                (event.function, event.block), []).append(event)

    updated: Dict[str, FuncSummary] = {}
    for func in module.functions:
        if not func.blocks:
            updated[func.name] = FuncSummary()
            continue
        keys = [k for k in cfg.keys if k in reach[func.name]]
        known, max_h, negative = True, 0, False
        retaddrs: Set[int] = set()
        reads: Set[int] = set()
        writes: Set[int] = set()
        for key in keys:
            if key not in stats:
                continue
            b_known, b_max, b_neg, b_ret = stats[key]
            known = known and b_known
            max_h = max(max_h, b_max)
            negative = negative or b_neg
            retaddrs.update(b_ret)
            for event in events_by_key.get(key, ()):
                if event.depth is None:
                    continue
                if event.kind == CALLER_READ:
                    reads.add(event.depth)
                else:
                    writes.add(event.depth)
        ret_heights: Set[Optional[int]] = set()
        returns = 0
        for key in keys:
            state = result.in_facts[key]
            if state.bottom:
                continue
            block = cfg.blocks[key]
            for index, insn in enumerate(block.instructions):
                if insn.is_return:
                    returns += 1
                    ret_heights.add(
                        _return_height(state, block, index, summaries)
                    )
        if None in ret_heights or len(ret_heights) > 1:
            net: Optional[int] = None
        elif ret_heights:
            net = ret_heights.pop()
        else:
            net = 0  # never returns (exits via swi)
        updated[func.name] = FuncSummary(
            net_delta=net,
            height_known=known,
            max_height=max_h,
            caller_reads=tuple(sorted(reads)),
            caller_writes=tuple(sorted(writes)),
            retaddr_slots=tuple(sorted(retaddrs)),
            returns=returns,
            has_negative_height=negative,
        )
    return updated, events


def audit_module(module: Module,
                 cfg: Optional[ModuleCFG] = None,
                 max_iterations: int = SUMMARY_ITERATIONS) -> AuditResult:
    """Interpret the whole module; returns summaries plus site events.

    Summaries start optimistic (every callee convention-respecting) and
    are re-derived from each solve until they stabilise, so fragile
    helpers propagate fragility to the helpers that call them.
    """
    with _TELEMETRY.span("verify.audit"):
        cfg = cfg or build_module_cfg(module)
        reach: Dict[str, Set[BlockKey]] = {
            func.name: (cfg.reachable([(func.name, 0)]) if func.blocks
                        else set())
            for func in module.functions
        }
        summaries: Dict[str, FuncSummary] = {}
        events: List[AbsEvent] = []
        result: Optional[DataflowResult] = None
        iterations = 0
        for __ in range(max_iterations):
            iterations += 1
            with _TELEMETRY.span("verify.pass", analysis="absint"):
                result = solve(cfg, AbsIntAnalysis(summaries))
            updated, events = _extract_summaries(
                module, cfg, result, summaries, reach
            )
            if updated == summaries:
                break
            summaries = updated
        assert result is not None
        reachable = cfg.reachable()
        events = events + _join_mismatches(cfg, result, reachable)
        if _TELEMETRY.enabled:
            _TELEMETRY.count("verify.audit.runs")
            _TELEMETRY.count("verify.audit.events", len(events))
            _TELEMETRY.count("verify.audit.iterations", iterations)
        return AuditResult(summaries=summaries, events=events,
                           result=result, iterations=iterations)


def module_summaries(module: Module,
                     cfg: Optional[ModuleCFG] = None
                     ) -> Dict[str, FuncSummary]:
    """Per-function absint summaries (the legality gate's input)."""
    return audit_module(module, cfg).summaries
