"""A generic worklist solver for dataflow analyses over the module CFG.

An analysis describes a direction, a join, a per-block transfer function
and the boundary facts; the solver iterates transfers to a fixpoint.
All the concrete passes in :mod:`repro.verify.passes` — and through
them, the legality analysis in :mod:`repro.pa.liveness` — share this
single solver, so there is exactly one fixpoint loop in the system to
get right (the previous single-purpose lr solver iterated over *all*
blocks per round; this one is worklist-driven and touches only blocks
whose inputs changed).

Facts must be immutable values with ``==`` (frozensets, tuples, small
dataclasses).  Termination is the analysis author's obligation: joins
must be monotone over a finite lattice, as all bundled passes are — but
because a non-monotone transfer would otherwise spin silently,
:func:`solve` enforces a generous convergence bound
(:data:`MAX_VISITS_PER_BLOCK` visits per block on average) and raises
:class:`ConvergenceError` past it, converting an infinite loop into a
diagnosable failure.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Generic, TypeVar

from repro.binary.program import BasicBlock
from repro.telemetry import GLOBAL as _TELEMETRY

from repro.verify.cfg import BlockKey, ModuleCFG

Fact = TypeVar("Fact")

FORWARD = "forward"
BACKWARD = "backward"

#: Default convergence bound: a well-formed analysis visits each block
#: O(lattice height) times; every bundled pass stays far below this.
MAX_VISITS_PER_BLOCK = 1000


class ConvergenceError(RuntimeError):
    """The worklist exceeded its iteration bound (non-monotone
    transfer/join, or a lattice with an unbounded ascending chain)."""


class Analysis(Generic[Fact]):
    """Base class describing one dataflow problem.

    Subclasses set :attr:`direction` and implement the four hooks.  The
    solver calls ``transfer(key, block, fact)`` with the block's *input*
    fact (the in-fact for forward problems, the out-fact for backward
    ones) and expects the corresponding output fact.
    """

    direction: str = FORWARD

    def boundary(self, cfg: ModuleCFG, key: BlockKey) -> Fact:
        """Fact injected at boundary nodes (entries / CFG exits)."""
        raise NotImplementedError

    def initial(self, cfg: ModuleCFG, key: BlockKey) -> Fact:
        """Optimistic starting fact for every block (lattice bottom)."""
        raise NotImplementedError

    def join(self, a: Fact, b: Fact) -> Fact:
        raise NotImplementedError

    def transfer(self, key: BlockKey, block: BasicBlock, fact: Fact) -> Fact:
        raise NotImplementedError


@dataclass
class DataflowResult(Generic[Fact]):
    """Fixpoint facts of one analysis run.

    ``in_facts[key]`` holds the fact at block entry, ``out_facts[key]``
    at block exit, regardless of the analysis direction.
    """

    in_facts: Dict[BlockKey, Any] = field(default_factory=dict)
    out_facts: Dict[BlockKey, Any] = field(default_factory=dict)
    iterations: int = 0


def solve(cfg: ModuleCFG, analysis: Analysis,
          max_visits_per_block: int = MAX_VISITS_PER_BLOCK
          ) -> DataflowResult:
    """Run *analysis* over *cfg* to a fixpoint with a FIFO worklist.

    Raises :class:`ConvergenceError` when the total number of block
    visits exceeds ``max_visits_per_block * len(cfg.keys)``.
    """
    forward = analysis.direction == FORWARD
    edges_in = cfg.pred if forward else cfg.succ
    edges_out = cfg.succ if forward else cfg.pred

    # boundary nodes: where facts enter the CFG for this direction
    if forward:
        boundary_keys = set(cfg.entries)
    else:
        boundary_keys = set(cfg.exits())

    inputs: Dict[BlockKey, Any] = {}
    outputs: Dict[BlockKey, Any] = {}
    for key in cfg.keys:
        inputs[key] = analysis.initial(cfg, key)
        if key in boundary_keys:
            inputs[key] = analysis.join(
                inputs[key], analysis.boundary(cfg, key)
            )
        outputs[key] = analysis.transfer(key, cfg.blocks[key], inputs[key])

    worklist = deque(cfg.keys if forward else reversed(cfg.keys))
    queued = set(worklist)
    iterations = 0
    bound = max_visits_per_block * max(1, len(cfg.keys))
    while worklist:
        key = worklist.popleft()
        queued.discard(key)
        iterations += 1
        if iterations > bound:
            raise ConvergenceError(
                f"dataflow solve exceeded {bound} block visits over "
                f"{len(cfg.keys)} blocks ({type(analysis).__name__}); "
                "the transfer or join is not monotone, or the lattice "
                "has an unbounded chain"
            )
        fact = analysis.initial(cfg, key)
        if key in boundary_keys:
            fact = analysis.join(fact, analysis.boundary(cfg, key))
        for source in edges_in[key]:
            fact = analysis.join(fact, outputs[source])
        inputs[key] = fact
        new_out = analysis.transfer(key, cfg.blocks[key], fact)
        if new_out != outputs[key]:
            outputs[key] = new_out
            for dependent in edges_out[key]:
                if dependent not in queued:
                    queued.add(dependent)
                    worklist.append(dependent)

    if _TELEMETRY.enabled:
        _TELEMETRY.count("verify.solver.runs")
        _TELEMETRY.count("verify.solver.iterations", iterations)

    if forward:
        return DataflowResult(in_facts=inputs, out_facts=outputs,
                              iterations=iterations)
    return DataflowResult(in_facts=outputs, out_facts=inputs,
                          iterations=iterations)
