"""Module-wide control-flow graph over basic blocks.

Every analysis in :mod:`repro.verify` runs on this graph rather than a
per-function one, for the same reason the lr-liveness fix did: branch
labels resolve *across* function boundaries.  Cross-jumping deliberately
creates shared tails that several functions branch into, and leaf-style
returns thread ``lr`` through those tails — a per-function view would
simply not see the edges that made the rijndael miscompile possible.

Nodes are :data:`BlockKey` pairs ``(function_name, block_index)``.  Edges
follow the block-splitting contract of :mod:`repro.binary.blocks`:

* a non-call branch adds an edge to its target block (wherever in the
  module that label lives),
* a conditional branch additionally falls through,
* an unconditional terminator (return, ``b``, pc write) ends the path,
* plain fall-through continues at the next block *of the same function*
  — function boundaries are hard; code that runs off the end of a
  function is a lint finding, not an implicit edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.binary.program import BasicBlock, Module

#: One basic block, addressed as (function name, block index).
BlockKey = Tuple[str, int]


@dataclass
class ModuleCFG:
    """The module-wide block graph plus the maps the analyses need."""

    #: every block key, in module order
    keys: List[BlockKey] = field(default_factory=list)
    #: key -> the block object itself
    blocks: Dict[BlockKey, BasicBlock] = field(default_factory=dict)
    #: label name -> the block it addresses (function names included)
    label_to_block: Dict[str, BlockKey] = field(default_factory=dict)
    succ: Dict[BlockKey, List[BlockKey]] = field(default_factory=dict)
    pred: Dict[BlockKey, List[BlockKey]] = field(default_factory=dict)
    #: entry block of every function (the dataflow boundary nodes)
    entries: List[BlockKey] = field(default_factory=list)

    def exits(self) -> List[BlockKey]:
        """Blocks with no successors (returns, exits, dead tails)."""
        return [key for key in self.keys if not self.succ[key]]

    def reachable(self, roots: List[BlockKey] = None) -> Set[BlockKey]:
        """Blocks reachable from *roots* (default: all function entries)."""
        stack = list(self.entries if roots is None else roots)
        seen: Set[BlockKey] = set(stack)
        while stack:
            key = stack.pop()
            for nxt in self.succ[key]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen


def build_module_cfg(module: Module) -> ModuleCFG:
    """Build the module-wide CFG (labels resolve across functions)."""
    cfg = ModuleCFG()
    ordered: List[Tuple[BlockKey, BasicBlock]] = []
    for func in module.functions:
        for bi, block in enumerate(func.blocks):
            key = (func.name, bi)
            ordered.append((key, block))
            cfg.keys.append(key)
            cfg.blocks[key] = block
            if bi == 0:
                cfg.label_to_block.setdefault(func.name, key)
                cfg.entries.append(key)
            for label in block.labels:
                cfg.label_to_block[label] = key

    for index, (key, block) in enumerate(ordered):
        targets: List[BlockKey] = []
        falls_through = True
        for insn in block.instructions:
            if insn.is_branch and not insn.is_call:
                target = insn.label_target
                if target is not None and target in cfg.label_to_block:
                    targets.append(cfg.label_to_block[target])
                if not insn.is_conditional:
                    falls_through = False
            elif insn.is_terminator and not insn.is_conditional:
                falls_through = False  # return / pc write: no successor
        if falls_through and index + 1 < len(ordered):
            next_key, __ = ordered[index + 1]
            if next_key[0] == key[0]:
                targets.append(next_key)
        cfg.succ[key] = targets

    cfg.pred = {key: [] for key in cfg.keys}
    for key, targets in cfg.succ.items():
        for target in targets:
            cfg.pred[target].append(key)
    return cfg
