"""Candidate fragments and the cost/benefit model (paper §2.1 step 7).

The benefit of abstracting a fragment of *size* instructions with *n*
non-overlapping legal occurrences:

* **call/return outlining** — every occurrence shrinks to one ``bl``;
  a new procedure of ``size`` instructions plus its return is added
  (two bracket instructions, ``push {lr}`` / ``pop {pc}``, when the
  fragment itself contains a call)::

      benefit = n*size - n - (size + overhead)

* **cross-jump (tail merge)** — one occurrence survives as the shared
  tail; every other occurrence is replaced by a single ``b``::

      benefit = (n-1) * (size-1)

The driver extracts the candidate with the highest benefit per round,
the greedy strategy the paper uses.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.isa.instructions import Instruction

from repro.mining.embeddings import Embedding
from repro.mining.gspan import Fragment
from repro.pa.legality import ExtractionMethod


def call_overhead(insns: Sequence[Instruction]) -> int:
    """Return-path instructions the new procedure needs."""
    if any(i.is_call for i in insns):
        return 2  # push {lr} ... pop {pc}
    return 1  # mov pc, lr


def call_benefit(size: int, occurrences: int, overhead: int = 1) -> int:
    """Instructions saved by call/return outlining."""
    return occurrences * size - occurrences - (size + overhead)


def crossjump_benefit(size: int, occurrences: int) -> int:
    """Instructions saved by tail merging."""
    return (occurrences - 1) * (size - 1)


@dataclass
class Candidate:
    """A scored, extraction-ready fragment."""

    fragment: Fragment
    method: ExtractionMethod
    insns: List[Instruction]          #: fragment body (DFS-role order)
    embeddings: List[Embedding]       #: chosen non-overlapping legal set
    benefit: int
    #: union of the occurrences' internal ordering constraints, over
    #: DFS-role indices; the outlined body is a topological order of it
    union_edges: Set[Tuple[int, int]] = field(default_factory=set)
    #: (function name, block index) of every occurrence — used to decide
    #: whether the candidate survives other extractions untouched
    origins: Tuple[Tuple[str, int], ...] = ()
    #: Decision provenance (embedding funnel counts, collision graph,
    #: MIS census) attached by the driver only while the decision
    #: ledger is enabled; never part of candidate identity.
    provenance: Optional[Dict[str, Any]] = field(
        default=None, compare=False, repr=False
    )

    @property
    def size(self) -> int:
        return len(self.insns)

    @property
    def occurrences(self) -> int:
        return len(self.embeddings)

    def sort_key(self) -> tuple:
        """Deterministic best-first ordering: benefit, then size, then
        a stable textual tiebreak."""
        return (
            -self.benefit,
            -self.size,
            tuple(str(i) for i in self.insns),
        )

    def fingerprint(self) -> str:
        """Canonical identity for the verify-failure blocklist.

        Stable across processes (hashlib, not ``hash()``) and across a
        rollback + re-mine: the module is restored to the exact pre-
        round state, so a rediscovered candidate reproduces the same
        method, body text and occurrence blocks.
        """
        payload = "\x1f".join(
            (
                self.method.value,
                "\x1e".join(str(i) for i in self.insns),
                "\x1e".join(f"{f}#{b}" for f, b in sorted(self.origins)),
            )
        )
        return hashlib.sha1(payload.encode()).hexdigest()[:16]


def best_possible_benefit(size: int, occurrences: int) -> int:
    """Upper bound on the benefit of any method (pre-legality).

    Used to skip expensive legality/MIS work for fragments that cannot
    beat the current best candidate.
    """
    return max(
        call_benefit(size, occurrences, 1),
        crossjump_benefit(size, occurrences),
    )


def score(
    fragment: Fragment,
    method: ExtractionMethod,
    insns: Sequence[Instruction],
    chosen: Sequence[Embedding],
    union_edges: Optional[Set[Tuple[int, int]]] = None,
    origins: Tuple[Tuple[str, int], ...] = (),
) -> Optional[Candidate]:
    """Build a candidate if the extraction actually pays off."""
    size = fragment.num_nodes
    n = len(chosen)
    if method is ExtractionMethod.CALL:
        benefit = call_benefit(size, n, call_overhead(insns))
    else:
        benefit = crossjump_benefit(size, n)
    if benefit <= 0:
        return None
    return Candidate(
        fragment=fragment,
        method=method,
        insns=list(insns),
        embeddings=list(chosen),
        benefit=benefit,
        union_edges=set(union_edges or ()),
        origins=tuple(origins),
    )
