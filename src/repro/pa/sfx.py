"""SFX: the suffix-trie baseline (Table 1's traditional PA).

Implements the classical sequence-based procedural abstraction of
Fraser, Myers and Wendt [22, 23]: the program is treated as flat
instruction sequences (we respect basic-block boundaries, as the later
fingerprint-based refinements do [18]); repeated subsequences are
detected, the most profitable one is outlined, and the process repeats.

Instead of materializing a suffix trie, each round enumerates all
n-grams up to the fragment-size cap — an equivalent repeated-substring
index that is simpler and O(blocks × max_len) per round.  Crucially, and
by design, SFX only matches *contiguous, identically-ordered* runs: two
occurrences that compute the same thing in a different instruction order
are invisible to it.  That blindness is exactly what the paper's
graph-based approach removes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import Instruction
from repro.isa.operands import LabelRef, Reg, RegList
from repro.isa.registers import LR, PC

from repro.binary.program import BasicBlock, Function, Module
from repro.pa.driver import ExtractionRecord, PAResult
from repro.pa.fragments import call_benefit, call_overhead, crossjump_benefit
from repro.pa.legality import (
    ExtractionMethod,
    classify_fragment,
    sp_fragile_functions,
)
from repro.pa.liveness import lr_live_out_blocks


@dataclass
class SFXConfig:
    """Knobs of the sequence-based baseline."""

    min_len: int = 2
    max_len: int = 8
    max_rounds: int = 10_000


@dataclass
class _Run:
    """One occurrence: a contiguous run inside a block."""

    func: str
    block_index: int
    start: int

    def key(self) -> tuple:
        return (self.func, self.block_index, self.start)


@dataclass
class _SeqCandidate:
    insns: Tuple[Instruction, ...]
    method: ExtractionMethod
    runs: List[_Run]
    benefit: int

    def sort_key(self) -> tuple:
        return (-self.benefit, -len(self.insns),
                tuple(str(i) for i in self.insns))


def _eligible_blocks(module: Module):
    for func in module.functions:
        if func.pa_exempt:
            continue
        for bi, block in enumerate(func.blocks):
            yield func.name, bi, block


def _lr_read_positions(block: BasicBlock) -> List[int]:
    return [
        i for i, insn in enumerate(block.instructions)
        if insn.mnemonic != "bl" and LR in insn.regs_read()
    ]


def _collect_candidates(module: Module, config: SFXConfig):
    """Index all repeated n-grams and score them."""
    lr_live = lr_live_out_blocks(module)
    fragile = sp_fragile_functions(module)
    grams: Dict[Tuple[str, ...], List[Tuple[_Run, BasicBlock]]] = {}
    for func_name, bi, block in _eligible_blocks(module):
        texts = [str(insn) for insn in block.instructions]
        n = len(texts)
        for length in range(config.min_len, config.max_len + 1):
            for start in range(0, n - length + 1):
                key = tuple(texts[start:start + length])
                grams.setdefault(key, []).append(
                    (_Run(func_name, bi, start), block)
                )

    best: Optional[_SeqCandidate] = None
    for key, occurrences in grams.items():
        if len(occurrences) < 2:
            continue
        length = len(key)
        sample_block = occurrences[0][1]
        sample_start = occurrences[0][0].start
        insns = tuple(
            sample_block.instructions[sample_start:sample_start + length]
        )
        method = classify_fragment(insns, fragile)
        if method is None:
            continue
        runs = _filter_runs(insns, method, occurrences, length, lr_live)
        n = len(runs)
        if n < 2:
            continue
        if method is ExtractionMethod.CALL:
            benefit = call_benefit(length, n, call_overhead(insns))
        else:
            benefit = crossjump_benefit(length, n)
        if benefit <= 0:
            continue
        candidate = _SeqCandidate(insns, method, runs, benefit)
        if best is None or candidate.sort_key() < best.sort_key():
            best = candidate
    return best


def _filter_runs(insns, method, occurrences, length, lr_live) -> List[_Run]:
    """Legality filtering + greedy non-overlap selection."""
    runs: List[_Run] = []
    last_end: Dict[Tuple[str, int], int] = {}
    for run, block in sorted(occurrences, key=lambda rb: rb[0].key()):
        block_key = (run.func, run.block_index)
        if last_end.get(block_key, -1) > run.start:
            continue  # overlaps the previously chosen run
        if method is ExtractionMethod.CALL:
            # the inserted bl clobbers lr: lr must be dead past the run,
            # both within this block and across blocks (shared tails!)
            if block_key in lr_live:
                continue
            if any(p >= run.start + length
                   for p in _lr_read_positions(block)):
                continue
            # a call must not swallow the block terminator
            end = run.start + length
            if end > len(block.instructions):
                continue
        else:
            # cross jump: the run must end the block
            if run.start + length != len(block.instructions):
                continue
        runs.append(run)
        last_end[block_key] = run.start + length
    return runs


def _apply(module: Module, candidate: _SeqCandidate) -> str:
    length = len(candidate.insns)
    if candidate.method is ExtractionMethod.CALL:
        name = module.fresh_label("sfx")
        contains_call = any(i.is_call for i in candidate.insns)
        body: List[Instruction] = []
        if contains_call:
            body.append(Instruction("push", (RegList((LR,)),)))
        body.extend(candidate.insns)
        if contains_call:
            body.append(Instruction("pop", (RegList((PC,)),)))
        else:
            body.append(Instruction("mov", (Reg(PC), Reg(LR))))
        module.functions.append(
            Function(name=name, blocks=[BasicBlock(instructions=body)])
        )
        call = Instruction("bl", (LabelRef(name),))
        by_block: Dict[Tuple[str, int], List[int]] = {}
        for run in candidate.runs:
            by_block.setdefault((run.func, run.block_index), []).append(
                run.start
            )
        for (func_name, bi), starts in by_block.items():
            block = module.function(func_name).blocks[bi]
            for start in sorted(starts, reverse=True):
                block.instructions[start:start + length] = [call]
        return name

    # cross jump: first run survives as the shared tail
    label = module.fresh_label("sfxtail")
    survivor, rest = candidate.runs[0], candidate.runs[1:]
    branch = Instruction("b", (LabelRef(label),))
    for run in rest:
        block = module.function(run.func).blocks[run.block_index]
        block.instructions[run.start:run.start + length] = [branch]
    func = module.function(survivor.func)
    old = func.blocks[survivor.block_index]
    head = BasicBlock(
        labels=old.labels, instructions=old.instructions[:survivor.start]
    )
    tail = BasicBlock(
        labels=[label], instructions=old.instructions[survivor.start:]
    )
    func.blocks[survivor.block_index:survivor.block_index + 1] = [head, tail]
    return label


def run_sfx(module: Module, config: Optional[SFXConfig] = None) -> PAResult:
    """Run the suffix-trie baseline to a fixpoint on *module*."""
    config = config or SFXConfig()
    started = time.perf_counter()
    result = PAResult(
        module=module,
        instructions_before=module.num_instructions,
        instructions_after=module.num_instructions,
    )
    for round_index in range(config.max_rounds):
        candidate = _collect_candidates(module, config)
        if candidate is None:
            break
        before = module.num_instructions
        symbol = _apply(module, candidate)
        after = module.num_instructions
        if after != before - candidate.benefit:
            raise AssertionError(
                f"SFX benefit mismatch: predicted {candidate.benefit}, "
                f"actual {before - after}"
            )
        result.records.append(
            ExtractionRecord(
                round=round_index,
                method=candidate.method.value,
                size=len(candidate.insns),
                occurrences=len(candidate.runs),
                benefit=candidate.benefit,
                new_symbol=symbol,
                instructions=tuple(str(i) for i in candidate.insns),
            )
        )
        result.rounds = round_index + 1
    result.instructions_after = module.num_instructions
    result.elapsed_seconds = time.perf_counter() - started
    return result
