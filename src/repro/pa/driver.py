"""The iterative procedural-abstraction loop (paper §2.1 step 8).

Each round rebuilds the DFG database, mines it, scores every frequent
fragment (legality -> maximum independent set of non-overlapping
occurrences -> order-consistency), extracts the single candidate with
the highest code-size benefit, and restarts — "after extraction, phase
(6) is repeated as long as code fragments are found that reduce the
overall number of instructions in the program".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.binary.program import Module
from repro.dfg.builder import build_dfgs
from repro.dfg.graph import FLOW_KINDS, MINED_KINDS
from repro.mining.edgar import Edgar, non_overlapping_embeddings
from repro.mining.gspan import DgSpan
from repro.report.dot import collision_to_dot, dfg_to_dot, fragment_to_dot
from repro.report.ledger import GLOBAL as _LEDGER, LEDGER_SCHEMA
from repro.resilience import checkpoint as _ckpt
from repro.resilience.faultinject import fault
from repro.resilience.governor import RunGovernor, activate
from repro.telemetry import GLOBAL as _TELEMETRY
from repro.telemetry import progress as _progress

from repro.pa.extract import (
    call_site_feasible,
    extract_call,
    extract_crossjump,
    order_consistent_subset,
)
from repro.pa.fragments import (
    Candidate,
    best_possible_benefit,
    call_benefit,
    call_overhead,
    crossjump_benefit,
    score,
)
from repro.pa.legality import (
    ExtractionMethod,
    legal_embeddings,
    sp_fragile_functions,
)
from repro.pa.liveness import lr_live_out_blocks
from repro.verify.validate import (
    TranslationValidationError,
    snapshot_module,
    verify_round,
)


@dataclass
class PAConfig:
    """Tuning knobs of the abstraction engine."""

    miner: str = "edgar"              #: "edgar" or "dgspan"
    min_support: int = 2
    min_nodes: int = 2
    max_nodes: int = 8
    max_rounds: int = 10_000
    mis_exact_limit: int = 60         #: 0 = greedy MIS (ablation)
    pa_pruning: bool = True           #: Edgar's PA-specific pruning
    #: Edge kinds of the primary mining pass.  The default is the full
    #: dependence graph (the graph the Fig. 9 legality check needs).
    mined_kinds: FrozenSet[str] = MINED_KINDS
    #: Run a second pass on the pure data-flow projection (d/m/f edges
    #: only).  Anti/output dependence edges are order-*sensitive* — two
    #: occurrences of the same computation scheduled differently carry
    #: them in opposite directions — so only the projection can match
    #: reordered duplicates, which is the paper's headline effect.
    flow_pass: bool = True
    #: Apply every non-conflicting candidate found in a round (ordered by
    #: benefit) instead of only the single best.  Results match the
    #: paper's one-per-round greedy almost exactly (conflicting
    #: candidates wait for the next round) at a fraction of the mining
    #: cost; set False for the strict paper loop.
    batch: bool = True
    max_embeddings: int = 4_000
    #: Wall-clock budget for the whole run (seconds); None = unbounded.
    #: When the budget runs out mid-mine the search unwinds cleanly and
    #: the candidates found so far are still applied — the optimizer
    #: degrades gracefully instead of running for the paper's "night or
    #: weekend" (§1) on pathological inputs like rijndael (§4.2).
    time_budget: Optional[float] = 600.0
    #: Translation-validate every round: re-lint the module and prove
    #: each rewritten block symbolically equivalent to its original
    #: (:mod:`repro.verify.validate`).  A counterexample no longer
    #: aborts immediately: the round is rolled back, the offending
    #: candidate blocklisted by canonical fingerprint and the round
    #: re-mined, up to ``verify_max_retries`` times — then the run
    #: degrades to the historical abort
    #: (:class:`~repro.verify.validate.TranslationValidationError`,
    #: counterexample in the decision ledger, CLI exit 2).
    verify: bool = False
    #: Bounded verify-failure recovery attempts per round.
    verify_max_retries: int = 3
    #: Crash-safe checkpoint file, rewritten atomically after every
    #: completed round (schema ``repro.resilience.ckpt/1``); resuming
    #: from it reproduces the uninterrupted run bit-identically.
    checkpoint_path: Optional[str] = None
    #: 0 = the legacy serial engine (exactly the historical pipeline).
    #: N >= 1 selects the *scale* engine (:mod:`repro.scale`): the DFG
    #: database is pre-clustered into independent shards, mined with
    #: shard-local benefit floors (N worker processes; 1 = in-process)
    #: and merged deterministically — the result is bit-identical for
    #: every worker count and cache state.  Carryover warm-starting is
    #: disabled in scale mode: the fragment cache subsumes it (an
    #: untouched shard is a cache hit), and warm floors would make
    #: shard results depend on history, poisoning content-addressing.
    workers: int = 0
    #: Directory for the persistent fragment cache (scale engine only);
    #: None keeps the cache in-memory for the run.
    fragment_cache: Optional[str] = None
    #: Redeliveries per shard before it falls back to an in-parent
    #: serial re-mine and then quarantine (scale engine; see
    #: :mod:`repro.scale.supervise`).  Retries re-run the same pure
    #: function, so the crash/retry schedule never changes results.
    shard_retries: int = 2
    #: Per-shard soft timeout (seconds; scale engine, ``workers >= 2``):
    #: a shard in flight longer than this has its worker killed and is
    #: redelivered.  None disables the timeout.
    shard_timeout: Optional[float] = None
    #: Raise a typed ShardError (exit 7) when a shard is quarantined
    #: (retries and the serial fallback all failed) instead of the
    #: default policy of dropping the shard and degrading the run.
    strict_shards: bool = False


@dataclass
class ExtractionRecord:
    """One extraction step, for reporting (Fig. 12, EXPERIMENTS.md)."""

    round: int
    method: str                       #: "call" or "crossjump"
    size: int
    occurrences: int
    benefit: int
    new_symbol: str
    instructions: Tuple[str, ...]


@dataclass
class PAResult:
    """Outcome of one full abstraction run."""

    module: Module
    instructions_before: int
    instructions_after: int
    records: List[ExtractionRecord] = field(default_factory=list)
    rounds: int = 0
    lattice_nodes: int = 0
    elapsed_seconds: float = 0.0
    #: True when the run wound down early but cleanly (deadline,
    #: interrupt, verify retries); the module is still the valid
    #: best-so-far result.  ``degraded_reasons`` lists the causes.
    degraded: bool = False
    degraded_reasons: List[str] = field(default_factory=list)
    #: Mining passes that hit the wall-clock deadline (anytime unwind).
    deadline_hits: int = 0
    #: Exact-MIS solves that fell back to their incumbent on budget.
    mis_budget_exhausted: int = 0
    #: Verify-failure recovery steps taken (rollback + blocklist).
    verify_retries: int = 0
    #: Rounds rolled back atomically (interrupt / injected crash).
    rolled_back_rounds: int = 0
    #: Round index this run resumed from, if it was resumed.
    resumed_from_round: Optional[int] = None
    #: Scale engine (``config.workers >= 1``) census; all zero under
    #: the legacy serial engine.
    workers: int = 0
    shards: int = 0                   #: largest per-round shard count
    #: shards torn down before completing (governor stop mid-round)
    shards_lost: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: lattice nodes served from the fragment cache instead of re-mined
    lattice_nodes_reused: int = 0
    #: shards the progress watchdog flagged for stale heartbeats
    stragglers: int = 0
    #: distinct shards that needed more than one delivery (worker
    #: death, soft timeout or a failed attempt; see repro.scale.supervise)
    shards_retried: int = 0
    #: shards dropped after retries and the serial fallback all failed
    shards_quarantined: int = 0
    #: end-of-run fragment-cache census (hits/misses/stores/...);
    #: empty under the legacy serial engine
    cache_census: Dict[str, int] = field(default_factory=dict)

    @property
    def saved(self) -> int:
        """Saved instructions — the paper's headline metric (Table 1)."""
        return self.instructions_before - self.instructions_after

    @property
    def call_extractions(self) -> int:
        return sum(1 for r in self.records if r.method == "call")

    @property
    def crossjump_extractions(self) -> int:
        return sum(1 for r in self.records if r.method == "crossjump")


def _make_miner(config: PAConfig):
    if config.miner == "edgar":
        return Edgar(
            min_support=config.min_support,
            min_nodes=config.min_nodes,
            max_nodes=config.max_nodes,
            max_embeddings=config.max_embeddings,
            pa_pruning=config.pa_pruning,
            mis_exact_limit=config.mis_exact_limit,
        )
    if config.miner == "dgspan":
        return DgSpan(
            min_support=config.min_support,
            min_nodes=config.min_nodes,
            max_nodes=config.max_nodes,
            max_embeddings=config.max_embeddings,
        )
    raise ValueError(f"unknown miner: {config.miner!r}")


def collect_candidates(module: Module, config: PAConfig,
                       miner=None,
                       warm: Optional[List[Candidate]] = None,
                       deadline: Optional[float] = None,
                       blocklist: Optional[Set[str]] = None
                       ) -> List[Candidate]:
    """Mine one round; return extractable candidates, best first.

    Fragments are scored as the miner reports them (streaming); the
    current best benefit is fed back as a lattice floor, pruning every
    subtree whose optimistic (size, occurrences) bound cannot beat it —
    both quantities are antimonotone, so the prune never loses the
    optimum of the "best extractable candidate" query.  Candidates
    scored along the way (before the floor overtook them) are kept for
    batch application.
    """
    dfgs = build_dfgs(module, min_nodes=0, mined_kinds=config.mined_kinds)
    if not dfgs:
        return []
    miner = miner or _make_miner(config)
    # lr can be live across blocks (leaf returns, shared cross-jump
    # tails); a bl may only be inserted where lr is dead-out.
    lr_live = lr_live_out_blocks(module)
    # frameless outlined procedures address the caller's frame through
    # sp; fragments calling one must not gain a sp-shifting bracket.
    fragile = sp_fragile_functions(module)
    best: List[Optional[Candidate]] = [None]
    collected: List[Candidate] = []
    for candidate in warm or ():
        # Still-valid candidates from the previous round warm-start the
        # benefit floor, so the lattice prunes aggressively from the
        # first seed onward.
        if blocklist and candidate.fingerprint() in blocklist:
            continue
        collected.append(candidate)
        if best[0] is None or candidate.sort_key() < best[0].sort_key():
            best[0] = candidate

    def floor() -> int:
        return best[0].benefit if best[0] is not None else 0

    def prune_subtree(size_cap: int, occurrence_bound: int) -> bool:
        return best_possible_benefit(size_cap, occurrence_bound) <= floor()

    ledger_on = _LEDGER.enabled
    skips = {
        "considered": 0, "floor": 0, "illegal": 0, "lr_infeasible": 0,
        "order_inconsistent": 0, "unprofitable": 0, "scored": 0,
    }

    def consider(frag) -> None:
        _TELEMETRY.count("pa.candidates.considered")
        if ledger_on:
            skips["considered"] += 1
        per_graph = {}
        for emb in frag.embeddings:
            per_graph[emb.graph] = per_graph.get(emb.graph, 0) + 1
        occ_bound = sum(
            min(count, dfgs[gid].num_nodes // max(1, frag.num_nodes))
            for gid, count in per_graph.items()
        )
        bound = best_possible_benefit(frag.num_nodes, occ_bound)
        if bound <= floor():
            _TELEMETRY.count("pa.candidates.skipped_floor")
            if ledger_on:
                skips["floor"] += 1
            return
        if len(frag.embeddings) > 1000:
            # per-embedding legality below costs a reachability sweep
            # each; a deterministic prefix keeps scoring bounded (a
            # sound benefit undercount)
            frag.embeddings = frag.embeddings[:1000]
        method, legal = legal_embeddings(dfgs, frag, fragile)
        if method is None or len(legal) < 2:
            _TELEMETRY.count("pa.candidates.skipped_illegal")
            if ledger_on:
                skips["illegal"] += 1
            return
        legal_count = len(legal)
        if method is ExtractionMethod.CALL:
            legal = [
                e for e in legal
                if dfgs[e.graph].origin not in lr_live
                and call_site_feasible(dfgs[e.graph], e.nodes)
            ]
            if len(legal) < 2:
                _TELEMETRY.count("pa.candidates.skipped_lr_infeasible")
                if ledger_on:
                    skips["lr_infeasible"] += 1
                    _LEDGER.emit(
                        "candidate",
                        verdict="lr_infeasible",
                        labels=list(frag.node_labels),
                        size=frag.num_nodes,
                        method=method.value,
                        embeddings=len(frag.embeddings),
                        legal=legal_count,
                        lr_feasible=len(legal),
                    )
                return
        mis_stats = {} if ledger_on else None
        disjoint = non_overlapping_embeddings(
            legal, exact_limit=config.mis_exact_limit, stats=mis_stats
        )
        kept, union = order_consistent_subset(dfgs, disjoint)
        if len(kept) < 2:
            _TELEMETRY.count("pa.candidates.skipped_order")
            if ledger_on:
                skips["order_inconsistent"] += 1
                _LEDGER.emit(
                    "candidate",
                    verdict="order_inconsistent",
                    labels=list(frag.node_labels),
                    size=frag.num_nodes,
                    method=method.value,
                    embeddings=len(frag.embeddings),
                    legal=legal_count,
                    mis_size=len(disjoint),
                    collision_nodes=mis_stats.get("vertices"),
                    collision_edges=mis_stats.get("edges"),
                    mis_mode=mis_stats.get("mode"),
                    order_kept=len(kept),
                )
            return
        witness = kept[0]
        insns = [dfgs[witness.graph].insns[n] for n in witness.nodes]
        origins = tuple(sorted({dfgs[e.graph].origin for e in kept}))
        candidate = score(frag, method, insns, kept, union, origins)
        if candidate is None:
            _TELEMETRY.count("pa.candidates.skipped_unprofitable")
            if ledger_on:
                skips["unprofitable"] += 1
                if method is ExtractionMethod.CALL:
                    benefit = call_benefit(
                        frag.num_nodes, len(kept), call_overhead(insns)
                    )
                else:
                    benefit = crossjump_benefit(frag.num_nodes, len(kept))
                _LEDGER.emit(
                    "candidate",
                    verdict="unprofitable",
                    labels=list(frag.node_labels),
                    size=frag.num_nodes,
                    method=method.value,
                    embeddings=len(frag.embeddings),
                    legal=legal_count,
                    mis_size=len(disjoint),
                    collision_nodes=mis_stats.get("vertices"),
                    collision_edges=mis_stats.get("edges"),
                    mis_mode=mis_stats.get("mode"),
                    order_kept=len(kept),
                    benefit=benefit,
                )
            return
        if blocklist and candidate.fingerprint() in blocklist:
            # Blocklisted by a verify-failure recovery step: the
            # fingerprint is canonical (method + instruction text +
            # origins), so the re-mined round skips exactly the
            # candidate whose extraction failed validation.
            _TELEMETRY.count("pa.candidates.skipped_blocklist")
            return
        _TELEMETRY.count("pa.candidates.scored")
        if ledger_on:
            skips["scored"] += 1
            candidate.provenance = {
                "embeddings": len(frag.embeddings),
                "legal": legal_count,
                "mis_size": len(disjoint),
                "collision_nodes": mis_stats.get("vertices"),
                "collision_edges": mis_stats.get("edges"),
                "mis_mode": mis_stats.get("mode"),
                "order_kept": len(kept),
                "collision_adjacency": mis_stats.get("adjacency"),
                "chosen_indices": mis_stats.get("chosen_indices"),
                "fragment_labels": list(frag.node_labels),
                "fragment_edges": sorted(tuple(e) for e in frag.edges),
            }
            _LEDGER.emit(
                "candidate",
                verdict="scored",
                labels=list(frag.node_labels),
                size=frag.num_nodes,
                method=method.value,
                embeddings=len(frag.embeddings),
                legal=legal_count,
                mis_size=len(disjoint),
                collision_nodes=mis_stats.get("vertices"),
                collision_edges=mis_stats.get("edges"),
                mis_mode=mis_stats.get("mode"),
                order_kept=len(kept),
                benefit=candidate.benefit,
            )
        collected.append(candidate)
        if best[0] is None or candidate.sort_key() < best[0].sort_key():
            best[0] = candidate

    miner.prune_subtree = prune_subtree
    miner.on_fragment = consider
    miner.deadline = deadline
    try:
        if miner.max_nodes > 4:
            # Quick shallow pre-pass: small fragments with many
            # occurrences are found in milliseconds and set a benefit
            # floor that prunes most of the deep lattice before the
            # full-depth pass even starts.
            saved_max = miner.max_nodes
            miner.max_nodes = 3
            try:
                with _TELEMETRY.span("pa.mine.shallow"), \
                        _LEDGER.context(mine_pass="shallow"):
                    miner.mine(dfgs)
            finally:
                miner.max_nodes = saved_max
        with _TELEMETRY.span("pa.mine.full"), \
                _LEDGER.context(mine_pass="full"):
            miner.mine(dfgs)
        if config.flow_pass and FLOW_KINDS != config.mined_kinds:
            # Second pass on the data-flow projection; block order and
            # node numbering are identical, so embeddings transfer
            # directly and legality still checks the full dep_edges.
            flow_dfgs = build_dfgs(module, min_nodes=0,
                                   mined_kinds=FLOW_KINDS)
            with _TELEMETRY.span("pa.mine.flow"), \
                    _LEDGER.context(mine_pass="flow"):
                miner.mine(flow_dfgs)
    finally:
        miner.prune_subtree = None
        miner.on_fragment = None
        miner.deadline = None
    if ledger_on:
        _LEDGER.emit("mine.skips", **skips)
    collected.sort(key=lambda c: c.sort_key())
    return collected


def best_candidate(module: Module, config: PAConfig,
                   miner=None) -> Optional[Candidate]:
    """Mine one round and return the highest-benefit extractable candidate."""
    candidates = collect_candidates(module, config, miner=miner)
    return candidates[0] if candidates else None


def apply_candidate(module: Module, config: PAConfig,
                    candidate: Candidate,
                    round: int = 0) -> ExtractionRecord:
    """Extract one *candidate* from *module*; returns the step record.

    *round* stamps the returned record (``run_pa`` passes the loop
    index; direct callers get a well-formed record instead of the old
    ``-1`` placeholder).
    """
    records, __, ___ = apply_batch(module, config, [candidate])
    if not records:
        raise RuntimeError("candidate could not be applied")
    records[0].round = round
    return records[0]


def apply_batch(module: Module, config: PAConfig,
                candidates: List[Candidate],
                applied: Optional[List[Candidate]] = None):
    """Apply candidates best-first, skipping conflicting ones.

    A candidate conflicts when any of its occurrence blocks was already
    rewritten this round (or, for cross-jumps — which renumber blocks —
    when its function was touched at all).  Skipped candidates are
    simply rediscovered (or carried over) by the next mining round.

    Returns ``(records, touched_blocks, touched_functions)``; when the
    caller passes an *applied* list, the candidates actually extracted
    are appended to it in application order (the verify-failure
    recovery uses this to map a counterexample back to its candidate).
    """
    dfgs = build_dfgs(module, min_nodes=0, mined_kinds=config.mined_kinds)
    touched_blocks = set()
    touched_functions = set()
    records: List[ExtractionRecord] = []
    for candidate in candidates:
        origins = set(candidate.origins) or {
            dfgs[e.graph].origin for e in candidate.embeddings
        }
        if any(
            origin in touched_blocks or origin[0] in touched_functions
            for origin in origins
        ):
            _TELEMETRY.count("pa.candidates.skipped_conflict")
            continue
        fault("extract.candidate")
        before = module.num_instructions
        if candidate.method is ExtractionMethod.CALL:
            symbol = extract_call(
                module, dfgs, candidate.insns, candidate.embeddings,
                candidate.union_edges,
            )
            touched_blocks |= origins
            method = "call"
        else:
            symbol = extract_crossjump(
                module, dfgs, candidate.insns, candidate.embeddings,
                candidate.union_edges,
            )
            touched_functions |= {origin[0] for origin in origins}
            method = "crossjump"
        saved = before - module.num_instructions
        if saved != candidate.benefit:
            raise AssertionError(
                f"benefit model mismatch: predicted {candidate.benefit}, "
                f"actual {saved}"
            )
        if _LEDGER.enabled:
            _emit_extraction(candidate, dfgs, method, symbol)
        records.append(
            ExtractionRecord(
                round=-1,
                method=method,
                size=candidate.size,
                occurrences=candidate.occurrences,
                benefit=candidate.benefit,
                new_symbol=symbol,
                instructions=tuple(str(i) for i in candidate.insns),
            )
        )
        if applied is not None:
            applied.append(candidate)
    return records, touched_blocks, touched_functions


def _emit_extraction(candidate: Candidate, dfgs, method: str,
                     symbol: str) -> None:
    """One ``extraction`` ledger record, with inline DOT artifacts."""
    prov = candidate.provenance or {}
    fragment = candidate.fragment
    witness = candidate.embeddings[0]
    host = dfgs[witness.graph]
    adjacency = prov.get("collision_adjacency")
    collision_dot = None
    if adjacency is not None:
        collision_dot = collision_to_dot(
            adjacency, prov.get("chosen_indices"),
            title=f"{symbol}: collision graph",
        )
    _LEDGER.emit(
        "extraction",
        method=method,
        size=candidate.size,
        occurrences=candidate.occurrences,
        benefit=candidate.benefit,
        bytes_saved=candidate.benefit * 4,
        new_symbol=symbol,
        instructions=[str(i) for i in candidate.insns],
        origins=[list(o) for o in candidate.origins],
        embedding_count=prov.get("embeddings", len(fragment.embeddings)),
        legal=prov.get("legal"),
        mis_size=prov.get("mis_size", candidate.occurrences),
        collision_nodes=prov.get("collision_nodes"),
        collision_edges=prov.get("collision_edges"),
        mis_mode=prov.get("mis_mode"),
        order_kept=prov.get("order_kept", candidate.occurrences),
        fragment_dot=fragment_to_dot(
            fragment.node_labels, fragment.edges,
            title=f"{symbol}: fragment",
        ),
        host_dot=dfg_to_dot(
            host, highlight=witness.nodes,
            title=f"{symbol}: host block "
                  f"{host.origin[0]}#{host.origin[1]}",
        ),
        collision_dot=collision_dot,
    )


def run_pa(module: Module, config: Optional[PAConfig] = None,
           resume: Optional[_ckpt.Checkpoint] = None) -> PAResult:
    """Run graph-based procedural abstraction to a fixpoint on *module*.

    The module is transformed in place and also returned inside the
    result for convenience.

    Passing a loaded :class:`~repro.resilience.checkpoint.Checkpoint`
    as *resume* (with *module* revived via
    :func:`~repro.resilience.checkpoint.module_from_checkpoint`)
    continues the run from the round after the checkpointed one; the
    pipeline is deterministic, so the resumed run produces the same
    final module, bit for bit, as the uninterrupted one.
    """
    config = config or PAConfig()
    governor = RunGovernor(time_budget=config.time_budget)
    if _LEDGER.enabled:
        begin_config = {
            "miner": config.miner,
            "min_support": config.min_support,
            "min_nodes": config.min_nodes,
            "max_nodes": config.max_nodes,
            "mis_exact_limit": config.mis_exact_limit,
            "pa_pruning": config.pa_pruning,
            "flow_pass": config.flow_pass,
            "batch": config.batch,
            "time_budget": config.time_budget,
            "workers": config.workers,
        }
        extra = {}
        if resume is not None:
            extra["resumed_from"] = resume.round
        _LEDGER.emit(
            "run.begin",
            schema=LEDGER_SCHEMA,
            engine=config.miner,
            instructions=module.num_instructions,
            config=begin_config,
            **extra,
        )
    with activate(governor), governor.signals():
        with _TELEMETRY.span("pa.run", miner=config.miner):
            result = _run_pa(module, config, governor, resume)
    result.mis_budget_exhausted += governor.counters.get(
        "mis.budget_exhausted", 0
    )
    if result.deadline_hits:
        # A truncated mining pass may have missed candidates even when
        # the loop itself reached a (premature) fixpoint.
        governor.note("time_budget")
    result.degraded_reasons = list(governor.reasons)
    result.degraded = governor.degraded
    if _TELEMETRY.enabled:
        _TELEMETRY.count("pa.runs")
        _TELEMETRY.count("pa.instructions.saved", result.saved)
        _TELEMETRY.count("pa.lattice_nodes", result.lattice_nodes)
        for name, value in sorted(governor.counters.items()):
            _TELEMETRY.count(f"pa.governor.{name}", value)
    if _LEDGER.enabled:
        if result.degraded:
            _LEDGER.emit(
                "run.degraded",
                reasons=result.degraded_reasons,
                rounds=result.rounds,
                instructions=result.instructions_after,
                deadline_hits=result.deadline_hits,
                mis_budget_exhausted=result.mis_budget_exhausted,
                verify_retries=result.verify_retries,
                rolled_back_rounds=result.rolled_back_rounds,
            )
        _LEDGER.emit(
            "run.end",
            rounds=result.rounds,
            instructions=result.instructions_after,
            saved=result.saved,
            bytes_saved=result.saved * 4,
            call_extractions=result.call_extractions,
            crossjump_extractions=result.crossjump_extractions,
            elapsed_seconds=round(result.elapsed_seconds, 6),
            dropped=dict(_LEDGER.dropped),
        )
    _progress.publish(
        "run.done",
        saved=result.saved,
        rounds=result.rounds,
        instructions=result.instructions_after,
        degraded=result.degraded,
    )
    return result


def _run_pa(module: Module, config: PAConfig, governor: RunGovernor,
            resume: Optional[_ckpt.Checkpoint] = None) -> PAResult:
    started = time.perf_counter()
    result = PAResult(
        module=module,
        instructions_before=module.num_instructions,
        instructions_after=module.num_instructions,
    )
    carryover: List[Candidate] = []
    blocklist: Set[str] = set()
    scale = None
    if config.workers:
        # one cache + delta planner per run: the cache carries shard
        # results across rounds (and across runs when persistent), the
        # planner only observes — see repro.scale.pool for invariants
        from repro.scale.cache import FragmentCache
        from repro.scale.delta import DeltaPlanner

        scale = (FragmentCache(config.fragment_cache), DeltaPlanner())
        result.workers = max(1, config.workers)
    start_round = 0
    if resume is not None:
        start_round = resume.round + 1
        result.resumed_from_round = resume.round
        result.instructions_before = resume.instructions_before
        result.rounds = resume.rounds
        result.lattice_nodes = resume.lattice_nodes
        result.deadline_hits = resume.deadline_hits
        result.mis_budget_exhausted = resume.mis_budget_exhausted
        result.verify_retries = resume.verify_retries
        result.cache_hits = resume.cache_hits
        result.cache_misses = resume.cache_misses
        result.lattice_nodes_reused = resume.lattice_nodes_reused
        result.shards_retried = resume.shards_retried
        result.shards_quarantined = resume.shards_quarantined
        result.records = [
            ExtractionRecord(
                round=r["round"],
                method=r["method"],
                size=r["size"],
                occurrences=r["occurrences"],
                benefit=r["benefit"],
                new_symbol=r["new_symbol"],
                instructions=tuple(r["instructions"]),
            )
            for r in resume.records
        ]
        blocklist = set(resume.blocklist)
        if scale is None:
            carryover = _ckpt.candidates_from_dicts(
                module, config.mined_kinds, resume.carryover
            )
    for round_index in range(start_round, config.max_rounds):
        if governor.should_stop():
            governor.note(
                "interrupted" if governor.interrupted else "time_budget"
            )
            break
        state = _ckpt.capture_state(module)
        try:
            outcome = _run_round(
                module, config, governor, result, round_index,
                carryover, blocklist, state, scale,
            )
        except KeyboardInterrupt:
            # Anytime semantics: the interrupted round is rolled back
            # atomically and the best-so-far module returned cleanly.
            _ckpt.restore_state(module, state)
            result.rolled_back_rounds += 1
            governor.interrupt()
            governor.note("interrupted")
            governor.count("rounds.rolled_back")
            break
        except BaseException:
            # Injected faults, validation aborts, internal errors: leave
            # a consistent module behind (never half-rewritten), then
            # let the CLI boundary type the diagnostic.
            _ckpt.restore_state(module, state)
            result.rolled_back_rounds += 1
            raise
        if outcome is None:
            break
        records, candidates, touched_blocks, touched_functions = outcome
        result.records.extend(records)
        result.rounds = round_index + 1
        # Candidates whose blocks survived this round untouched remain
        # valid; they warm-start the next round's benefit floor.  A
        # cross-jump splits a block in two, renumbering every later
        # block of the module enumeration, so any cross-jump round
        # invalidates the carried indices wholesale.  (The scale
        # engine never carries over — untouched shards are cache hits
        # instead, which survives cross-jump renumbering too because
        # shard identity is content, not position.)
        if scale is not None or touched_functions:
            carryover = []
        else:
            carryover = [
                c for c in candidates
                if not any(o in touched_blocks for o in c.origins)
            ]
        if config.checkpoint_path:
            _write_run_checkpoint(
                config.checkpoint_path, module, config, governor,
                result, round_index, carryover, blocklist,
            )
    result.instructions_after = module.num_instructions
    result.elapsed_seconds = time.perf_counter() - started
    if scale is not None:
        census = scale[0].stats.as_dict()
        result.cache_census = census
        if _TELEMETRY.enabled:
            for key in sorted(census):
                _TELEMETRY.count(f"scale.cache.census.{key}",
                                 census[key])
    return result


def _run_round(module: Module, config: PAConfig, governor: RunGovernor,
               result: PAResult, round_index: int,
               carryover: List[Candidate], blocklist: Set[str],
               state: _ckpt.ModuleState, scale=None):
    """One mining + apply round, with verify-failure recovery.

    Returns ``None`` at fixpoint, else ``(records, candidates,
    touched_blocks, touched_functions)``.  On a translation-validation
    failure the round is rolled back atomically, the offending
    candidates blocklisted by canonical fingerprint, and the round
    re-mined — up to ``config.verify_max_retries`` times, after which
    the error propagates (the historical exit-2 abort).
    """
    attempt = 0
    while True:
        applied: List[Candidate] = []
        try:
            return _round_once(
                module, config, governor, result, round_index,
                carryover, blocklist, applied, scale,
            )
        except TranslationValidationError as error:
            _ckpt.restore_state(module, state)
            if attempt >= config.verify_max_retries:
                raise
            attempt += 1
            offenders = _verify_offenders(error, applied)
            fingerprints = sorted(c.fingerprint() for c in offenders)
            blocklist.update(fingerprints)
            result.verify_retries += 1
            result.rolled_back_rounds += 1
            governor.note("verify_retries")
            governor.count("verify.retries")
            _TELEMETRY.count("pa.verify.retries")
            if _LEDGER.enabled:
                _LEDGER.emit(
                    "verify.retry",
                    round=round_index,
                    attempt=attempt,
                    blocklisted=fingerprints,
                    error=str(error),
                )


def _verify_offenders(error: TranslationValidationError,
                      applied: List[Candidate]) -> List[Candidate]:
    """The applied candidates a counterexample implicates.

    The counterexample names a ``(function, pre-round block)`` pair —
    exactly the coordinate space of candidate origins, because the
    round was applied against the snapshot the counterexample indexes.
    When the mapping comes up empty (lint failures carry no
    counterexample) every applied candidate is blocklisted:
    over-approximate, but it keeps the retry loop terminating.
    """
    counterexample = getattr(error, "counterexample", None)
    if counterexample is not None:
        key = (counterexample.function, counterexample.old_block)
        offenders = [c for c in applied if key in c.origins]
        if offenders:
            return offenders
    return list(applied)


def _round_once(module: Module, config: PAConfig, governor: RunGovernor,
                result: PAResult, round_index: int,
                carryover: List[Candidate], blocklist: Set[str],
                applied: List[Candidate], scale=None):
    with _TELEMETRY.span("pa.round", round=round_index), \
            _LEDGER.context(round=round_index):
        if _LEDGER.enabled:
            _LEDGER.emit(
                "round.begin", instructions=module.num_instructions,
                carryover=len(carryover),
            )
        _progress.publish(
            "round.start", round=round_index,
            instructions=module.num_instructions,
        )
        mine_started = time.perf_counter()
        if scale is not None:
            from repro.scale.pool import run_sharded_round

            cache, planner = scale
            with _TELEMETRY.span("pa.collect", round=round_index):
                candidates, scale_stats = run_sharded_round(
                    module, config, governor, cache, planner
                )
            if blocklist:
                # Verify-failure recovery: shard results are mined
                # (and cached) blocklist-free — a blocklisted
                # candidate must not shape shard-local floors or cache
                # keys — so the filter happens here, after revival
                # re-derived the origins a fingerprint needs.
                candidates = [
                    c for c in candidates
                    if c.fingerprint() not in blocklist
                ]
            round_lattice_nodes = scale_stats.lattice_nodes_mined
            result.lattice_nodes += scale_stats.lattice_nodes_mined
            result.lattice_nodes_reused += \
                scale_stats.lattice_nodes_reused
            result.shards = max(result.shards, scale_stats.shards)
            result.shards_lost += scale_stats.shards_lost
            result.stragglers += scale_stats.stragglers
            result.cache_hits += scale_stats.cache_hits
            result.cache_misses += scale_stats.cache_misses
            result.shards_retried += scale_stats.shards_retried
            result.shards_quarantined += scale_stats.shards_quarantined
            if scale_stats.shards_lost:
                # A torn-down pool dropped shards: whatever this round
                # selects is best-so-far, never silently complete.
                governor.note(
                    "interrupted" if governor.interrupted
                    else "time_budget"
                )
            if scale_stats.deadline_hits:
                result.deadline_hits += scale_stats.deadline_hits
                governor.count("mine.deadline_hits",
                               scale_stats.deadline_hits)
        else:
            miner = _make_miner(config)
            with _TELEMETRY.span("pa.collect", round=round_index):
                candidates = collect_candidates(
                    module, config, miner=miner,
                    warm=carryover, deadline=governor.deadline,
                    blocklist=blocklist,
                )
            round_lattice_nodes = miner.visited_nodes
            result.lattice_nodes += miner.visited_nodes
            if miner.deadline_hit:
                result.deadline_hits += 1
                governor.count("mine.deadline_hits")
            if _LEDGER.enabled:
                _LEDGER.emit(
                    "prune",
                    never_convex=getattr(miner, "pruned_never_convex", 0),
                    cyclic=getattr(miner, "pruned_cyclic", 0),
                )
        mine_seconds = time.perf_counter() - mine_started
        _TELEMETRY.count("pa.carryover.candidates", len(carryover))
        if not candidates:
            if _LEDGER.enabled:
                _LEDGER.emit(
                    "round.end",
                    instructions=module.num_instructions,
                    applied=0, saved=0,
                )
            _progress.publish("round.done", round=round_index,
                              applied=0, saved=0)
            return None
        if not config.batch:
            candidates = candidates[:1]
        before_apply = module.num_instructions
        if config.verify:
            # Captured before the rewrite: the validator compares
            # against this state, and the pre-round lr liveness is
            # what makes the inserted bl's lr clobber excusable.
            snapshot = snapshot_module(module)
            pre_lr_live = lr_live_out_blocks(module)
        fault("extract.apply")
        with _TELEMETRY.span("pa.apply", round=round_index):
            records, touched_blocks, touched_functions = apply_batch(
                module, config, candidates, applied=applied
            )
        if config.verify and records:
            verify_round(
                module, snapshot, records, pre_lr_live,
                round_index=round_index,
            )
        if not records:
            if _LEDGER.enabled:
                _LEDGER.emit(
                    "round.end",
                    instructions=module.num_instructions,
                    applied=0, saved=0,
                )
            _progress.publish("round.done", round=round_index,
                              applied=0, saved=0)
            return None
        if _LEDGER.enabled:
            _LEDGER.emit(
                "round.end",
                instructions=module.num_instructions,
                applied=len(records),
                saved=before_apply - module.num_instructions,
            )
        _progress.publish(
            "round.done", round=round_index,
            applied=len(records),
            saved=before_apply - module.num_instructions,
        )
        for record in records:
            record.round = round_index
        if _TELEMETRY.enabled:
            _TELEMETRY.count("pa.rounds")
            _TELEMETRY.count("pa.candidates.applied", len(records))
            _TELEMETRY.event(
                "pa.round",
                round=round_index,
                mine_seconds=mine_seconds,
                lattice_nodes=round_lattice_nodes,
                candidates=len(candidates),
                applied=len(records),
                carryover=len(carryover),
            )
            for record in records:
                _TELEMETRY.observe(
                    "pa.extraction.benefit", record.benefit
                )
                _TELEMETRY.event(
                    "pa.extraction",
                    round=record.round,
                    method=record.method,
                    size=record.size,
                    occurrences=record.occurrences,
                    benefit=record.benefit,
                    new_symbol=record.new_symbol,
                )
    return records, candidates, touched_blocks, touched_functions


# ----------------------------------------------------------------------
# checkpoint plumbing
# ----------------------------------------------------------------------
def config_to_dict(config: PAConfig) -> Dict[str, Any]:
    """A JSON-serializable snapshot of *config* (checkpoint payload)."""
    data = dict(config.__dict__)
    data["mined_kinds"] = sorted(config.mined_kinds)
    return data


def config_from_dict(data: Dict[str, Any]) -> PAConfig:
    """Revive a :func:`config_to_dict` snapshot; unknown keys (from
    newer schema minors) are dropped."""
    known = set(PAConfig.__dataclass_fields__)
    fields = {k: v for k, v in data.items() if k in known}
    if "mined_kinds" in fields:
        fields["mined_kinds"] = frozenset(fields["mined_kinds"])
    return PAConfig(**fields)


def _record_to_dict(record: ExtractionRecord) -> Dict[str, Any]:
    return {
        "round": record.round,
        "method": record.method,
        "size": record.size,
        "occurrences": record.occurrences,
        "benefit": record.benefit,
        "new_symbol": record.new_symbol,
        "instructions": list(record.instructions),
    }


def _write_run_checkpoint(path: str, module: Module, config: PAConfig,
                          governor: RunGovernor, result: PAResult,
                          round_index: int,
                          carryover: List[Candidate],
                          blocklist: Set[str]) -> None:
    """Serialize the resumable state after a committed round."""
    checkpoint = _ckpt.Checkpoint(
        round=round_index,
        asm=module.render(),
        entry=module.entry,
        fresh=module._fresh,
        config=config_to_dict(config),
        carryover=[_ckpt.candidate_to_dict(c) for c in carryover],
        blocklist=sorted(blocklist),
        records=[_record_to_dict(r) for r in result.records],
        pa_exempt=sorted(
            f.name for f in module.functions if f.pa_exempt
        ),
        instructions_before=result.instructions_before,
        rounds=result.rounds,
        lattice_nodes=result.lattice_nodes,
        deadline_hits=result.deadline_hits,
        mis_budget_exhausted=(
            result.mis_budget_exhausted
            + governor.counters.get("mis.budget_exhausted", 0)
        ),
        verify_retries=result.verify_retries,
        cache_hits=result.cache_hits,
        cache_misses=result.cache_misses,
        lattice_nodes_reused=result.lattice_nodes_reused,
        shards_retried=result.shards_retried,
        shards_quarantined=result.shards_quarantined,
    )
    _ckpt.write_checkpoint(path, checkpoint)
    if _LEDGER.enabled:
        _LEDGER.emit("checkpoint", round=round_index, path=path)
