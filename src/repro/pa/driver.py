"""The iterative procedural-abstraction loop (paper §2.1 step 8).

Each round rebuilds the DFG database, mines it, scores every frequent
fragment (legality -> maximum independent set of non-overlapping
occurrences -> order-consistency), extracts the single candidate with
the highest code-size benefit, and restarts — "after extraction, phase
(6) is repeated as long as code fragments are found that reduce the
overall number of instructions in the program".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from repro.binary.program import Module
from repro.dfg.builder import build_dfgs
from repro.dfg.graph import FLOW_KINDS, MINED_KINDS
from repro.mining.edgar import Edgar, non_overlapping_embeddings
from repro.mining.gspan import DgSpan
from repro.report.dot import collision_to_dot, dfg_to_dot, fragment_to_dot
from repro.report.ledger import GLOBAL as _LEDGER, LEDGER_SCHEMA
from repro.telemetry import GLOBAL as _TELEMETRY

from repro.pa.extract import (
    call_site_feasible,
    extract_call,
    extract_crossjump,
    order_consistent_subset,
)
from repro.pa.fragments import (
    Candidate,
    best_possible_benefit,
    call_benefit,
    call_overhead,
    crossjump_benefit,
    score,
)
from repro.pa.legality import (
    ExtractionMethod,
    legal_embeddings,
)
from repro.pa.liveness import lr_live_out_blocks
from repro.verify.validate import snapshot_module, verify_round


@dataclass
class PAConfig:
    """Tuning knobs of the abstraction engine."""

    miner: str = "edgar"              #: "edgar" or "dgspan"
    min_support: int = 2
    min_nodes: int = 2
    max_nodes: int = 8
    max_rounds: int = 10_000
    mis_exact_limit: int = 60         #: 0 = greedy MIS (ablation)
    pa_pruning: bool = True           #: Edgar's PA-specific pruning
    #: Edge kinds of the primary mining pass.  The default is the full
    #: dependence graph (the graph the Fig. 9 legality check needs).
    mined_kinds: FrozenSet[str] = MINED_KINDS
    #: Run a second pass on the pure data-flow projection (d/m/f edges
    #: only).  Anti/output dependence edges are order-*sensitive* — two
    #: occurrences of the same computation scheduled differently carry
    #: them in opposite directions — so only the projection can match
    #: reordered duplicates, which is the paper's headline effect.
    flow_pass: bool = True
    #: Apply every non-conflicting candidate found in a round (ordered by
    #: benefit) instead of only the single best.  Results match the
    #: paper's one-per-round greedy almost exactly (conflicting
    #: candidates wait for the next round) at a fraction of the mining
    #: cost; set False for the strict paper loop.
    batch: bool = True
    max_embeddings: int = 4_000
    #: Wall-clock budget for the whole run (seconds); None = unbounded.
    #: When the budget runs out mid-mine the search unwinds cleanly and
    #: the candidates found so far are still applied — the optimizer
    #: degrades gracefully instead of running for the paper's "night or
    #: weekend" (§1) on pathological inputs like rijndael (§4.2).
    time_budget: Optional[float] = 600.0
    #: Translation-validate every round: re-lint the module and prove
    #: each rewritten block symbolically equivalent to its original
    #: (:mod:`repro.verify.validate`).  A failure aborts the run with a
    #: :class:`~repro.verify.validate.TranslationValidationError` whose
    #: counterexample is also written to the decision ledger.
    verify: bool = False


@dataclass
class ExtractionRecord:
    """One extraction step, for reporting (Fig. 12, EXPERIMENTS.md)."""

    round: int
    method: str                       #: "call" or "crossjump"
    size: int
    occurrences: int
    benefit: int
    new_symbol: str
    instructions: Tuple[str, ...]


@dataclass
class PAResult:
    """Outcome of one full abstraction run."""

    module: Module
    instructions_before: int
    instructions_after: int
    records: List[ExtractionRecord] = field(default_factory=list)
    rounds: int = 0
    lattice_nodes: int = 0
    elapsed_seconds: float = 0.0

    @property
    def saved(self) -> int:
        """Saved instructions — the paper's headline metric (Table 1)."""
        return self.instructions_before - self.instructions_after

    @property
    def call_extractions(self) -> int:
        return sum(1 for r in self.records if r.method == "call")

    @property
    def crossjump_extractions(self) -> int:
        return sum(1 for r in self.records if r.method == "crossjump")


def _make_miner(config: PAConfig):
    if config.miner == "edgar":
        return Edgar(
            min_support=config.min_support,
            min_nodes=config.min_nodes,
            max_nodes=config.max_nodes,
            max_embeddings=config.max_embeddings,
            pa_pruning=config.pa_pruning,
            mis_exact_limit=config.mis_exact_limit,
        )
    if config.miner == "dgspan":
        return DgSpan(
            min_support=config.min_support,
            min_nodes=config.min_nodes,
            max_nodes=config.max_nodes,
            max_embeddings=config.max_embeddings,
        )
    raise ValueError(f"unknown miner: {config.miner!r}")


def collect_candidates(module: Module, config: PAConfig,
                       miner=None,
                       warm: Optional[List[Candidate]] = None,
                       deadline: Optional[float] = None
                       ) -> List[Candidate]:
    """Mine one round; return extractable candidates, best first.

    Fragments are scored as the miner reports them (streaming); the
    current best benefit is fed back as a lattice floor, pruning every
    subtree whose optimistic (size, occurrences) bound cannot beat it —
    both quantities are antimonotone, so the prune never loses the
    optimum of the "best extractable candidate" query.  Candidates
    scored along the way (before the floor overtook them) are kept for
    batch application.
    """
    dfgs = build_dfgs(module, min_nodes=0, mined_kinds=config.mined_kinds)
    if not dfgs:
        return []
    miner = miner or _make_miner(config)
    # lr can be live across blocks (leaf returns, shared cross-jump
    # tails); a bl may only be inserted where lr is dead-out.
    lr_live = lr_live_out_blocks(module)
    best: List[Optional[Candidate]] = [None]
    collected: List[Candidate] = []
    for candidate in warm or ():
        # Still-valid candidates from the previous round warm-start the
        # benefit floor, so the lattice prunes aggressively from the
        # first seed onward.
        collected.append(candidate)
        if best[0] is None or candidate.sort_key() < best[0].sort_key():
            best[0] = candidate

    def floor() -> int:
        return best[0].benefit if best[0] is not None else 0

    def prune_subtree(size_cap: int, occurrence_bound: int) -> bool:
        return best_possible_benefit(size_cap, occurrence_bound) <= floor()

    ledger_on = _LEDGER.enabled
    skips = {
        "considered": 0, "floor": 0, "illegal": 0, "lr_infeasible": 0,
        "order_inconsistent": 0, "unprofitable": 0, "scored": 0,
    }

    def consider(frag) -> None:
        _TELEMETRY.count("pa.candidates.considered")
        if ledger_on:
            skips["considered"] += 1
        per_graph = {}
        for emb in frag.embeddings:
            per_graph[emb.graph] = per_graph.get(emb.graph, 0) + 1
        occ_bound = sum(
            min(count, dfgs[gid].num_nodes // max(1, frag.num_nodes))
            for gid, count in per_graph.items()
        )
        bound = best_possible_benefit(frag.num_nodes, occ_bound)
        if bound <= floor():
            _TELEMETRY.count("pa.candidates.skipped_floor")
            if ledger_on:
                skips["floor"] += 1
            return
        if len(frag.embeddings) > 1000:
            # per-embedding legality below costs a reachability sweep
            # each; a deterministic prefix keeps scoring bounded (a
            # sound benefit undercount)
            frag.embeddings = frag.embeddings[:1000]
        method, legal = legal_embeddings(dfgs, frag)
        if method is None or len(legal) < 2:
            _TELEMETRY.count("pa.candidates.skipped_illegal")
            if ledger_on:
                skips["illegal"] += 1
            return
        legal_count = len(legal)
        if method is ExtractionMethod.CALL:
            legal = [
                e for e in legal
                if dfgs[e.graph].origin not in lr_live
                and call_site_feasible(dfgs[e.graph], e.nodes)
            ]
            if len(legal) < 2:
                _TELEMETRY.count("pa.candidates.skipped_lr_infeasible")
                if ledger_on:
                    skips["lr_infeasible"] += 1
                    _LEDGER.emit(
                        "candidate",
                        verdict="lr_infeasible",
                        labels=list(frag.node_labels),
                        size=frag.num_nodes,
                        method=method.value,
                        embeddings=len(frag.embeddings),
                        legal=legal_count,
                        lr_feasible=len(legal),
                    )
                return
        mis_stats = {} if ledger_on else None
        disjoint = non_overlapping_embeddings(
            legal, exact_limit=config.mis_exact_limit, stats=mis_stats
        )
        kept, union = order_consistent_subset(dfgs, disjoint)
        if len(kept) < 2:
            _TELEMETRY.count("pa.candidates.skipped_order")
            if ledger_on:
                skips["order_inconsistent"] += 1
                _LEDGER.emit(
                    "candidate",
                    verdict="order_inconsistent",
                    labels=list(frag.node_labels),
                    size=frag.num_nodes,
                    method=method.value,
                    embeddings=len(frag.embeddings),
                    legal=legal_count,
                    mis_size=len(disjoint),
                    collision_nodes=mis_stats.get("vertices"),
                    collision_edges=mis_stats.get("edges"),
                    mis_mode=mis_stats.get("mode"),
                    order_kept=len(kept),
                )
            return
        witness = kept[0]
        insns = [dfgs[witness.graph].insns[n] for n in witness.nodes]
        origins = tuple(sorted({dfgs[e.graph].origin for e in kept}))
        candidate = score(frag, method, insns, kept, union, origins)
        if candidate is None:
            _TELEMETRY.count("pa.candidates.skipped_unprofitable")
            if ledger_on:
                skips["unprofitable"] += 1
                if method is ExtractionMethod.CALL:
                    benefit = call_benefit(
                        frag.num_nodes, len(kept), call_overhead(insns)
                    )
                else:
                    benefit = crossjump_benefit(frag.num_nodes, len(kept))
                _LEDGER.emit(
                    "candidate",
                    verdict="unprofitable",
                    labels=list(frag.node_labels),
                    size=frag.num_nodes,
                    method=method.value,
                    embeddings=len(frag.embeddings),
                    legal=legal_count,
                    mis_size=len(disjoint),
                    collision_nodes=mis_stats.get("vertices"),
                    collision_edges=mis_stats.get("edges"),
                    mis_mode=mis_stats.get("mode"),
                    order_kept=len(kept),
                    benefit=benefit,
                )
            return
        _TELEMETRY.count("pa.candidates.scored")
        if ledger_on:
            skips["scored"] += 1
            candidate.provenance = {
                "embeddings": len(frag.embeddings),
                "legal": legal_count,
                "mis_size": len(disjoint),
                "collision_nodes": mis_stats.get("vertices"),
                "collision_edges": mis_stats.get("edges"),
                "mis_mode": mis_stats.get("mode"),
                "order_kept": len(kept),
                "collision_adjacency": mis_stats.get("adjacency"),
                "chosen_indices": mis_stats.get("chosen_indices"),
                "fragment_labels": list(frag.node_labels),
                "fragment_edges": sorted(tuple(e) for e in frag.edges),
            }
            _LEDGER.emit(
                "candidate",
                verdict="scored",
                labels=list(frag.node_labels),
                size=frag.num_nodes,
                method=method.value,
                embeddings=len(frag.embeddings),
                legal=legal_count,
                mis_size=len(disjoint),
                collision_nodes=mis_stats.get("vertices"),
                collision_edges=mis_stats.get("edges"),
                mis_mode=mis_stats.get("mode"),
                order_kept=len(kept),
                benefit=candidate.benefit,
            )
        collected.append(candidate)
        if best[0] is None or candidate.sort_key() < best[0].sort_key():
            best[0] = candidate

    miner.prune_subtree = prune_subtree
    miner.on_fragment = consider
    miner.deadline = deadline
    try:
        if miner.max_nodes > 4:
            # Quick shallow pre-pass: small fragments with many
            # occurrences are found in milliseconds and set a benefit
            # floor that prunes most of the deep lattice before the
            # full-depth pass even starts.
            saved_max = miner.max_nodes
            miner.max_nodes = 3
            try:
                with _TELEMETRY.span("pa.mine.shallow"), \
                        _LEDGER.context(mine_pass="shallow"):
                    miner.mine(dfgs)
            finally:
                miner.max_nodes = saved_max
        with _TELEMETRY.span("pa.mine.full"), \
                _LEDGER.context(mine_pass="full"):
            miner.mine(dfgs)
        if config.flow_pass and FLOW_KINDS != config.mined_kinds:
            # Second pass on the data-flow projection; block order and
            # node numbering are identical, so embeddings transfer
            # directly and legality still checks the full dep_edges.
            flow_dfgs = build_dfgs(module, min_nodes=0,
                                   mined_kinds=FLOW_KINDS)
            with _TELEMETRY.span("pa.mine.flow"), \
                    _LEDGER.context(mine_pass="flow"):
                miner.mine(flow_dfgs)
    finally:
        miner.prune_subtree = None
        miner.on_fragment = None
        miner.deadline = None
    if ledger_on:
        _LEDGER.emit("mine.skips", **skips)
    collected.sort(key=lambda c: c.sort_key())
    return collected


def best_candidate(module: Module, config: PAConfig,
                   miner=None) -> Optional[Candidate]:
    """Mine one round and return the highest-benefit extractable candidate."""
    candidates = collect_candidates(module, config, miner=miner)
    return candidates[0] if candidates else None


def apply_candidate(module: Module, config: PAConfig,
                    candidate: Candidate,
                    round: int = 0) -> ExtractionRecord:
    """Extract one *candidate* from *module*; returns the step record.

    *round* stamps the returned record (``run_pa`` passes the loop
    index; direct callers get a well-formed record instead of the old
    ``-1`` placeholder).
    """
    records, __, ___ = apply_batch(module, config, [candidate])
    if not records:
        raise RuntimeError("candidate could not be applied")
    records[0].round = round
    return records[0]


def apply_batch(module: Module, config: PAConfig,
                candidates: List[Candidate]):
    """Apply candidates best-first, skipping conflicting ones.

    A candidate conflicts when any of its occurrence blocks was already
    rewritten this round (or, for cross-jumps — which renumber blocks —
    when its function was touched at all).  Skipped candidates are
    simply rediscovered (or carried over) by the next mining round.

    Returns ``(records, touched_blocks, touched_functions)``.
    """
    dfgs = build_dfgs(module, min_nodes=0, mined_kinds=config.mined_kinds)
    touched_blocks = set()
    touched_functions = set()
    records: List[ExtractionRecord] = []
    for candidate in candidates:
        origins = set(candidate.origins) or {
            dfgs[e.graph].origin for e in candidate.embeddings
        }
        if any(
            origin in touched_blocks or origin[0] in touched_functions
            for origin in origins
        ):
            _TELEMETRY.count("pa.candidates.skipped_conflict")
            continue
        before = module.num_instructions
        if candidate.method is ExtractionMethod.CALL:
            symbol = extract_call(
                module, dfgs, candidate.insns, candidate.embeddings,
                candidate.union_edges,
            )
            touched_blocks |= origins
            method = "call"
        else:
            symbol = extract_crossjump(
                module, dfgs, candidate.insns, candidate.embeddings,
                candidate.union_edges,
            )
            touched_functions |= {origin[0] for origin in origins}
            method = "crossjump"
        saved = before - module.num_instructions
        if saved != candidate.benefit:
            raise AssertionError(
                f"benefit model mismatch: predicted {candidate.benefit}, "
                f"actual {saved}"
            )
        if _LEDGER.enabled:
            _emit_extraction(candidate, dfgs, method, symbol)
        records.append(
            ExtractionRecord(
                round=-1,
                method=method,
                size=candidate.size,
                occurrences=candidate.occurrences,
                benefit=candidate.benefit,
                new_symbol=symbol,
                instructions=tuple(str(i) for i in candidate.insns),
            )
        )
    return records, touched_blocks, touched_functions


def _emit_extraction(candidate: Candidate, dfgs, method: str,
                     symbol: str) -> None:
    """One ``extraction`` ledger record, with inline DOT artifacts."""
    prov = candidate.provenance or {}
    fragment = candidate.fragment
    witness = candidate.embeddings[0]
    host = dfgs[witness.graph]
    adjacency = prov.get("collision_adjacency")
    collision_dot = None
    if adjacency is not None:
        collision_dot = collision_to_dot(
            adjacency, prov.get("chosen_indices"),
            title=f"{symbol}: collision graph",
        )
    _LEDGER.emit(
        "extraction",
        method=method,
        size=candidate.size,
        occurrences=candidate.occurrences,
        benefit=candidate.benefit,
        bytes_saved=candidate.benefit * 4,
        new_symbol=symbol,
        instructions=[str(i) for i in candidate.insns],
        origins=[list(o) for o in candidate.origins],
        embedding_count=prov.get("embeddings", len(fragment.embeddings)),
        legal=prov.get("legal"),
        mis_size=prov.get("mis_size", candidate.occurrences),
        collision_nodes=prov.get("collision_nodes"),
        collision_edges=prov.get("collision_edges"),
        mis_mode=prov.get("mis_mode"),
        order_kept=prov.get("order_kept", candidate.occurrences),
        fragment_dot=fragment_to_dot(
            fragment.node_labels, fragment.edges,
            title=f"{symbol}: fragment",
        ),
        host_dot=dfg_to_dot(
            host, highlight=witness.nodes,
            title=f"{symbol}: host block "
                  f"{host.origin[0]}#{host.origin[1]}",
        ),
        collision_dot=collision_dot,
    )


def run_pa(module: Module, config: Optional[PAConfig] = None) -> PAResult:
    """Run graph-based procedural abstraction to a fixpoint on *module*.

    The module is transformed in place and also returned inside the
    result for convenience.
    """
    config = config or PAConfig()
    if _LEDGER.enabled:
        _LEDGER.emit(
            "run.begin",
            schema=LEDGER_SCHEMA,
            engine=config.miner,
            instructions=module.num_instructions,
            config={
                "miner": config.miner,
                "min_support": config.min_support,
                "min_nodes": config.min_nodes,
                "max_nodes": config.max_nodes,
                "mis_exact_limit": config.mis_exact_limit,
                "pa_pruning": config.pa_pruning,
                "flow_pass": config.flow_pass,
                "batch": config.batch,
                "time_budget": config.time_budget,
            },
        )
    with _TELEMETRY.span("pa.run", miner=config.miner):
        result = _run_pa(module, config)
    if _TELEMETRY.enabled:
        _TELEMETRY.count("pa.runs")
        _TELEMETRY.count("pa.instructions.saved", result.saved)
        _TELEMETRY.count("pa.lattice_nodes", result.lattice_nodes)
    if _LEDGER.enabled:
        _LEDGER.emit(
            "run.end",
            rounds=result.rounds,
            instructions=result.instructions_after,
            saved=result.saved,
            bytes_saved=result.saved * 4,
            call_extractions=result.call_extractions,
            crossjump_extractions=result.crossjump_extractions,
            elapsed_seconds=round(result.elapsed_seconds, 6),
            dropped=dict(_LEDGER.dropped),
        )
    return result


def _run_pa(module: Module, config: PAConfig) -> PAResult:
    started = time.perf_counter()
    result = PAResult(
        module=module,
        instructions_before=module.num_instructions,
        instructions_after=module.num_instructions,
    )
    deadline = (
        time.monotonic() + config.time_budget
        if config.time_budget else None
    )
    carryover: List[Candidate] = []
    for round_index in range(config.max_rounds):
        miner = _make_miner(config)
        with _TELEMETRY.span("pa.round", round=round_index), \
                _LEDGER.context(round=round_index):
            if _LEDGER.enabled:
                _LEDGER.emit(
                    "round.begin", instructions=module.num_instructions,
                    carryover=len(carryover),
                )
            mine_started = time.perf_counter()
            with _TELEMETRY.span("pa.collect", round=round_index):
                candidates = collect_candidates(
                    module, config, miner=miner,
                    warm=carryover, deadline=deadline,
                )
            mine_seconds = time.perf_counter() - mine_started
            result.lattice_nodes += miner.visited_nodes
            _TELEMETRY.count("pa.carryover.candidates", len(carryover))
            if _LEDGER.enabled:
                _LEDGER.emit(
                    "prune",
                    never_convex=getattr(miner, "pruned_never_convex", 0),
                    cyclic=getattr(miner, "pruned_cyclic", 0),
                )
            if not candidates:
                if _LEDGER.enabled:
                    _LEDGER.emit(
                        "round.end",
                        instructions=module.num_instructions,
                        applied=0, saved=0,
                    )
                break
            if not config.batch:
                candidates = candidates[:1]
            before_apply = module.num_instructions
            if config.verify:
                # Captured before the rewrite: the validator compares
                # against this state, and the pre-round lr liveness is
                # what makes the inserted bl's lr clobber excusable.
                snapshot = snapshot_module(module)
                pre_lr_live = lr_live_out_blocks(module)
            with _TELEMETRY.span("pa.apply", round=round_index):
                records, touched_blocks, touched_functions = apply_batch(
                    module, config, candidates
                )
            if config.verify and records:
                verify_round(
                    module, snapshot, records, pre_lr_live,
                    round_index=round_index,
                )
            if not records:
                if _LEDGER.enabled:
                    _LEDGER.emit(
                        "round.end",
                        instructions=module.num_instructions,
                        applied=0, saved=0,
                    )
                break
            if _LEDGER.enabled:
                _LEDGER.emit(
                    "round.end",
                    instructions=module.num_instructions,
                    applied=len(records),
                    saved=before_apply - module.num_instructions,
                )
            for record in records:
                record.round = round_index
            if _TELEMETRY.enabled:
                _TELEMETRY.count("pa.rounds")
                _TELEMETRY.count("pa.candidates.applied", len(records))
                _TELEMETRY.event(
                    "pa.round",
                    round=round_index,
                    mine_seconds=mine_seconds,
                    lattice_nodes=miner.visited_nodes,
                    candidates=len(candidates),
                    applied=len(records),
                    carryover=len(carryover),
                )
                for record in records:
                    _TELEMETRY.observe(
                        "pa.extraction.benefit", record.benefit
                    )
                    _TELEMETRY.event(
                        "pa.extraction",
                        round=record.round,
                        method=record.method,
                        size=record.size,
                        occurrences=record.occurrences,
                        benefit=record.benefit,
                        new_symbol=record.new_symbol,
                    )
        result.records.extend(records)
        result.rounds = round_index + 1
        # Candidates whose blocks survived this round untouched remain
        # valid; they warm-start the next round's benefit floor.  A
        # cross-jump splits a block in two, renumbering every later
        # block of the module enumeration, so any cross-jump round
        # invalidates the carried indices wholesale.
        if touched_functions:
            carryover = []
        else:
            carryover = [
                c for c in candidates
                if not any(o in touched_blocks for o in c.origins)
            ]
    result.instructions_after = module.num_instructions
    result.elapsed_seconds = time.perf_counter() - started
    return result
