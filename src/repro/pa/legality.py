"""Extraction legality: the paper's "plausibility checks" (§3.5).

A mined fragment must survive checks on two levels before it can be
outlined:

**Fragment level** (depends only on the instruction texts):

* call/return outlining requires that no instruction transfers control
  (branches, returns, pc writes) and that none touches the link register
  — ``bl`` inside the fragment is allowed because the outlined procedure
  is then bracketed with ``push {lr}`` / ``pop {pc}``, but in that case
  nothing in the fragment may move ``sp`` (the bracket uses the stack),
* cross-jump (tail merge) requires the fragment to *end the block* with
  an unconditional branch or return; if the ending is a link-register
  return (``bx lr`` / ``mov pc, lr``), nothing inside may write ``lr``.

**Embedding level** (depends on where the fragment sits):

* call outlining requires convexity — contracting the occurrence into a
  single call must not create a cyclic dependency (paper Fig. 9),
* cross-jump requires the occurrence to be *successor-closed*: nothing
  outside may depend on it, so the rest of the block can run first and
  then jump into the shared tail; the occurrence must also contain the
  block's control transfer.
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Iterable, List, Optional, Sequence

from repro.isa.instructions import Instruction
from repro.isa.operands import LabelRef
from repro.isa.registers import LR, PC, SP

from repro.dfg.graph import DFG
from repro.mining.embeddings import Embedding
from repro.mining.gspan import Fragment
from repro.mining.pruning import is_convex
from repro.report.ledger import GLOBAL as _LEDGER
from repro.verify.absint import module_summaries


class ExtractionMethod(enum.Enum):
    CALL = "call"
    CROSSJUMP = "crossjump"


def _writes_sp(insn: Instruction) -> bool:
    return SP in insn.regs_written()


def _uses_sp(insn: Instruction) -> bool:
    return SP in insn.regs_read() or SP in insn.regs_written()


def _touches_lr(insn: Instruction) -> bool:
    """Reads or writes lr explicitly (the implicit bl write is handled
    by the push/pop bracket)."""
    if insn.mnemonic == "bl":
        return False
    return LR in insn.regs_read() or LR in insn.regs_written()


def _reads_pc(insn: Instruction) -> bool:
    return PC in insn.regs_read()


def _call_target(insn: Instruction) -> Optional[str]:
    if insn.is_call and insn.operands and isinstance(insn.operands[0], LabelRef):
        return insn.operands[0].name
    return None


def sp_fragile_functions(module) -> FrozenSet[str]:
    """Names of functions whose correctness depends on the caller's ``sp``.

    The ``bl`` exemption in :func:`_classify_call` models callees as
    seeing a balanced stack: they neither net-move ``sp`` nor address
    the caller's frame through it.  Ordinary functions satisfy this
    (their prologue/epilogue frames are self-relative and cancel), but
    a *frameless* outlined procedure's body is an arbitrary mined
    fragment: it may read ``sp`` without ever allocating (its slots are
    the caller's frame at the entry-``sp`` position) or carry a
    net-nonzero ``sp`` adjustment.  Either way it is only sound when
    called with ``sp`` exactly where the original inline code saw it,
    so a later extraction round must never wrap one of its call sites
    in a ``push {lr}`` / ``pop {pc}`` bracket.

    The verdict comes from the abstract interpreter
    (:func:`repro.verify.absint.module_summaries`), not the earlier
    pattern heuristics: a function is fragile when its *proven* facts
    say so — its stack height cannot be tracked to a known value
    everywhere (``height_known`` false), its returns leave a non-zero
    (or unknown) net stack delta, or it provably reads or writes memory
    at depths at or above its entry ``sp`` (its caller's frame),
    directly or transitively through a fragile callee.  Each fragile
    function's evidence is recorded in the decision ledger as a
    ``legality.sp_fragile`` record.
    """
    summaries = module_summaries(module)
    fragile = {
        name for name, summary in summaries.items() if summary.fragile
    }
    if _LEDGER.enabled:
        for name in sorted(fragile):
            summary = summaries[name]
            _LEDGER.emit(
                "legality.sp_fragile",
                function=name,
                net_delta=summary.net_delta,
                height_known=summary.height_known,
                caller_reads=list(summary.caller_reads),
                caller_writes=list(summary.caller_writes),
                has_negative_height=summary.has_negative_height,
            )
    return frozenset(fragile)


def classify_fragment(
    insns: Sequence[Instruction],
    fragile_callees: FrozenSet[str] = frozenset(),
) -> Optional[ExtractionMethod]:
    """Decide the extraction mechanism from the instruction texts alone.

    Returns None when the fragment can never be outlined.
    *fragile_callees* names functions that address their caller's frame
    (see :func:`sp_fragile_functions`); a fragment calling one of them
    cannot be call-outlined, since the bracket would shift ``sp`` under
    the fragile callee.
    """
    if not insns:
        return None
    terminators = [i for i in insns if i.is_terminator or
                   (i.is_branch and not i.is_call)]
    if terminators:
        return _classify_crossjump(insns, terminators)
    return _classify_call(insns, fragile_callees)


def _classify_call(
    insns: Sequence[Instruction],
    fragile_callees: FrozenSet[str] = frozenset(),
) -> Optional[ExtractionMethod]:
    contains_call = any(i.is_call for i in insns)
    for insn in insns:
        if _touches_lr(insn) or _reads_pc(insn) or insn.writes_pc:
            return None
        if contains_call and not insn.is_call and _uses_sp(insn):
            # The push {lr} / pop {pc} bracket shifts sp by one word
            # for the whole body, so *any* sp use inside — including
            # sp-relative loads and stores — would address the wrong
            # slot.  (bl itself is exempt: its conservative "reads sp"
            # models the callee, which sees a balanced stack.)
            return None
        if contains_call and _call_target(insn) in fragile_callees:
            # The bracket's one-word sp shift is also visible to any
            # *callee* that addresses the caller's frame — a frameless
            # outlined procedure's sp-relative slots would land on the
            # bracket-saved lr.  Found by the fuzzed corpus: a round-1
            # frameless pa body (`str r0, [sp]` … `mov pc, lr`) was
            # later swallowed by a bracketed round-2 extraction, so its
            # store clobbered the saved return address.
            return None
    return ExtractionMethod.CALL


def _classify_crossjump(
    insns: Sequence[Instruction], terminators: List[Instruction]
) -> Optional[ExtractionMethod]:
    # Note: *insns* are in DFS-role order, not program order; positions
    # carry no meaning here.  Blocks only ever hold control transfers in
    # their final slot, so the unique terminator necessarily anchors the
    # tail of every occurrence.
    if len(terminators) != 1:
        return None
    exit_insn = terminators[0]
    if exit_insn.is_conditional:
        return None
    if not (exit_insn.is_return or exit_insn.mnemonic == "b"):
        return None
    lr_based_return = exit_insn.is_return and exit_insn.mnemonic != "pop"
    for insn in insns:
        if insn is exit_insn:
            continue
        if insn.is_terminator or (insn.is_branch and not insn.is_call):
            return None
        if _reads_pc(insn) or insn.writes_pc:
            return None
        if _touches_lr(insn):
            return None
        if lr_based_return and insn.is_call:
            return None
    return ExtractionMethod.CROSSJUMP


# ----------------------------------------------------------------------
# embedding level
# ----------------------------------------------------------------------
def embedding_legal(
    dfg: DFG, nodes: Iterable[int], method: ExtractionMethod
) -> bool:
    """Check the placement conditions of one occurrence."""
    node_set = set(nodes)
    if method is ExtractionMethod.CALL:
        if not is_convex(dfg, node_set):
            return False
        # The occurrence must not contain the block's final control
        # transfer (that case is cross-jump territory).  classify_fragment
        # already guarantees this — a fragment containing any transfer is
        # routed to cross-jump — but a bl replacing the block terminator
        # would be a miscompile, so the guarantee is re-checked here
        # rather than trusted across module boundaries.
        for node in node_set:
            insn = dfg.insns[node]
            if insn.is_terminator or (insn.is_branch and not insn.is_call):
                return False
        return True
    # cross-jump: must contain the last instruction and be successor-closed
    if dfg.num_nodes - 1 not in node_set:
        return False
    for src, dst, __ in dfg.dep_edges:
        if src in node_set and dst not in node_set:
            return False
    return True


def legal_embeddings(
    dfgs: Sequence[DFG], fragment: Fragment,
    fragile_callees: FrozenSet[str] = frozenset(),
) -> tuple:
    """Filter a fragment's embeddings by legality.

    Returns ``(method, embeddings)``; method is None when the fragment
    is categorically unextractable.
    """
    sample = fragment.embeddings[0] if fragment.embeddings else None
    if sample is None:
        return None, []
    insns = _fragment_insns(dfgs, fragment, sample)
    method = classify_fragment(insns, fragile_callees)
    if method is None:
        if _LEDGER.enabled:
            _LEDGER.emit(
                "legality",
                labels=list(fragment.node_labels),
                size=fragment.num_nodes,
                method=None,
                embeddings=len(fragment.embeddings),
                kept=0,
            )
        return None, []
    kept = [
        emb
        for emb in fragment.embeddings
        if embedding_legal(dfgs[emb.graph], emb.nodes, method)
    ]
    if _LEDGER.enabled:
        _LEDGER.emit(
            "legality",
            labels=list(fragment.node_labels),
            size=fragment.num_nodes,
            method=method.value,
            embeddings=len(fragment.embeddings),
            kept=len(kept),
        )
    return method, kept


def _fragment_insns(
    dfgs: Sequence[DFG], fragment: Fragment, emb: Embedding
) -> List[Instruction]:
    """The fragment's instructions, in DFS-role order, from one witness."""
    dfg = dfgs[emb.graph]
    return [dfg.insns[node] for node in emb.nodes]
