"""Fuzzy (canonical) instruction matching — paper §5, Fig. 13.

The paper's future-work list proposes mining for instructions that are
*canonically* equal: same mnemonic and the same number and types of
operands, registers and immediates abstracted to ``R`` and ``I``.  Two
fragments that match canonically but not textually would need register
renaming / parameter passing to be outlined, which the paper (and this
reproduction) does not implement; what we provide is the *measurement*:
mine the canonically-relabelled DFG database and report how much
additional non-overlapping duplication becomes visible — the upper bound
on what fuzzy matching could save (benched in
``benchmarks/test_ablation_canonical.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.isa.instructions import Instruction
from repro.isa.operands import Imm, LabelRef, Mem, Reg, RegList, ShiftedReg

from repro.binary.program import Module
from repro.dfg.builder import build_dfgs
from repro.dfg.graph import DFG
from repro.mining.edgar import Edgar, non_overlapping_embeddings
from repro.pa.fragments import call_benefit


def canonical_operand(op: object) -> str:
    """Fig. 13(b): registers become ``R``, immediates become ``I``."""
    if isinstance(op, Reg):
        return "R"
    if isinstance(op, Imm):
        return "I"
    if isinstance(op, ShiftedReg):
        return f"R, {op.shift_op} I"
    if isinstance(op, Mem):
        if op.index is not None:
            body = "[R, R]"
        elif op.pre:
            body = "[R]" if op.offset == 0 and not op.writeback else "[R, I]"
        else:
            return "[R], I"
        return body + ("!" if op.pre and op.writeback else "")
    if isinstance(op, RegList):
        return "{" + ", ".join("R" for __ in op.regs) + "}"
    if isinstance(op, LabelRef):
        return "L"
    raise TypeError(f"unknown operand: {op!r}")


def canonical_label(insn: Instruction) -> str:
    """The canonical representation of one instruction (Fig. 13)."""
    name = insn.mnemonic
    if insn.cond != "al":
        name += insn.cond
    if insn.set_flags and insn.mnemonic not in ("cmp", "cmn", "tst", "teq"):
        name += "s"
    if not insn.operands:
        return name
    return name + " " + ", ".join(
        canonical_operand(op) for op in insn.operands
    )


def canonical_dfg(dfg: DFG) -> DFG:
    """Relabel a DFG with canonical instruction labels."""
    return replace(dfg, labels=[canonical_label(i) for i in dfg.insns])


@dataclass
class FuzzyReport:
    """Outcome of a fuzzy-mining measurement."""

    exact_best: int        #: best single-fragment benefit, exact labels
    fuzzy_best: int        #: best single-fragment benefit, canonical labels
    exact_fragments: int
    fuzzy_fragments: int

    @property
    def additional_potential(self) -> int:
        return max(0, self.fuzzy_best - self.exact_best)


def fuzzy_potential(module: Module, min_support: int = 2,
                    max_nodes: int = 8,
                    time_budget: float = 60.0) -> FuzzyReport:
    """Compare the best abstraction candidate under exact vs canonical
    matching (measurement only; no extraction)."""
    import time

    dfgs = build_dfgs(module, min_nodes=2)
    miner = Edgar(min_support=min_support, max_nodes=max_nodes)

    def best_benefit(database: Sequence[DFG]) -> tuple:
        miner.deadline = time.monotonic() + time_budget
        fragments = miner.mine(database)
        best = 0
        for frag in fragments:
            chosen = non_overlapping_embeddings(frag.embeddings)
            benefit = call_benefit(frag.num_nodes, len(chosen))
            best = max(best, benefit)
        return best, len(fragments)

    exact_best, exact_count = best_benefit(dfgs)
    fuzzy_best, fuzzy_count = best_benefit([canonical_dfg(d) for d in dfgs])
    return FuzzyReport(
        exact_best=exact_best,
        fuzzy_best=fuzzy_best,
        exact_fragments=exact_count,
        fuzzy_fragments=fuzzy_count,
    )
