"""Module-wide link-register liveness.

Call outlining inserts a ``bl``, which clobbers ``lr``.  Readers of
``lr`` *inside* the rewritten block are ordered before the call site by
the extraction machinery — but ``lr`` can also be live *across* blocks:
leaf-style functions keep their return address in ``lr`` until a final
``mov pc, lr``, and cross-jumping can move that reader into a shared
tail in a different function.  A per-block check is therefore unsound
(this exact scenario produced a miscompile on rijndael: outlining two
instructions from an earlier-outlined procedure whose ``mov pc, lr``
had been tail-merged away).

Historically this module carried its own single-register fixpoint; it is
now a thin wrapper over the generic framework in :mod:`repro.verify` —
the module-wide CFG (:func:`repro.verify.cfg.build_module_cfg`, which
keeps the crucial property that branch labels resolve across function
boundaries) and the full per-register liveness pass
(:mod:`repro.verify.passes`).  The legality gate and the translation
validator therefore consume the same analysis, from opposite sides: one
to block unsound rewrites, the other to prove the applied ones sound.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.isa.registers import LR

from repro.binary.program import Module
from repro.verify.cfg import build_module_cfg
from repro.verify.passes import live_out_blocks

BlockKey = Tuple[str, int]


def _successors(module: Module) -> Dict[BlockKey, List[BlockKey]]:
    """Module-wide successor map; labels resolve across functions.

    Compatibility shim over :func:`repro.verify.cfg.build_module_cfg`,
    kept because the successor map is a useful standalone artifact in
    tests and notebooks.
    """
    return build_module_cfg(module).succ


def lr_live_out_blocks(module: Module) -> Set[BlockKey]:
    """Blocks whose ``lr`` value is consumed on some path after them."""
    return live_out_blocks(module, LR)
