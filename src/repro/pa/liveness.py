"""Module-wide link-register liveness.

Call outlining inserts a ``bl``, which clobbers ``lr``.  Readers of
``lr`` *inside* the rewritten block are ordered before the call site by
the extraction machinery — but ``lr`` can also be live *across* blocks:
leaf-style functions keep their return address in ``lr`` until a final
``mov pc, lr``, and cross-jumping can move that reader into a shared
tail in a different function.  A per-block check is therefore unsound
(this exact scenario produced a miscompile on rijndael: outlining two
instructions from an earlier-outlined procedure whose ``mov pc, lr``
had been tail-merged away).

This module computes, over the *whole module's* block graph (branch
labels resolve across function boundaries, exactly because cross-jump
tails are shared), the set of blocks whose ``lr`` is live-out.  Call
extraction is forbidden in those blocks; everywhere else the in-block
ordering constraints are sufficient.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.isa.registers import LR

from repro.binary.program import BasicBlock, Module

BlockKey = Tuple[str, int]


def _block_summary(block: BasicBlock) -> Tuple[bool, bool]:
    """(reads lr before any kill, kills lr) for one block.

    A kill only counts when unconditional — a predicated write may not
    execute.  ``bl`` writes ``lr`` unconditionally in the generated
    code; predicated calls are treated conservatively as non-killing.
    """
    reads_first = False
    kills = False
    for insn in block.instructions:
        if LR in insn.regs_read():
            if not kills:
                reads_first = True
        if LR in insn.regs_written() and not insn.is_conditional:
            kills = True
    return reads_first, kills


def _successors(module: Module) -> Dict[BlockKey, List[BlockKey]]:
    """Module-wide successor map; labels resolve across functions."""
    label_to_block: Dict[str, BlockKey] = {}
    ordered: List[Tuple[BlockKey, BasicBlock]] = []
    for func in module.functions:
        for bi, block in enumerate(func.blocks):
            key = (func.name, bi)
            ordered.append((key, block))
            if bi == 0:
                label_to_block.setdefault(func.name, key)
            for label in block.labels:
                label_to_block[label] = key

    succ: Dict[BlockKey, List[BlockKey]] = {}
    for index, (key, block) in enumerate(ordered):
        targets: List[BlockKey] = []
        falls_through = True
        for insn in block.instructions:
            if insn.is_branch and not insn.is_call:
                target = insn.label_target
                if target is not None and target in label_to_block:
                    targets.append(label_to_block[target])
                if not insn.is_conditional:
                    falls_through = False
            elif insn.is_terminator and not insn.is_conditional:
                falls_through = False  # return / pc write: no successor
        if falls_through and index + 1 < len(ordered):
            next_key, __ = ordered[index + 1]
            if next_key[0] == key[0]:
                targets.append(next_key)
        succ[key] = targets
    return succ


def lr_live_out_blocks(module: Module) -> Set[BlockKey]:
    """Blocks whose ``lr`` value is consumed on some path after them."""
    summaries: Dict[BlockKey, Tuple[bool, bool]] = {}
    for func in module.functions:
        for bi, block in enumerate(func.blocks):
            summaries[(func.name, bi)] = _block_summary(block)
    succ = _successors(module)

    live_in: Dict[BlockKey, bool] = {key: False for key in summaries}
    live_out: Dict[BlockKey, bool] = {key: False for key in summaries}
    changed = True
    while changed:
        changed = False
        for key in summaries:
            out = any(live_in[s] for s in succ[key])
            reads_first, kills = summaries[key]
            inn = reads_first or (not kills and out)
            if out != live_out[key] or inn != live_in[key]:
                live_out[key] = out
                live_in[key] = inn
                changed = True
    return {key for key, live in live_out.items() if live}
