"""Procedural abstraction (paper §2.1 steps 7-8 and §2.2).

* :mod:`.legality` — which embeddings may be outlined, and how
  (call/return vs cross-jump), including the Fig. 9 convexity rule.
* :mod:`.fragments` — the cost/benefit model over fragment size and
  non-overlapping frequency.
* :mod:`.extract` — the two extraction mechanisms.
* :mod:`.sfx` — the suffix-trie baseline (Fraser/Myers/Wendt '84,
  Table 1's "SFX" column).
* :mod:`.driver` — the iterative loop: mine, pick the best candidate,
  extract, repeat until the program stops shrinking.
"""

from repro.pa.fragments import Candidate, call_benefit, crossjump_benefit
from repro.pa.legality import ExtractionMethod, classify_fragment, legal_embeddings
from repro.pa.extract import extract_call, extract_crossjump
from repro.pa.driver import PAConfig, PAResult, ExtractionRecord, run_pa
from repro.pa.sfx import run_sfx

__all__ = [
    "Candidate",
    "call_benefit",
    "crossjump_benefit",
    "ExtractionMethod",
    "classify_fragment",
    "legal_embeddings",
    "extract_call",
    "extract_crossjump",
    "PAConfig",
    "PAResult",
    "ExtractionRecord",
    "run_pa",
    "run_sfx",
]
