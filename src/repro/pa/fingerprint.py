"""Basic-block fingerprints (Debray et al. [18]).

The paper's related work speeds up duplicate detection with per-block
fingerprints: two blocks can only be outlined into one procedure when
their fingerprints agree, and blocks that differ only in register names
still collide.  We provide the same device as a prefilter utility: it
groups candidate-identical blocks cheaply, and the test-suite uses it to
cross-check the miners (blocks with equal fingerprints and equal text
must yield whole-block fragments).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.binary.program import BasicBlock, Module
from repro.pa.canonical import canonical_label

#: Fingerprints cover at most this many leading instructions, like the
#: fixed-width fingerprints of the original scheme.
FINGERPRINT_WIDTH = 16


def block_fingerprint(block: BasicBlock) -> int:
    """A register-name-insensitive hash of the block's leading shape.

    Built from canonical labels so that renaming registers preserves the
    fingerprint (the property Debray et al. exploit); differing
    fingerprints guarantee the blocks cannot be unified.
    """
    shape = tuple(
        canonical_label(insn)
        for insn in block.instructions[:FINGERPRINT_WIDTH]
    ) + (len(block.instructions),)
    return hash(shape) & 0xFFFFFFFF


def group_by_fingerprint(module: Module) -> Dict[int, List[Tuple[str, int]]]:
    """Group all blocks of non-exempt functions by fingerprint.

    Returns ``fingerprint -> [(function name, block index), ...]``; only
    groups with at least two members are kept.
    """
    groups: Dict[int, List[Tuple[str, int]]] = defaultdict(list)
    for func in module.functions:
        if func.pa_exempt:
            continue
        for bi, block in enumerate(func.blocks):
            if block.instructions:
                groups[block_fingerprint(block)].append((func.name, bi))
    return {fp: where for fp, where in groups.items() if len(where) > 1}


def identical_block_groups(module: Module) -> List[List[Tuple[str, int]]]:
    """Groups of textually identical whole blocks (exact duplicates)."""
    by_text: Dict[Tuple[str, ...], List[Tuple[str, int]]] = defaultdict(list)
    for func in module.functions:
        if func.pa_exempt:
            continue
        for bi, block in enumerate(func.blocks):
            if block.instructions:
                key = tuple(str(i) for i in block.instructions)
                by_text[key].append((func.name, bi))
    return [group for group in by_text.values() if len(group) > 1]
