"""The two extraction mechanisms (paper §2.1 step 8, Figs. 3-5).

Both mechanisms must *re-linearize* code: graph mining matches fragments
whose instructions are interleaved with unrelated code in any order, so
after contracting an occurrence the remaining block is re-emitted as a
topological order of its dependence graph (original program order breaks
ties, keeping diffs minimal).

Call outlining inserts a ``bl`` whose only *extra* architectural effect
over the fragment body is clobbering the link register, so every block
instruction that reads ``lr`` is constrained to execute before the call
site; if that constraint cannot be met the occurrence is infeasible.

Cross-jumping keeps one occurrence as the shared tail (split into its
own labelled block) and replaces every other occurrence by a single
unconditional branch; it is applicable only to fragments that end their
block (checked by :mod:`repro.pa.legality`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.isa.instructions import Instruction
from repro.isa.operands import LabelRef, Reg, RegList
from repro.isa.registers import LR, PC

from repro.binary.program import BasicBlock, Function, Module
from repro.dfg.graph import DFG
from repro.dfg.linearize import (
    LinearizeError,
    block_constraint_edges,
    topological_order,
)
from repro.mining.embeddings import Embedding
from repro.report.ledger import GLOBAL as _LEDGER
from repro.telemetry import GLOBAL as _TELEMETRY


class ExtractionError(RuntimeError):
    """Raised when an extraction that passed legality cannot be realized."""


# ----------------------------------------------------------------------
# order consistency across occurrences
# ----------------------------------------------------------------------
def order_consistent_subset(
    dfgs: Sequence[DFG], embeddings: Sequence[Embedding]
) -> Tuple[List[Embedding], Set[Tuple[int, int]]]:
    """Greedy largest prefix of occurrences with a common body order.

    Every occurrence induces ordering constraints between the fragment
    roles (from its block's full dependence graph).  The outlined body
    executes in ONE fixed order, which must satisfy the union of all
    chosen occurrences' constraints; occurrences whose constraints would
    make the union cyclic are dropped.
    """
    union: Set[Tuple[int, int]] = set()
    kept: List[Embedding] = []
    for emb in embeddings:
        dfg = dfgs[emb.graph]
        role_of = {node: role for role, node in enumerate(emb.nodes)}
        extra = {
            (role_of[s], role_of[d])
            for (s, d, __) in dfg.induced_dep_edges(emb.nodes)
        }
        candidate = union | extra
        if _acyclic(candidate, len(emb.nodes)):
            union = candidate
            kept.append(emb)
    return kept, union


def _acyclic(edges: Set[Tuple[int, int]], n: int) -> bool:
    indeg = [0] * n
    succ: List[List[int]] = [[] for __ in range(n)]
    for s, d in edges:
        succ[s].append(d)
        indeg[d] += 1
    queue = [v for v in range(n) if indeg[v] == 0]
    seen = 0
    while queue:
        v = queue.pop()
        seen += 1
        for w in succ[v]:
            indeg[w] -= 1
            if indeg[w] == 0:
                queue.append(w)
    return seen == n


def body_order(
    insns: Sequence[Instruction], union_edges: Set[Tuple[int, int]]
) -> List[Instruction]:
    """Topological order of the fragment roles under the union edges."""
    n = len(insns)
    try:
        order = topological_order(n, union_edges, priority=list(range(n)))
    except LinearizeError as exc:
        raise ExtractionError(str(exc)) from exc
    return [insns[role] for role in order]


def call_body(ordered: Sequence[Instruction]) -> List[Instruction]:
    """The outlined procedure's body for an already-ordered fragment.

    A fragment containing a ``bl`` gets the ``push {lr}`` / ``pop {pc}``
    bracket (legality guarantees nothing inside touches ``sp``, so the
    one-word shift is invisible); otherwise a bare ``mov pc, lr`` return
    suffices.  This is the exact shape ``verify.validate.outlined_body``
    inverts when the translation validator inlines calls back.
    """
    contains_call = any(i.is_call for i in ordered)
    body: List[Instruction] = []
    if contains_call:
        body.append(Instruction("push", (RegList((LR,)),)))
    body.extend(ordered)
    if contains_call:
        body.append(Instruction("pop", (RegList((PC,)),)))
    else:
        body.append(Instruction("mov", (Reg(PC), Reg(LR))))
    return body


def call_site_feasible(dfg: DFG, nodes: Iterable[int]) -> bool:
    """Can a ``bl`` replace this occurrence without breaking ``lr``?

    The inserted call clobbers ``lr``, so every external ``lr`` reader
    must be orderable before the call site.  Cheap sufficient test
    first: dependence edges only run forward, so readers positioned
    before every fragment node can always be ordered before the call.
    The full contracted-acyclicity check runs only for the rare rest.
    """
    node_set = set(nodes)
    readers = _lr_reader_positions(dfg)
    if not readers:
        return True
    lowest = min(node_set)
    if all(pos < lowest for pos in readers):
        return True
    try:
        _linearized_blocks(dfg, [node_set], [None])
    except ExtractionError:
        return False
    return True


def _lr_reader_positions(dfg: DFG):
    """Cached positions of lr-reading instructions in the block."""
    cached = getattr(dfg, "_lr_readers_cache", None)
    if cached is None:
        cached = tuple(
            i for i, insn in enumerate(dfg.insns)
            if LR in insn.regs_read()
        )
        dfg._lr_readers_cache = cached
    return cached


def _linearized_blocks(
    dfg: DFG,
    fragment_sets: List[Set[int]],
    call_insns: List[Optional[Instruction]],
) -> List[object]:
    """Contract each fragment set to a supernode and re-linearize.

    Returns the new instruction stream where each supernode appears as
    its (possibly None) call instruction.  Raises
    :class:`ExtractionError` when the constraints are cyclic.
    """
    n = dfg.num_nodes
    super_of: Dict[int, int] = {}
    for k, nodes in enumerate(fragment_sets):
        for node in nodes:
            if node in super_of:
                raise ExtractionError("overlapping occurrences in one block")
            super_of[node] = k

    # contracted node ids: supernode k -> n + k ; plain node -> itself
    def cid(node: int) -> int:
        return n + super_of[node] if node in super_of else node

    edges: Set[Tuple[int, int]] = set()
    for s, d in block_constraint_edges(dfg):
        cs, cd_ = cid(s), cid(d)
        if cs != cd_:
            edges.add((cs, cd_))
    # lr protection: external lr readers must precede every call site
    for node, insn in enumerate(dfg.insns):
        if node in super_of:
            continue
        if LR in insn.regs_read():
            for k in range(len(fragment_sets)):
                edges.add((cid(node), n + k))

    total = n + len(fragment_sets)
    priority = list(range(n)) + [min(nodes) for nodes in fragment_sets]
    try:
        order = topological_order(total, edges, priority)
    except LinearizeError as exc:
        raise ExtractionError(str(exc)) from exc
    stream: List[object] = []
    for v in order:
        if v >= n:
            stream.append(("call", v - n))
        elif v not in super_of:
            stream.append(dfg.insns[v])
    result: List[object] = []
    for item in stream:
        if isinstance(item, tuple):
            call = call_insns[item[1]]
            if call is not None:
                result.append(call)
            else:
                result.append(("site", item[1]))
        else:
            result.append(item)
    return result


# ----------------------------------------------------------------------
# call outlining
# ----------------------------------------------------------------------
def extract_call(
    module: Module,
    dfgs: Sequence[DFG],
    insns: Sequence[Instruction],
    embeddings: Sequence[Embedding],
    union_edges: Set[Tuple[int, int]],
    name: Optional[str] = None,
) -> str:
    """Outline the fragment into a new procedure; rewrite call sites.

    Returns the new procedure's name.
    """
    if name is None:
        name = module.fresh_label("pa")
    if _TELEMETRY.enabled:
        _TELEMETRY.count("extract.calls")
        _TELEMETRY.count("extract.call_sites", len(embeddings))
    ordered = body_order(insns, union_edges)
    body = call_body(ordered)
    new_func = Function(name=name, blocks=[BasicBlock(instructions=body)])

    call_insn = Instruction("bl", (LabelRef(name),))
    by_block: Dict[Tuple[str, int], List[Embedding]] = {}
    for emb in embeddings:
        by_block.setdefault(dfgs[emb.graph].origin, []).append(emb)

    for (func_name, block_index), embs in by_block.items():
        func = module.function(func_name)
        dfg = _dfg_at(dfgs, embs[0].graph)
        fragment_sets = [set(e.nodes) for e in embs]
        stream = _linearized_blocks(
            dfg, fragment_sets, [call_insn] * len(embs)
        )
        func.blocks[block_index].instructions = list(stream)

    module.functions.append(new_func)
    if _LEDGER.enabled:
        _LEDGER.emit("rewrite", method="call", symbol=name,
                     occurrences=len(embeddings),
                     body_size=len(body))
    return name


# ----------------------------------------------------------------------
# cross jumping (tail merge)
# ----------------------------------------------------------------------
def extract_crossjump(
    module: Module,
    dfgs: Sequence[DFG],
    insns: Sequence[Instruction],
    embeddings: Sequence[Embedding],
    union_edges: Set[Tuple[int, int]],
    label: Optional[str] = None,
) -> str:
    """Merge the occurrences into one shared tail; returns its label."""
    if label is None:
        label = module.fresh_label("tail")
    if not embeddings:
        raise ExtractionError("cross jump needs at least one occurrence")
    if _TELEMETRY.enabled:
        _TELEMETRY.count("extract.crossjumps")
        _TELEMETRY.count("extract.crossjump_sites", len(embeddings))
    # The control transfer must close the shared tail even when nothing
    # data-depends on it (an unconditional ``b`` reads no registers).
    term_roles = [
        r for r, insn in enumerate(insns)
        if insn.is_terminator or (insn.is_branch and not insn.is_call)
    ]
    if len(term_roles) != 1:
        raise ExtractionError("cross jump fragment needs exactly one exit")
    union_edges = set(union_edges) | {
        (r, term_roles[0]) for r in range(len(insns)) if r != term_roles[0]
    }
    tail_body = body_order(insns, union_edges)
    survivor, rest = embeddings[0], list(embeddings[1:])

    # group per function so splits can be applied high-index-first
    per_function: Dict[str, List[Tuple[int, Embedding, bool]]] = {}
    sdfg = dfgs[survivor.graph]
    per_function.setdefault(sdfg.origin[0], []).append(
        (sdfg.origin[1], survivor, True)
    )
    for emb in rest:
        dfg = dfgs[emb.graph]
        per_function.setdefault(dfg.origin[0], []).append(
            (dfg.origin[1], emb, False)
        )

    branch = Instruction("b", (LabelRef(label),))
    for func_name, entries in per_function.items():
        func = module.function(func_name)
        for block_index, emb, is_survivor in sorted(entries, reverse=True):
            dfg = dfgs[emb.graph]
            nodes = set(emb.nodes)
            head = [
                item
                for item in _linearized_blocks(dfg, [nodes], [None])
                if not isinstance(item, tuple)
            ]
            old = func.blocks[block_index]
            if is_survivor:
                head_block = BasicBlock(labels=old.labels, instructions=head)
                tail_block = BasicBlock(
                    labels=[label], instructions=list(tail_body)
                )
                func.blocks[block_index:block_index + 1] = [
                    head_block, tail_block,
                ]
            else:
                old.instructions = head + [branch]
    if _LEDGER.enabled:
        _LEDGER.emit("rewrite", method="crossjump", symbol=label,
                     occurrences=len(embeddings),
                     body_size=len(tail_body))
    return label


def _dfg_at(dfgs: Sequence[DFG], index: int) -> DFG:
    return dfgs[index]
