"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``compile``   mini-C source -> assembly listing
``run``       compile (or assemble) and execute on the simulator
``pa``        run procedural abstraction on a program and report savings
``audit``     abstract-interpretation audit: per-function stack/value
              invariants and proven site-level events (exit 1 on a
              miscompile-class fact; ``--json`` emits schema
              ``repro.verify.audit/1``)
``lint``      check a program against the module invariants (exit 1 on
              error findings; ``--json`` for the CI-consumable report,
              schema ``repro.verify.lint/2``)
``table1``    regenerate the paper's Table 1 on the bundled workloads
``stats``     DFG fan statistics for a program (Tables 2/3 style)
``profile``   run a workload under telemetry and print the phase tree
``explain``   narrate one abstraction round from the decision ledger
``variance``  differential robustness sweep over perturbed compiler
              variants (schema ``repro.variance/1``); ``--fuzz-seed``
              swaps the workload for a generated mini-C program

``pa --verify`` translation-validates every extraction round (re-lint +
symbolic block equivalence, see :mod:`repro.verify.validate`) and exits
with code 2 when a round cannot be proven equivalent; the counterexample
lands in the decision ledger (``--ledger-out``).

``pa --sanitize`` (also ``variance --sanitize``) runs the before/after
simulations under the stack sanitizer (:mod:`repro.sim.sanitize`) —
shadow call stack, saved-lr protection, stack-init tracking — and exits
2 (``pa``) / fails the variant oracle (``variance``) when the
abstracted program trips finding kinds its original does not.  The
sanitizer is a passive observer: sanitized runs are bit-identical to
plain ones, so the flag is free until a counterexample fires.

``pa``, ``table1`` and ``profile`` accept ``--trace-out FILE`` (Chrome
``trace_event`` JSON, viewable in ``chrome://tracing`` / Perfetto) and
``--stats-out FILE`` (flat stats JSON: counters, histogram and span
summaries, structured events).  ``table1 --json FILE`` writes the same
stats schema with one ``table1.row`` event per workload/engine cell.
Output options refuse to overwrite existing files unless ``--force``.

``pa`` additionally accepts ``--report FILE`` (self-contained HTML run
report) and ``--ledger-out FILE`` (the decision ledger as JSONL, schema
``repro.report.ledger/1``), both backed by the provenance records of
:mod:`repro.report.ledger`; ``explain`` renders the same records as
text, either by re-running a workload or replaying ``--ledger FILE``.

Scale (see ``src/repro/scale/``): ``pa``, ``table1`` and ``profile``
accept ``--workers N`` (shard the block DFGs into independent clusters
and mine them on N worker processes; ``N=1`` runs the same sharded
engine in-process) and ``--fragment-cache DIR`` (persist the
content-addressed shard cache across runs; implies ``--workers 1``).
The sharded engine's output is bit-identical for every worker count and
every cache state — only wall-clock changes.

Observability (see :mod:`repro.telemetry`): the same three commands
accept ``--progress`` (a live one-line status on stderr),
``--events-out FILE`` (a JSONL stream of progress events, schema
``repro.telemetry.events/1``) and ``--metrics-out FILE`` (an
OpenMetrics/Prometheus-textfile snapshot of the run's counters,
histograms and per-shard mining timings).  With ``--workers`` the
``--trace-out`` Chrome trace stitches every worker process's spans in
under named process rows.  All of it is off by default and none of it
changes results: the observability flags are load-bearing-free by
construction (see the bit-identity tests).

Resilience (see ``src/repro/resilience/``): ``pa --checkpoint FILE``
rewrites a crash-safe resume file after every committed round and
``pa --resume FILE`` continues from it, bit-identically to the
uninterrupted run.  ``--fault point[:mode[:at]]`` (repeatable; also the
``REPRO_FAULT`` environment variable) arms the deterministic
fault-injection harness.  Every internal failure crosses :func:`main`
as one structured ``error[CODE]: message`` diagnostic plus a
``run.abort`` ledger record — never a traceback (set ``REPRO_DEBUG=1``
to re-raise).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
import time
from typing import Optional

from repro import telemetry
from repro.telemetry import progress as telemetry_progress
from repro.telemetry.openmetrics import SHARD_TIMING_EVENT
from repro.analysis.tables import Table1Row, format_table1, format_table2
from repro.report import ledger
from repro.report.explain import explain_round, explain_run
from repro.report.html import write_report
from repro.binary.blocks import module_from_asm
from repro.binary.layout import layout
from repro.binary.program import Module
from repro.dfg.builder import build_dfgs
from repro.dfg.graph import FLOW_KINDS
from repro.dfg.stats import fanout_summary
from repro.binary.image import Image
from repro.binary.loader import load_image
from repro.isa.assembler import parse_program
from repro.minicc.driver import (
    CompileConfig,
    compile_to_asm,
    compile_to_image,
    compile_to_module,
)
from repro.minicc.scheduler import WINDOW
from repro.pa.driver import PAConfig, config_from_dict, run_pa
from repro.pa.sfx import SFXConfig, run_sfx
from repro.resilience import faultinject
from repro.resilience.checkpoint import (
    load_checkpoint,
    module_from_checkpoint,
)
from repro.resilience.errors import EXIT_INTERNAL, EXIT_INTERRUPT, ReproError
from repro.sim.machine import run_image
from repro.sim.sanitize import Sanitizer, counterexample_kinds
from repro.variance.genprog import GenConfig, generate_source, sized_config
from repro.variance.harness import VarianceConfig, run_variance
from repro.verify.absint import AUDIT_SCHEMA, audit_module
from repro.verify.lint import Severity, lint_module
from repro.verify.validate import TranslationValidationError
from repro.workloads import PROGRAMS, compile_workload, verify_workload


def _load_module(path: str, assembly: bool) -> Module:
    if path.endswith(".img"):
        # A linked binary image: decompile it through the loader, the
        # same path the paper's post link-time optimizer takes.
        with open(path, "rb") as handle:
            return load_image(Image.from_bytes(handle.read()))
    with open(path) as handle:
        source = handle.read()
    if assembly or path.endswith((".s", ".asm")):
        return module_from_asm(parse_program(source), entry="_start")
    return compile_to_module(source)


def _load_source(source: str, assembly: bool) -> Module:
    """A bundled workload by name, or a mini-C / assembly file."""
    if source in PROGRAMS:
        return compile_workload(source)
    if not os.path.exists(source):
        sys.exit(
            f"error: {source!r} is neither a bundled workload "
            f"({', '.join(sorted(PROGRAMS))}) nor a file"
        )
    return _load_module(source, assembly)


# ----------------------------------------------------------------------
# telemetry plumbing shared by pa / table1 / profile
# ----------------------------------------------------------------------
#: args attributes that name output files (checked before the run)
_OUTPUT_ATTRS = ("trace_out", "stats_out", "json", "report", "ledger_out",
                 "events_out", "metrics_out", "output", "image_out")


def _add_telemetry_args(parser) -> None:
    parser.add_argument(
        "--trace-out", metavar="FILE",
        help="write a Chrome trace_event JSON (chrome://tracing, "
             "Perfetto); with --workers the trace merges every worker "
             "process under named process rows",
    )
    parser.add_argument(
        "--stats-out", metavar="FILE",
        help="write counters/histograms/span summaries as JSON",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE",
        help="write the run's counters/histograms/per-shard timings in "
             "the OpenMetrics text format (Prometheus textfile "
             "collector)",
    )
    parser.add_argument(
        "--events-out", metavar="FILE",
        help="stream live progress events as JSONL (schema "
             f"{telemetry.EVENTS_SCHEMA})",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="live one-line status on stderr (rounds, shards, cache "
             "hits, savings)",
    )
    parser.add_argument(
        "--force", action="store_true",
        help="overwrite existing output files",
    )


def _add_scale_args(parser) -> None:
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="mine with the sharded scale engine on N worker processes "
             "(1 = sharded but in-process); the result is bit-identical "
             "for every N >= 1 and every cache state.  Default 0 keeps "
             "the legacy serial engine",
    )
    parser.add_argument(
        "--fragment-cache", metavar="DIR",
        help="persist the content-addressed fragment cache under DIR so "
             "later runs skip re-mining unchanged shards (implies the "
             "in-memory cache the scale engine always uses)",
    )
    parser.add_argument(
        "--shard-retries", type=int, default=None, metavar="N",
        help="redeliveries per shard before it falls back to an "
             "in-parent serial re-mine and then quarantine (scale "
             "engine; default 2).  Retries re-run the same pure mine, "
             "so the crash/retry schedule never changes results",
    )
    parser.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="per-shard soft timeout (scale engine, 2+ workers): a "
             "shard in flight longer than this has its worker killed "
             "and is redelivered.  Default: no timeout",
    )
    parser.add_argument(
        "--strict-shards", action="store_true",
        help="fail the run with a typed error (REPRO-SHARD, exit 7) "
             "when a shard is quarantined, instead of the default "
             "policy of dropping it and degrading the run",
    )


def _apply_shard_policy(config, args) -> None:
    """Fold the supervised executor's policy flags into *config*.

    Like ``--workers`` these are machine-local execution knobs: retry
    schedules and timeouts re-run the same pure mine, so they cannot
    change a result — only whether a crashy run completes, degrades or
    (``--strict-shards``) fails typed.  Unset flags keep the config's
    (or the resumed checkpoint's) values.
    """
    if args.shard_retries is not None:
        config.shard_retries = args.shard_retries
    if args.shard_timeout is not None:
        config.shard_timeout = args.shard_timeout
    if args.strict_shards:
        config.strict_shards = True


def _check_output_paths(args) -> list:
    """Validate every requested output path before the (long) run.

    A missing parent directory or an existing file without ``--force``
    aborts immediately instead of after minutes of mining.
    """
    paths = [
        path for name in _OUTPUT_ATTRS
        if (path := getattr(args, name, None))
    ]
    for path in paths:
        directory = os.path.dirname(path) or "."
        if not os.path.isdir(directory):
            sys.exit(f"error: output directory does not exist: {path}")
        if os.path.exists(path) and not getattr(args, "force", False):
            sys.exit(
                f"error: refusing to overwrite {path} (use --force)"
            )
    return paths


def _telemetry_begin(args, force: bool = False) -> bool:
    """Enable + reset the registry when any telemetry output is wanted."""
    _check_output_paths(args)
    wanted = force or any(
        getattr(args, name, None)
        for name in ("trace_out", "stats_out", "json", "report",
                     "metrics_out")
    )
    if wanted:
        telemetry.reset()
        telemetry.enable()
    return wanted


def _ledger_begin(args) -> bool:
    """Enable + reset the decision ledger when provenance is wanted."""
    wanted = bool(getattr(args, "report", None)
                  or getattr(args, "ledger_out", None))
    if wanted:
        ledger.reset()
        ledger.enable()
    return wanted


def _ledger_finish(args, title: str) -> None:
    """Write the requested report/ledger files and disable the ledger."""
    registry = ledger.get()
    if getattr(args, "ledger_out", None):
        registry.write_jsonl(args.ledger_out)
        print(f"wrote {args.ledger_out}", file=sys.stderr)
    if getattr(args, "report", None):
        stats = telemetry.stats_dict(telemetry.get())
        tree = telemetry.tree_summary(telemetry.get())
        write_report(args.report, registry.records,
                     stats=stats, tree=tree, title=title)
        print(f"wrote {args.report}", file=sys.stderr)
    ledger.disable()
    ledger.reset()


def _telemetry_finish(args) -> None:
    """Write the requested export files and disable the registry."""
    registry = telemetry.get()
    if getattr(args, "trace_out", None):
        telemetry.write_chrome_trace(registry, args.trace_out)
        print(f"wrote {args.trace_out}", file=sys.stderr)
    for path in {getattr(args, "stats_out", None),
                 getattr(args, "json", None)} - {None}:
        telemetry.write_stats(registry, path)
        print(f"wrote {path}", file=sys.stderr)
    if getattr(args, "metrics_out", None):
        # a failed metrics export must never cost the primary outputs
        # that were already written above — warn and move on
        try:
            faultinject.fault("scale.metrics")
            telemetry.write_openmetrics(registry, args.metrics_out)
            print(f"wrote {args.metrics_out}", file=sys.stderr)
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            print(f"warning: metrics export failed ({exc})",
                  file=sys.stderr)
    telemetry.disable()


@contextlib.contextmanager
def _progress_scope(args):
    """Route run progress onto a live bus when ``--progress`` or
    ``--events-out`` ask for one; a no-op scope otherwise."""
    wants_tty = bool(getattr(args, "progress", False))
    events_path = getattr(args, "events_out", None)
    if not wants_tty and not events_path:
        yield None
        return
    bus = telemetry_progress.ProgressBus(
        tty=sys.stderr if wants_tty else None,
        events_path=events_path,
    )
    try:
        with telemetry_progress.activate(bus):
            yield bus
    finally:
        bus.close()
        if events_path and not bus.broken:
            print(f"wrote {events_path}", file=sys.stderr)


def _shard_imbalance_table(registry) -> str:
    """Per-shard mining wall-clock table (``profile``, scale engine).

    Aggregated from the ``scale.shard.timing`` events the pool parent
    emits per mined shard; empty string when none were recorded (serial
    engine, or every shard came from the cache)."""
    seconds = {}
    nodes = {}
    rounds = {}
    for event in registry.events:
        if event.get("name") != SHARD_TIMING_EVENT:
            continue
        shard = event.get("shard")
        if shard is None:
            continue
        seconds[shard] = (seconds.get(shard, 0.0)
                          + float(event.get("seconds", 0)))
        nodes[shard] = (nodes.get(shard, 0)
                        + int(event.get("lattice_nodes", 0)))
        rounds[shard] = rounds.get(shard, 0) + 1
    if not seconds:
        return ""
    total = sum(seconds.values())
    lines = ["shard  rounds   seconds   share  lattice nodes"]
    for shard in sorted(seconds):
        share = (seconds[shard] / total * 100.0) if total else 0.0
        lines.append(
            f"{shard:5d}  {rounds[shard]:6d}  {seconds[shard]:8.3f}  "
            f"{share:5.1f}%  {nodes[shard]:13d}"
        )
    mean = total / len(seconds)
    peak = max(seconds.values())
    ratio = (peak / mean) if mean else 0.0
    summary = (f"imbalance: max/mean = {ratio:.2f}x "
               f"over {len(seconds)} shards")
    stalled = registry.counter_value("scale.shards.stalled")
    if stalled:
        summary += f", {stalled} flagged stalled"
    retries = registry.counter_value("scale.shard.retries")
    if retries:
        summary += f", {retries} redeliveries"
    quarantined = registry.counter_value("scale.shards.quarantined")
    if quarantined:
        summary += f", {quarantined} quarantined"
    lines.append(summary)
    return "\n".join(lines)


def _compile_config_from_args(args) -> CompileConfig:
    """Collect the codegen-perturbation flags into a CompileConfig."""
    return CompileConfig(
        schedule=not args.no_schedule,
        schedule_window=args.schedule_window,
        peephole=args.peephole,
        layout_seed=args.layout_seed,
        regalloc_seed=args.regalloc_seed,
    )


def cmd_compile(args) -> int:
    _check_output_paths(args)
    with open(args.source) as handle:
        source = handle.read()
    config = _compile_config_from_args(args)
    if args.image_out:
        image = compile_to_image(source, config=config)
        with open(args.image_out, "wb") as handle:
            handle.write(image.to_bytes())
        print(f"wrote {args.image_out} ({image.text_size_bytes} text "
              f"bytes + {4 * len(image.data)} data bytes)",
              file=sys.stderr)
        return 0
    print(compile_to_asm(source, config=config))
    return 0


def cmd_run(args) -> int:
    module = _load_module(args.source, args.assembly)
    result = run_image(layout(module), max_steps=args.max_steps)
    sys.stdout.write(result.output_text)
    print(f"[exit {result.exit_code}, {result.steps} instructions]",
          file=sys.stderr)
    return result.exit_code


def cmd_pa(args) -> int:
    if args.engine == "sfx" and (args.verify or args.checkpoint
                                 or args.resume):
        sys.exit("error: --verify/--checkpoint/--resume need a graph "
                 "engine; the sfx baseline does not go through the "
                 "round loop they hook")
    if args.engine == "sfx" and (args.workers or args.fragment_cache):
        sys.exit("error: --workers/--fragment-cache need a graph "
                 "engine; the sfx baseline does not mine shards")
    if args.fragment_cache and not args.workers:
        args.workers = 1     # a persistent cache implies the scale engine
    for spec in args.fault or ():
        try:
            faultinject.arm(spec)
        except ValueError as exc:
            sys.exit(f"error: {exc}")
    if args.checkpoint:
        # Deliberately exempt from the clobber preflight: the file is
        # rewritten (atomically) after every round by design, and a
        # resumed run keeps checkpointing to the same path.
        directory = os.path.dirname(args.checkpoint) or "."
        if not os.path.isdir(directory):
            sys.exit("error: output directory does not exist: "
                     f"{args.checkpoint}")
    traced = _telemetry_begin(args)
    ledgered = _ledger_begin(args)
    resume = None
    if args.resume:
        # The checkpointed config wins (the continuation must replay
        # the original run's decisions); only the checkpoint path is
        # taken from this invocation.
        resume = load_checkpoint(args.resume)
        module = module_from_checkpoint(resume)
        config = config_from_dict(resume.config)
        config.checkpoint_path = args.checkpoint
        # Worker count and cache directory are machine-local execution
        # knobs — the scale engine's output is worker-count- and
        # cache-state-independent, so overriding them cannot change the
        # resumed result.  Switching engines (serial <-> scale) would.
        if args.workers and not config.workers:
            sys.exit("error: the checkpointed run used the serial "
                     "engine; --workers on resume would change its "
                     "decisions (re-run from scratch instead)")
        if args.workers:
            config.workers = args.workers
        if args.fragment_cache:
            config.fragment_cache = args.fragment_cache
        _apply_shard_policy(config, args)
        print(f"resumed from round {resume.round} ({args.resume})",
              file=sys.stderr)
    else:
        module = _load_source(args.source, args.assembly)
        config = PAConfig(
            miner=args.engine,
            max_nodes=args.max_nodes,
            time_budget=args.time_budget,
            verify=args.verify,
            verify_max_retries=args.verify_max_retries,
            checkpoint_path=args.checkpoint,
            workers=args.workers,
            fragment_cache=args.fragment_cache,
        )
        _apply_shard_policy(config, args)
    # The sanitizer is a passive observer: sanitized runs remain
    # bit-identical to plain ones, so running the oracle pair under it
    # changes nothing unless a counterexample fires.
    ref_sanitizer = Sanitizer() if args.sanitize else None
    reference = run_image(layout(module), max_steps=args.max_steps,
                          sanitizer=ref_sanitizer)
    before = module.num_instructions
    try:
        with _progress_scope(args), \
                ledger.GLOBAL.context(source=args.source):
            if args.engine == "sfx":
                result = run_sfx(module, SFXConfig(max_len=args.max_nodes))
            else:
                result = run_pa(module, config, resume=resume)
    except TranslationValidationError as exc:
        print(f"VERIFICATION FAILED: {exc}", file=sys.stderr)
        if exc.counterexample is not None:
            ce = exc.counterexample
            print(f"  counterexample: {ce.function} block {ce.old_block}, "
                  f"resource {ce.resource}", file=sys.stderr)
        if ledgered:
            _ledger_finish(
                args,
                title=f"PA run report — {args.source} ({args.engine})",
            )
        if traced:
            _telemetry_finish(args)
        return 2
    after_sanitizer = Sanitizer() if args.sanitize else None
    after = run_image(layout(module), max_steps=args.max_steps,
                      sanitizer=after_sanitizer)
    if args.sanitize:
        new_kinds = counterexample_kinds(ref_sanitizer, after_sanitizer)
        if new_kinds:
            print("SANITIZER FAILED: the abstracted program trips "
                  f"{', '.join(sorted(new_kinds))} that the original "
                  "does not", file=sys.stderr)
            for finding in after_sanitizer.findings:
                if finding.kind in new_kinds:
                    print(f"  [{finding.kind}] pc={finding.pc:#x}: "
                          f"{finding.detail}", file=sys.stderr)
            if ledgered:
                ledger.emit(
                    "sanitize.counterexample",
                    kinds=sorted(new_kinds),
                    findings=[f.to_dict()
                              for f in after_sanitizer.findings
                              if f.kind in new_kinds],
                )
                _ledger_finish(
                    args,
                    title=f"PA run report — {args.source} "
                          f"({args.engine})",
                )
            if traced:
                _telemetry_finish(args)
            return 2
    status = "OK" if (after.output, after.exit_code) == (
        reference.output, reference.exit_code) else "BEHAVIOUR CHANGED!"
    if args.verify and status == "OK":
        status = "OK, verified"
    if args.sanitize and status.startswith("OK"):
        status += ", sanitized"
    print(f"{args.engine}: {before} -> {module.num_instructions} "
          f"instructions (saved {result.saved}) in {result.rounds} rounds "
          f"[{status}]")
    if getattr(result, "workers", 0):
        print(f"scale: workers={result.workers} shards={result.shards} "
              f"cache {result.cache_hits} hits / "
              f"{result.cache_misses} misses, "
              f"{result.lattice_nodes_reused} lattice nodes reused",
              file=sys.stderr)
    if getattr(result, "stragglers", 0):
        print(f"note: {result.stragglers} shard(s) went quiet past the "
              "straggler watchdog threshold (see shard.stalled events)",
              file=sys.stderr)
    if getattr(result, "shards_retried", 0):
        print(f"note: {result.shards_retried} shard(s) needed "
              "redelivery (worker death/timeout/failure; results are "
              "unaffected — see scale.retry ledger records)",
              file=sys.stderr)
    if getattr(result, "shards_quarantined", 0):
        print(f"note: {result.shards_quarantined} shard(s) quarantined "
              "after retries and the serial fallback (see "
              "scale.quarantine ledger records)",
              file=sys.stderr)
    if getattr(result, "degraded", False):
        # Anytime semantics: degraded is still exit 0 — the module is
        # the valid best-so-far result, and the causes are on record.
        print("note: run degraded "
              f"({', '.join(result.degraded_reasons)}); "
              "best-so-far result kept", file=sys.stderr)
    for record in result.records:
        print(f"  round {record.round:2d} {record.method:9s} "
              f"size={record.size:2d} x{record.occurrences} "
              f"-> {record.new_symbol}")
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(module.render())
        print(f"wrote {args.output}")
    if ledgered:
        _ledger_finish(
            args, title=f"PA run report — {args.source} ({args.engine})"
        )
    if traced:
        _telemetry_finish(args)
    return 0 if status.startswith("OK") else 1


def cmd_audit(args) -> int:
    """Abstract-interpretation audit: per-function invariant dump.

    Exit 1 when the interpreter proves a miscompile-class fact
    (a clobbered saved return address or an unbalanced stack merge);
    warnings — caller-frame addressing, uninit reads, unbounded
    growth — report but do not fail, since outlined helpers exhibit
    them legitimately.
    """
    if args.json_out and args.json_out != "-":
        directory = os.path.dirname(args.json_out) or "."
        if not os.path.isdir(directory):
            sys.exit("error: output directory does not exist: "
                     f"{args.json_out}")
        if os.path.exists(args.json_out) and not args.force:
            sys.exit(f"error: refusing to overwrite {args.json_out} "
                     "(use --force)")
    traced = _telemetry_begin(args)
    module = _load_source(args.source, args.assembly)
    result = audit_module(module)
    payload = result.to_payload(source=args.source)

    if args.json_out == "-":
        json.dump(payload, sys.stdout, indent=2)
        print()
    elif args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json_out}", file=sys.stderr)
    else:
        errors = payload["counts"]["errors"]
        print(f"audit: {len(result.summaries)} functions, "
              f"{result.iterations} summary iterations, "
              f"{len(result.events)} events ({errors} errors)")
        for name, facts in payload["functions"].items():
            net = facts["net_delta"]
            height = "known" if facts["height_known"] else "LOST"
            bits = [f"net={'?' if net is None else net}",
                    f"height={height}",
                    f"max_height={facts['max_height']}"]
            if facts["retaddr_slots"]:
                bits.append(f"saved_lr@{facts['retaddr_slots']}")
            if facts["caller_reads"]:
                bits.append(f"caller_reads={facts['caller_reads']}")
            if facts["caller_writes"]:
                bits.append(f"caller_writes={facts['caller_writes']}")
            bits.append("fragile=" +
                        ("YES" if facts["fragile"] else "no"))
            print(f"  {name}: " + " ".join(bits))
        for event in result.events:
            where = f"{event.function}, block {event.block}"
            if event.insn is not None:
                where += f", insn {event.insn}"
            print(f"  [{event.kind}] {where}: {event.detail}")
    if traced:
        _telemetry_finish(args)
    return 0 if payload["ok"] else 1


def cmd_lint(args) -> int:
    """Lint a program against the module invariants (exit 1 on errors)."""
    module = _load_source(args.source, args.assembly)
    report = lint_module(module)
    if args.min_severity != "info":
        floor = Severity[args.min_severity.upper()]
        report.findings = [
            f for f in report.findings if f.severity >= floor
        ]
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    return 0 if report.ok else 1


def cmd_table1(args) -> int:
    if args.fragment_cache and not args.workers:
        args.workers = 1     # a persistent cache implies the scale engine
    traced = _telemetry_begin(args)
    rows = []
    with _progress_scope(args):
        for name in args.programs or sorted(PROGRAMS):
            base = compile_workload(name).num_instructions
            saved = {}
            for engine in ("sfx", "dgspan", "edgar"):
                module = compile_workload(name)
                started = time.perf_counter()
                with telemetry.span("table1.cell", workload=name,
                                    engine=engine):
                    if engine == "sfx":
                        result = run_sfx(module)
                    else:
                        config = PAConfig(
                            miner=engine, time_budget=args.time_budget,
                            workers=args.workers,
                            fragment_cache=args.fragment_cache)
                        _apply_shard_policy(config, args)
                        result = run_pa(module, config)
                verify_workload(name, module)
                saved[engine] = base - module.num_instructions
                elapsed = time.perf_counter() - started
                telemetry.event(
                    "table1.row",
                    program=name,
                    engine=engine,
                    instructions=base,
                    saved=saved[engine],
                    seconds=elapsed,
                    degraded=bool(getattr(result, "degraded", False)),
                    deadline_hits=getattr(result, "deadline_hits", 0),
                    mis_budget_exhausted=getattr(
                        result, "mis_budget_exhausted", 0),
                    workers=getattr(result, "workers", 0),
                    shards=getattr(result, "shards", 0),
                    cache_hits=getattr(result, "cache_hits", 0),
                    lattice_nodes_reused=getattr(
                        result, "lattice_nodes_reused", 0),
                    shards_retried=getattr(
                        result, "shards_retried", 0),
                    shards_quarantined=getattr(
                        result, "shards_quarantined", 0),
                )
                print(f"  {name}/{engine}: saved {saved[engine]} "
                      f"({elapsed:.1f}s)",
                      file=sys.stderr)
            rows.append(Table1Row(name, base, saved["sfx"],
                                  saved["dgspan"], saved["edgar"]))
    print(format_table1(rows))
    if traced:
        _telemetry_finish(args)
    return 0


def cmd_profile(args) -> int:
    """Run one workload under full telemetry; print the phase tree."""
    if args.verify and args.engine == "sfx":
        sys.exit("error: --verify needs a graph engine; the sfx baseline "
                 "does not go through the round loop the validator hooks")
    if args.fragment_cache and not args.workers:
        args.workers = 1     # a persistent cache implies the scale engine
    _telemetry_begin(args, force=True)
    module = _load_source(args.source, args.assembly)
    before = module.num_instructions
    with _progress_scope(args):
        if args.engine == "sfx":
            result = run_sfx(module, SFXConfig(max_len=args.max_nodes))
        else:
            config = PAConfig(
                miner=args.engine,
                max_nodes=args.max_nodes,
                time_budget=args.time_budget,
                verify=args.verify,
                workers=args.workers,
                fragment_cache=args.fragment_cache,
            )
            _apply_shard_policy(config, args)
            result = run_pa(module, config)
    registry = telemetry.get()
    print(f"{args.source}/{args.engine}: {before} -> "
          f"{module.num_instructions} instructions "
          f"(saved {result.saved}) in {result.rounds} rounds, "
          f"{result.elapsed_seconds:.2f}s")
    print()
    print(telemetry.tree_summary(registry))
    print()
    print(telemetry.counters_summary(registry))
    shard_table = _shard_imbalance_table(registry)
    if shard_table:
        print()
        print(shard_table)
    _telemetry_finish(args)
    return 0


def cmd_explain(args) -> int:
    """Explain one abstraction round (or the whole run) from the ledger.

    Without ``--ledger`` the workload is (re)run with the decision
    ledger enabled; with it, a previously saved ``--ledger-out`` JSONL
    stream is replayed instantly.
    """
    if args.ledger:
        records = ledger.read_jsonl(args.ledger)
    else:
        ledger.reset()
        ledger.enable()
        try:
            module = _load_source(args.source, args.assembly)
            with ledger.GLOBAL.context(source=args.source):
                run_pa(module, PAConfig(
                    miner=args.engine,
                    max_nodes=args.max_nodes,
                    time_budget=args.time_budget,
                ))
            records = list(ledger.get().records)
        finally:
            ledger.disable()
            ledger.reset()
    if not records:
        sys.exit("error: the ledger is empty (nothing to explain)")
    if args.round == "all":
        print(explain_run(records))
    else:
        try:
            round_number = int(args.round)
        except ValueError:
            sys.exit(f"error: round must be an integer or 'all', "
                     f"got {args.round!r}")
        print(explain_round(records, round_number))
    return 0


def cmd_stats(args) -> int:
    module = _load_source(args.source, args.assembly)
    dfgs = build_dfgs(module, min_nodes=1, mined_kinds=FLOW_KINDS)
    summary = fanout_summary(dfgs)
    print(format_table2({args.source: summary}))
    return 0


def cmd_variance(args) -> int:
    """Differential compilation-variance sweep (schema repro.variance/1).

    Exit 1 when the oracle disagrees on any variant, the variants'
    original builds behave differently, or ``--min-overlap`` is not
    met; exit 0 otherwise.
    """
    if args.fuzz_seed is not None:
        if args.fuzz_size:
            gen = sized_config(args.fuzz_seed, args.fuzz_size)
        else:
            gen = GenConfig(seed=args.fuzz_seed)
        source = generate_source(gen)
        source_name = f"fuzz-{args.fuzz_seed}"
    elif args.workload in PROGRAMS:
        source = PROGRAMS[args.workload].source
        source_name = args.workload
    elif os.path.exists(args.workload):
        with open(args.workload) as handle:
            source = handle.read()
        source_name = args.workload
    else:
        sys.exit(
            f"error: {args.workload!r} is neither a bundled workload "
            f"({', '.join(sorted(PROGRAMS))}) nor a mini-C file"
        )

    if args.json_out and args.json_out != "-":
        directory = os.path.dirname(args.json_out) or "."
        if not os.path.isdir(directory):
            sys.exit("error: output directory does not exist: "
                     f"{args.json_out}")
        if os.path.exists(args.json_out) and not args.force:
            sys.exit(f"error: refusing to overwrite {args.json_out} "
                     "(use --force)")
    ledgered = _ledger_begin(args)

    config = VarianceConfig(
        engine=args.engine,
        n_variants=args.variants,
        grid_seed=args.seed,
        max_nodes=args.max_nodes,
        time_budget=args.time_budget,
        verify=args.verify,
        max_steps=args.max_steps,
        sanitize=args.sanitize,
    )
    with ledger.GLOBAL.context(source=source_name):
        report = run_variance(source, config, source_name=source_name)

    out = sys.stderr if args.json_out == "-" else sys.stdout
    print(f"variance sweep: {source_name} x {report['n_variants']} "
          f"variants ({args.engine})", file=out)
    for row in report["variants"]:
        oracle = "oracle ok" if row["oracle_ok"] else (
            f"ORACLE FAILED: {row['oracle_detail']}")
        print(f"  {row['name']:<24s} {row['instructions_before']:5d} -> "
              f"{row['instructions_after']:5d} (saved {row['saved']:3d}, "
              f"{row['fragments']} fragments) [{oracle}]", file=out)
    print(f"  fragment overlap: mean jaccard "
          f"{report['overlap']['mean_jaccard']}, min "
          f"{report['overlap']['min_jaccard']}", file=out)
    print(f"  savings degradation: {report['savings']['degradation']} "
          f"(max {report['savings']['max']}, min "
          f"{report['savings']['min']})", file=out)

    status = 0
    if not report["oracle_ok"]:
        print("FAIL: abstraction changed behaviour on at least one "
              "variant", file=sys.stderr)
        status = 1
    if not report["cross_variant_behaviour_ok"]:
        print("FAIL: variant builds of the same source behave "
              "differently (codegen-knob bug)", file=sys.stderr)
        status = 1
    if (args.min_overlap is not None
            and report["overlap"]["mean_jaccard"] < args.min_overlap):
        print(f"FAIL: mean fragment overlap "
              f"{report['overlap']['mean_jaccard']} below the "
              f"--min-overlap {args.min_overlap} gate", file=sys.stderr)
        status = 1

    if args.json_out == "-":
        json.dump(report, sys.stdout, indent=2)
        print()
    elif args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json_out}", file=sys.stderr)
    if ledgered:
        _ledger_finish(args, title=f"Variance sweep — {source_name} "
                                   f"({args.engine})")
    return status


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Graph-based procedural abstraction (CGO 2007)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "compile",
        help="compile mini-C to assembly (or a linked .img)",
        description="Compile mini-C to an assembly listing, or with "
                    "--image-out to a linked binary image.  The "
                    "remaining flags are compilation-variance knobs "
                    "(see the variance command): each one perturbs "
                    "code generation without changing behaviour.",
    )
    p.add_argument("source")
    p.add_argument("--no-schedule", action="store_true",
                   help="skip the per-block list scheduler (emit "
                        "template order)")
    p.add_argument("--schedule-window", type=int, default=WINDOW,
                   metavar="N",
                   help="scheduler lookahead window (default: "
                        "%(default)s; values < 3 disable reordering)")
    p.add_argument("--peephole", action=argparse.BooleanOptionalAction,
                   default=False,
                   help="late peephole cleanup: jump-to-next elision "
                        "and no-op removal (default: off)")
    p.add_argument("--layout-seed", type=int, default=None, metavar="S",
                   help="shuffle the function emission order with this "
                        "seed (default: source order)")
    p.add_argument("--regalloc-seed", type=int, default=None, metavar="S",
                   help="permute the callee-saved register assignment "
                        "order with this seed (default: r4..r10)")
    p.add_argument("--image-out", metavar="FILE",
                   help="link and write a runnable binary image "
                        "(.img) instead of printing assembly")
    p.add_argument("--force", action="store_true",
                   help="overwrite existing output files")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("run", help="compile/assemble and execute")
    p.add_argument("source",
                   help="mini-C source, .s/.asm assembly, or linked "
                        ".img image")
    p.add_argument("--assembly", action="store_true",
                   help="treat the input as assembly, not mini-C")
    p.add_argument("--max-steps", type=int, default=50_000_000)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("pa", help="run procedural abstraction")
    p.add_argument("source",
                   help="workload name, source path, or linked .img")
    p.add_argument("--engine", choices=("sfx", "dgspan", "edgar"),
                   default="edgar")
    p.add_argument("--assembly", action="store_true")
    p.add_argument("--max-nodes", type=int, default=8)
    p.add_argument("--time-budget", type=float, default=600.0)
    p.add_argument("--max-steps", type=int, default=50_000_000)
    p.add_argument("-o", "--output", help="write the compacted assembly")
    p.add_argument("--verify", action="store_true",
                   help="translation-validate every round; exit 2 on a "
                        "counterexample")
    p.add_argument("--sanitize", action="store_true",
                   help="run the before/after simulations under the "
                        "stack sanitizer (shadow call stack, saved-lr "
                        "protection, init tracking); exit 2 when the "
                        "abstracted program trips finding kinds the "
                        "original does not.  Off by default; sanitized "
                        "runs are bit-identical to plain ones")
    p.add_argument("--verify-max-retries", type=int, default=3,
                   metavar="N",
                   help="verify-failure recovery attempts per round "
                        "(rollback + blocklist + re-mine) before the "
                        "exit-2 abort (default: 3)")
    p.add_argument("--checkpoint", metavar="FILE",
                   help="rewrite a crash-safe resume file (schema "
                        "repro.resilience.ckpt/1) after every round")
    p.add_argument("--resume", metavar="FILE",
                   help="continue a checkpointed run; bit-identical to "
                        "the uninterrupted one")
    _add_scale_args(p)
    p.add_argument("--fault", action="append", metavar="SPEC",
                   help="arm a deterministic fault point, "
                        "point[:mode[:at]] (repeatable; modes: raise, "
                        "interrupt, deadline, corrupt)")
    p.add_argument("--report", metavar="FILE",
                   help="write a self-contained HTML run report")
    p.add_argument("--ledger-out", metavar="FILE",
                   help="write the decision ledger as JSONL")
    _add_telemetry_args(p)
    p.set_defaults(func=cmd_pa)

    p = sub.add_parser(
        "audit",
        help="abstract-interpretation audit: per-function stack/value "
             "invariants",
        description="Run the interprocedural abstract interpreter and "
                    "dump each function's proven invariants (net stack "
                    "delta, tracked height, saved-lr slots, "
                    "caller-frame accesses, fragility) plus every "
                    "site-level event.  Exits 1 when a "
                    "miscompile-class fact is proven (clobbered saved "
                    "return address, unbalanced stack merge).  "
                    f"--json emits the schema {AUDIT_SCHEMA}.",
    )
    p.add_argument("source", help="workload name or source path")
    p.add_argument("--assembly", action="store_true",
                   help="treat the input as assembly, not mini-C")
    p.add_argument("--json", dest="json_out", nargs="?", const="-",
                   metavar="FILE",
                   help=f"write the {AUDIT_SCHEMA} payload as JSON "
                        "(bare --json prints to stdout)")
    _add_telemetry_args(p)
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser(
        "lint",
        help="check a program against the module invariants",
    )
    p.add_argument("source", help="workload name or source path")
    p.add_argument("--assembly", action="store_true",
                   help="treat the input as assembly, not mini-C")
    p.add_argument("--json", action="store_true",
                   help="print the report as JSON (schema "
                        "repro.verify.lint/2)")
    p.add_argument("--min-severity", choices=("info", "warning", "error"),
                   default="info",
                   help="drop findings below this severity")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "explain",
        help="narrate one abstraction round from the decision ledger",
    )
    p.add_argument("round", help="round number, or 'all' for a digest")
    p.add_argument("--source", default="sha",
                   help="workload name or source path (default: sha)")
    p.add_argument("--engine", choices=("dgspan", "edgar"),
                   default="edgar")
    p.add_argument("--assembly", action="store_true")
    p.add_argument("--max-nodes", type=int, default=8)
    p.add_argument("--time-budget", type=float, default=600.0)
    p.add_argument("--ledger", metavar="FILE",
                   help="replay a saved --ledger-out JSONL instead of "
                        "re-running the workload")
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser("table1", help="regenerate the paper's Table 1")
    p.add_argument("programs", nargs="*",
                   help=f"subset of: {', '.join(sorted(PROGRAMS))}")
    p.add_argument("--time-budget", type=float, default=180.0)
    p.add_argument("--json", metavar="FILE",
                   help="write rows + telemetry as stats JSON")
    _add_scale_args(p)
    _add_telemetry_args(p)
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser(
        "profile",
        help="run a workload under telemetry; print the phase-time tree",
    )
    p.add_argument("source", help="workload name or source path")
    p.add_argument("--engine", choices=("sfx", "dgspan", "edgar"),
                   default="edgar")
    p.add_argument("--assembly", action="store_true")
    p.add_argument("--max-nodes", type=int, default=8)
    p.add_argument("--time-budget", type=float, default=600.0)
    p.add_argument("--verify", action="store_true",
                   help="translation-validate every round, so the tree "
                        "shows verification cost alongside mining")
    _add_scale_args(p)
    _add_telemetry_args(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("stats", help="DFG fan statistics (Table 2 style)")
    p.add_argument("source", help="workload name or source path")
    p.add_argument("--assembly", action="store_true")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "variance",
        help="differential sweep over perturbed compiler variants",
        description="Compile one source under a grid of perturbed "
                    "minicc configurations (scheduler, block layout, "
                    "register assignment, peephole), abstract every "
                    "variant, and check three things: the simulation "
                    "oracle (original vs. abstracted behaviour AND "
                    "final data-section state, per variant), savings "
                    "degradation across variants, and pairwise "
                    "canonical-fingerprint overlap of the mined "
                    "fragments.  Emits the versioned JSON schema "
                    "repro.variance/1.",
    )
    p.add_argument("--workload", default="sha",
                   help="bundled workload name or mini-C file "
                        "(default: sha)")
    p.add_argument("--fuzz-seed", type=int, default=None, metavar="S",
                   help="ignore --workload; sweep a program generated "
                        "by the seeded mini-C fuzzer (genprog)")
    p.add_argument("--fuzz-size", type=int, default=None,
                   metavar="INSTRS",
                   help="approximate static instruction count of the "
                        "fuzzed program (with --fuzz-seed)")
    p.add_argument("--variants", type=int, default=4, metavar="K",
                   help="grid size incl. the baseline (default: 4)")
    p.add_argument("--seed", type=int, default=0,
                   help="variant-grid seed (default: 0)")
    p.add_argument("--engine", choices=("sfx", "dgspan", "edgar"),
                   default="edgar")
    p.add_argument("--max-nodes", type=int, default=8)
    p.add_argument("--time-budget", type=float, default=60.0,
                   help="PA mining budget per variant, seconds "
                        "(default: %(default)s)")
    p.add_argument("--max-steps", type=int, default=50_000_000)
    p.add_argument("--verify", action="store_true",
                   help="translation-validate every abstraction round "
                        "on every variant")
    p.add_argument("--sanitize", action="store_true",
                   help="run every oracle simulation under the stack "
                        "sanitizer; new finding kinds on an abstracted "
                        "build fail that variant's oracle")
    p.add_argument("--min-overlap", type=float, default=None,
                   metavar="J",
                   help="exit 1 when the mean pairwise fragment "
                        "overlap (Jaccard) falls below this gate")
    p.add_argument("--json", dest="json_out", nargs="?", const="-",
                   metavar="FILE",
                   help="write the repro.variance/1 report as JSON "
                        "(bare --json prints to stdout)")
    p.add_argument("--ledger-out", metavar="FILE",
                   help="write the decision ledger as JSONL")
    p.add_argument("--force", action="store_true",
                   help="overwrite existing output files")
    p.set_defaults(func=cmd_variance)

    return parser


def _abort_record(args, code: str, message: str) -> None:
    """Leave a ``run.abort`` ledger record (and the requested JSONL)
    behind, so even an aborted run has typed provenance."""
    if not ledger.is_enabled():
        return
    ledger.emit("run.abort", code=code, message=message)
    path = getattr(args, "ledger_out", None)
    if path:
        try:
            ledger.get().write_jsonl(path)
        except Exception:
            pass    # the abort diagnostic must never be masked
    ledger.disable()
    ledger.reset()


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    faultinject.arm_from_env()
    try:
        return args.func(args)
    except ReproError as exc:
        # The typed boundary: every internal failure leaves one
        # structured diagnostic and a documented exit code, never a
        # traceback.
        _abort_record(args, exc.code, str(exc))
        print(f"error[{exc.code}]: {exc}", file=sys.stderr)
        return exc.exit_code
    except KeyboardInterrupt:
        # Interrupts inside the round loop degrade to exit 0 (the
        # driver's anytime path); only one landing outside it — or a
        # second Ctrl-C — reaches this boundary.
        _abort_record(args, "REPRO-INTERRUPT", "interrupted")
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPT
    except Exception as exc:
        if os.environ.get("REPRO_DEBUG"):
            raise
        message = f"{type(exc).__name__}: {exc}"
        _abort_record(args, "REPRO-INTERNAL", message)
        print(f"error[REPRO-INTERNAL]: {message}", file=sys.stderr)
        return EXIT_INTERNAL
    finally:
        faultinject.disarm_all()


if __name__ == "__main__":
    sys.exit(main())
