"""ARM-subset simulator.

The paper validates its transformation by running the compacted binaries
on embedded hardware; we substitute a small interpreter so that every
test can execute a program image before and after procedural abstraction
and assert identical observable behaviour (exit code and output stream).
"""

from repro.sim.machine import ExecutionError, Machine, RunResult, run_image
from repro.sim.sanitize import (
    Sanitizer,
    SanitizerFinding,
    counterexample_kinds,
    run_sanitized,
)

__all__ = [
    "Machine",
    "RunResult",
    "run_image",
    "ExecutionError",
    "Sanitizer",
    "SanitizerFinding",
    "counterexample_kinds",
    "run_sanitized",
]
