"""The machine: image loading, the fetch/decode/execute loop, syscalls.

System-call interface (``swi #n``):

====  =========================================
 n    effect
====  =========================================
 0    exit with status ``r0``
 1    write the byte ``r0 & 0xff`` to the output stream
 2    write the signed decimal representation of ``r0``
====  =========================================

Programs normally terminate with ``swi #0``; returning from the entry
function to the sentinel link-register value also exits (status ``r0``),
which keeps hand-written test fragments short.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.isa.decoder import DecodingError, decode
from repro.isa.instructions import Instruction
from repro.isa.registers import LR, PC, SP

from repro.binary.image import STACK_TOP, Image
from repro.sim.cpu import CPU, CPUError, to_signed
from repro.sim.memory import Memory
from repro.telemetry import GLOBAL as _TELEMETRY

#: Returning to this address terminates the program.
EXIT_SENTINEL = 0xFFFF0000

SYS_EXIT = 0
SYS_PUTC = 1
SYS_PUTINT = 2


class ExecutionError(RuntimeError):
    """Raised when a program cannot be executed to completion."""


class _ExitProgram(Exception):
    def __init__(self, status: int):
        self.status = status & 0xFF


@dataclass
class RunResult:
    """Observable behaviour of one program run."""

    exit_code: int
    output: bytes
    steps: int

    @property
    def output_text(self) -> str:
        return self.output.decode("latin-1")


class Machine:
    """An ARM-subset machine executing a statically linked image."""

    def __init__(self, image: Image, max_steps: int = 50_000_000,
                 sanitizer: Optional[object] = None):
        self.image = image
        self.max_steps = max_steps
        self.memory = Memory()
        self.memory.write_words(image.text_base, image.text)
        self.memory.write_words(image.data_base, image.data)
        self.cpu = CPU(self.memory, self._syscall)
        self.cpu.regs[PC] = image.entry
        # Images larger than the conventional memory map (the layout
        # phase bumps their data base past the text) get their stack
        # placed above the data section; everything else keeps the
        # paper's fixed STACK_TOP, bit for bit.
        stack_top = max(
            STACK_TOP,
            (max(image.text_end, image.data_end) + 0x40000) & ~0xFFF,
        )
        self.stack_top = stack_top
        self.cpu.regs[SP] = stack_top
        self.cpu.regs[LR] = EXIT_SENTINEL
        self.output = bytearray()
        self._decode_cache: Dict[int, Instruction] = {}
        # A sanitizer is a passive pre-step observer (see
        # repro.sim.sanitize); None keeps the fetch loop branch-cheap
        # and the run's behaviour byte-identical either way.
        self.sanitizer = sanitizer
        if sanitizer is not None:
            sanitizer.attach(
                stack_top, floor=max(image.text_end, image.data_end)
            )

    # ------------------------------------------------------------------
    def _syscall(self, number: int, cpu: CPU) -> None:
        if number == SYS_EXIT:
            raise _ExitProgram(cpu.regs[0])
        if number == SYS_PUTC:
            self.output.append(cpu.regs[0] & 0xFF)
            return
        if number == SYS_PUTINT:
            self.output.extend(str(to_signed(cpu.regs[0])).encode())
            return
        raise ExecutionError(f"unknown system call: swi #{number}")

    def _fetch(self, addr: int) -> Instruction:
        insn = self._decode_cache.get(addr)
        if insn is None:
            word = self.memory.load_word(addr)
            try:
                insn = decode(word, addr)
            except DecodingError as exc:
                raise ExecutionError(
                    f"pc reached a non-instruction word at {addr:#x}: {exc}"
                ) from exc
            self._decode_cache[addr] = insn
        return insn

    def run(self) -> RunResult:
        """Run the program to completion and return its behaviour."""
        cpu = self.cpu
        sanitizer = self.sanitizer
        steps = 0
        try:
            while True:
                pc = cpu.regs[PC]
                if pc == EXIT_SENTINEL:
                    raise _ExitProgram(cpu.regs[0])
                if pc % 4:
                    raise ExecutionError(f"unaligned pc: {pc:#x}")
                insn = self._fetch(pc)
                if sanitizer is not None:
                    sanitizer.observe(insn, cpu)
                try:
                    cpu.step(insn)
                except CPUError as exc:
                    raise ExecutionError(f"at {pc:#x}: {exc}") from exc
                steps += 1
                if steps >= self.max_steps:
                    raise ExecutionError(
                        f"step budget exhausted after {steps} instructions"
                    )
        except _ExitProgram as exit_:
            if _TELEMETRY.enabled:
                _TELEMETRY.count("sim.runs")
                _TELEMETRY.count("sim.steps", steps)
            return RunResult(exit_.status, bytes(self.output), steps)


def run_image(image: Image, max_steps: int = 50_000_000,
              sanitizer: Optional[object] = None) -> RunResult:
    """Convenience wrapper: execute *image* and return the result."""
    with _TELEMETRY.span("sim.run"):
        return Machine(
            image, max_steps=max_steps, sanitizer=sanitizer
        ).run()
