"""Byte-addressable little-endian memory for the simulator.

Backed by 4 KiB pages allocated on demand, so the sparse ARM address
space (text at 0x8000, data at 0x40000, stack below 0x80000) costs only
what is touched.
"""

from __future__ import annotations

from typing import Dict

PAGE_BITS = 12
PAGE_SIZE = 1 << PAGE_BITS
PAGE_MASK = PAGE_SIZE - 1


class Memory:
    """Flat little-endian memory with on-demand page allocation."""

    def __init__(self) -> None:
        self._pages: Dict[int, bytearray] = {}

    def _page(self, addr: int) -> bytearray:
        page_no = addr >> PAGE_BITS
        page = self._pages.get(page_no)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_no] = page
        return page

    # ------------------------------------------------------------------
    # byte access
    # ------------------------------------------------------------------
    def load_byte(self, addr: int) -> int:
        return self._page(addr)[addr & PAGE_MASK]

    def store_byte(self, addr: int, value: int) -> None:
        self._page(addr)[addr & PAGE_MASK] = value & 0xFF

    # ------------------------------------------------------------------
    # word access (little-endian; may straddle a page boundary)
    # ------------------------------------------------------------------
    def load_word(self, addr: int) -> int:
        if addr & PAGE_MASK <= PAGE_SIZE - 4:
            page = self._page(addr)
            off = addr & PAGE_MASK
            return int.from_bytes(page[off:off + 4], "little")
        return (
            self.load_byte(addr)
            | (self.load_byte(addr + 1) << 8)
            | (self.load_byte(addr + 2) << 16)
            | (self.load_byte(addr + 3) << 24)
        )

    def store_word(self, addr: int, value: int) -> None:
        value &= 0xFFFFFFFF
        if addr & PAGE_MASK <= PAGE_SIZE - 4:
            page = self._page(addr)
            off = addr & PAGE_MASK
            page[off:off + 4] = value.to_bytes(4, "little")
            return
        for i in range(4):
            self.store_byte(addr + i, (value >> (8 * i)) & 0xFF)

    def write_words(self, addr: int, words) -> None:
        """Bulk-initialize consecutive words starting at *addr*."""
        for i, word in enumerate(words):
            self.store_word(addr + 4 * i, word)
