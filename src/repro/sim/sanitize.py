"""Simulation-time stack sanitizer: the dynamic half of the audit layer.

The abstract interpreter (:mod:`repro.verify.absint`) *proves* stack
facts; this module *observes* them on a concrete run, so each side
cross-checks the other.  A :class:`Sanitizer` is a passive pre-step
observer attached to a :class:`repro.sim.machine.Machine`: it never
mutates registers, memory or flags, so a sanitized run's observable
behaviour (exit code, output, step count) is bit-identical to an
unsanitized one.

Tracked shadow state:

* **Shadow call stack** — every ``bl`` pushes ``(expected return
  address, sp at the call)``; every return is checked against the top
  entry.  A return to the wrong address is a ``return-mismatch``; a
  matching return with a shifted ``sp`` is ``unbalanced-stack``.
* **Protected return-address words** — ``push`` with ``lr`` in the list
  marks the word that received the link register; any store that hits a
  protected word before its frame is popped is a ``retaddr-clobber``
  (the exact miscompile shape of the sp-fragility bug: a frameless
  outlined procedure storing through ``sp`` under a later-added
  ``push {lr}`` bracket).
* **Shadow init bits** — one bit per stack byte.  Moving ``sp`` *down*
  allocates (clears the bits: fresh slots hold garbage); moving it *up*
  deallocates (clears them again: stale data must not be trusted).
  Loading a never-stored stack byte is an ``uninit-slot-read``,
  mirroring the static interpreter's UNINIT domain.
* **Stack bounds** — ``sp`` above its initial value is
  ``stack-underflow``; more than :data:`STACK_SPAN` below it is
  ``stack-overflow``.

Findings are deduplicated per ``(kind, pc)`` site and capped, so a hot
loop reports each defect once.  :func:`counterexample_kinds` implements
the differential framing used by ``pa --verify --sanitize`` and the
variance oracle: only finding kinds that appear *after* a
transformation but not *before* it indict the transformation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.isa.instructions import Instruction
from repro.isa.operands import Mem, Reg
from repro.isa.registers import LR, PC, SP

from repro.binary.image import Image
from repro.sim.machine import (
    EXIT_SENTINEL,
    ExecutionError,
    Machine,
    RunResult,
)

MASK32 = 0xFFFFFFFF

#: Size of the shadowed stack window below the initial ``sp``.
STACK_SPAN = 1 << 20
#: Per-run cap on recorded findings (sites, post-dedup).
MAX_FINDINGS = 256

RETADDR_CLOBBER = "retaddr-clobber"
RETURN_MISMATCH = "return-mismatch"
UNBALANCED_STACK = "unbalanced-stack"
UNINIT_READ = "uninit-slot-read"
STACK_OVERFLOW = "stack-overflow"
STACK_UNDERFLOW = "stack-underflow"


@dataclass(frozen=True)
class SanitizerFinding:
    """One dynamic invariant violation, anchored at an instruction."""

    kind: str
    pc: int
    detail: str
    addr: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "pc": self.pc,
            "detail": self.detail,
            "addr": self.addr,
        }


class Sanitizer:
    """Passive shadow-stack/shadow-memory observer for one run."""

    def __init__(self, span: int = STACK_SPAN) -> None:
        self.span = span
        self.findings: List[SanitizerFinding] = []
        self.stack_top = 0
        self._stack_base = 0
        self._init = bytearray(0)
        self._protected: Dict[int, int] = {}
        self._shadow: List[Tuple[int, int]] = []
        self._seen: Set[Tuple[str, int]] = set()

    # ------------------------------------------------------------------
    def attach(self, stack_top: int, floor: int = 0) -> None:
        """Bind the shadow window to a machine's initial ``sp``.

        *floor* is the end of the loaded image: text/data below it are
        not stack, so loads there (literal pools, globals) are never
        init-checked and the window never extends into them.
        """
        self.stack_top = stack_top
        self._stack_base = max(stack_top - self.span, floor)
        self._init = bytearray(stack_top - self._stack_base)
        self._protected.clear()
        self._shadow.clear()

    @property
    def kinds(self) -> Set[str]:
        return {f.kind for f in self.findings}

    def _emit(self, kind: str, pc: int, detail: str,
              addr: Optional[int] = None) -> None:
        site = (kind, pc)
        if site in self._seen or len(self.findings) >= MAX_FINDINGS:
            return
        self._seen.add(site)
        self.findings.append(SanitizerFinding(kind, pc, detail, addr))

    # ------------------------------------------------------------------
    # shadow-memory primitives
    # ------------------------------------------------------------------
    def _in_window(self, addr: int) -> bool:
        return self._stack_base <= addr < self.stack_top

    def _mark_init(self, addr: int, size: int) -> None:
        for a in range(addr, addr + size):
            if self._in_window(a):
                self._init[a - self._stack_base] = 1

    def _clear_init(self, lo: int, hi: int) -> None:
        for a in range(max(lo, self._stack_base),
                       min(hi, self.stack_top)):
            self._init[a - self._stack_base] = 0

    def _check_store(self, addr: int, size: int, pc: int) -> None:
        word = addr & ~3
        if word in self._protected:
            self._emit(
                RETADDR_CLOBBER, pc,
                f"store to the saved return address at {word:#x}",
                addr=word,
            )
        self._mark_init(addr, size)

    def _check_load(self, addr: int, size: int, pc: int,
                    what: str) -> None:
        if not self._in_window(addr):
            return
        for a in range(addr, addr + size):
            if self._in_window(a) and \
                    not self._init[a - self._stack_base]:
                self._emit(
                    UNINIT_READ, pc,
                    f"{what} reads never-written stack memory "
                    f"at {addr:#x}",
                    addr=addr,
                )
                return

    def _move_sp(self, old_sp: int, new_sp: int, pc: int) -> None:
        if new_sp < old_sp:  # allocation: fresh slots hold garbage
            self._clear_init(new_sp, old_sp)
        elif new_sp > old_sp:  # deallocation: stale data dies
            self._clear_init(old_sp, new_sp)
            for addr in [a for a in self._protected
                         if old_sp <= a < new_sp]:
                del self._protected[addr]
        if new_sp > self.stack_top:
            self._emit(
                STACK_UNDERFLOW, pc,
                f"sp {new_sp:#x} rose above the stack top "
                f"{self.stack_top:#x}",
                addr=new_sp,
            )
        elif new_sp < self._stack_base:
            self._emit(
                STACK_OVERFLOW, pc,
                f"sp {new_sp:#x} fell below the stack window "
                f"({self._stack_base:#x})",
                addr=new_sp,
            )

    # ------------------------------------------------------------------
    # the return protocol
    # ------------------------------------------------------------------
    def _check_return(self, target: int, sp_after: int,
                      pc: int) -> None:
        if not self._shadow:
            return
        expected, sp_at_call = self._shadow[-1]
        if target == expected:
            self._shadow.pop()
            if sp_after != sp_at_call:
                self._emit(
                    UNBALANCED_STACK, pc,
                    f"return to {target:#x} with sp {sp_after:#x}, "
                    f"expected {sp_at_call:#x} from the call",
                    addr=sp_after,
                )
            return
        if target == EXIT_SENTINEL:
            return
        # Resync if the target matches a deeper frame (a chain of
        # returns elided by tail merging); otherwise the saved return
        # address was corrupted.
        for depth in range(len(self._shadow) - 2, -1, -1):
            if self._shadow[depth][0] == target:
                del self._shadow[depth:]
                return
        self._emit(
            RETURN_MISMATCH, pc,
            f"return to {target:#x}, expected {expected:#x}",
            addr=target,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _address(mem: Mem, cpu) -> int:
        base = cpu.read_reg(mem.base)
        offset = (cpu.read_reg(mem.index) if mem.index is not None
                  else mem.offset)
        return (base + offset) & MASK32 if mem.pre else base & MASK32

    def observe(self, insn: Instruction, cpu) -> None:
        """Inspect one instruction about to execute.  Never mutates
        architectural state; ``cpu.regs[PC]`` is the instruction's
        address."""
        if not cpu.flags.passes(insn.cond):
            return
        m, ops = insn.mnemonic, insn.operands
        pc = cpu.regs[PC]
        sp = cpu.regs[SP]

        if m == "push":
            regs = ops[0].regs
            new_sp = (sp - 4 * len(regs)) & MASK32
            self._move_sp(sp, new_sp, pc)
            for i, r in enumerate(regs):
                slot = (new_sp + 4 * i) & MASK32
                self._check_store(slot, 4, pc)
                if r == LR:
                    self._protected[slot] = cpu.read_reg(LR)
        elif m == "pop":
            regs = ops[0].regs
            n = len(regs)
            target = None
            for i, r in enumerate(regs):
                slot = (sp + 4 * i) & MASK32
                self._check_load(slot, 4, pc, "pop")
                self._protected.pop(slot & ~3, None)
                if r == PC:
                    target = cpu.memory.load_word(slot)
            sp_after = (sp + 4 * n) & MASK32
            self._move_sp(sp, sp_after, pc)
            if target is not None:
                self._check_return(target & MASK32, sp_after, pc)
        elif m in ("str", "strb") and isinstance(ops[1], Mem):
            addr = self._address(ops[1], cpu)
            self._check_store(addr, 1 if m == "strb" else 4, pc)
            if ops[1].writeback or not ops[1].pre:
                self._track_writeback(ops[1], cpu, pc)
        elif m in ("ldr", "ldrb") and isinstance(ops[1], Mem):
            addr = self._address(ops[1], cpu)
            self._check_load(addr, 1 if m == "ldrb" else 4, pc, m)
            if ops[1].writeback or not ops[1].pre:
                self._track_writeback(ops[1], cpu, pc)
            if isinstance(ops[0], Reg) and ops[0].num == PC:
                value = cpu.memory.load_word(addr) \
                    if m == "ldr" else cpu.memory.load_byte(addr)
                self._check_return(value & MASK32, sp, pc)
        elif m == "bl":
            self._shadow.append(((pc + 4) & MASK32, sp))
        elif m == "bx":
            self._check_return(
                cpu.read_reg(ops[0].num) & ~1 & MASK32, sp, pc)
        elif m in ("mov", "add", "sub") and isinstance(ops[0], Reg):
            if ops[0].num == PC:
                if m == "mov" and isinstance(ops[1], Reg):
                    self._check_return(
                        cpu.read_reg(ops[1].num) & MASK32, sp, pc)
            elif ops[0].num == SP:
                new_sp = self._simple_sp_value(insn, cpu)
                if new_sp is not None:
                    self._move_sp(sp, new_sp, pc)

    def _track_writeback(self, mem: Mem, cpu, pc: int) -> None:
        if mem.base == SP:
            base = cpu.read_reg(SP)
            offset = (cpu.read_reg(mem.index)
                      if mem.index is not None else mem.offset)
            self._move_sp(base, (base + offset) & MASK32, pc)

    @staticmethod
    def _simple_sp_value(insn: Instruction, cpu) -> Optional[int]:
        """Concrete new ``sp`` for mov/add/sub writing it, else None."""
        from repro.isa.operands import Imm, ShiftedReg

        def flex(op) -> Optional[int]:
            if isinstance(op, Imm):
                return op.value & MASK32
            if isinstance(op, Reg):
                return cpu.read_reg(op.num)
            if isinstance(op, ShiftedReg):
                return None
            return None

        m, ops = insn.mnemonic, insn.operands
        if m == "mov":
            return flex(ops[1])
        a = cpu.read_reg(ops[1].num)
        b = flex(ops[2])
        if b is None:
            return None
        return (a + b) & MASK32 if m == "add" else (a - b) & MASK32


def run_sanitized(
    image: Image, max_steps: int = 50_000_000
) -> Tuple[Optional[RunResult], Optional[ExecutionError], Sanitizer]:
    """Run *image* under a fresh sanitizer.

    Returns ``(result, error, sanitizer)``: exactly one of *result* and
    *error* is set (a crashing run still yields its findings, which is
    the point — the sanitizer flags the clobber before the wild jump).
    """
    sanitizer = Sanitizer()
    machine = Machine(image, max_steps=max_steps, sanitizer=sanitizer)
    try:
        return machine.run(), None, sanitizer
    except ExecutionError as exc:
        return None, exc, sanitizer


def counterexample_kinds(before: Sanitizer,
                         after: Sanitizer) -> Set[str]:
    """Finding kinds introduced by a transformation.

    The differential framing: the *before* (reference) program's
    findings are its own business; only kinds that appear on the
    transformed program but not the reference indict the
    transformation.
    """
    return after.kinds - before.kinds


__all__ = [
    "MAX_FINDINGS",
    "RETADDR_CLOBBER",
    "RETURN_MISMATCH",
    "STACK_OVERFLOW",
    "STACK_SPAN",
    "STACK_UNDERFLOW",
    "Sanitizer",
    "SanitizerFinding",
    "UNBALANCED_STACK",
    "UNINIT_READ",
    "counterexample_kinds",
    "run_sanitized",
]
