"""Text renderings of the paper's figures (11 and 12).

Rendered as labelled ASCII bar charts — the repository has no plotting
dependency, and the quantities of interest (relative savings, extraction
mechanism mix) read fine as text.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.analysis.tables import Table1Row


def _bar(value: float, scale: float, width: int = 40) -> str:
    filled = 0 if scale <= 0 else int(round(width * value / scale))
    return "#" * max(0, min(width, filled))


def format_fig11(rows: Sequence[Table1Row]) -> str:
    """Fig. 11: relative increase of savings over SFX, per program.

    The paper reports Edgar's average improvement at about +160 % and
    rijndael's at +266 %.
    """
    lines = ["Fig. 11. Relative increase of savings of graph-based PA "
             "compared to suffix trie."]
    increases = []
    for row in rows:
        if row.sfx <= 0:
            dg = ed = float("nan")
        else:
            dg = 100.0 * (row.dgspan - row.sfx) / row.sfx
            ed = 100.0 * (row.edgar - row.sfx) / row.sfx
            increases.append((row.program, dg, ed))
    scale = max((max(dg, ed) for __, dg, ed in increases), default=1.0)
    for program, dg, ed in increases:
        lines.append(f"{program:12s} DgSpan {dg:+7.1f}%  {_bar(dg, scale)}")
        lines.append(f"{'':12s} Edgar  {ed:+7.1f}%  {_bar(ed, scale)}")
    if increases:
        avg_dg = sum(dg for __, dg, ___ in increases) / len(increases)
        avg_ed = sum(ed for __, ___, ed in increases) / len(increases)
        lines.append(
            f"{'average':12s} DgSpan {avg_dg:+7.1f}%   Edgar {avg_ed:+7.1f}%"
        )
    return "\n".join(lines)


def format_fig12(
    mechanisms: Dict[str, Tuple[int, int]]
) -> str:
    """Fig. 12: extraction mechanisms used by SFX, DgSpan, and Edgar.

    *mechanisms* maps a miner name to ``(calls, cross_jumps)``.  The
    paper observes that "cross jump extraction occurs seldom since to be
    applicable, a fragment must end with a (rare) return or jump
    instruction."
    """
    lines = ["Fig. 12. Extraction mechanisms used."]
    scale = max(
        (calls + jumps for calls, jumps in mechanisms.values()), default=1
    )
    for miner, (calls, jumps) in mechanisms.items():
        total = calls + jumps
        lines.append(
            f"{miner:8s} call: {calls:4d} {_bar(calls, scale)}"
        )
        lines.append(
            f"{'':8s} xjmp: {jumps:4d} {_bar(jumps, scale)}"
        )
        if total:
            lines.append(
                f"{'':8s} cross-jump share: {jumps / total:.1%}"
            )
    return "\n".join(lines)
