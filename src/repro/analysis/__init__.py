"""Reporting: regenerate the paper's tables and figures as text."""

from repro.analysis.tables import (
    Table1Row,
    format_table1,
    format_table2,
    format_table3,
)
from repro.analysis.figures import format_fig11, format_fig12

__all__ = [
    "Table1Row",
    "format_table1",
    "format_table2",
    "format_table3",
    "format_fig11",
    "format_fig12",
]
