"""Text renderings of the paper's tables.

The benchmark harness produces the raw numbers; these helpers lay them
out in the same row/column shapes as the paper so results can be
compared side by side (EXPERIMENTS.md records both).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.dfg.stats import DegreeHistogram, FanoutSummary


@dataclass
class Table1Row:
    """One program's saved-instruction counts (paper Table 1)."""

    program: str
    instructions: int
    sfx: int
    dgspan: int
    edgar: int


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Render Table 1: saved instructions in the benchmark suite."""
    lines = [
        "Table 1. Saved instructions in the benchmark suite.",
        f"{'Program':12s} {'# Instructions':>14s} {'SFX':>6s} "
        f"{'DgSpan':>7s} {'Edgar':>6s}",
    ]
    total = Table1Row("total", 0, 0, 0, 0)
    for row in rows:
        lines.append(
            f"{row.program:12s} {row.instructions:14d} {row.sfx:6d} "
            f"{row.dgspan:7d} {row.edgar:6d}"
        )
        total.instructions += row.instructions
        total.sfx += row.sfx
        total.dgspan += row.dgspan
        total.edgar += row.edgar
    lines.append(
        f"{'total':12s} {total.instructions:14d} {total.sfx:6d} "
        f"{total.dgspan:7d} {total.edgar:6d}"
    )
    if total.sfx:
        lines.append(
            f"Edgar/SFX improvement: {total.edgar / total.sfx:.2f}x"
        )
    return "\n".join(lines)


def format_table2(per_program: Dict[str, FanoutSummary]) -> str:
    """Render Table 2: instructions with (deg_in | deg_out) > 1."""
    lines = [
        "Table 2. Number of instructions with (degree_IN v degree_OUT) > 1",
        f"{'Program':12s} {'degree > 1':>11s} {'degree <= 1':>12s} "
        f"{'fraction':>9s}",
    ]
    high_total = low_total = 0
    for program, summary in per_program.items():
        lines.append(
            f"{program:12s} {summary.high_degree:11d} "
            f"{summary.low_degree:12d} {summary.high_fraction:9.2%}"
        )
        high_total += summary.high_degree
        low_total += summary.low_degree
    fraction = high_total / (high_total + low_total) if high_total else 0.0
    lines.append(
        f"{'total':12s} {high_total:11d} {low_total:12d} {fraction:9.2%}"
    )
    return "\n".join(lines)


def format_table3(per_program: Dict[str, DegreeHistogram]) -> str:
    """Render Table 3: in/out-degree histogram of all instructions."""
    header = " ".join(f"{b:>6s}" for b in DegreeHistogram.BUCKETS)
    lines = [
        "Table 3. Indegree and outdegree of all instructions.",
        f"{'Program':12s} {'Type':4s} {header}",
    ]
    in_total = [0] * 5
    out_total = [0] * 5
    for program, hist in per_program.items():
        in_row = " ".join(f"{v:6d}" for v in hist.in_counts)
        out_row = " ".join(f"{v:6d}" for v in hist.out_counts)
        lines.append(f"{program:12s} {'In':4s} {in_row}")
        lines.append(f"{'':12s} {'Out':4s} {out_row}")
        in_total = [a + b for a, b in zip(in_total, hist.in_counts)]
        out_total = [a + b for a, b in zip(out_total, hist.out_counts)]
    lines.append(
        f"{'total':12s} {'In':4s} " + " ".join(f"{v:6d}" for v in in_total)
    )
    lines.append(
        f"{'':12s} {'Out':4s} " + " ".join(f"{v:6d}" for v in out_total)
    )
    return "\n".join(lines)
