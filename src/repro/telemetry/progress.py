"""Live progress: a cross-process heartbeat/event bus.

Three consumers hang off one event stream (schema
``repro.telemetry.events/1``), all off by default and all purely
observational:

* a live TTY status line (``pa --progress``) — one ``\\r``-rewritten
  stderr line with round / shard / cache / node / savings state;
* a JSONL event stream (``--events-out FILE``) — the machine-readable
  live feed the ROADMAP's PA-as-a-service item needs; the first record
  is a ``stream.begin`` carrying the schema tag;
* a straggler watchdog — shards whose heartbeats go stale past
  ``stall_after`` seconds are flagged once as ``shard.stalled`` events
  and counted, feeding the governor's degradation notes and the
  ``profile`` imbalance table.

Topology: the parent process owns a :class:`ProgressBus`; worker
children publish onto a ``multiprocessing.Queue`` handed to them
through the pool initializer (queues cannot cross ``apply_async``
arguments), and the parent drains it in its poll loop.  The in-process
(``workers=1``) path publishes straight onto the bus.  Module-level
routing state keeps the publish hooks near-free when nothing is
attached — the common case, and the reason a disabled run stays
bit-identical.

Failure containment: the ``scale.progress`` fault point fires inside
:meth:`ProgressBus.dispatch` and queue creation; *any* exception there
marks the bus broken and detaches it — mining must never hang or die
because its progress feed did (see the chaos matrix).  The worker
queue is *bounded* (``QUEUE_MAX``) so a stalled parent can never
back-pressure or deadlock a worker: a full queue drops the event and
counts it, and the next event that does get through carries the drop
count in its ``dropped`` field — the parent accumulates it into
``bus.dropped``/``counts["bus.dropped"]``, so losses are visible in
the stats and the events stream rather than silent.  A worker whose
queue put fails for any other reason detaches itself and keeps
mining.

Event kinds: ``stream.begin``, ``round.start``, ``round.shards``,
``shard.start``, ``heartbeat``, ``shard.done``, ``shard.stalled``,
``shard.retry``, ``shard.quarantined``, ``round.done``, ``run.done``
— consumers must ignore unknown kinds and fields.
"""

from __future__ import annotations

import contextlib
import json
import os
import queue as _queuelib
import sys
import time
from typing import Any, Dict, List, Optional

from repro.resilience.faultinject import fault

#: Version tag of the JSONL event stream.  Consumers must ignore
#: unknown event kinds and unknown fields.
EVENTS_SCHEMA = "repro.telemetry.events/1"

#: Heartbeats from a hot loop are rate-limited to one per this many
#: seconds per process (publishes from distinct kinds are never
#: limited).
HEARTBEAT_INTERVAL = 0.25

#: Default seconds without a heartbeat before a shard counts as stalled.
STALL_AFTER = 30.0

#: Worker-queue capacity.  Deep enough that drops only happen when the
#: parent has stopped draining for a long while; bounded so workers
#: can never block or balloon memory behind a stalled parent.
QUEUE_MAX = 10000

#: TTY status line refresh interval (seconds).
_RENDER_INTERVAL = 0.05

# ----------------------------------------------------------------------
# module-level routing: parent bus OR worker queue, never both
# ----------------------------------------------------------------------
_BUS: Optional["ProgressBus"] = None
_WORKER_QUEUE = None
_NEXT_BEAT = 0.0
#: events this worker dropped on a full queue since the last event
#: that got through (rides on the next successful put as ``dropped``)
_DROPPED = 0


def active() -> Optional["ProgressBus"]:
    """The bus the current process publishes to, if any."""
    return _BUS


@contextlib.contextmanager
def activate(bus: Optional["ProgressBus"]):
    """Route this process's :func:`publish` calls to *bus* for the
    duration of the block (None deactivates; previous routing is
    restored on exit)."""
    global _BUS
    previous = _BUS
    _BUS = bus
    try:
        yield bus
    finally:
        _BUS = previous


def worker_attach(q) -> None:
    """Called in a pool child: route publishes to the parent's queue.

    Also clears any bus inherited through ``fork`` — a child must never
    write the parent's TTY or JSONL stream directly.
    """
    global _BUS, _WORKER_QUEUE, _NEXT_BEAT, _DROPPED
    _BUS = None
    _WORKER_QUEUE = q
    _NEXT_BEAT = 0.0
    _DROPPED = 0


def publish(kind: str, **fields) -> None:
    """Emit one progress event; near-free when nothing is attached."""
    global _WORKER_QUEUE, _DROPPED
    if _WORKER_QUEUE is None and _BUS is None:
        return
    event: Dict[str, Any] = {
        "kind": kind,
        "ts": round(time.time(), 6),
        "pid": os.getpid(),
    }
    event.update(fields)
    if _WORKER_QUEUE is not None:
        if _DROPPED:
            event["dropped"] = _DROPPED
        try:
            _WORKER_QUEUE.put_nowait(event)
        except _queuelib.Full:
            # The queue is bounded so a stalled parent can never
            # back-pressure a worker: drop the event, count it, stay
            # attached — the next event that fits carries the count.
            _DROPPED += 1
        except Exception:
            # A broken pipe must never take mining down: detach and
            # mine on silently (the parent's watchdog will notice the
            # silence as a stall, which is the honest signal).
            _WORKER_QUEUE = None
        else:
            _DROPPED = 0
    else:
        _BUS.dispatch(event)


def heartbeat(kind: str = "heartbeat", **fields) -> None:
    """Rate-limited :func:`publish` for hot loops (shard mining)."""
    global _NEXT_BEAT
    if _WORKER_QUEUE is None and _BUS is None:
        return
    now = time.monotonic()
    if now < _NEXT_BEAT:
        return
    _NEXT_BEAT = now + HEARTBEAT_INTERVAL
    publish(kind, **fields)


# ----------------------------------------------------------------------
# the parent-side bus
# ----------------------------------------------------------------------
class ProgressBus:
    """Parent-side sink: JSONL stream, TTY line, straggler tracking."""

    def __init__(self, tty=None, events_path: Optional[str] = None,
                 stall_after: float = STALL_AFTER):
        self.tty = tty
        self.events_path = events_path
        self.stall_after = stall_after
        self.broken = False
        self.counts: Dict[str, int] = {}
        #: worker events lost to a full queue (accumulated from the
        #: ``dropped`` field events carry after an overflow)
        self.dropped = 0
        #: shard index -> monotonic time of its last sign of life
        self.inflight: Dict[int, float] = {}
        self.stalled: set = set()
        self.status: Dict[str, Any] = {
            "round": None, "shards": 0, "done": 0, "cache_hits": 0,
            "saved": 0, "nodes": 0, "retried": 0, "quarantined": 0,
        }
        self._nodes_by_shard: Dict[int, int] = {}
        self._handle = None
        self._queue = None
        self._last_render = 0.0
        if events_path:
            try:
                self._handle = open(events_path, "w")
            except OSError as exc:
                self._break(exc)
                return
        self.dispatch({
            "kind": "stream.begin",
            "schema": EVENTS_SCHEMA,
            "ts": round(time.time(), 6),
            "pid": os.getpid(),
        })

    # ------------------------------------------------------------------
    def worker_queue(self):
        """The mp queue pool children should publish to (lazy), or
        None when the bus is broken."""
        if self.broken:
            return None
        if self._queue is None:
            try:
                fault("scale.progress")
                import multiprocessing

                # bounded: a stalled parent must never back-pressure
                # or deadlock a publishing worker (drop-with-counter)
                self._queue = multiprocessing.Queue(maxsize=QUEUE_MAX)
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                self._break(exc)
                return None
        return self._queue

    def drain(self) -> None:
        """Dispatch every event queued by workers (non-blocking)."""
        if self._queue is None or self.broken:
            return
        while True:
            try:
                event = self._queue.get_nowait()
            except _queuelib.Empty:
                return
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                self._break(exc)
                return
            self.dispatch(event)

    def dispatch(self, event: Dict[str, Any]) -> None:
        """Track, stream and render one event; never raises
        (``KeyboardInterrupt`` excepted — anytime semantics win)."""
        if self.broken:
            return
        try:
            fault("scale.progress")
            self._track(event)
            if self._handle is not None:
                self._handle.write(json.dumps(event) + "\n")
                self._handle.flush()
            if self.tty is not None:
                self._render()
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            self._break(exc)

    def stragglers(self) -> List[int]:
        """Newly stale in-flight shards (flagged once each).

        Emits one ``shard.stalled`` event per new straggler and
        remembers it; a later heartbeat does not un-flag (the point is
        "this shard went dark for stall_after seconds at least once").
        """
        now = time.monotonic()
        fresh = [
            shard for shard, last in self.inflight.items()
            if shard not in self.stalled
            and now - last > self.stall_after
        ]
        for shard in fresh:
            self.stalled.add(shard)
            self.dispatch({
                "kind": "shard.stalled",
                "ts": round(time.time(), 6),
                "pid": os.getpid(),
                "shard": shard,
                "stalled_seconds": round(now - self.inflight[shard], 3),
            })
        return fresh

    def close(self) -> None:
        """Finish the TTY line, close the stream, drop the queue."""
        if self.tty is not None and not self.broken:
            try:
                self.tty.write("\n")
                self.tty.flush()
            except Exception:
                pass
        if self._handle is not None:
            try:
                self._handle.close()
            except Exception:
                pass
            self._handle = None
        if self._queue is not None:
            try:
                self._queue.close()
            except Exception:
                pass
            self._queue = None

    # ------------------------------------------------------------------
    def _break(self, exc: BaseException) -> None:
        """Degrade: mark broken, release resources, warn once."""
        self.broken = True
        if self._handle is not None:
            try:
                self._handle.close()
            except Exception:
                pass
            self._handle = None
        print(f"warning: progress stream disabled ({exc})",
              file=sys.stderr)

    def _track(self, event: Dict[str, Any]) -> None:
        kind = event.get("kind", "?")
        self.counts[kind] = self.counts.get(kind, 0) + 1
        lost = event.get("dropped")
        if lost:
            self.dropped += lost
            self.counts["bus.dropped"] = \
                self.counts.get("bus.dropped", 0) + lost
        status = self.status
        shard = event.get("shard")
        now = time.monotonic()
        if kind == "round.start":
            status["round"] = event.get("round")
            status["shards"] = 0
            status["done"] = 0
        elif kind == "round.shards":
            status["shards"] = event.get("shards", 0)
            status["cache_hits"] += event.get("cached", 0)
            status["done"] = event.get("cached", 0)
        elif kind == "shard.start" and shard is not None:
            self.inflight[shard] = now
        elif kind == "heartbeat" and shard is not None:
            if shard in self.inflight:
                self.inflight[shard] = now
            nodes = event.get("lattice_nodes")
            if nodes is not None:
                self._nodes_by_shard[shard] = nodes
                status["nodes"] = sum(self._nodes_by_shard.values())
        elif kind == "shard.done" and shard is not None:
            self.inflight.pop(shard, None)
            status["done"] += 1
            nodes = event.get("lattice_nodes")
            if nodes is not None:
                self._nodes_by_shard[shard] = nodes
                status["nodes"] = sum(self._nodes_by_shard.values())
        elif kind == "shard.retry" and shard is not None:
            # redelivery pending: the shard is not in flight while it
            # backs off, so the watchdog must not call it stalled
            self.inflight.pop(shard, None)
            status["retried"] += 1
        elif kind == "shard.quarantined" and shard is not None:
            self.inflight.pop(shard, None)
            if not event.get("recovered"):
                status["quarantined"] += 1
        elif kind == "round.done":
            status["saved"] += event.get("saved", 0)
            self._nodes_by_shard.clear()
            self.inflight.clear()

    def _render(self) -> None:
        now = time.monotonic()
        if now - self._last_render < _RENDER_INTERVAL:
            return
        self._last_render = now
        s = self.status
        parts = []
        if s["round"] is not None:
            parts.append(f"round {s['round']}")
        if s["shards"]:
            parts.append(f"shards {s['done']}/{s['shards']}")
        if s["cache_hits"]:
            parts.append(f"cache {s['cache_hits']} hit")
        if s["nodes"]:
            parts.append(f"{s['nodes']} nodes")
        parts.append(f"saved {s['saved']}")
        if s["retried"]:
            parts.append(f"retried {s['retried']}")
        if s["quarantined"]:
            parts.append(f"quarantined {s['quarantined']}")
        if self.stalled:
            parts.append(f"stalled {len(self.stalled)}")
        line = "[pa] " + " | ".join(parts)
        self.tty.write("\r" + line[:118].ljust(118))
        self.tty.flush()


__all__ = [
    "EVENTS_SCHEMA",
    "HEARTBEAT_INTERVAL",
    "QUEUE_MAX",
    "STALL_AFTER",
    "ProgressBus",
    "activate",
    "active",
    "heartbeat",
    "publish",
    "worker_attach",
]
