"""OpenMetrics / Prometheus-textfile export of the telemetry registry.

One run, one scrape: :func:`write_openmetrics` renders the registry's
counters, gauges, histograms and span aggregates in the OpenMetrics
text exposition format (``--metrics-out FILE``), suitable for the
Prometheus node-exporter textfile collector or any OpenMetrics parser.

Mapping:

=================  ===================================================
registry primitive OpenMetrics family
=================  ===================================================
Counter            ``repro_<name>_total`` (type ``counter``)
Gauge              ``repro_<name>`` (type ``gauge``)
Histogram          ``repro_<name>`` (type ``summary``: quantile
                   samples + ``_sum``/``_count``)
span aggregates    ``repro_span_seconds_total{span="..."}`` and
                   ``repro_span_calls_total{span="..."}``
shard timings      ``repro_scale_shard_seconds_total{shard="N"}``,
                   ``..._lattice_nodes_total``, ``..._rounds_total``
                   (aggregated from ``scale.shard.timing`` events)
=================  ===================================================

Metric names are sanitised to ``[a-zA-Z0-9_:]`` and prefixed
``repro_``; counter families get the mandatory ``_total`` suffix; the
output ends with the mandatory ``# EOF`` line.  Like every exporter
here this is read-only over the registry and written atomically.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List

from repro.resilience.atomicio import atomic_write_text
from repro.telemetry.core import Telemetry

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")

#: Event name carrying per-shard mining wall-clock (emitted by the
#: scale engine parent after each round's merge).
SHARD_TIMING_EVENT = "scale.shard.timing"


def _family(name: str) -> str:
    clean = _NAME_BAD.sub("_", name)
    if clean and clean[0].isdigit():
        clean = "_" + clean
    return "repro_" + clean


def _num(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _label(value: Any) -> str:
    text = str(value)
    return (text.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def openmetrics_text(telemetry: Telemetry) -> str:
    """Render the registry in the OpenMetrics text format."""
    lines: List[str] = []

    for name, counter in sorted(telemetry.counters.items()):
        family = _family(name)
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family}_total {_num(counter.value)}")

    for name, gauge in sorted(telemetry.gauges.items()):
        family = _family(name)
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_num(gauge.value)}")

    for name, histogram in sorted(telemetry.histograms.items()):
        family = _family(name)
        lines.append(f"# TYPE {family} summary")
        for q in (50, 90, 99):
            lines.append(
                f'{family}{{quantile="{q / 100}"}} '
                f"{_num(histogram.percentile(q))}"
            )
        lines.append(f"{family}_sum {_num(histogram.total)}")
        lines.append(f"{family}_count {_num(histogram.count)}")

    span_seconds: Dict[str, float] = {}
    span_calls: Dict[str, int] = {}
    for record in telemetry.spans:
        span_seconds[record.name] = (
            span_seconds.get(record.name, 0.0) + record.duration
        )
        span_calls[record.name] = span_calls.get(record.name, 0) + 1
    if span_calls:
        lines.append("# TYPE repro_span_seconds counter")
        for name in sorted(span_seconds):
            lines.append(
                f'repro_span_seconds_total{{span="{_label(name)}"}} '
                f"{_num(span_seconds[name])}"
            )
        lines.append("# TYPE repro_span_calls counter")
        for name in sorted(span_calls):
            lines.append(
                f'repro_span_calls_total{{span="{_label(name)}"}} '
                f"{_num(span_calls[name])}"
            )

    # per-shard mining wall-clock, for load-imbalance dashboards
    shard_seconds: Dict[int, float] = {}
    shard_nodes: Dict[int, int] = {}
    shard_rounds: Dict[int, int] = {}
    for event in telemetry.events:
        if event.get("name") != SHARD_TIMING_EVENT:
            continue
        shard = event.get("shard")
        if shard is None:
            continue
        shard_seconds[shard] = (
            shard_seconds.get(shard, 0.0) + float(event.get("seconds", 0))
        )
        shard_nodes[shard] = (
            shard_nodes.get(shard, 0) + int(event.get("lattice_nodes", 0))
        )
        shard_rounds[shard] = shard_rounds.get(shard, 0) + 1
    if shard_rounds:
        for family, table in (
            ("repro_scale_shard_seconds", shard_seconds),
            ("repro_scale_shard_lattice_nodes", shard_nodes),
            ("repro_scale_shard_rounds", shard_rounds),
        ):
            lines.append(f"# TYPE {family} counter")
            for shard in sorted(table):
                lines.append(
                    f'{family}_total{{shard="{_label(shard)}"}} '
                    f"{_num(table[shard])}"
                )

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(telemetry: Telemetry, path: str) -> None:
    atomic_write_text(path, openmetrics_text(telemetry))


__all__ = [
    "SHARD_TIMING_EVENT",
    "openmetrics_text",
    "write_openmetrics",
]
