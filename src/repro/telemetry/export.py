"""Exporters for the telemetry registry.

Three output formats, each consuming the same :class:`Telemetry`
registry:

``chrome_trace``
    The Chrome ``trace_event`` JSON array format — open the file in
    ``chrome://tracing`` or https://ui.perfetto.dev to get a zoomable
    per-thread timeline of the span hierarchy.  Spans become complete
    ("X") events with microsecond timestamps.

``stats_dict`` / ``write_stats``
    A flat, machine-readable JSON dump: counters, gauges, histogram
    summaries, per-name span aggregates, and the structured event list.
    This is the schema the ``table1 --json`` benchmark output shares.

``tree_summary``
    A human-readable phase-time tree (the ``repro profile`` output):
    spans aggregated by their name-path with call counts, total and
    self time.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.resilience.atomicio import atomic_write_text
from repro.telemetry.core import SpanRecord, Telemetry

#: Version tag of the stats JSON schema.  /2 added histogram
#: percentiles (p50/p90/p99); consumers must ignore unknown fields.
STATS_SCHEMA = "repro.telemetry.stats/2"


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
def chrome_trace(telemetry: Telemetry,
                 process_name: str = "repro") -> List[Dict[str, Any]]:
    """The registry's spans as a list of Chrome ``trace_event`` dicts.

    A span with ``pid == 0`` belongs to this registry's own process; a
    non-zero pid is a worker span stitched in by
    :mod:`repro.telemetry.remote`, laid out on its own named process
    track (the label comes from ``telemetry.remote_processes``).  The
    first metadata row is always the local ``process_name`` row.
    """
    local_pid = os.getpid()

    def pid_of(record: SpanRecord) -> int:
        return getattr(record, "pid", 0) or local_pid

    # Discovery order: the local process first, then remote pids as
    # their first span appears — stable because merge order is stable.
    pids: List[int] = [local_pid]
    threads: Dict[int, List[int]] = {local_pid: []}
    for record in telemetry.spans:
        pid = pid_of(record)
        if pid not in threads:
            pids.append(pid)
            threads[pid] = []
        if record.thread not in threads[pid]:
            threads[pid].append(record.thread)

    events: List[Dict[str, Any]] = []
    for pid in pids:
        label = (process_name if pid == local_pid
                 else telemetry.remote_processes.get(pid, "worker"))
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
    # One thread_name metadata event per distinct (pid, thread) track,
    # so the chrome://tracing / Perfetto timeline shows readable labels
    # instead of raw thread idents.  In the local process, the
    # first-seen thread is the one that opened the first span — the
    # pipeline's main thread.  Worker processes are single-threaded
    # miners: their track is simply "mine".
    for pid in pids:
        for index, thread in enumerate(threads[pid]):
            if pid == local_pid:
                name = "main" if index == 0 else f"worker-{index}"
            else:
                name = "mine" if index == 0 else f"mine-{index}"
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": thread,
                    "args": {"name": name},
                }
            )
    for record in telemetry.spans:
        event = {
            "name": record.name,
            "cat": record.name.split(".", 1)[0],
            "ph": "X",
            "ts": round(record.start * 1e6, 3),
            "dur": round(record.duration * 1e6, 3),
            "pid": pid_of(record),
            "tid": record.thread,
        }
        if record.args:
            event["args"] = _jsonable(record.args)
        events.append(event)
    return events


def write_chrome_trace(telemetry: Telemetry, path: str,
                       process_name: str = "repro") -> None:
    atomic_write_text(path, json.dumps(chrome_trace(telemetry,
                                                    process_name)))


# ----------------------------------------------------------------------
# flat stats dump
# ----------------------------------------------------------------------
def stats_dict(telemetry: Telemetry) -> Dict[str, Any]:
    """Counters, gauges, histogram + span aggregates, and events."""
    span_summary: Dict[str, Dict[str, float]] = {}
    for record in telemetry.spans:
        entry = span_summary.get(record.name)
        if entry is None:
            entry = span_summary[record.name] = {
                "count": 0,
                "total_seconds": 0.0,
                "min_seconds": record.duration,
                "max_seconds": record.duration,
            }
        entry["count"] += 1
        entry["total_seconds"] += record.duration
        entry["min_seconds"] = min(entry["min_seconds"], record.duration)
        entry["max_seconds"] = max(entry["max_seconds"], record.duration)
    return {
        "schema": STATS_SCHEMA,
        "counters": {
            name: counter.value
            for name, counter in sorted(telemetry.counters.items())
        },
        "gauges": {
            name: gauge.value
            for name, gauge in sorted(telemetry.gauges.items())
        },
        "histograms": {
            name: histogram.as_dict()
            for name, histogram in sorted(telemetry.histograms.items())
        },
        "spans": dict(sorted(span_summary.items())),
        "events": [_jsonable(event) for event in telemetry.events],
    }


def write_stats(telemetry: Telemetry, path: str) -> None:
    atomic_write_text(
        path, json.dumps(stats_dict(telemetry), indent=2) + "\n"
    )


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of span/event payloads to JSON types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


# ----------------------------------------------------------------------
# human-readable phase tree
# ----------------------------------------------------------------------
class _TreeNode:
    __slots__ = ("name", "count", "total", "child_total", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.child_total = 0.0
        self.children: Dict[str, "_TreeNode"] = {}


def _build_tree(spans: List[SpanRecord]) -> _TreeNode:
    by_ident = {record.ident: record for record in spans}
    # path of a span = chain of ancestor names; aggregate per path
    path_cache: Dict[int, Tuple[str, ...]] = {}

    def path_of(record: SpanRecord) -> Tuple[str, ...]:
        cached = path_cache.get(record.ident)
        if cached is not None:
            return cached
        if record.parent is not None and record.parent in by_ident:
            parent_path = path_of(by_ident[record.parent])
        else:
            parent_path = ()
        path = parent_path + (record.name,)
        path_cache[record.ident] = path
        return path

    root = _TreeNode("")
    for record in spans:
        node = root
        for name in path_of(record):
            child = node.children.get(name)
            if child is None:
                child = node.children[name] = _TreeNode(name)
            node = child
        node.count += 1
        node.total += record.duration
        if record.parent is not None and record.parent in by_ident:
            parent = root
            for name in path_of(by_ident[record.parent]):
                parent = parent.children[name]
            parent.child_total += record.duration
    return root


def tree_summary(telemetry: Telemetry,
                 min_seconds: float = 0.0) -> str:
    """Render the aggregated span tree, deepest-total-first per level."""
    root = _build_tree(telemetry.spans)
    lines: List[str] = []
    header = f"{'phase':<48} {'count':>7} {'total':>9} {'self':>9}"
    lines.append(header)
    lines.append("-" * len(header))

    def emit(node: _TreeNode, depth: int) -> None:
        for child in sorted(node.children.values(),
                            key=lambda c: -c.total):
            if child.total < min_seconds:
                continue
            label = "  " * depth + child.name
            self_time = max(0.0, child.total - child.child_total)
            lines.append(
                f"{label:<48} {child.count:>7} "
                f"{child.total:>8.3f}s {self_time:>8.3f}s"
            )
            emit(child, depth + 1)

    emit(root, 0)
    if len(lines) == 2:
        lines.append("(no spans recorded)")
    return "\n".join(lines)


def counters_summary(telemetry: Telemetry, limit: Optional[int] = None
                     ) -> str:
    """Render the counter registry as aligned ``name  value`` lines."""
    items = sorted(telemetry.counters.items())
    if limit is not None:
        items = items[:limit]
    if not items:
        return "(no counters recorded)"
    width = max(len(name) for name, __ in items)
    return "\n".join(
        f"{name:<{width}}  {counter.value}" for name, counter in items
    )
