"""Metric primitives: counters, gauges, histograms.

All three are name-keyed aggregates held in a process-global registry
(:mod:`repro.telemetry.core`).  They are deliberately simple — plain
Python numbers behind one registry lock — because the PA pipeline is
CPU-bound and single-process; the interesting engineering constraint is
the *disabled* path (checked before any of this code runs), not the
enabled one.

========== ==========================================================
primitive  semantics
========== ==========================================================
Counter    monotonically accumulated total (``add``)
Gauge      last-write-wins sample (``set``)
Histogram  running aggregate of observations: count / total / min /
           max (mean is derived); no buckets — the exporters only
           need summary statistics
========== ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

Number = Union[int, float]


@dataclass
class Counter:
    """A monotonically increasing total."""

    value: Number = 0

    def add(self, amount: Number = 1) -> None:
        self.value += amount


@dataclass
class Gauge:
    """A last-write-wins sampled value."""

    value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value


@dataclass
class Histogram:
    """Running summary of a stream of observations."""

    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None

    def observe(self, value: Number) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Number]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
        }
