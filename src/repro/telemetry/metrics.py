"""Metric primitives: counters, gauges, histograms.

All three are name-keyed aggregates held in a process-global registry
(:mod:`repro.telemetry.core`).  They are deliberately simple — plain
Python numbers behind one registry lock — because the PA pipeline is
CPU-bound and single-process; the interesting engineering constraint is
the *disabled* path (checked before any of this code runs), not the
enabled one.

========== ==========================================================
primitive  semantics
========== ==========================================================
Counter    monotonically accumulated total (``add``)
Gauge      last-write-wins sample (``set``)
Histogram  running aggregate of observations: count / total / min /
           max (mean is derived) plus nearest-rank p50/p90/p99 over a
           bounded, deterministically decimated sample reservoir
========== ==========================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

Number = Union[int, float]

#: Reservoir bound for histogram percentiles.  When it fills, every
#: second sample is dropped and the keep-stride doubles — the survivors
#: are always the observations at indices ``0, s, 2s, ...``, so two
#: identical runs keep identical samples (no RNG, unlike the classic
#: random reservoir), at the cost of a recency-independent thinning.
MAX_SAMPLES = 4096


@dataclass
class Counter:
    """A monotonically increasing total."""

    value: Number = 0

    def add(self, amount: Number = 1) -> None:
        self.value += amount


@dataclass
class Gauge:
    """A last-write-wins sampled value."""

    value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value


@dataclass
class Histogram:
    """Running summary of a stream of observations."""

    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None
    samples: List[float] = field(default_factory=list, repr=False)
    stride: int = field(default=1, repr=False)

    def observe(self, value: Number) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if (self.count - 1) % self.stride == 0:
            self.samples.append(value)
            if len(self.samples) > MAX_SAMPLES:
                self.samples = self.samples[::2]
                self.stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained samples."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = math.ceil(q / 100.0 * len(ordered))
        return ordered[max(0, min(rank, len(ordered)) - 1)]

    def as_dict(self) -> Dict[str, Number]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def dump(self) -> Dict[str, Any]:
        """The full internal state, for cross-process snapshotting
        (:mod:`repro.telemetry.remote`) — unlike :meth:`as_dict` this
        keeps the raw sample reservoir so a merge preserves
        percentiles, not just the count/total/min/max aggregate."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "samples": list(self.samples),
            "stride": self.stride,
        }

    def merge(self, data: Dict[str, Any]) -> None:
        """Fold one :meth:`dump` payload into this histogram.

        Aggregates are exact; the combined reservoir is re-decimated
        with the same deterministic every-second-sample rule as
        :meth:`observe`, so merging shard snapshots in a fixed order
        yields a fixed result.
        """
        self.count += int(data["count"])
        self.total += float(data["total"])
        for bound, better in (("min", min), ("max", max)):
            value = data.get(bound)
            if value is None:
                continue
            mine = getattr(self, bound)
            setattr(self, bound,
                    value if mine is None else better(mine, value))
        self.samples.extend(float(v) for v in data.get("samples", ()))
        self.stride = max(self.stride, int(data.get("stride", 1)))
        while len(self.samples) > MAX_SAMPLES:
            self.samples = self.samples[::2]
            self.stride *= 2
