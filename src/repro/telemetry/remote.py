"""Cross-process telemetry: capture in a worker, stitch in the parent.

The sharded mining pool (:mod:`repro.scale.pool`) runs each shard in a
forked worker whose inherited global registry is disabled — before this
module existed, the intra-shard hot path was an observability black
hole.  The protocol here keeps workers fully instrumented without
giving up any determinism guarantee:

1. The worker wraps its shard mine in :func:`capture`, which swaps
   *fresh* recording state into the process-global registry (the
   miners' module-level ``_TELEMETRY`` references keep working
   untouched) and snapshots it on exit.
2. The :func:`snapshot` travels back to the parent inside the pickled
   shard result — a plain JSON-able dict, schema
   ``repro.telemetry.remote/1``.
3. The parent calls :func:`merge_snapshot` for each shard **in
   deterministic shard order**: span idents are re-based into the
   parent's serial space, snapshot-root spans are attached under the
   parent's currently open span (so the profile tree nests worker work
   under ``scale.mine``), counters add, histograms merge reservoirs,
   and the worker's real pid is kept on every record so the Chrome
   trace exporter can lay out one named track per process.

Timestamps: span ``start`` values are registry-epoch-relative; the
snapshot converts them to *absolute* ``time.perf_counter()`` readings
and the merge re-bases them onto the parent's epoch.  On Linux,
``perf_counter`` is CLOCK_MONOTONIC — system-wide, not per-process —
so worker spans land at their true wall-clock position in the merged
timeline.

Determinism: merged *counter values* and span/event counts are a pure
function of module + config (same shards, same work), so stats output
stays identical across worker counts; only durations, pids and
timestamps differ — exactly the fields a trace exists to show.
"""

from __future__ import annotations

import contextlib
import os
from typing import Any, Dict, Optional

from repro.telemetry.core import GLOBAL, SpanRecord, Telemetry
from repro.telemetry.metrics import Counter, Gauge, Histogram

#: Version tag of the worker snapshot wire format.  Snapshots are
#: transient (never cached, never persisted), so a bump only needs to
#: keep :func:`merge_snapshot` in sync with :func:`snapshot`.
SNAPSHOT_SCHEMA = "repro.telemetry.remote/1"

#: Default process label for worker snapshots.
WORKER_PROCESS = "shard-worker"


def snapshot(registry: Telemetry,
             process_name: str = WORKER_PROCESS) -> Dict[str, Any]:
    """Freeze *registry*'s recorded data as a picklable wire dict.

    Span starts are converted from epoch-relative to absolute
    ``perf_counter`` readings so the consumer can re-base them onto its
    own epoch (`merge_snapshot`).
    """
    with registry._lock:
        spans = [
            [
                record.ident,
                record.parent,
                record.name,
                registry._epoch + record.start,
                record.duration,
                record.thread,
                record.args,
            ]
            for record in registry.spans
        ]
        return {
            "schema": SNAPSHOT_SCHEMA,
            "pid": os.getpid(),
            "process": process_name,
            "spans": spans,
            "counters": {
                name: counter.value
                for name, counter in registry.counters.items()
            },
            "gauges": {
                name: gauge.value
                for name, gauge in registry.gauges.items()
            },
            "histograms": {
                name: histogram.dump()
                for name, histogram in registry.histograms.items()
            },
            "events": [dict(event) for event in registry.events],
        }


class Capture:
    """Handle yielded by :func:`capture`; ``snapshot`` is set on exit."""

    __slots__ = ("process_name", "snapshot")

    def __init__(self, process_name: str):
        self.process_name = process_name
        self.snapshot: Optional[Dict[str, Any]] = None


@contextlib.contextmanager
def capture(process_name: str = WORKER_PROCESS, enabled: bool = True):
    """Record into fresh registry state for the duration of the block.

    Swaps empty span/metric/event storage (and a clean thread span
    stack) into the process-global registry, so instrumentation already
    bound to it records into an isolated scope; on exit the scope is
    snapshotted onto the yielded :class:`Capture` and the previous
    state restored untouched.  With ``enabled=False`` the block runs
    fully suppressed and no snapshot is taken — the two modes share one
    code path so the ``workers=1`` in-process shard mine and the worker
    pool behave identically.

    The registry epoch is deliberately *kept*: snapshot timestamps stay
    comparable with the surrounding state's.
    """
    registry = GLOBAL
    saved = {
        "enabled": registry.enabled,
        "spans": registry.spans,
        "counters": registry.counters,
        "gauges": registry.gauges,
        "histograms": registry.histograms,
        "events": registry.events,
        "_serial": registry._serial,
        "remote_processes": registry.remote_processes,
    }
    saved_stack = getattr(registry._local, "stack", None)
    with registry._lock:
        registry.spans = []
        registry.counters = {}
        registry.gauges = {}
        registry.histograms = {}
        registry.events = []
        registry._serial = 0
        registry.remote_processes = {}
    registry._local.stack = []
    registry.enabled = enabled
    holder = Capture(process_name)
    try:
        yield holder
    finally:
        if enabled:
            holder.snapshot = snapshot(registry, process_name)
        with registry._lock:
            for attr, value in saved.items():
                setattr(registry, attr, value)
        registry._local.stack = (
            saved_stack if saved_stack is not None else []
        )


def merge_snapshot(registry: Telemetry,
                   snap: Optional[Dict[str, Any]]) -> None:
    """Stitch one worker :func:`snapshot` into *registry*.

    Spans get a fresh ident block (parent links remapped with them),
    snapshot roots are attached under the caller's currently open span,
    timestamps are re-based onto *registry*'s epoch, and the worker pid
    is recorded both per span and in ``registry.remote_processes`` for
    exporter labelling.  Call in deterministic shard order: counter and
    histogram merges are commutative, but gauge last-write-wins and
    event order are not.
    """
    if snap is None or not registry.enabled:
        return
    own_pid = os.getpid()
    pid = int(snap.get("pid", 0))
    remote_pid = pid if pid != own_pid else 0
    stack = registry._stack()
    attach = stack[-1] if stack else None
    with registry._lock:
        if remote_pid:
            registry.remote_processes.setdefault(
                remote_pid, str(snap.get("process", WORKER_PROCESS))
            )
        offset = registry._serial
        max_ident = 0
        for ident, parent, name, abs_start, duration, thread, args \
                in snap.get("spans", ()):
            max_ident = max(max_ident, ident)
            registry.spans.append(
                SpanRecord(
                    ident=offset + ident,
                    parent=(offset + parent if parent is not None
                            else attach),
                    name=name,
                    start=abs_start - registry._epoch,
                    duration=duration,
                    thread=thread,
                    args=args,
                    pid=remote_pid,
                )
            )
        registry._serial = offset + max_ident
        for name, value in snap.get("counters", {}).items():
            counter = registry.counters.get(name)
            if counter is None:
                counter = registry.counters[name] = Counter()
            counter.add(value)
        for name, value in snap.get("gauges", {}).items():
            gauge = registry.gauges.get(name)
            if gauge is None:
                gauge = registry.gauges[name] = Gauge()
            gauge.set(value)
        for name, data in snap.get("histograms", {}).items():
            histogram = registry.histograms.get(name)
            if histogram is None:
                histogram = registry.histograms[name] = Histogram()
            histogram.merge(data)
        registry.events.extend(dict(e) for e in snap.get("events", ()))


__all__ = [
    "SNAPSHOT_SCHEMA",
    "WORKER_PROCESS",
    "Capture",
    "capture",
    "merge_snapshot",
    "snapshot",
]
