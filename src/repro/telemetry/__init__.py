"""Telemetry: hierarchical tracing, metrics, and profile export.

The measurement substrate of the whole pipeline.  Instrumented code
reports to a process-global registry through the module-level helpers
(`span`, `count`, `gauge`, `observe`, `event`); the registry is off by
default and all helpers are near-free while disabled.  See
:mod:`repro.telemetry.core` for the design notes and
:mod:`repro.telemetry.export` for the Chrome-trace / stats-JSON /
tree-summary output formats.
"""

from repro.telemetry.core import (
    GLOBAL,
    SpanRecord,
    Telemetry,
    count,
    disable,
    enable,
    event,
    gauge,
    get,
    is_enabled,
    observe,
    reset,
    span,
    traced,
)
from repro.telemetry.export import (
    STATS_SCHEMA,
    chrome_trace,
    counters_summary,
    stats_dict,
    tree_summary,
    write_chrome_trace,
    write_stats,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram
from repro.telemetry.openmetrics import (
    openmetrics_text,
    write_openmetrics,
)
from repro.telemetry.progress import EVENTS_SCHEMA, ProgressBus
from repro.telemetry.remote import (
    SNAPSHOT_SCHEMA,
    capture,
    merge_snapshot,
    snapshot,
)

__all__ = [
    "GLOBAL",
    "Telemetry",
    "SpanRecord",
    "Counter",
    "Gauge",
    "Histogram",
    "get",
    "enable",
    "disable",
    "reset",
    "is_enabled",
    "span",
    "traced",
    "count",
    "gauge",
    "observe",
    "event",
    "STATS_SCHEMA",
    "EVENTS_SCHEMA",
    "SNAPSHOT_SCHEMA",
    "ProgressBus",
    "capture",
    "merge_snapshot",
    "snapshot",
    "chrome_trace",
    "stats_dict",
    "tree_summary",
    "counters_summary",
    "write_chrome_trace",
    "write_stats",
    "openmetrics_text",
    "write_openmetrics",
]
