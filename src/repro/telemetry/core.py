"""The telemetry registry: hierarchical spans + metrics + events.

Design constraints, in priority order:

1. **Near-zero overhead when disabled.**  Every public hook starts with
   a plain attribute check on the global :class:`Telemetry` instance;
   the disabled ``span()`` returns a shared no-op context manager, so
   instrumenting a hot loop costs one function call and one branch.
   The guard test in ``tests/telemetry`` asserts that a disabled run of
   the full PA pipeline is bit-identical to the uninstrumented seed.
2. **Thread safety.**  Span nesting is tracked per thread (a
   ``threading.local`` stack); finished spans and metric updates go
   through one registry lock.  Span records carry the originating
   thread id so the Chrome trace exporter can lay them out per track.
3. **Purely observational.**  Nothing here influences control flow of
   the instrumented code; enabling telemetry may slow a run down but
   must never change its result.

Usage::

    from repro import telemetry

    telemetry.enable()
    with telemetry.span("pa.round", round=3):
        telemetry.count("mining.lattice_nodes")
        telemetry.observe("mining.support_check_seconds", dt)
    telemetry.event("pa.extraction", method="call", benefit=7)
"""

from __future__ import annotations

import functools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.telemetry.metrics import Counter, Gauge, Histogram, Number


@dataclass
class SpanRecord:
    """One finished span, as stored in the registry.

    ``start`` is in seconds relative to the registry epoch (the moment
    the registry was created or last reset); ``ident``/``parent`` are
    registry-unique serial numbers assigned at span *entry*, so a parent
    always has a smaller ident than its children even though it is
    recorded after them (children exit first).
    """

    ident: int
    parent: Optional[int]
    name: str
    start: float
    duration: float
    thread: int
    args: Dict[str, Any] = field(default_factory=dict)
    #: originating process: 0 = this registry's own process, else the
    #: real pid of the worker the span was stitched in from
    #: (:mod:`repro.telemetry.remote`).
    pid: int = 0


class _NullSpan:
    """Shared no-op span returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _LiveSpan:
    """An open span; created by :meth:`Telemetry.span` when enabled."""

    __slots__ = ("_telemetry", "name", "args", "_ident", "_start")

    def __init__(self, telemetry: "Telemetry", name: str,
                 args: Dict[str, Any]):
        self._telemetry = telemetry
        self.name = name
        self.args = args

    def set(self, **args) -> "_LiveSpan":
        """Attach or update span arguments; chainable."""
        self.args.update(args)
        return self

    def __enter__(self) -> "_LiveSpan":
        self._ident = self._telemetry._enter_span()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        duration = time.perf_counter() - self._start
        self._telemetry._exit_span(self, duration)
        return False


class Telemetry:
    """A registry of spans, counters, gauges, histograms and events."""

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self._local = threading.local()
        self._serial = 0
        self._epoch = time.perf_counter()
        self.spans: List[SpanRecord] = []
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.events: List[Dict[str, Any]] = []
        #: pid -> process name, for spans stitched in from worker
        #: processes (:mod:`repro.telemetry.remote`); exporters use it
        #: to label per-process tracks.
        self.remote_processes: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded data (the enabled flag is preserved)."""
        with self._lock:
            self._serial = 0
            self._epoch = time.perf_counter()
            self.spans = []
            self.counters = {}
            self.gauges = {}
            self.histograms = {}
            self.events = []
            self.remote_processes = {}
        # per-thread stacks restart lazily; only this thread's can be
        # cleared here, which is enough for the sequential pipeline
        self._local.stack = []

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _enter_span(self) -> int:
        with self._lock:
            self._serial += 1
            ident = self._serial
        self._stack().append(ident)
        return ident

    def _exit_span(self, span: _LiveSpan, duration: float) -> None:
        stack = self._stack()
        ident = span._ident
        # tolerate interleaved exits (enable() mid-span): unwind to the
        # matching entry if present, else record as a root span
        if ident in stack:
            while stack and stack[-1] != ident:
                stack.pop()
            stack.pop()
        parent = stack[-1] if stack else None
        record = SpanRecord(
            ident=ident,
            parent=parent,
            name=span.name,
            start=span._start - self._epoch,
            duration=duration,
            thread=threading.get_ident(),
            args=span.args,
        )
        with self._lock:
            self.spans.append(record)

    def span(self, name: str, **args):
        """A context manager timing one hierarchical span."""
        if not self.enabled:
            return NULL_SPAN
        return _LiveSpan(self, name, args)

    def traced(self, name: Optional[str] = None, **static_args) -> Callable:
        """Decorator form of :meth:`span`."""

        def wrap(fn: Callable) -> Callable:
            label = name or fn.__qualname__

            @functools.wraps(fn)
            def inner(*a, **kw):
                if not self.enabled:
                    return fn(*a, **kw)
                with self.span(label, **static_args):
                    return fn(*a, **kw)

            return inner

        return wrap

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def count(self, name: str, amount: Number = 1) -> None:
        if not self.enabled:
            return
        with self._lock:
            counter = self.counters.get(name)
            if counter is None:
                counter = self.counters[name] = Counter()
            counter.add(amount)

    def gauge(self, name: str, value: Number) -> None:
        if not self.enabled:
            return
        with self._lock:
            gauge = self.gauges.get(name)
            if gauge is None:
                gauge = self.gauges[name] = Gauge()
            gauge.set(value)

    def observe(self, name: str, value: Number) -> None:
        if not self.enabled:
            return
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram()
            histogram.observe(value)

    def event(self, name: str, **fields) -> None:
        """Record one structured event (an extraction, a round row)."""
        if not self.enabled:
            return
        record = {"name": name}
        record.update(fields)
        with self._lock:
            self.events.append(record)

    # ------------------------------------------------------------------
    def counter_value(self, name: str, default: Number = 0) -> Number:
        counter = self.counters.get(name)
        return counter.value if counter is not None else default


#: The process-global registry all instrumentation reports to.
GLOBAL = Telemetry()


def get() -> Telemetry:
    """The process-global :class:`Telemetry` registry."""
    return GLOBAL


def enable() -> None:
    GLOBAL.enable()


def disable() -> None:
    GLOBAL.disable()


def reset() -> None:
    GLOBAL.reset()


def is_enabled() -> bool:
    return GLOBAL.enabled


def span(name: str, **args):
    return GLOBAL.span(name, **args)


def traced(name: Optional[str] = None, **static_args) -> Callable:
    return GLOBAL.traced(name, **static_args)


def count(name: str, amount: Number = 1) -> None:
    GLOBAL.count(name, amount)


def gauge(name: str, value: Number) -> None:
    GLOBAL.gauge(name, value)


def observe(name: str, value: Number) -> None:
    GLOBAL.observe(name, value)


def event(name: str, **fields) -> None:
    GLOBAL.event(name, **fields)
