"""Layout: turn a rewritable :class:`Module` back into a runnable image.

This is the final step of the paper's framework: after abstraction the
labels carry all control-flow information, so this phase simply

1. assigns a byte address to every instruction, label and literal-pool
   slot (one pool is placed after each function),
2. resolves branch targets to pc-relative word offsets and ``ldr =...``
   pseudo loads to pc-relative pool accesses,
3. encodes every instruction to its 32-bit word (:mod:`repro.isa.encoder`).

The resulting :class:`~repro.binary.image.Image` is bit-for-bit runnable
on the simulator and re-loadable by the loader, closing the
binary -> program -> binary loop.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.isa.assembler import DataSpace, DataWord, Label
from repro.isa.encoder import encode
from repro.isa.instructions import Instruction
from repro.isa.operands import Imm, LabelRef, Mem
from repro.isa.registers import PC

from repro.binary.image import DATA_BASE, TEXT_BASE, Image
from repro.binary.pools import Literal, plan_pool, pseudo_literal
from repro.binary.program import Module


class LayoutError(ValueError):
    """Raised when a module cannot be laid out into an image."""


def layout(module: Module, text_base: int = TEXT_BASE,
           data_base: int = DATA_BASE) -> Image:
    """Assign addresses, resolve references and encode *module*."""
    label_addr: Dict[str, int] = {}
    pool_addr: Dict[Tuple[int, Literal], int] = {}

    # ------------------------------------------------------------------
    # pass 1: address assignment
    # ------------------------------------------------------------------
    addr = text_base
    insn_addrs: List[Tuple[Instruction, int, int]] = []  # (insn, addr, func index)
    for fi, func in enumerate(module.functions):
        _define(label_addr, func.name, addr)
        for block in func.blocks:
            for label in block.labels:
                if label != func.name:
                    _define(label_addr, label, addr)
            for insn in block.instructions:
                insn_addrs.append((insn, addr, fi))
                addr += 4
        pool = plan_pool(func.iter_instructions())
        if len(pool) and func.blocks and func.blocks[-1].falls_through:
            raise LayoutError(
                f"function {func.name!r} falls through into its literal pool"
            )
        for literal in pool.literals:
            pool_addr[(fi, literal)] = addr
            addr += 4
    text_words = (addr - text_base) // 4

    # The fixed data base caps text at ~57k words; huge programs (the
    # variance fuzzer scales to 100k+ instructions) push the data
    # section up to the next 64k boundary past the text instead.  All
    # data references resolve through label_addr, so the bump is
    # transparent; images that fit keep the paper's conventional map.
    if addr > data_base:
        data_base = (addr + 0xFFFF) & ~0xFFFF
    addr = data_base
    data_word_addrs: List[Tuple[object, int]] = []
    for item in module.data:
        if isinstance(item, Label):
            _define(label_addr, item.name, addr)
        elif isinstance(item, DataWord):
            data_word_addrs.append((item, addr))
            addr += 4
        elif isinstance(item, DataSpace):
            data_word_addrs.append((item, addr))
            addr += 4 * item.words
        else:
            raise LayoutError(f"bad data item: {item!r}")

    if module.entry not in label_addr:
        raise LayoutError(f"entry symbol {module.entry!r} is not defined")

    # ------------------------------------------------------------------
    # pass 2: resolve + encode text
    # ------------------------------------------------------------------
    def resolve(name: str) -> int:
        try:
            return label_addr[name]
        except KeyError:
            raise LayoutError(f"undefined label: {name!r}") from None

    def literal_value(literal: Literal) -> int:
        """Resolve a pool literal: a label address or a raw constant.

        A purely numeric "label" name denotes the constant itself
        (``ldr r0, =4096``); real labels can never be all digits.
        """
        if isinstance(literal, Imm):
            return literal.value & 0xFFFFFFFF
        name = literal.name
        if name.isdigit() or (name.startswith("-") and name[1:].isdigit()):
            return int(name) & 0xFFFFFFFF
        return resolve(name)

    text: List[int] = []
    for insn, insn_at, fi in insn_addrs:
        if insn.mnemonic in ("b", "bl"):
            target = resolve(insn.operands[0].name)
            offset_words = (target - (insn_at + 8)) // 4
            text.append(encode(insn, branch_offset_words=offset_words))
            continue
        literal = pseudo_literal(insn)
        if literal is not None:
            literal_value(literal)  # fail early on dangling references
            slot_at = pool_addr[(fi, literal)]
            offset = slot_at - (insn_at + 8)
            if not -4096 < offset < 4096:
                raise LayoutError(
                    f"literal pool out of pc-relative range ({offset} bytes)"
                )
            concrete = Instruction(
                "ldr",
                (insn.operands[0], Mem(PC, offset)),
                cond=insn.cond,
            )
            text.append(encode(concrete))
            continue
        text.append(encode(insn))

    # pool words, function by function, in address order
    pool_words: List[Tuple[int, int]] = []
    for (fi, literal), slot_at in pool_addr.items():
        pool_words.append((slot_at, literal_value(literal)))
    words_by_addr = dict(pool_words)
    full_text: List[int] = []
    it = iter(text)
    for word_addr in range(text_base, text_base + 4 * text_words, 4):
        if word_addr in words_by_addr:
            full_text.append(words_by_addr[word_addr])
        else:
            full_text.append(next(it))

    # ------------------------------------------------------------------
    # data section
    # ------------------------------------------------------------------
    data: List[int] = []
    for item, __ in data_word_addrs:
        if isinstance(item, DataWord):
            if isinstance(item.value, LabelRef):
                data.append(resolve(item.value.name))
            else:
                data.append(item.value & 0xFFFFFFFF)
        else:
            data.extend([0] * item.words)

    symbols = {func.name: label_addr[func.name] for func in module.functions}
    for item in module.data:
        if isinstance(item, Label):
            symbols[item.name] = label_addr[item.name]

    return Image(
        text=full_text,
        data=data,
        text_base=text_base,
        data_base=data_base,
        entry=label_addr[module.entry],
        symbols=symbols,
    )


def _define(table: Dict[str, int], name: str, addr: int) -> None:
    if name in table:
        raise LayoutError(f"label defined twice: {name!r}")
    table[name] = addr
