"""The rewritable program representation.

After loading (or after parsing compiler output), a program is a
:class:`Module`: an ordered list of :class:`Function` objects, each an
ordered list of :class:`BasicBlock` objects, plus the data section items.
This is the representation every PA transformation operates on; the
layout phase turns it back into a runnable :class:`~repro.binary.image.Image`.

Because all control transfers go through labels (paper §2.1 steps 3-4),
blocks can be freely grown, shrunk, reordered and outlined without any
address arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Set

from repro.isa.assembler import AsmModule, Item, Label
from repro.isa.instructions import Instruction


@dataclass
class BasicBlock:
    """A single-entry straight-line run of instructions.

    ``labels`` are the names by which branches reach this block (a block
    may carry several labels when distinct jump targets coincide).  If the
    final instruction can fall through (or there is no final branch), the
    block implicitly continues at the next block of its function.
    """

    labels: List[str] = field(default_factory=list)
    instructions: List[Instruction] = field(default_factory=list)

    @property
    def terminator(self) -> Optional[Instruction]:
        """The final instruction if it is an unconditional terminator."""
        if self.instructions and self.instructions[-1].is_terminator:
            last = self.instructions[-1]
            if not last.is_conditional:
                return last
        return None

    @property
    def falls_through(self) -> bool:
        """True if control may continue at the next block in sequence."""
        return self.terminator is None

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)


@dataclass
class Function:
    """A named sequence of basic blocks; entry is the first block."""

    name: str
    blocks: List[BasicBlock] = field(default_factory=list)
    #: Functions reached through indirect jumps / function pointers are
    #: exempted from PA (paper §2.1 step 5, footnote 1).
    pa_exempt: bool = False

    @property
    def num_instructions(self) -> int:
        return sum(len(block) for block in self.blocks)

    def iter_instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions


@dataclass
class Module:
    """A whole rewritable program."""

    functions: List[Function] = field(default_factory=list)
    data: List[Item] = field(default_factory=list)
    entry: str = "_start"
    #: Fresh-label counter position.  A plain int (not an iterator) so a
    #: checkpoint can persist and restore it — resumed runs must draw
    #: the same label names an uninterrupted run would.
    _fresh: int = field(default=0, repr=False)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def num_instructions(self) -> int:
        """Total instruction count — the paper's code-size metric."""
        return sum(f.num_instructions for f in self.functions)

    def function(self, name: str) -> Function:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(f"no function named {name!r}")

    def defined_labels(self) -> Set[str]:
        """All label names defined anywhere in the module."""
        names: Set[str] = set()
        for func in self.functions:
            names.add(func.name)
            for block in func.blocks:
                names.update(block.labels)
        for item in self.data:
            if isinstance(item, Label):
                names.add(item.name)
        return names

    def fresh_label(self, prefix: str) -> str:
        """Return a label name that is not yet defined in the module."""
        defined = self.defined_labels()
        while True:
            name = f"{prefix}_{self._fresh}"
            self._fresh += 1
            if name not in defined:
                return name

    # ------------------------------------------------------------------
    # conversion back to flat assembly
    # ------------------------------------------------------------------
    def to_asm(self) -> AsmModule:
        """Flatten to an :class:`AsmModule` (labels + instructions)."""
        asm = AsmModule()
        asm.globals.add(self.entry)
        for func in self.functions:
            asm.text.append(Label(func.name))
            for block in func.blocks:
                for label in block.labels:
                    if label != func.name:
                        asm.text.append(Label(label))
                asm.text.extend(block.instructions)
        asm.data.extend(self.data)
        return asm

    def render(self) -> str:
        """Pretty-print the whole module as assembler text."""
        return self.to_asm().render()
