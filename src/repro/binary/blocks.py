"""Function and basic-block splitting (paper §2.1 steps 2 and 5).

``module_from_asm`` turns a flat label/instruction sequence — either the
mini-C compiler's output or the loader's recovered program — into the
structured :class:`~repro.binary.program.Module` form:

* **function entries** are the entry symbol, every ``bl`` target, and
  every text label whose address is taken (referenced from a ``ldr
  =label`` pseudo or from a data word); address-taken functions are
  marked ``pa_exempt`` because they may be reached through function
  pointers whose targets points-to analysis cannot bound in general,
* **block leaders** are function entries, branch targets, and the
  instructions following a terminator or a conditional branch.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.isa.assembler import AsmModule, DataWord, Label
from repro.isa.instructions import Instruction
from repro.isa.operands import LabelRef

from repro.binary.program import BasicBlock, Function, Module


class SplitError(ValueError):
    """Raised when a flat program cannot be split into functions."""


def _flatten(asm: AsmModule) -> Tuple[List[Instruction], Dict[str, int], List[Tuple[int, str]]]:
    """Flatten text items to (instructions, label->index, ordered labels)."""
    instructions: List[Instruction] = []
    label_index: Dict[str, int] = {}
    ordered_labels: List[Tuple[int, str]] = []
    for item in asm.text:
        if isinstance(item, Label):
            if item.name in label_index:
                raise SplitError(f"duplicate label: {item.name}")
            label_index[item.name] = len(instructions)
            ordered_labels.append((len(instructions), item.name))
        elif isinstance(item, Instruction):
            instructions.append(item)
        else:
            raise SplitError(f"data item in text section: {item}")
    return instructions, label_index, ordered_labels


def _address_taken_labels(asm: AsmModule) -> Set[str]:
    """Labels whose address escapes into a register or into data."""
    taken: Set[str] = set()
    for item in asm.text:
        if isinstance(item, Instruction):
            if item.mnemonic == "ldr" and isinstance(item.operands[1], LabelRef):
                taken.add(item.operands[1].name)
    for item in asm.data:
        if isinstance(item, DataWord) and isinstance(item.value, LabelRef):
            taken.add(item.value.name)
    return taken


def module_from_asm(asm: AsmModule, entry: str = "_start") -> Module:
    """Split a flat assembly module into functions and basic blocks."""
    instructions, label_index, ordered_labels = _flatten(asm)
    if entry not in label_index:
        raise SplitError(f"entry symbol {entry!r} is not defined")
    taken = _address_taken_labels(asm)

    call_targets: Set[str] = set()
    branch_targets: Set[str] = set()
    for insn in instructions:
        target = insn.label_target
        if target is None or target not in label_index:
            continue
        if insn.is_call:
            call_targets.add(target)
        else:
            branch_targets.add(target)

    # ------------------------------------------------------------------
    # function entries
    # ------------------------------------------------------------------
    entry_names = {entry} | call_targets
    # A label at the very start of the text is a function even if nothing
    # calls it (dead code the linker kept, or the entry trampoline).
    text_labels = {name for __, name in ordered_labels}
    entry_names |= {name for name in (taken & text_labels)}
    entry_indices = sorted({label_index[name] for name in entry_names})
    if not entry_indices or entry_indices[0] != 0:
        first = min(label_index[n] for n in text_labels) if text_labels else None
        if first == 0:
            entry_indices = sorted(set(entry_indices) | {0})
        else:
            raise SplitError("text does not begin at a function entry")

    index_to_entry_name: Dict[int, str] = {}
    for index, name in ordered_labels:
        if label_index[name] in entry_indices and index == label_index[name]:
            # Prefer a call-target / entry name when several labels share
            # the address.
            if index not in index_to_entry_name or name in entry_names:
                index_to_entry_name.setdefault(index, name)
                if name in entry_names:
                    index_to_entry_name[index] = name

    # ------------------------------------------------------------------
    # block leaders
    # ------------------------------------------------------------------
    leaders: Set[int] = set(entry_indices)
    for name in branch_targets:
        leaders.add(label_index[name])
    for i, insn in enumerate(instructions):
        ends_block = insn.is_terminator or (
            insn.is_branch and not insn.is_call
        )
        if ends_block and i + 1 < len(instructions):
            leaders.add(i + 1)
    leader_list = sorted(leaders)

    labels_at: Dict[int, List[str]] = {}
    for index, name in ordered_labels:
        labels_at.setdefault(index, []).append(name)

    # ------------------------------------------------------------------
    # assemble functions
    # ------------------------------------------------------------------
    module = Module(entry=entry)
    entry_bounds = entry_indices + [len(instructions)]
    leader_pos = 0
    for fi in range(len(entry_indices)):
        start, stop = entry_bounds[fi], entry_bounds[fi + 1]
        fname = index_to_entry_name[start]
        func = Function(name=fname, pa_exempt=bool(set(labels_at.get(start, [])) & taken))
        block_starts = [x for x in leader_list if start <= x < stop]
        if not block_starts or block_starts[0] != start:
            block_starts = [start] + block_starts
        block_bounds = block_starts + [stop]
        for bi in range(len(block_starts)):
            b0, b1 = block_bounds[bi], block_bounds[bi + 1]
            if b0 == b1 and b0 != start:
                continue
            block = BasicBlock(
                labels=[n for n in labels_at.get(b0, []) if n != fname or b0 != start],
                instructions=list(instructions[b0:b1]),
            )
            # Labels inside the function whose address is taken make the
            # whole function exempt (indirect jumps may land there).
            if set(labels_at.get(b0, [])) & taken:
                func.pa_exempt = True
            func.blocks.append(block)
        module.functions.append(func)
    module.data = list(asm.data)
    return module
