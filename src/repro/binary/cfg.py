"""Per-function control-flow graphs.

The CFG is not needed by the basic-block miner itself, but the paper's
framework builds it (step 5) and we use it for consistency checking, for
reachability-based statistics, and as the substrate for the future-work
"whole procedure" search-area extension.
"""

from __future__ import annotations

from typing import Dict, List, Set

import networkx as nx

from repro.binary.program import Function


def build_cfg(func: Function) -> "nx.DiGraph":
    """Build the control-flow graph of one function.

    Nodes are block indices into ``func.blocks``; edges carry a ``kind``
    attribute of ``"fallthrough"``, ``"branch"`` or ``"cond"``.
    Branches that leave the function (tail calls, shared epilogues created
    by cross-jumping) appear as edges to the string node ``"exit:<label>"``.
    """
    graph = nx.DiGraph()
    label_to_block: Dict[str, int] = {}
    for i, block in enumerate(func.blocks):
        graph.add_node(i)
        for label in block.labels:
            label_to_block[label] = i
    label_to_block.setdefault(func.name, 0)

    for i, block in enumerate(func.blocks):
        for insn in block.instructions:
            if insn.is_branch and not insn.is_call and insn.label_target:
                target = insn.label_target
                kind = "cond" if insn.is_conditional else "branch"
                if target in label_to_block:
                    graph.add_edge(i, label_to_block[target], kind=kind)
                else:
                    graph.add_edge(i, f"exit:{target}", kind=kind)
        if block.falls_through and i + 1 < len(func.blocks):
            graph.add_edge(i, i + 1, kind="fallthrough")
    return graph


def reachable_blocks(func: Function) -> Set[int]:
    """Indices of blocks reachable from the function entry."""
    graph = build_cfg(func)
    if not func.blocks:
        return set()
    reached = nx.descendants(graph, 0) | {0}
    return {node for node in reached if isinstance(node, int)}


def block_successors(func: Function) -> Dict[int, List[int]]:
    """Successor map over block indices (external targets dropped)."""
    graph = build_cfg(func)
    return {
        node: [s for s in graph.successors(node) if isinstance(s, int)]
        for node in graph.nodes
        if isinstance(node, int)
    }
