"""Loader: decompile a statically linked image into a rewritable Module.

This implements paper §2.1 steps 1-5 in order:

1. every text word is speculatively decoded,
2. pc-relative loads reveal the literal pools; pool words are
   (re)classified as interwoven data in a fixpoint loop — a word that
   *looked* like an instruction but is the target of a pc-relative load
   is data, and once removed it no longer contributes spurious
   references of its own,
3. + 4. all branch/call targets and pool contents are symbolized, making
   the recovered program independent of concrete addresses,
5. :func:`repro.binary.blocks.module_from_asm` splits the result into
   functions and basic blocks; address-taken functions become
   ``pa_exempt``.

The loader consults the image's symbol table only to produce friendly
names — decompilation never requires it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.isa.assembler import AsmModule, DataWord, Label
from repro.isa.decoder import DecodingError, decode
from repro.isa.instructions import Instruction
from repro.isa.operands import LabelRef

from repro.binary.blocks import module_from_asm
from repro.binary.image import Image
from repro.binary.pools import pc_relative_target
from repro.binary.program import Module
from repro.resilience.errors import EXIT_INPUT, ReproError


class LoaderError(ReproError, ValueError):
    """Raised when an image cannot be decompiled.

    A :class:`~repro.resilience.errors.ReproError`: a malformed input
    image crosses the CLI boundary as ``error[REPRO-IMAGE]`` (exit 5),
    never as a traceback.  ``ValueError`` is kept in the bases for
    backward compatibility with callers that catch it.
    """

    code = "REPRO-IMAGE"
    exit_code = EXIT_INPUT


def load_image(image: Image) -> Module:
    """Decompile *image* into a structured, rewritable :class:`Module`."""
    n = len(image.text)
    def addr_of(i: int) -> int:
        return image.text_base + 4 * i

    decoded: List[Optional[Instruction]] = []
    for i, word in enumerate(image.text):
        try:
            decoded.append(decode(word, addr_of(i)))
        except DecodingError:
            decoded.append(None)

    # ------------------------------------------------------------------
    # fixpoint interwoven-data detection (step 5)
    # ------------------------------------------------------------------
    data_indices: Set[int] = set()
    while True:
        pool_targets: Set[int] = set()
        for i, insn in enumerate(decoded):
            if insn is None or i in data_indices:
                continue
            target = pc_relative_target(insn, addr_of(i))
            if target is not None:
                if not image.in_text(target):
                    raise LoaderError(
                        f"pc-relative load at {addr_of(i):#x} targets "
                        f"{target:#x} outside the text section"
                    )
                if target % 4:
                    raise LoaderError(
                        f"pc-relative load at {addr_of(i):#x} targets "
                        f"unaligned address {target:#x}"
                    )
                pool_targets.add((target - image.text_base) // 4)
        if pool_targets <= data_indices:
            break
        data_indices |= pool_targets

    for i, insn in enumerate(decoded):
        if insn is None and i not in data_indices:
            raise LoaderError(
                f"undecodable word {image.text[i]:#010x} at {addr_of(i):#x} "
                "is not referenced as data"
            )

    # ------------------------------------------------------------------
    # symbolization (steps 3-4)
    # ------------------------------------------------------------------
    label_for: Dict[int, str] = {}

    def name_at(addr: int) -> str:
        if addr not in label_for:
            sym = image.symbol_at(addr)
            if sym is None:
                sym = (
                    f"loc_{addr:08x}" if image.in_text(addr) else f"glob_{addr:08x}"
                )
            label_for[addr] = sym
        return label_for[addr]

    items: List[object] = []
    needed_text_labels: Set[int] = set()
    needed_data_labels: Set[int] = set()

    recovered: List[Optional[Instruction]] = []
    for i, insn in enumerate(decoded):
        if i in data_indices:
            recovered.append(None)
            continue
        target = pc_relative_target(insn, addr_of(i))
        if target is not None:
            value = image.word_at(target)
            literal: object
            if image.in_text(value):
                literal = LabelRef(name_at(value))
                needed_text_labels.add(value)
            elif image.in_data(value):
                literal = LabelRef(name_at(value))
                needed_data_labels.add(value)
            else:
                # A raw 32-bit constant; a purely numeric "label" denotes
                # the constant itself (``ldr r0, =4096``).  Real labels
                # can never be all digits.
                literal = LabelRef(str(value))
            insn = Instruction(
                "ldr", (insn.operands[0], literal), cond=insn.cond
            )
        elif insn.mnemonic in ("b", "bl"):
            try:
                target_addr = int(insn.operands[0].name.split("_")[1], 16)
            except (AttributeError, IndexError, ValueError) as exc:
                raise LoaderError(
                    f"branch at {addr_of(i):#x} has unresolvable target "
                    f"{insn.operands[0]!r}"
                ) from exc
            if not image.in_text(target_addr):
                raise LoaderError(
                    f"branch at {addr_of(i):#x} targets {target_addr:#x} "
                    "outside the text section"
                )
            needed_text_labels.add(target_addr)
            insn = Instruction(
                insn.mnemonic,
                (LabelRef(name_at(target_addr)),),
                cond=insn.cond,
            )
        recovered.append(insn)

    # data words that hold code addresses (function-pointer tables)
    # also need labels in the text stream
    for value in image.data:
        if image.in_text(value):
            needed_text_labels.add(value)

    # entry must carry a label so block splitting can find it
    needed_text_labels.add(image.entry)
    entry_name = name_at(image.entry)

    asm = AsmModule()
    asm.globals.add(entry_name)
    for i, insn in enumerate(recovered):
        addr = addr_of(i)
        if addr in needed_text_labels:
            asm.text.append(Label(name_at(addr)))
            needed_text_labels.discard(addr)
        if insn is not None:
            asm.text.append(insn)
    if needed_text_labels:
        bad = ", ".join(f"{a:#x}" for a in sorted(needed_text_labels))
        raise LoaderError(f"references into literal pools or data: {bad}")

    # ------------------------------------------------------------------
    # data section
    # ------------------------------------------------------------------
    for j, value in enumerate(image.data):
        addr = image.data_base + 4 * j
        if addr in needed_data_labels or image.symbol_at(addr):
            asm.data.append(Label(name_at(addr)))
        if image.in_text(value):
            # An address of code stored in data: a function-pointer table.
            asm.data.append(DataWord(LabelRef(name_at(value))))
        else:
            asm.data.append(DataWord(value))

    return module_from_asm(asm, entry=entry_name)
