"""Literal pools: planning (link time) and detection (load time).

On ARM, 32-bit constants — in particular absolute addresses — cannot be
immediate operands; the compiler interleaves them with the code as
*literal pools* and reaches them with pc-relative loads (paper §4.1,
Fig. 10).  The layout phase plans one pool per function; the loader
recognizes pool words as interwoven data so they are never decoded as
instructions nor offered to the abstraction engine (paper §2.1 step 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Union

from repro.isa.instructions import Instruction
from repro.isa.operands import Imm, LabelRef, Mem
from repro.isa.registers import PC

#: A literal is either an address (symbolic) or a raw 32-bit constant.
Literal = Union[LabelRef, Imm]


@dataclass
class PoolPlan:
    """The literal pool of one function: ordered, deduplicated literals."""

    literals: List[Literal] = field(default_factory=list)
    _index: Dict[Literal, int] = field(default_factory=dict)

    def slot(self, literal: Literal) -> int:
        """Return the pool slot of *literal*, appending it if new."""
        if literal not in self._index:
            self._index[literal] = len(self.literals)
            self.literals.append(literal)
        return self._index[literal]

    def __len__(self) -> int:
        return len(self.literals)


def plan_pool(instructions: Iterable[Instruction]) -> PoolPlan:
    """Collect the distinct literals a function's pseudo loads need."""
    plan = PoolPlan()
    for insn in instructions:
        literal = pseudo_literal(insn)
        if literal is not None:
            plan.slot(literal)
    return plan


def pseudo_literal(insn: Instruction) -> Literal | None:
    """The literal operand of a ``ldr rX, =...`` pseudo, else None."""
    if insn.mnemonic == "ldr" and isinstance(insn.operands[1], LabelRef):
        return insn.operands[1]
    return None


def pc_relative_target(insn: Instruction, addr: int) -> int | None:
    """Byte address a pc-relative load at *addr* reads from, else None.

    On ARM the pc reads as the instruction address plus 8.
    """
    if insn.mnemonic not in ("ldr", "ldrb"):
        return None
    mem = insn.operands[1]
    if not isinstance(mem, Mem) or mem.base != PC or mem.index is not None:
        return None
    return addr + 8 + mem.offset
