"""The statically linked program image.

An :class:`Image` is the common currency between the linker
(:mod:`repro.binary.layout`), the loader (:mod:`repro.binary.loader`) and
the simulator (:mod:`repro.sim`): arrays of 32-bit words for the text and
data sections, an entry point, and an optional symbol table that is used
for naming only — the loader never *needs* it, which is what makes the
optimizer a pure post link-time tool.

The data section lives at a fixed base independent of the text size, so
compacting the text never moves data.  All text-to-anywhere references go
through literal pools and branch offsets, which the loader symbolizes and
the layout phase re-resolves; addresses stored *inside* data (e.g. jump
tables) therefore stay valid across rewriting as long as they point into
the data section, and the loader flags text addresses found in data so
the affected functions are exempted from abstraction (paper §2.1 step 5,
footnote 1).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.resilience.errors import EXIT_INPUT, ReproError

#: Default load address of the text section (conventional ARM value).
TEXT_BASE = 0x8000
#: Fixed load address of the data section.
DATA_BASE = 0x40000
#: Initial stack pointer (stack grows down).
STACK_TOP = 0x80000

#: ``.img`` container magic ("Repro IMaGe").
IMG_MAGIC = b"RIMG"
#: Current ``.img`` container version.
IMG_VERSION = 1

#: Header layout: magic, u16 version, u16 reserved, then five u32 LE
#: fields (text_base, data_base, entry, text word count, data word
#: count) followed by the raw little-endian words of both sections.
_HEADER = struct.Struct("<4sHH5I")


class ImageFormatError(ReproError, ValueError):
    """Raised when serialized ``.img`` bytes cannot be parsed.

    Shares ``REPRO-IMAGE`` with :class:`repro.binary.loader.LoaderError`:
    both mean "the input image is malformed", the only difference being
    which layer rejected it.
    """

    code = "REPRO-IMAGE"
    exit_code = EXIT_INPUT


@dataclass
class Image:
    """A statically linked, runnable program image."""

    text: List[int] = field(default_factory=list)
    data: List[int] = field(default_factory=list)
    text_base: int = TEXT_BASE
    data_base: int = DATA_BASE
    entry: int = TEXT_BASE
    symbols: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for word in self.text:
            if not 0 <= word <= 0xFFFFFFFF:
                raise ValueError(f"text word out of range: {word:#x}")
        for word in self.data:
            if not 0 <= word <= 0xFFFFFFFF:
                raise ValueError(f"data word out of range: {word:#x}")
        if self.text_base + 4 * len(self.text) > self.data_base:
            raise ValueError("text section overlaps the data base")

    @property
    def text_end(self) -> int:
        """One past the last byte of the text section."""
        return self.text_base + 4 * len(self.text)

    @property
    def data_end(self) -> int:
        return self.data_base + 4 * len(self.data)

    @property
    def text_size_bytes(self) -> int:
        return 4 * len(self.text)

    def in_text(self, addr: int) -> bool:
        return self.text_base <= addr < self.text_end

    def in_data(self, addr: int) -> bool:
        return self.data_base <= addr < self.data_end

    def word_at(self, addr: int) -> int:
        """Return the 32-bit word at byte address *addr*."""
        if addr % 4:
            raise ValueError(f"unaligned word access: {addr:#x}")
        if self.in_text(addr):
            return self.text[(addr - self.text_base) // 4]
        if self.in_data(addr):
            return self.data[(addr - self.data_base) // 4]
        raise ValueError(f"address outside image: {addr:#x}")

    def symbol_at(self, addr: int) -> Optional[str]:
        """Return a symbol name for *addr* if the table has one."""
        for name, sym_addr in self.symbols.items():
            if sym_addr == addr:
                return name
        return None

    # ------------------------------------------------------------------
    # ``.img`` container (de)serialization
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to the ``.img`` container format.

        The symbol table is deliberately dropped: the loader never needs
        it (naming only), and omitting it keeps the on-disk format an
        honest model of a stripped embedded firmware image.
        """
        header = _HEADER.pack(
            IMG_MAGIC, IMG_VERSION, 0,
            self.text_base, self.data_base, self.entry,
            len(self.text), len(self.data),
        )
        words = struct.pack(
            f"<{len(self.text) + len(self.data)}I", *self.text, *self.data
        )
        return header + words

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Image":
        """Parse ``.img`` bytes; raises :class:`ImageFormatError`."""
        if len(blob) < _HEADER.size:
            raise ImageFormatError(
                f"image truncated: {len(blob)} bytes is shorter than the "
                f"{_HEADER.size}-byte header"
            )
        magic, version, _reserved, text_base, data_base, entry, \
            n_text, n_data = _HEADER.unpack_from(blob)
        if magic != IMG_MAGIC:
            raise ImageFormatError(f"bad image magic {magic!r}")
        if version != IMG_VERSION:
            raise ImageFormatError(
                f"unsupported image version {version} "
                f"(expected {IMG_VERSION})"
            )
        body = blob[_HEADER.size:]
        expected = 4 * (n_text + n_data)
        if len(body) != expected:
            raise ImageFormatError(
                f"image body is {len(body)} bytes; header promises "
                f"{expected} ({n_text} text + {n_data} data words)"
            )
        words = struct.unpack(f"<{n_text + n_data}I", body)
        try:
            return cls(
                text=list(words[:n_text]),
                data=list(words[n_text:]),
                text_base=text_base,
                data_base=data_base,
                entry=entry,
            )
        except ValueError as exc:
            raise ImageFormatError(str(exc)) from exc
