"""Post link-time binary rewriting framework (paper §2.1 steps 1-5).

The framework is deliberately structured exactly like the paper's:

1. :mod:`.loader` decompiles a statically linked word image back into an
   instruction sequence (using :mod:`repro.isa.decoder`).
2. :mod:`.functions` splits the sequence into functions.
3. + 4. the loader marks all jump and call targets with labels and
   rewrites pc-relative loads into address-independent ``ldr =label``
   pseudo instructions, so the program no longer depends on concrete
   addresses.
5. :mod:`.blocks` splits the code into basic blocks; literal pools
   (interwoven data) are detected by :mod:`.pools` and excluded from
   abstraction.

:mod:`.layout` is the inverse: it re-assigns addresses, re-materializes
literal pools and re-encodes everything into a runnable image — the step
that makes procedural abstraction a *binary to binary* transformation.
"""

from repro.binary.image import Image
from repro.binary.program import BasicBlock, Function, Module
from repro.binary.layout import LayoutError, layout
from repro.binary.loader import load_image
from repro.binary.blocks import module_from_asm
from repro.binary.cfg import build_cfg

__all__ = [
    "Image",
    "BasicBlock",
    "Function",
    "Module",
    "layout",
    "LayoutError",
    "load_image",
    "module_from_asm",
    "build_cfg",
]
