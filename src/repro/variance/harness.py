"""The differential compilation-variance harness.

For one mini-C source and a variant grid (:mod:`repro.variance.grid`),
the harness answers three questions the paper's robustness claim turns
on:

1. **Does abstraction stay correct under every build?**  Each variant
   is compiled, abstracted, and both the original and the abstracted
   image are executed end to end in the simulator; the *oracle* diffs
   the observable behaviour (output bytes, exit code) **and** the final
   data-section machine state word by word.  Any disagreement is a
   miscompilation PA introduced on that variant.
2. **How much do the savings degrade?**  Per-variant saved-instruction
   counts, plus the max-to-min degradation ratio: a graph-based miner
   should keep finding the redundancy a scheduler or layout shuffle
   tried to hide.
3. **Do the variants find the *same* code?**  Every extracted fragment
   is fingerprinted by its canonical instruction labels
   (:func:`repro.pa.canonical.canonical_label` — registers and
   immediates abstracted away), and variant pairs are compared by
   Jaccard overlap of their fingerprint sets.

The report is versioned (``repro.variance/1``) and each variant leaves
a ``variance.variant`` decision-ledger record when the ledger is
enabled, so CI artifacts carry full provenance.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.binary.image import Image
from repro.binary.layout import layout
from repro.isa.assembler import parse_instruction
from repro.minicc.driver import compile_to_module
from repro.pa.canonical import canonical_label
from repro.pa.driver import PAConfig, run_pa
from repro.pa.sfx import SFXConfig, run_sfx
from repro.report import ledger
from repro.sim.machine import Machine, RunResult
from repro.sim.sanitize import Sanitizer, counterexample_kinds

from repro.variance.grid import Variant, variant_grid

#: Version tag of the JSON report payload.
VARIANCE_SCHEMA = "repro.variance/1"


@dataclass(frozen=True)
class VarianceConfig:
    """Configuration of one variance sweep."""

    engine: str = "edgar"
    n_variants: int = 4
    grid_seed: int = 0
    max_nodes: int = 8
    time_budget: float = 60.0
    verify: bool = False
    max_steps: int = 50_000_000
    #: Run every oracle simulation under the stack sanitizer
    #: (:mod:`repro.sim.sanitize`); finding kinds the abstracted build
    #: trips that its own original build does not fail the oracle.
    sanitize: bool = False


@dataclass
class OracleVerdict:
    """Original vs. abstracted image, same variant, full-state diff."""

    ok: bool
    detail: str = ""


@dataclass
class VariantOutcome:
    """Everything measured about one grid cell."""

    variant: Variant
    instructions_before: int
    instructions_after: int
    rounds: int
    degraded: bool
    oracle: OracleVerdict
    fingerprints: frozenset = frozenset()
    #: (output bytes, exit code) of the original build — the
    #: cross-variant behaviour check compares these.
    behaviour: Tuple[bytes, int] = (b"", 0)

    @property
    def saved(self) -> int:
        return self.instructions_before - self.instructions_after


def _run_state(
    image: Image, max_steps: int, sanitize: bool = False
) -> Tuple[RunResult, List[int], Optional[Sanitizer]]:
    """Execute *image* and capture the final data-section words."""
    sanitizer = Sanitizer() if sanitize else None
    machine = Machine(image, max_steps=max_steps, sanitizer=sanitizer)
    result = machine.run()
    words = [
        machine.memory.load_word(image.data_base + 4 * i)
        for i in range(len(image.data))
    ]
    return result, words, sanitizer


def fragment_fingerprints(records: Sequence[Any]) -> frozenset:
    """Canonical fingerprints of all extracted fragments.

    Each fragment's instruction strings are re-parsed and relabelled
    canonically (registers -> ``R``, immediates -> ``I``, labels ->
    ``L``), so two variants that extracted the same computation under
    different register assignments or label names produce the same
    fingerprint — the overlap metric measures *what* was mined, not how
    it was spelled.
    """
    digests = set()
    for record in records:
        labels = tuple(
            canonical_label(parse_instruction(text))
            for text in record.instructions
        )
        blob = "\n".join(labels).encode()
        digests.add(hashlib.sha256(blob).hexdigest()[:16])
    return frozenset(digests)


def _jaccard(a: frozenset, b: frozenset) -> float:
    union = a | b
    if not union:
        return 1.0
    return len(a & b) / len(union)


def _run_variant(source: str, variant: Variant,
                 config: VarianceConfig) -> VariantOutcome:
    """Compile one variant, abstract it, and run the oracle."""
    module = compile_to_module(source, config=variant.config)
    original = layout(module)
    ref, ref_state, ref_san = _run_state(
        original, config.max_steps, sanitize=config.sanitize
    )

    if config.engine == "sfx":
        result = run_sfx(module, SFXConfig(max_len=config.max_nodes))
    else:
        result = run_pa(module, PAConfig(
            miner=config.engine,
            max_nodes=config.max_nodes,
            time_budget=config.time_budget,
            verify=config.verify,
        ))

    abstracted = layout(module)
    got, got_state, got_san = _run_state(
        abstracted, config.max_steps, sanitize=config.sanitize
    )
    sanitizer_kinds: List[str] = []
    if config.sanitize:
        sanitizer_kinds = sorted(
            counterexample_kinds(ref_san, got_san)
        )
    if (got.output, got.exit_code) != (ref.output, ref.exit_code):
        oracle = OracleVerdict(
            ok=False,
            detail=f"behaviour diverged: exit {ref.exit_code} -> "
                   f"{got.exit_code}, output {len(ref.output)} -> "
                   f"{len(got.output)} bytes",
        )
    elif got_state != ref_state:
        bad = next(
            i for i, (x, y) in enumerate(zip(ref_state, got_state))
            if x != y
        )
        oracle = OracleVerdict(
            ok=False,
            detail=f"final data state diverged at word {bad} "
                   f"({ref_state[bad]:#x} -> {got_state[bad]:#x})",
        )
    elif sanitizer_kinds:
        oracle = OracleVerdict(
            ok=False,
            detail="sanitizer counterexample: the abstracted build "
                   f"trips {', '.join(sanitizer_kinds)} that the "
                   "original does not",
        )
    else:
        oracle = OracleVerdict(ok=True)

    return VariantOutcome(
        variant=variant,
        instructions_before=result.instructions_before,
        instructions_after=result.instructions_after,
        rounds=result.rounds,
        degraded=bool(getattr(result, "degraded", False)),
        oracle=oracle,
        fingerprints=fragment_fingerprints(result.records),
        behaviour=(ref.output, ref.exit_code),
    )


def run_variance(source: str, config: VarianceConfig,
                 source_name: str = "<source>",
                 grid: Optional[List[Variant]] = None) -> Dict[str, Any]:
    """Run the full sweep; returns the ``repro.variance/1`` report."""
    grid = grid if grid is not None else variant_grid(
        config.n_variants, seed=config.grid_seed
    )
    outcomes: List[VariantOutcome] = []
    for variant in grid:
        with telemetry.span("variance.variant", variant=variant.name):
            outcome = _run_variant(source, variant, config)
        outcomes.append(outcome)
        ledger.emit(
            "variance.variant",
            source=source_name,
            variant=variant.name,
            config=variant.config.to_dict(),
            saved=outcome.saved,
            oracle_ok=outcome.oracle.ok,
            fragments=len(outcome.fingerprints),
        )

    pairs = []
    for i in range(len(outcomes)):
        for j in range(i + 1, len(outcomes)):
            a, b = outcomes[i], outcomes[j]
            pairs.append({
                "a": a.variant.name,
                "b": b.variant.name,
                "jaccard": round(_jaccard(a.fingerprints,
                                          b.fingerprints), 4),
                "shared": len(a.fingerprints & b.fingerprints),
                "union": len(a.fingerprints | b.fingerprints),
            })
    jaccards = [p["jaccard"] for p in pairs]

    savings = [o.saved for o in outcomes]
    max_saved = max(savings) if savings else 0
    min_saved = min(savings) if savings else 0
    degradation = (
        (max_saved - min_saved) / max_saved if max_saved > 0 else 0.0
    )

    behaviours = {o.behaviour for o in outcomes}
    report = {
        "schema": VARIANCE_SCHEMA,
        "source": source_name,
        "engine": config.engine,
        "n_variants": len(outcomes),
        "grid_seed": config.grid_seed,
        "verify": config.verify,
        "sanitize": config.sanitize,
        "variants": [
            {
                "name": o.variant.name,
                "config": o.variant.config.to_dict(),
                "instructions_before": o.instructions_before,
                "instructions_after": o.instructions_after,
                "saved": o.saved,
                "savings_ratio": round(
                    o.saved / o.instructions_before, 4
                ) if o.instructions_before else 0.0,
                "rounds": o.rounds,
                "degraded": o.degraded,
                "fragments": len(o.fingerprints),
                "oracle_ok": o.oracle.ok,
                "oracle_detail": o.oracle.detail,
            }
            for o in outcomes
        ],
        "overlap": {
            "pairs": pairs,
            "mean_jaccard": round(
                sum(jaccards) / len(jaccards), 4
            ) if jaccards else 1.0,
            "min_jaccard": min(jaccards) if jaccards else 1.0,
        },
        "savings": {
            "max": max_saved,
            "min": min_saved,
            "mean": round(sum(savings) / len(savings), 2)
            if savings else 0.0,
            "degradation": round(degradation, 4),
        },
        "oracle_ok": all(o.oracle.ok for o in outcomes),
        # All variants of the same source must behave identically
        # *before* abstraction; a difference here is a codegen-knob
        # bug, not a PA bug.
        "cross_variant_behaviour_ok": len(behaviours) == 1,
    }
    ledger.emit(
        "variance.summary",
        source=source_name,
        oracle_ok=report["oracle_ok"],
        mean_jaccard=report["overlap"]["mean_jaccard"],
        degradation=report["savings"]["degradation"],
    )
    return report
