"""Seeded property-based mini-C program generator.

Every program this module emits is *total by construction*: loops are
bounded counters, division and modulo go through the runtime's
zero-tolerant ``__div``/``__mod``, shift amounts are constants in
0..31, array indices are masked to power-of-two bounds, and the call
graph is a DAG (a function may only call earlier ones), so generated
programs always terminate and never trap.  That is the property the
round-trip tests lean on: for any seed, the program compiles,
assembles, runs in the simulator, and survives a full ``pa --verify``
round trip with the differential oracle agreeing.

Generated bodies are drawn from a small set of statement *shapes*
(accumulate, masked array update, guarded update, bounded loop, reduce,
helper call), so the same templates recur across functions with
different registers and interleavings — exactly the redundancy source
the paper attributes to real embedded code, and what makes the
programs useful PA workloads rather than incompressible noise.

Determinism: everything derives from ``random.Random(f"genprog:{seed}")``;
the same :class:`GenConfig` always yields byte-identical source.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

#: Power-of-two array sizes; indices are masked with ``size - 1``.
_ARRAY_SIZES = (8, 16, 32)

#: Non-short-circuit binary operators usable anywhere.
_BINOPS = ("+", "-", "*", "&", "|", "^")

#: Comparison operators for conditions.
_RELOPS = ("<", "<=", ">", ">=", "==", "!=")

#: Estimated compiled instructions per generated statement (frame
#: overhead included); used only to size programs, not for correctness.
#: Calibrated against actual codegen output: sized targets of 1.5k-100k
#: land within ~10% of the requested static size.
_INSTR_PER_STMT = 10

#: Estimated executed instructions for one statement / one software
#: division (``__div``/``__mod`` loop over the dividend's bits).
_STMT_COST = 8
_DIV_COST = 300


@dataclass(frozen=True)
class GenConfig:
    """Knobs of one generated program.

    ``dyn_budget`` caps the *estimated* number of dynamically executed
    statements (loop trip counts multiply), keeping every generated
    program comfortably inside the simulator's step budget no matter
    how large the static size grows.
    """

    seed: int = 0
    n_functions: int = 6
    stmts_per_function: int = 8
    n_globals: int = 4
    n_arrays: int = 2
    max_expr_depth: int = 3
    #: cap on *estimated executed instructions* (loop trip counts and
    #: helper costs multiply in); well under the simulator default of
    #: 50M steps even with the estimate off by an order of magnitude
    dyn_budget: int = 2_000_000

    def estimated_instructions(self) -> int:
        """Rough static size of the compiled user code."""
        return self.n_functions * self.stmts_per_function * _INSTR_PER_STMT


def sized_config(seed: int, target_instructions: int) -> GenConfig:
    """A config whose compiled size lands near *target_instructions*.

    Scaling adds functions (not loop iterations), so the dynamic cost
    stays bounded while the static size grows to 100k+ instructions.
    """
    stmts = 10
    n_functions = max(3, target_instructions // (stmts * _INSTR_PER_STMT))
    return GenConfig(seed=seed, n_functions=n_functions,
                     stmts_per_function=stmts)


class _Gen:
    """One generation run; all state is derived from the seeded RNG."""

    def __init__(self, config: GenConfig):
        self.cfg = config
        self.rng = random.Random(f"genprog:{config.seed}")
        self.lines: List[str] = []
        self.indent = 0
        #: estimated dynamically executed *instructions* so far
        self.dyn = 0
        self.globals = [f"g{i}" for i in range(config.n_globals)]
        self.arrays: List[Tuple[str, int]] = [
            (f"arr{i}", self.rng.choice(_ARRAY_SIZES))
            for i in range(config.n_arrays)
        ]
        #: name -> (arity, estimated dyn cost of one call)
        self.functions: List[Tuple[str, int, int]] = []
        #: product of enclosing loop trip counts (dyn accounting)
        self._weight = 1
        #: live loop counters — readable but never assignment targets,
        #: otherwise a generated body could unbound its own loop
        self._loop_vars: set = set()

    # ------------------------------------------------------------------
    # emission helpers
    # ------------------------------------------------------------------
    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _const(self) -> str:
        r = self.rng.random()
        if r < 0.5:
            return str(self.rng.randint(0, 64))
        if r < 0.8:
            return str(self.rng.randint(-128, 1024))
        # Large constants avoid [0x8000, 0x80000000): a pool word in
        # the text/data address range is indistinguishable from a code
        # or data pointer, which would defeat the loader's symbolization
        # on the binary -> program -> binary round trip.
        if r < 0.9:
            return hex(self.rng.randint(0x1000, 0x7FFF))
        return hex(self.rng.randint(0x7F000000, 0x7FFFFFFF))

    def _leaf(self, names: List[str]) -> str:
        r = self.rng.random()
        if r < 0.35 or not names:
            return self._const()
        if r < 0.85:
            return self.rng.choice(names)
        if self.arrays and r < 0.95:
            name, size = self.rng.choice(self.arrays)
            index = self.rng.choice(names) if names else self._const()
            return f"{name}[({index}) & {size - 1}]"
        return self.rng.choice(self.globals)

    def expr(self, depth: int, names: List[str],
             pure: bool = False) -> str:
        """A value expression of at most *depth* operator levels.

        ``pure`` forbids calls and ``/``/``%`` (both lower to runtime
        calls), which the code generator rejects inside ``&&``/``||``
        operands; conditions therefore generate with ``pure=True``.
        """
        if depth <= 0 or self.rng.random() < 0.3:
            return self._leaf(names)
        r = self.rng.random()
        if r < 0.55:
            op = self.rng.choice(_BINOPS)
            left = self.expr(depth - 1, names, pure)
            right = self.expr(depth - 1, names, pure)
            return f"({left} {op} {right})"
        if r < 0.70:
            op, amount = self.rng.choice(
                [(">>", self.rng.randint(1, 16)),
                 ("<<", self.rng.randint(1, 8))]
            )
            return f"({self.expr(depth - 1, names, pure)} {op} {amount})"
        if r < 0.80:
            op = self.rng.choice(("-", "~"))
            return f"({op}{self.expr(depth - 1, names, pure)})"
        if (not pure and r < 0.90
                and self.dyn + _DIV_COST * self._weight
                < self.cfg.dyn_budget):
            # software division: ~two orders of magnitude costlier than
            # an ALU op, so it is charged and budget-gated explicitly
            self.dyn += _DIV_COST * self._weight
            op = self.rng.choice(("/", "%"))
            left = self.expr(depth - 1, names, pure)
            right = self.expr(1, names, pure)
            return f"({left} {op} {right})"
        if not pure and depth >= 2 and self._affordable():
            return self._call(names)
        return self._leaf(names)

    def _affordable(self) -> List[Tuple[str, int, int]]:
        """Callees whose weighted cost still fits the dynamic budget."""
        headroom = self.cfg.dyn_budget - self.dyn
        return [
            entry for entry in self.functions
            if entry[2] * self._weight <= headroom
        ]

    def _call(self, names: List[str]) -> str:
        name, arity, cost = self.rng.choice(self._affordable())
        self.dyn += cost * self._weight
        # Args must be constants or plain variables: the code generator
        # stages up to four args in scratch registers simultaneously,
        # so a nested expression per arg can exhaust the five-register
        # scratch file ("expression too deep").
        args = ", ".join(
            self.rng.choice(names) if names and self.rng.random() < 0.7
            else self._const()
            for __ in range(arity)
        )
        return f"{name}({args})"

    def cond(self, names: List[str]) -> str:
        """A branch condition (pure operands only, see :meth:`expr`)."""
        left = self.expr(1, names, pure=True)
        right = self.expr(1, names, pure=True)
        simple = f"{left} {self.rng.choice(_RELOPS)} {right}"
        if self.rng.random() < 0.25:
            l2 = self.expr(1, names, pure=True)
            r2 = self.expr(1, names, pure=True)
            junction = self.rng.choice(("&&", "||"))
            return (f"({simple}) {junction} "
                    f"({l2} {self.rng.choice(_RELOPS)} {r2})")
        return simple

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _target(self, names: List[str]) -> str:
        writable = [n for n in names if n not in self._loop_vars]
        if writable and self.rng.random() < 0.7:
            return self.rng.choice(writable)
        return self.rng.choice(self.globals)

    def statement(self, names: List[str], budget: int,
                  nesting: int) -> int:
        """Emit one statement; returns the budget it consumed."""
        self.dyn += _STMT_COST * self._weight
        depth = self.cfg.max_expr_depth
        roll = self.rng.random()
        affordable = (budget >= 4 and nesting < 2
                      and self.dyn < self.cfg.dyn_budget)
        if roll < 0.12 and affordable:
            return self._for_loop(names, budget, nesting)
        if roll < 0.20 and affordable:
            return self._while_loop(names, budget, nesting)
        if roll < 0.35 and budget >= 3 and nesting < 3:
            return self._if(names, budget, nesting)
        if roll < 0.50 and self.arrays:
            name, size = self.rng.choice(self.arrays)
            index = self.expr(1, names)
            value = self.expr(depth, names)
            self.emit(f"{name}[({index}) & {size - 1}] = {value};")
            return 1
        if roll < 0.60 and self._affordable():
            self.emit(f"{self._target(names)} = {self._call(names)};")
            return 1
        if roll < 0.75:
            target = self._target(names)
            op = self.rng.choice(_BINOPS)
            self.emit(f"{target} = {target} {op} "
                      f"({self.expr(depth - 1, names)});")
            return 1
        self.emit(f"{self._target(names)} = {self.expr(depth, names)};")
        return 1

    def _block(self, names: List[str], budget: int, nesting: int) -> int:
        used = 0
        target = max(1, budget)
        while used < target:
            used += self.statement(names, target - used, nesting)
            if self.rng.random() < 0.35:
                break
        return used

    def _if(self, names: List[str], budget: int, nesting: int) -> int:
        self.emit(f"if ({self.cond(names)}) {{")
        self.indent += 1
        used = 1 + self._block(names, min(3, budget - 1), nesting + 1)
        self.indent -= 1
        if self.rng.random() < 0.4 and budget - used >= 1:
            self.emit("} else {")
            self.indent += 1
            used += self._block(names, min(2, budget - used), nesting + 1)
            self.indent -= 1
        self.emit("}")
        return used

    def _for_loop(self, names: List[str], budget: int,
                  nesting: int) -> int:
        iters = self.rng.randint(2, 10)
        var = f"i{nesting}"
        self.emit(f"for ({var} = 0; {var} < {iters}; "
                  f"{var} = {var} + 1) {{")
        self.indent += 1
        outer = self._weight
        self._weight = outer * iters
        self._loop_vars.add(var)
        used = 2 + self._block(names + [var], min(4, budget - 2),
                               nesting + 1)
        self._loop_vars.discard(var)
        self._weight = outer
        self.indent -= 1
        self.emit("}")
        return used

    def _while_loop(self, names: List[str], budget: int,
                    nesting: int) -> int:
        iters = self.rng.randint(2, 8)
        var = f"k{nesting}"
        self.emit(f"{var} = {iters};")
        self.emit(f"while ({var} > 0) {{")
        self.indent += 1
        outer = self._weight
        self._weight = outer * iters
        self._loop_vars.add(var)
        used = 2 + self._block(names + [var], min(3, budget - 2),
                               nesting + 1)
        self._loop_vars.discard(var)
        self.emit(f"{var} = {var} - 1;")
        self._weight = outer
        self.indent -= 1
        self.emit("}")
        return used

    # ------------------------------------------------------------------
    # program structure
    # ------------------------------------------------------------------
    def gen_globals(self) -> None:
        for name in self.globals:
            self.emit(f"int {name} = {self.rng.randint(-100, 1000)};")
        for name, size in self.arrays:
            init = ", ".join(
                str(self.rng.randint(0, 255)) for __ in range(size)
            )
            self.emit(f"int {name}[{size}] = {{{init}}};")
        self.emit("")

    def gen_function(self, index: int) -> None:
        name = f"f{index}"
        arity = self.rng.randint(1, 4)
        params = [f"p{i}" for i in range(arity)]
        n_locals = self.rng.randint(2, 4)
        locals_ = [f"v{i}" for i in range(n_locals)]
        dyn_before = self.dyn

        self.emit(f"int {name}({', '.join(f'int {p}' for p in params)}) {{")
        self.indent += 1
        names = list(params)
        for local in locals_:
            self.emit(f"int {local} = {self.expr(1, names)};")
            names.append(local)
        # loop counters are declared up front so nested shapes can
        # reuse them without shadowing
        for var in ("i0", "i1", "k0", "k1"):
            self.emit(f"int {var} = 0;")
        budget = self.cfg.stmts_per_function
        while budget > 0:
            budget -= self.statement(names, budget, nesting=0)
        self.emit(f"return {self.expr(2, names)};")
        self.indent -= 1
        self.emit("}")
        self.emit("")

        cost = max(1, self.dyn - dyn_before)
        self.functions.append((name, arity, cost))

    def gen_main(self) -> None:
        # Fit the driver loop into what remains of the dynamic budget:
        # pick a sweep count, then include function calls greedily (in
        # order, so every seed exercises a deterministic prefix) until
        # the budget is spent.  Huge static sizes therefore mean *more
        # code*, not longer runs.
        remaining = max(0, self.cfg.dyn_budget - self.dyn)
        total = sum(cost for __, __, cost in self.functions) + 1
        sweeps = max(1, min(8, remaining // total))
        # Every function must be *referenced*, not just emitted:
        # unreferenced code is absorbed into the preceding function by
        # the block splitter, which can push that function's literal
        # pool out of pc-relative range.  Functions the sweep budget
        # cannot afford are still called once, outside the loop.
        swept: List[Tuple[str, int, int]] = []
        once: List[Tuple[str, int, int]] = []
        spent = 0
        for entry in self.functions:
            if not swept or spent + entry[2] * sweeps <= remaining:
                swept.append(entry)
                spent += entry[2] * sweeps
            else:
                once.append(entry)

        def call_line(name: str, arity: int) -> str:
            args = ", ".join(
                self.rng.choice(["i", "acc", "acc >> 3",
                                 str(self.rng.randint(0, 99))])
                for __ in range(arity)
            )
            return f"acc = acc ^ {name}({args});"

        self.emit("int main() {")
        self.indent += 1
        self.emit("int i = 0;")
        self.emit("int j = 0;")
        # keep the seed ARM-immediate-encodable: a pool literal this
        # early in a large main would be out of pc-relative range
        self.emit(f"int acc = {self.rng.randint(1, 255)};")
        self.emit(f"for (i = 0; i < {sweeps}; i = i + 1) {{")
        self.indent += 1
        for name, arity, __ in swept:
            self.emit(call_line(name, arity))
        self.indent -= 1
        self.emit("}")
        for name, arity, __ in once:
            self.emit(call_line(name, arity))
        self.emit("print_hex(acc);")
        self.emit("print_nl(0);")
        checksum = " ^ ".join(self.globals)
        self.emit(f"print_hex({checksum});")
        self.emit("print_nl(0);")
        for name, size in self.arrays:
            self.emit("acc = 0;")
            self.emit(f"for (j = 0; j < {size}; j = j + 1) {{")
            self.indent += 1
            self.emit(f"acc = (acc << 1) ^ {name}[j];")
            self.indent -= 1
            self.emit("}")
            self.emit("print_hex(acc);")
            self.emit("print_nl(0);")
        self.emit("return 0;")
        self.indent -= 1
        self.emit("}")

    def run(self) -> str:
        self.emit(f"// genprog seed={self.cfg.seed} "
                  f"functions={self.cfg.n_functions}")
        self.gen_globals()
        for index in range(self.cfg.n_functions):
            self.gen_function(index)
        self.gen_main()
        return "\n".join(self.lines) + "\n"


def generate_source(config: GenConfig) -> str:
    """Generate one deterministic mini-C program for *config*."""
    return _Gen(config).run()
