"""The variant build matrix: perturbed compiler configurations.

One *variant* is a named :class:`repro.minicc.driver.CompileConfig` —
one way a real toolchain could plausibly have compiled the same source:
scheduler on/off and window width, late peephole cleanup, shuffled
function layout, permuted register assignment.  The grid is the
cross-compiler study in miniature: PA runs on every variant, and the
harness (:mod:`repro.variance.harness`) measures how stable savings and
mined fragments are across them.

The grid is deterministic: variant 0 is always the pristine baseline
build, variants 1..k are the canonical single-axis perturbations (one
knob moved at a time, so a regression names its culprit axis), and any
further variants are seeded multi-axis combinations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.minicc.driver import CompileConfig

#: The perturbation axes, for documentation and the JSON report.
VARIANT_AXES = (
    "schedule", "schedule_window", "peephole", "layout_seed",
    "regalloc_seed",
)

#: Canonical single-axis perturbations, in gate order.
_SINGLE_AXIS = (
    ("noschedule", CompileConfig(schedule=False)),
    ("window8", CompileConfig(schedule_window=8)),
    ("peephole", CompileConfig(peephole=True)),
    ("layout1", CompileConfig(layout_seed=1)),
    ("regalloc1", CompileConfig(regalloc_seed=1)),
)


@dataclass(frozen=True)
class Variant:
    """One named cell of the build matrix."""

    name: str
    config: CompileConfig


def variant_grid(n_variants: int, seed: int = 0) -> List[Variant]:
    """The first *n_variants* cells of the deterministic build matrix.

    Always starts with the baseline build; the same ``(n, seed)``
    always yields the same grid, so CI failures replay locally.
    """
    if n_variants < 1:
        raise ValueError("need at least one variant (the baseline)")
    grid = [Variant("baseline", CompileConfig())]
    for name, config in _SINGLE_AXIS:
        if len(grid) >= n_variants:
            return grid
        grid.append(Variant(name, config))
    rng = random.Random(f"grid:{seed}")
    while len(grid) < n_variants:
        config = CompileConfig(
            schedule=rng.random() < 0.8,
            schedule_window=rng.choice((4, 8, 12, 16)),
            peephole=rng.random() < 0.5,
            layout_seed=rng.choice((None, rng.randint(1, 1000))),
            regalloc_seed=rng.choice((None, rng.randint(1, 1000))),
        )
        parts = []
        if not config.schedule:
            parts.append("nosched")
        elif config.schedule_window != 16:
            parts.append(f"w{config.schedule_window}")
        if config.peephole:
            parts.append("peep")
        if config.layout_seed is not None:
            parts.append(f"lay{config.layout_seed}")
        if config.regalloc_seed is not None:
            parts.append(f"reg{config.regalloc_seed}")
        name = "+".join(parts) or "baseline2"
        grid.append(Variant(f"mix{len(grid)}-{name}", config))
    return grid
