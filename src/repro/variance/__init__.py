"""Compilation-variance robustness: fuzzing, variant builds, oracle.

The paper's claim is structural: graph-based mining finds redundancy
that survives compiler idiosyncrasies (scheduling, layout, register
assignment) where sequence-based approaches do not.  This package turns
that claim into a measurable property:

* :mod:`repro.variance.genprog` — a seeded property-based mini-C
  program generator (arithmetic, arrays, nested control flow, call
  graphs; size-scalable from smoke tests to 100k+ instructions),
* :mod:`repro.variance.grid` — a deterministic matrix of perturbed
  compiler configurations (:class:`repro.minicc.driver.CompileConfig`),
* :mod:`repro.variance.harness` — the differential harness: run PA on
  every variant, execute original vs. abstracted images in the
  simulator as an end-to-end oracle, and measure savings degradation
  plus mined-fragment fingerprint overlap across variants.
"""

from repro.variance.genprog import GenConfig, generate_source, sized_config
from repro.variance.grid import VARIANT_AXES, variant_grid
from repro.variance.harness import VarianceConfig, run_variance

__all__ = [
    "GenConfig",
    "generate_source",
    "sized_config",
    "VARIANT_AXES",
    "variant_grid",
    "VarianceConfig",
    "run_variance",
]
