"""Decision provenance: the explain/report layer over the PA pipeline.

Where :mod:`repro.telemetry` answers *how long* each phase took, this
package answers *why the optimizer did what it did*: which fragments
were mined, why a candidate won or lost the cost/benefit race, how many
embeddings died to MIS overlap resolution versus the PA-specific
cyclic-dependency pruning (paper §3.5, Fig. 9).

Three layers, consumed by ``repro pa --report`` / ``repro explain``:

:mod:`repro.report.ledger`
    The decision ledger — a process-global stream of typed records
    (schema ``repro.report.ledger/1``) emitted by the driver, the
    miners, the MIS solver, the legality checker and the extractor.
    Off by default, inert when disabled (same guard contract as the
    telemetry registry).

:mod:`repro.report.dot`
    Graphviz DOT (and JSON) renderings of basic-block DFGs, winning
    fragments with their embeddings highlighted, and collision graphs.

:mod:`repro.report.html` / :mod:`repro.report.explain`
    A self-contained HTML run report (no external assets) and the
    terminal one-round story printer.
"""

from repro.report.ledger import (
    GLOBAL,
    LEDGER_SCHEMA,
    Ledger,
    disable,
    emit,
    enable,
    get,
    is_enabled,
    read_jsonl,
    reset,
)
from repro.report.dot import (
    collision_to_dot,
    dfg_to_dot,
    dfg_to_json,
    fragment_to_dot,
)
from repro.report.html import build_report, write_report

__all__ = [
    "GLOBAL",
    "LEDGER_SCHEMA",
    "Ledger",
    "get",
    "enable",
    "disable",
    "reset",
    "is_enabled",
    "emit",
    "read_jsonl",
    "dfg_to_dot",
    "dfg_to_json",
    "fragment_to_dot",
    "collision_to_dot",
    "build_report",
    "write_report",
]
