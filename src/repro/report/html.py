"""The self-contained HTML run report (``repro pa --report out.html``).

One file, no external assets: inline CSS, a hand-rolled inline SVG for
the savings-by-round chart, and the winning fragments' Graphviz DOT
sources inlined in ``<details>`` blocks (paste into ``dot -Tsvg`` or any
online renderer to draw them).  Everything is derived from the decision
ledger plus — when available — the telemetry stats dump and phase tree.
"""

from __future__ import annotations

import html as _html
from typing import Any, Dict, List, Optional, Sequence

from repro.resilience.atomicio import atomic_write_text

_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
       max-width: 70rem; padding: 0 1rem; color: #1a1a1a; }
h1, h2, h3 { line-height: 1.2; }
table { border-collapse: collapse; margin: 0.75rem 0; }
th, td { border: 1px solid #ccc; padding: 0.25rem 0.6rem;
         text-align: right; }
th { background: #f0f0f0; }
td.l, th.l { text-align: left; }
tr.total td { font-weight: bold; background: #fafad9; }
pre { background: #f6f6f6; border: 1px solid #ddd; padding: 0.6rem;
      overflow-x: auto; font-size: 12px; }
details { margin: 0.5rem 0; }
summary { cursor: pointer; font-weight: 600; }
.muted { color: #666; }
.badge { display: inline-block; padding: 0 0.45rem; border-radius: 3px;
         font-size: 12px; color: #fff; }
.badge.call { background: #1f6f43; }
.badge.crossjump { background: #285a8f; }
"""


def _esc(value: Any) -> str:
    return _html.escape(str(value))


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return _esc(value)


def _savings_chart(per_round: List[int]) -> str:
    """Inline SVG bar chart: instructions saved per round."""
    if not per_round:
        return '<p class="muted">no rounds recorded</p>'
    width, height, pad = 640, 180, 28
    peak = max(max(per_round), 1)
    bar_w = max(6, min(60, (width - 2 * pad) // len(per_round) - 8))
    parts = [
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'width="{width}" height="{height}" '
        'aria-label="instructions saved per round">'
    ]
    parts.append(
        f'<line x1="{pad}" y1="{height - pad}" x2="{width - pad}" '
        f'y2="{height - pad}" stroke="#999"/>'
    )
    for index, saved in enumerate(per_round):
        bar_h = int((height - 2 * pad) * saved / peak)
        x = pad + index * (bar_w + 8) + 4
        y = height - pad - bar_h
        parts.append(
            f'<rect x="{x}" y="{y}" width="{bar_w}" height="{bar_h}" '
            'fill="#1f6f43"/>'
        )
        parts.append(
            f'<text x="{x + bar_w // 2}" y="{height - pad + 14}" '
            'font-size="11" text-anchor="middle">'
            f"r{index}</text>"
        )
        parts.append(
            f'<text x="{x + bar_w // 2}" y="{max(12, y - 4)}" '
            'font-size="11" text-anchor="middle">'
            f"{saved}</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


def _by_round(records: Sequence[Dict[str, Any]], rtype: str
              ) -> Dict[int, List[Dict[str, Any]]]:
    grouped: Dict[int, List[Dict[str, Any]]] = {}
    for record in records:
        if record["type"] == rtype and record.get("round") is not None:
            grouped.setdefault(record["round"], []).append(record)
    return grouped


def build_report(
    records: Sequence[Dict[str, Any]],
    stats: Optional[Dict[str, Any]] = None,
    tree: Optional[str] = None,
    title: str = "PA run report",
) -> str:
    """Render the ledger (+ optional stats/tree) as one HTML document."""
    begin = next((r for r in records if r["type"] == "run.begin"), {})
    end = next((r for r in records if r["type"] == "run.end"), {})
    extractions = _by_round(records, "extraction")
    round_ends = _by_round(records, "round.end")
    round_begins = _by_round(records, "round.begin")
    skips = _by_round(records, "mine.skips")
    prunes = _by_round(records, "prune")
    rounds = sorted(
        set(round_begins) | set(round_ends) | set(extractions)
    )
    per_round_saved = [
        sum(e["benefit"] for e in extractions.get(r, ())) for r in rounds
    ]
    total_saved = sum(per_round_saved)

    out: List[str] = []
    out.append("<!DOCTYPE html><html><head><meta charset='utf-8'>")
    out.append(f"<title>{_esc(title)}</title>")
    out.append(f"<style>{_CSS}</style></head><body>")
    out.append(f"<h1>{_esc(title)}</h1>")

    # ---- run header -------------------------------------------------
    out.append("<h2>Run</h2><table>")
    header_fields = [
        ("schema", begin.get("schema", "")),
        ("source", begin.get("source", "")),
        ("engine", begin.get("engine", begin.get("miner", ""))),
        ("instructions before", begin.get("instructions", "")),
        ("instructions after", end.get("instructions", "")),
        ("rounds", end.get("rounds", len(rounds))),
        ("instructions saved", end.get("saved", total_saved)),
        ("bytes saved", end.get("bytes_saved", 4 * total_saved)),
    ]
    for key, value in header_fields:
        if value != "":
            out.append(
                f"<tr><th class='l'>{_esc(key)}</th>"
                f"<td>{_fmt(value)}</td></tr>"
            )
    if begin.get("config"):
        out.append(
            "<tr><th class='l'>config</th><td class='l'>"
            + ", ".join(
                f"{_esc(k)}={_esc(v)}"
                for k, v in sorted(begin["config"].items())
            )
            + "</td></tr>"
        )
    out.append("</table>")

    # ---- savings chart ----------------------------------------------
    out.append("<h2>Savings by round</h2>")
    out.append(_savings_chart(per_round_saved))

    # ---- per-round table --------------------------------------------
    out.append("<h2>Rounds</h2>")
    out.append(
        "<table><tr><th>round</th><th>instructions</th>"
        "<th>candidates scored</th><th>applied</th>"
        "<th>calls</th><th>crossjumps</th><th>saved</th>"
        "<th>cyclic prunes</th></tr>"
    )
    for index, round_number in enumerate(rounds):
        begin_rec = (round_begins.get(round_number) or [{}])[0]
        skip_rec = (skips.get(round_number) or [{}])[0]
        prune_rec = (prunes.get(round_number) or [{}])[0]
        rows = extractions.get(round_number, [])
        calls = sum(1 for e in rows if e["method"] == "call")
        xjumps = sum(1 for e in rows if e["method"] == "crossjump")
        out.append(
            f"<tr><td>{round_number}</td>"
            f"<td>{_fmt(begin_rec.get('instructions', ''))}</td>"
            f"<td>{_fmt(skip_rec.get('scored', ''))}</td>"
            f"<td>{len(rows)}</td><td>{calls}</td><td>{xjumps}</td>"
            f"<td>{per_round_saved[index]}</td>"
            f"<td>{_fmt(prune_rec.get('cyclic', ''))}</td></tr>"
        )
    out.append(
        "<tr class='total'><td class='l' colspan='6'>total saved</td>"
        f"<td>{total_saved}</td><td></td></tr>"
    )
    out.append("</table>")

    # ---- extractions ------------------------------------------------
    out.append("<h2>Extractions</h2>")
    for round_number in rounds:
        rows = extractions.get(round_number, [])
        if not rows:
            continue
        out.append(f"<h3>Round {round_number}</h3>")
        out.append(
            "<table><tr><th>symbol</th><th>mechanism</th><th>size</th>"
            "<th>occurrences</th><th>embeddings</th><th>MIS</th>"
            "<th>benefit</th><th>bytes</th></tr>"
        )
        for row in rows:
            out.append(
                f"<tr><td class='l'>{_esc(row.get('new_symbol', '?'))}"
                "</td><td class='l'><span class='badge "
                f"{_esc(row['method'])}'>{_esc(row['method'])}</span>"
                f"</td><td>{row.get('size', '')}</td>"
                f"<td>{row.get('occurrences', '')}</td>"
                f"<td>{_fmt(row.get('embedding_count', ''))}</td>"
                f"<td>{_fmt(row.get('mis_size', ''))}</td>"
                f"<td>{row.get('benefit', '')}</td>"
                f"<td>{_fmt(row.get('bytes_saved', ''))}</td></tr>"
            )
        out.append("</table>")
        for row in rows:
            out.append("<details><summary>"
                       f"{_esc(row.get('new_symbol', '?'))} body and "
                       "graphs</summary>")
            insns = row.get("instructions") or ()
            if insns:
                out.append(
                    "<pre>" + "\n".join(_esc(i) for i in insns) + "</pre>"
                )
            for key, label in (
                ("fragment_dot", "fragment DOT"),
                ("host_dot", "host block DFG DOT (embedding "
                             "highlighted)"),
                ("collision_dot", "collision graph DOT (MIS "
                                  "highlighted)"),
            ):
                if row.get(key):
                    out.append(
                        f"<details><summary>{label}</summary>"
                        f"<pre>{_esc(row[key])}</pre></details>"
                    )
            out.append("</details>")

    # ---- candidate funnel -------------------------------------------
    if skips:
        out.append("<h2>Candidate funnel</h2>")
        out.append(
            "<table><tr><th>round</th><th>considered</th>"
            "<th>benefit floor</th><th>illegal</th>"
            "<th>lr infeasible</th><th>order</th>"
            "<th>unprofitable</th><th>scored</th></tr>"
        )
        for round_number in sorted(skips):
            rec = skips[round_number][0]
            out.append(
                f"<tr><td>{round_number}</td>"
                f"<td>{_fmt(rec.get('considered', ''))}</td>"
                f"<td>{_fmt(rec.get('floor', ''))}</td>"
                f"<td>{_fmt(rec.get('illegal', ''))}</td>"
                f"<td>{_fmt(rec.get('lr_infeasible', ''))}</td>"
                f"<td>{_fmt(rec.get('order_inconsistent', ''))}</td>"
                f"<td>{_fmt(rec.get('unprofitable', ''))}</td>"
                f"<td>{_fmt(rec.get('scored', ''))}</td></tr>"
            )
        out.append("</table>")

    # ---- telemetry --------------------------------------------------
    if tree:
        out.append("<h2>Phase tree</h2>")
        out.append(f"<pre>{_esc(tree)}</pre>")
    if stats:
        counters = stats.get("counters") or {}
        if counters:
            out.append("<h2>Counters</h2><table>")
            out.append("<tr><th class='l'>counter</th><th>value</th></tr>")
            for name, value in sorted(counters.items()):
                out.append(
                    f"<tr><td class='l'>{_esc(name)}</td>"
                    f"<td>{_fmt(value)}</td></tr>"
                )
            out.append("</table>")
        histograms = stats.get("histograms") or {}
        if histograms:
            out.append("<h2>Histograms</h2><table>")
            out.append(
                "<tr><th class='l'>histogram</th><th>count</th>"
                "<th>mean</th><th>p50</th><th>p90</th><th>p99</th>"
                "<th>max</th></tr>"
            )
            for name, value in sorted(histograms.items()):
                out.append(
                    f"<tr><td class='l'>{_esc(name)}</td>"
                    f"<td>{_fmt(value.get('count', ''))}</td>"
                    f"<td>{_fmt(value.get('mean', ''))}</td>"
                    f"<td>{_fmt(value.get('p50', ''))}</td>"
                    f"<td>{_fmt(value.get('p90', ''))}</td>"
                    f"<td>{_fmt(value.get('p99', ''))}</td>"
                    f"<td>{_fmt(value.get('max', ''))}</td></tr>"
                )
            out.append("</table>")

    dropped = end.get("dropped") or {}
    if dropped:
        out.append(
            "<p class='muted'>ledger truncation: "
            + ", ".join(
                f"{_esc(k)} dropped {_esc(v)} records"
                for k, v in sorted(dropped.items())
            )
            + "</p>"
        )
    out.append("</body></html>")
    return "\n".join(out)


def write_report(
    path: str,
    records: Sequence[Dict[str, Any]],
    stats: Optional[Dict[str, Any]] = None,
    tree: Optional[str] = None,
    title: str = "PA run report",
) -> None:
    atomic_write_text(path, build_report(records, stats, tree, title))
