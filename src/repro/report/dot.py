"""Graphviz DOT (and JSON) renderings of the pipeline's graph artifacts.

Three graph families matter when debugging an abstraction decision:

* the **DFG of a basic block** — what the miner actually searched,
* a **fragment** with one of its embeddings highlighted in the host
  block — what won the cost/benefit race and where it sat,
* the **collision graph** over a fragment's embeddings — what the MIS
  solver resolved.

All functions return plain DOT source text (``dot -Tsvg`` renders it;
the HTML run report inlines the sources verbatim).  ``dfg_to_json``
provides the same structure as data for programmatic consumers.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

#: Graphviz edge attributes per dependence kind (see ``repro.dfg.graph``:
#: d = data flow, m = memory order, f = flag flow, a = anti, o = output).
_EDGE_STYLE = {
    "d": 'color="#1f6f43"',
    "m": 'color="#8a5a00" style=dashed',
    "f": 'color="#285a8f" style=dotted',
    "a": 'color="#888888" style=dashed arrowhead=empty',
    "o": 'color="#888888" style=dotted arrowhead=empty',
}


def _quote(text: str) -> str:
    return '"' + str(text).replace("\\", "\\\\").replace('"', '\\"') + '"'


def dfg_to_dot(
    dfg,
    highlight: Optional[Iterable[int]] = None,
    title: Optional[str] = None,
    full: bool = False,
) -> str:
    """DOT source of one basic block's DFG.

    *highlight* fills the given node indices (an embedding's footprint);
    *full* renders ``dep_edges`` instead of the mined ``edges``.
    """
    marked = set(highlight or ())
    name = title or f"dfg_{dfg.origin[0]}_{dfg.origin[1]}"
    lines = [f"digraph {_quote(name)} {{"]
    lines.append('  rankdir=TB; node [shape=box fontname="monospace"];')
    if title:
        lines.append(f"  label={_quote(title)}; labelloc=t;")
    for index, label in enumerate(dfg.labels):
        attrs = [f"label={_quote(f'{index}: {label}')}"]
        if index in marked:
            attrs.append('style=filled fillcolor="#ffe08a"')
        lines.append(f"  n{index} [{' '.join(attrs)}];")
    edges = dfg.dep_edges if full else dfg.edges
    for src, dst, kind in sorted(edges):
        style = _EDGE_STYLE.get(kind, "")
        attrs = f" [label={_quote(kind)} {style}]".rstrip()
        lines.append(f"  n{src} -> n{dst}{attrs};")
    lines.append("}")
    return "\n".join(lines)


def dfg_to_json(dfg, full: bool = False) -> Dict[str, Any]:
    """The same structure as :func:`dfg_to_dot`, as plain data."""
    edges = dfg.dep_edges if full else dfg.edges
    return {
        "origin": list(dfg.origin),
        "nodes": [
            {"id": index, "label": label}
            for index, label in enumerate(dfg.labels)
        ],
        "edges": [
            {"src": src, "dst": dst, "kind": kind}
            for src, dst, kind in sorted(edges)
        ],
    }


def fragment_to_dot(
    labels: Sequence[str],
    edges: Iterable[Tuple[int, int, str]],
    title: Optional[str] = None,
) -> str:
    """DOT source of a mined fragment (nodes are DFS roles)."""
    lines = [f"digraph {_quote(title or 'fragment')} {{"]
    lines.append('  rankdir=TB; node [shape=box fontname="monospace"];')
    if title:
        lines.append(f"  label={_quote(title)}; labelloc=t;")
    for role, label in enumerate(labels):
        lines.append(f"  r{role} [label={_quote(f'{role}: {label}')}];")
    for src, dst, kind in sorted(tuple(e) for e in edges):
        style = _EDGE_STYLE.get(kind, "")
        attrs = f" [label={_quote(kind)} {style}]".rstrip()
        lines.append(f"  r{src} -> r{dst}{attrs};")
    lines.append("}")
    return "\n".join(lines)


def collision_to_dot(
    adjacency: Sequence[Sequence[int]],
    chosen: Optional[Iterable[int]] = None,
    title: Optional[str] = None,
) -> str:
    """DOT source of a collision graph; *chosen* marks the MIS."""
    picked = set(chosen or ())
    lines = [f"graph {_quote(title or 'collision')} {{"]
    lines.append("  node [shape=circle];")
    if title:
        lines.append(f"  label={_quote(title)}; labelloc=t;")
    for index in range(len(adjacency)):
        attrs = ""
        if index in picked:
            attrs = ' [style=filled fillcolor="#9ad0a9"]'
        lines.append(f"  e{index}{attrs};")
    for src in range(len(adjacency)):
        for dst in adjacency[src]:
            if src < dst:
                lines.append(f"  e{src} -- e{dst};")
    lines.append("}")
    return "\n".join(lines)
