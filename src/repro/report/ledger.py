"""The decision ledger: typed provenance records from the PA pipeline.

The ledger is a process-global, append-only stream of plain dicts, each
tagged with a ``type`` and merged with the ambient *context* (the round
number, the active mining pass) that the driver maintains around the
pipeline phases.  Pipeline modules emit through the module-global
:data:`GLOBAL` instance behind the same contract the telemetry registry
uses:

1. **Off by default, inert when disabled.**  Every emission site is
   guarded by a plain attribute check; a disabled run records nothing
   and — asserted by ``tests/report`` — produces bit-identical binaries
   to an enabled run.
2. **Bounded.**  High-frequency record types (one legality verdict per
   mined fragment can mean tens of thousands of records on a real
   workload) are capped per type; drops are counted and reported in the
   ``run.end`` record rather than silently swallowed.
3. **Purely observational.**  Nothing reads the ledger back during a
   run; enabling it may cost time but never changes a result.

Record types of schema ``repro.report.ledger/1`` (all fields additive;
consumers must ignore unknown fields):

========== ==========================================================
type       emitted by / contents
========== ==========================================================
run.begin  driver — schema tag, engine, config snapshot, instruction
           count before abstraction
round.begin / round.end
           driver — per-round instruction counts, candidates applied,
           instructions saved
mine.pass  miner — one record per mining pass (shallow / full / flow):
           graphs, seeds, lattice nodes expanded, truncated branches,
           deadline hit
mine.skips driver — per-round aggregate of candidate-rejection counts
           (benefit floor, illegality, lr-infeasibility, order
           inconsistency, unprofitability) plus the scored total
prune      driver — per-round PA-specific embedding pruning: the
           never-convex count and the Fig. 9 cyclic-dependency count
legality   legality checker — one verdict per classified fragment:
           mechanism (call / crossjump / null) and surviving
           embeddings (capped)
mis        MIS solver — one record per overlap resolution: collision
           graph size, component census, exact-vs-greedy fallback,
           chosen set size (capped)
candidate  driver — one record per candidate that reached the
           cost/benefit race: fragment labels, embedding counts at
           each funnel stage, MIS size and mode, benefit, verdict
           (scored / unprofitable / order_inconsistent /
           lr_infeasible)
extraction driver — one record per applied extraction: mechanism,
           size, occurrences, benefit, bytes saved, new symbol, body
           instructions, origins, and inline DOT renderings of the
           fragment, its host block (embedding highlighted) and the
           collision graph MIS solved
rewrite    extractor — low-level confirmation that a rewrite landed:
           mechanism, symbol, occurrence count
verify.round
           translation validator (``pa --verify``) — per-round
           summary: blocks checked / identical, lr exemptions, new
           symbols
verify.lint
           translation validator — a post-round lint regression; the
           error findings inline (the round is then aborted)
verify.counterexample
           translation validator — an equivalence failure: function,
           old/new block indices, the disagreeing resource, both
           symbolic terms, and both instruction listings (carries
           ``injected: true`` when forged by fault injection)
verify.retry
           driver — one verify-failure recovery step: the round was
           rolled back, the offending candidates blocklisted by
           canonical fingerprint, and the round re-mined
checkpoint driver — one crash-safe checkpoint written (round, path)
run.degraded
           driver — the run wound down early but cleanly: the
           degradation causes (time_budget / interrupted /
           verify_retries), rounds completed, instructions kept
run.abort  CLI boundary — a typed internal failure ended the run:
           error code, message
run.end    driver — rounds, saved instructions, elapsed seconds, and
           the per-type dropped-record census
========== ==========================================================
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.resilience.atomicio import atomic_write_text
from repro.resilience.faultinject import fault

#: Version tag of the ledger JSONL schema.
LEDGER_SCHEMA = "repro.report.ledger/1"

#: Per-type record caps.  ``legality`` fires once per classified mined
#: fragment and ``mis`` once per overlap resolution — tens of thousands
#: of records on real workloads; the driver-level types are naturally
#: bounded by the candidate funnel and stay uncapped.
DEFAULT_CAPS: Dict[str, int] = {
    "legality": 1_000,
    "mis": 4_000,
    "candidate": 4_000,
}


class _NullContext:
    """Shared no-op context manager returned while the ledger is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class _LedgerContext:
    """Temporarily merges fields into the ledger's ambient context."""

    __slots__ = ("_ledger", "_fields", "_saved")

    def __init__(self, ledger: "Ledger", fields: Dict[str, Any]):
        self._ledger = ledger
        self._fields = fields

    def __enter__(self) -> "_LedgerContext":
        context = self._ledger._context
        self._saved = {
            key: context[key] for key in self._fields if key in context
        }
        context.update(self._fields)
        return self

    def __exit__(self, *exc) -> bool:
        context = self._ledger._context
        for key in self._fields:
            if key in self._saved:
                context[key] = self._saved[key]
            else:
                context.pop(key, None)
        return False


class Ledger:
    """An append-only stream of typed decision records.

    The pipeline is sequential; the ledger deliberately has no lock.
    (The telemetry registry, which *is* shared across the simulator's
    helper threads, keeps one — nothing here runs off the main thread.)
    """

    def __init__(self) -> None:
        self.enabled = False
        self.records: List[Dict[str, Any]] = []
        self.dropped: Dict[str, int] = {}
        self.caps: Dict[str, int] = dict(DEFAULT_CAPS)
        self._counts: Dict[str, int] = {}
        self._context: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all records and context (the enabled flag is preserved)."""
        self.records = []
        self.dropped = {}
        self._counts = {}
        self._context = {}

    # ------------------------------------------------------------------
    # context
    # ------------------------------------------------------------------
    def context(self, **fields):
        """Context manager merging *fields* into every nested emission."""
        if not self.enabled:
            return _NULL_CONTEXT
        return _LedgerContext(self, fields)

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def emit(self, rtype: str, **fields) -> None:
        """Append one record of type *rtype*, merged with the context."""
        if not self.enabled:
            return
        cap = self.caps.get(rtype)
        count = self._counts.get(rtype, 0)
        if cap is not None and count >= cap:
            self.dropped[rtype] = self.dropped.get(rtype, 0) + 1
            return
        self._counts[rtype] = count + 1
        record: Dict[str, Any] = {"type": rtype}
        record.update(self._context)
        record.update(fields)
        self.records.append(record)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def records_of(self, rtype: str) -> List[Dict[str, Any]]:
        return [r for r in self.records if r["type"] == rtype]

    def rounds(self) -> List[int]:
        """Distinct round numbers present, in order."""
        seen: List[int] = []
        for record in self.records:
            value = record.get("round")
            if value is not None and value not in seen:
                seen.append(value)
        return seen

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def write_jsonl(self, path: str) -> None:
        """Write the stream atomically — a crash mid-export can never
        leave a truncated (unparseable) JSONL behind."""
        fault("ledger.write")
        lines = [
            json.dumps(record, default=str) for record in self.records
        ]
        atomic_write_text(path, "\n".join(lines) + ("\n" if lines else ""))


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a ledger stream written by :meth:`Ledger.write_jsonl`."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


#: The process-global ledger all pipeline emission reports to.
GLOBAL = Ledger()


def get() -> Ledger:
    """The process-global :class:`Ledger`."""
    return GLOBAL


def enable() -> None:
    GLOBAL.enable()


def disable() -> None:
    GLOBAL.disable()


def reset() -> None:
    GLOBAL.reset()


def is_enabled() -> bool:
    return GLOBAL.enabled


def emit(rtype: str, **fields) -> None:
    GLOBAL.emit(rtype, **fields)
