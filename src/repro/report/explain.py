"""``repro explain <round>``: one round's full story, in the terminal.

Renders the decision ledger of a single abstraction round as prose-ish
text: what was mined, how many embeddings the PA pruning killed, how the
candidate funnel narrowed, and — for every applied extraction — the
winning fragment's body, its embedding count, the MIS size, and the
mechanism chosen.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence


def _of_round(records: Sequence[Dict[str, Any]], rtype: str,
              round_number: int) -> List[Dict[str, Any]]:
    return [
        r for r in records
        if r["type"] == rtype and r.get("round") == round_number
    ]


def explain_round(records: Sequence[Dict[str, Any]],
                  round_number: int) -> str:
    """The full story of one round, as plain text."""
    rounds = sorted({
        r["round"] for r in records
        if r.get("round") is not None and r["type"] == "round.begin"
    })
    if round_number not in rounds:
        known = ", ".join(map(str, rounds)) or "none"
        return (f"round {round_number} not present in this run "
                f"(recorded rounds: {known})")

    begin = _of_round(records, "round.begin", round_number)[0]
    ends = _of_round(records, "round.end", round_number)
    end = ends[0] if ends else {}
    passes = _of_round(records, "mine.pass", round_number)
    prunes = _of_round(records, "prune", round_number)
    skips = _of_round(records, "mine.skips", round_number)
    candidates = _of_round(records, "candidate", round_number)
    extractions = _of_round(records, "extraction", round_number)

    lines: List[str] = []
    before = begin.get("instructions", "?")
    after = end.get("instructions", "?")
    saved = end.get("saved", sum(e["benefit"] for e in extractions))
    lines.append(
        f"Round {round_number}: {before} -> {after} instructions "
        f"(saved {saved})"
    )

    if passes:
        lines.append("  mining:")
        for rec in passes:
            label = rec.get("mine_pass", "?")
            lines.append(
                f"    {label:<8s} {rec.get('engine', '?'):<7s} "
                f"{rec.get('graphs', '?')} graphs, "
                f"{rec.get('seeds', '?')} seeds, "
                f"{rec.get('lattice_nodes', '?')} lattice nodes"
                + (", deadline hit" if rec.get("deadline_hit") else "")
            )
    for rec in prunes:
        lines.append(
            "  PA pruning: "
            f"{rec.get('never_convex', 0)} never-convex embeddings, "
            f"{rec.get('cyclic', 0)} cyclic-dependency (Fig. 9) "
            "embeddings dropped"
        )
    for rec in skips:
        lines.append(
            f"  candidate funnel: {rec.get('considered', '?')} "
            "considered -> "
            f"{rec.get('floor', 0)} below the benefit floor, "
            f"{rec.get('illegal', 0)} illegal, "
            f"{rec.get('lr_infeasible', 0)} lr-infeasible, "
            f"{rec.get('order_inconsistent', 0)} order-inconsistent, "
            f"{rec.get('unprofitable', 0)} unprofitable, "
            f"{rec.get('scored', 0)} scored"
        )

    losers = [c for c in candidates if c.get("verdict") != "scored"]
    if losers:
        lines.append(f"  lost the race ({len(losers)} recorded):")
        for rec in losers[:5]:
            lines.append(
                f"    {rec.get('verdict', '?')}: size "
                f"{rec.get('size', '?')} x{rec.get('mis_size', '?')} "
                f"({', '.join(rec.get('labels', ())[:4])}"
                f"{', ...' if len(rec.get('labels', ())) > 4 else ''})"
            )
        if len(losers) > 5:
            lines.append(f"    ... and {len(losers) - 5} more")

    if not extractions:
        lines.append("  no extraction applied this round")
    for index, rec in enumerate(extractions):
        tag = "winner" if index == 0 else "also applied"
        lines.append(
            f"  {tag}: {rec.get('new_symbol', '?')} "
            f"[{rec.get('method', '?')}] — "
            f"{rec.get('size', '?')} instructions "
            f"x{rec.get('occurrences', '?')} occurrences, "
            f"benefit {rec.get('benefit', '?')} instructions "
            f"({rec.get('bytes_saved', '?')} bytes)"
        )
        funnel = (
            f"    embeddings {rec.get('embedding_count', '?')}"
            f" -> legal {rec.get('legal', '?')}"
            f" -> MIS size {rec.get('mis_size', '?')}"
        )
        if rec.get("collision_nodes") is not None:
            funnel += (
                f" (collision graph: {rec['collision_nodes']} nodes / "
                f"{rec.get('collision_edges', '?')} edges, "
                f"{rec.get('mis_mode', '?')} MIS)"
            )
        if rec.get("order_kept") is not None:
            funnel += f" -> order-consistent {rec['order_kept']}"
        lines.append(funnel)
        for insn in rec.get("instructions", ()):
            lines.append(f"      {insn}")
    return "\n".join(lines)


def explain_run(records: Sequence[Dict[str, Any]]) -> str:
    """A one-line-per-round digest of the whole run."""
    lines = []
    for record in records:
        if record["type"] == "round.end":
            lines.append(
                f"round {record.get('round', '?'):>3}: "
                f"applied {record.get('applied', '?')}, "
                f"saved {record.get('saved', '?')} "
                f"-> {record.get('instructions', '?')} instructions"
            )
    return "\n".join(lines) or "(no rounds recorded)"
