"""Crash-safe checkpoint/resume for the abstraction loop.

After every completed round the driver can serialize the whole resumable
run state to one JSON document (schema ``repro.resilience.ckpt/1``) via
the atomic writer, so a crash or kill at any instant leaves either the
previous round's checkpoint or the new one — never a torn file.

The state is deliberately *replay-free*: the module travels as rendered
assembly (the render -> reparse round trip is exact, asserted by the
resume-determinism tests), and the miner carryover — the only cross-
round state the driver keeps besides the module itself — is serialized
as embeddings + scores and revived against the reparsed module's DFG
database.  Nothing in the pipeline uses randomness, so a resumed run
re-mines from the checkpoint round and produces a **bit-identical**
final binary to the uninterrupted run (the differential guarantee
``tests/resilience/test_resume_determinism.py`` enforces on all eight
workloads).

Checkpoint document fields (``repro.resilience.ckpt/1``; consumers must
reject unknown schemas and may ignore unknown fields):

=================== =================================================
schema              ``repro.resilience.ckpt/1``
round               next round index to run
asm                 the module as rendered assembly
entry               module entry symbol
fresh               the module's fresh-label counter position
pa_exempt           names of PA-exempt functions (validation only;
                    the reparse re-derives them)
config              the PAConfig the run was started with
carryover           serialized warm-start candidates
blocklist           canonical fingerprints blocklisted by the
                    verify-failure recovery
records             extraction records of completed rounds
instructions_before / rounds / lattice_nodes / deadline_hits /
mis_budget_exhausted / verify_retries
                    PAResult continuity counters
cache_hits / cache_misses / lattice_nodes_reused
                    scale-engine continuity counters (additive minor;
                    default zero when absent)
shards_retried / shards_quarantined
                    supervised-executor continuity counters (additive
                    minor; default zero when absent)
=================== =================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Tuple

from repro.binary.blocks import module_from_asm
from repro.binary.program import BasicBlock, Function, Module
from repro.dfg.builder import build_dfgs
from repro.isa.assembler import parse_program
from repro.mining.embeddings import Embedding
from repro.mining.gspan import Fragment
from repro.pa.fragments import Candidate
from repro.pa.legality import ExtractionMethod
from repro.resilience.atomicio import atomic_write_text
from repro.resilience.errors import CheckpointError
from repro.resilience.faultinject import fault

#: Version tag of the checkpoint JSON schema.
CKPT_SCHEMA = "repro.resilience.ckpt/1"


# ----------------------------------------------------------------------
# in-memory round rollback
# ----------------------------------------------------------------------
#: (fresh counter, [(name, pa_exempt, ((labels), (insns)) per block)])
ModuleState = Tuple[int, List[Tuple[str, bool, tuple]]]


def capture_state(module: Module) -> ModuleState:
    """A cheap immutable snapshot for atomic round rollback.

    Instruction objects are shared by reference — the pipeline never
    mutates an Instruction in place (the translation validator's
    snapshots already rely on this), extraction only rebuilds the lists
    around them.
    """
    return (
        module._fresh,
        [
            (
                func.name,
                func.pa_exempt,
                tuple(
                    (tuple(block.labels), tuple(block.instructions))
                    for block in func.blocks
                ),
            )
            for func in module.functions
        ],
    )


def restore_state(module: Module, state: ModuleState) -> None:
    """Roll *module* back to *state* (drops this round's new symbols)."""
    fresh, functions = state
    module._fresh = fresh
    module.functions = [
        Function(
            name=name,
            pa_exempt=exempt,
            blocks=[
                BasicBlock(list(labels), list(insns))
                for labels, insns in blocks
            ],
        )
        for name, exempt, blocks in functions
    ]


# ----------------------------------------------------------------------
# candidate (carryover) serialization
# ----------------------------------------------------------------------
def candidate_to_dict(candidate: Candidate) -> Dict[str, Any]:
    fragment = candidate.fragment
    return {
        "method": candidate.method.value,
        "benefit": candidate.benefit,
        "embeddings": [[e.graph, list(e.nodes)]
                       for e in candidate.embeddings],
        "union_edges": sorted(list(e) for e in candidate.union_edges),
        "origins": [list(o) for o in candidate.origins],
        "fragment": {
            "labels": list(fragment.node_labels),
            "edges": [list(e) for e in fragment.edges],
            "support": fragment.support,
        },
    }


def candidates_from_dicts(
    module: Module,
    mined_kinds: FrozenSet[str],
    dicts: List[Dict[str, Any]],
) -> List[Candidate]:
    """Revive carryover candidates against the reparsed module.

    Graph ids and node indices are positions in the deterministic DFG
    database of the module — exactly the identification the in-process
    carryover already relies on between rounds.
    """
    if not dicts:
        return []
    dfgs = build_dfgs(module, min_nodes=0, mined_kinds=mined_kinds)
    revived: List[Candidate] = []
    for data in dicts:
        embeddings = [
            Embedding(graph, tuple(nodes))
            for graph, nodes in data["embeddings"]
        ]
        witness = embeddings[0]
        insns = [dfgs[witness.graph].insns[n] for n in witness.nodes]
        frag = data["fragment"]
        fragment = Fragment(
            code=(),
            node_labels=list(frag["labels"]),
            edges=[tuple(e) for e in frag["edges"]],
            embeddings=embeddings,
            support=frag["support"],
        )
        revived.append(
            Candidate(
                fragment=fragment,
                method=ExtractionMethod(data["method"]),
                insns=insns,
                embeddings=embeddings,
                benefit=data["benefit"],
                union_edges={tuple(e) for e in data["union_edges"]},
                origins=tuple(tuple(o) for o in data["origins"]),
            )
        )
    return revived


# ----------------------------------------------------------------------
# the checkpoint document
# ----------------------------------------------------------------------
@dataclass
class Checkpoint:
    """One parsed ``repro.resilience.ckpt/1`` document."""

    round: int
    asm: str
    entry: str
    fresh: int
    config: Dict[str, Any]
    carryover: List[Dict[str, Any]] = field(default_factory=list)
    blocklist: List[str] = field(default_factory=list)
    records: List[Dict[str, Any]] = field(default_factory=list)
    pa_exempt: List[str] = field(default_factory=list)
    instructions_before: int = 0
    rounds: int = 0
    lattice_nodes: int = 0
    deadline_hits: int = 0
    mis_budget_exhausted: int = 0
    verify_retries: int = 0
    #: Scale-engine continuity counters (additive minor: absent in
    #: pre-scale checkpoints, defaulted to zero on load; older loaders
    #: drop them as unknown fields).  The fragment cache itself is NOT
    #: checkpointed — it is content-addressed, so a resumed run simply
    #: re-fills it (or reads the persistent directory) and still
    #: reproduces the uninterrupted run's module bit-identically.
    cache_hits: int = 0
    cache_misses: int = 0
    lattice_nodes_reused: int = 0
    #: Supervised-executor continuity counters (same additive-minor
    #: rules): shards that needed redelivery and shards dropped by
    #: quarantine, cumulative across the resumed run.
    shards_retried: int = 0
    shards_quarantined: int = 0

    def to_doc(self) -> Dict[str, Any]:
        return {"schema": CKPT_SCHEMA, **self.__dict__}


def module_from_checkpoint(checkpoint: Checkpoint) -> Module:
    """Reparse the checkpointed module, restoring resume-relevant state."""
    try:
        module = module_from_asm(
            parse_program(checkpoint.asm), entry=checkpoint.entry
        )
    except Exception as exc:
        raise CheckpointError(
            f"checkpointed module does not parse: {exc}"
        ) from exc
    module._fresh = checkpoint.fresh
    exempt_now = {f.name for f in module.functions if f.pa_exempt}
    if set(checkpoint.pa_exempt) != exempt_now:
        raise CheckpointError(
            f"pa_exempt mismatch after reparse: checkpoint says "
            f"{sorted(checkpoint.pa_exempt)}, reparse derived "
            f"{sorted(exempt_now)}"
        )
    return module


def write_checkpoint(path: str, checkpoint: Checkpoint) -> None:
    """Serialize atomically; an armed ``checkpoint.write:corrupt`` fault
    garbles the payload (the *write* stays atomic — corruption testing
    targets the loader's validation, not the renamer)."""
    text = json.dumps(checkpoint.to_doc(), sort_keys=True)
    if fault("checkpoint.write") == "corrupt":
        text = text[: len(text) // 2] + "\x00garbled"
    atomic_write_text(path, text)


def load_checkpoint(path: str) -> Checkpoint:
    """Load and validate a checkpoint; every failure is typed."""
    fault("checkpoint.load")
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint at {path}") from None
    except (OSError, ValueError) as exc:
        raise CheckpointError(
            f"cannot read checkpoint {path}: {exc}"
        ) from exc
    if not isinstance(doc, dict) or doc.get("schema") != CKPT_SCHEMA:
        raise CheckpointError(
            f"{path}: unsupported checkpoint schema "
            f"{doc.get('schema') if isinstance(doc, dict) else type(doc)}"
            f" (expected {CKPT_SCHEMA})"
        )
    doc = dict(doc)
    doc.pop("schema")
    known = {f for f in Checkpoint.__dataclass_fields__}
    extra = set(doc) - known
    for name in extra:           # additive fields from newer minors
        doc.pop(name)
    missing = {"round", "asm", "entry", "fresh", "config"} - set(doc)
    if missing:
        raise CheckpointError(
            f"{path}: checkpoint is missing fields {sorted(missing)}"
        )
    try:
        return Checkpoint(**doc)
    except TypeError as exc:
        raise CheckpointError(f"{path}: malformed checkpoint: {exc}") \
            from exc
