"""The run governor: one deadline/interrupt/budget object per run.

Before this layer the pipeline had three uncoordinated budget devices —
``DgSpan.deadline`` (a raw monotonic float), ``mis.EXPAND_BUDGET`` (a
node counter) and ``PAConfig.time_budget`` (a config knob the driver
converted into the first) — and no interrupt story at all.  The
governor unifies them:

* the driver creates one :class:`RunGovernor` per run and *activates*
  it (a process-global slot, mirroring the telemetry/ledger pattern, so
  deep call sites like the MIS branch-and-bound need no new threading
  through six signatures);
* the miners and the MIS solver poll :meth:`RunGovernor.should_stop`
  and unwind cleanly when it fires — partial results stay valid, which
  is what makes the run *anytime*;
* SIGINT/SIGTERM set a flag instead of raising mid-rewrite: the current
  round either completes or is rolled back atomically by the driver,
  and the run ends with the best-so-far module and exit 0.  A second
  SIGINT raises :class:`KeyboardInterrupt` for users who really mean
  it (the driver still rolls the round back before returning).

Degradation is never silent: every cause (deadline, interrupt, MIS
budget, verify retries) is recorded in :attr:`RunGovernor.reasons` and
surfaced as a ``run.degraded`` ledger record, ``PAResult`` fields and
telemetry counters.
"""

from __future__ import annotations

import contextlib
import signal
import time
from typing import Callable, Dict, List, Optional


class RunGovernor:
    """Deadline + interrupt + degradation bookkeeping for one run."""

    def __init__(self, time_budget: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic):
        self.clock = clock
        self.started = clock()
        self.deadline: Optional[float] = (
            self.started + time_budget if time_budget else None
        )
        #: set by the signal handlers (or :meth:`interrupt`); polled at
        #: every budget checkpoint
        self.interrupted = False
        #: degradation causes in first-seen order ("time_budget",
        #: "interrupted", "verify_retries", ...)
        self.reasons: List[str] = []
        #: cheap always-on counters (mis.budget_exhausted, ...)
        self.counters: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # budget state
    # ------------------------------------------------------------------
    def remaining(self) -> Optional[float]:
        """Seconds left, or None when unbounded."""
        if self.deadline is None:
            return None
        return self.deadline - self.clock()

    def expired(self) -> bool:
        return self.deadline is not None and self.clock() > self.deadline

    def should_stop(self) -> bool:
        """True once the run must wind down (deadline or interrupt)."""
        return self.interrupted or self.expired()

    def force_expire(self) -> None:
        """Spend the whole budget now (fault injection's 'deadline')."""
        self.deadline = self.clock() - 1.0

    def interrupt(self) -> None:
        self.interrupted = True

    # ------------------------------------------------------------------
    # degradation bookkeeping
    # ------------------------------------------------------------------
    def note(self, reason: str) -> None:
        """Record one degradation cause (idempotent per cause)."""
        if reason not in self.reasons:
            self.reasons.append(reason)

    def count(self, name: str, delta: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta

    @property
    def degraded(self) -> bool:
        return bool(self.reasons)

    # ------------------------------------------------------------------
    # signal handling
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def signals(self):
        """Install SIGINT/SIGTERM -> graceful-stop handlers.

        First delivery sets :attr:`interrupted`; a second SIGINT raises
        ``KeyboardInterrupt``.  Previous handlers are restored on exit.
        Off the main thread (where ``signal.signal`` refuses to work)
        this degrades to a no-op — the flag can still be set directly.
        """
        def handler(signum, frame):
            if self.interrupted and signum == signal.SIGINT:
                raise KeyboardInterrupt
            self.interrupted = True

        previous = {}
        try:
            for signum in (signal.SIGINT, signal.SIGTERM):
                previous[signum] = signal.signal(signum, handler)
        except ValueError:
            previous = {}
        try:
            yield self
        finally:
            for signum, old in previous.items():
                signal.signal(signum, old)


#: The active governor.  The default is unbounded and never interrupted,
#: so library callers that never touch the governor see no behaviour
#: change; its counters still work, keeping deep sites branch-free.
_DEFAULT = RunGovernor()
_ACTIVE: List[RunGovernor] = [_DEFAULT]


def current() -> RunGovernor:
    """The innermost active governor (the default one outside runs)."""
    return _ACTIVE[-1]


@contextlib.contextmanager
def activate(governor: RunGovernor):
    """Make *governor* the one deep call sites see, for one run."""
    _ACTIVE.append(governor)
    try:
        yield governor
    finally:
        _ACTIVE.pop()
