"""Resilience: run governor, checkpoint/resume, recovery, fault injection.

The abstraction pipeline is an exponential-in-the-worst-case search; on
real inputs it can outlive any wall clock, crash mid-rewrite, or trip
its own translation validator.  This package makes every one of those
endings a *clean* ending:

* :mod:`repro.resilience.governor` — one deadline/interrupt/budget
  object for the whole run (replacing the scattered ad-hoc budgets),
  with anytime semantics: the run always finishes with a valid,
  best-so-far module.
* :mod:`repro.resilience.checkpoint` — crash-safe round-boundary
  checkpoints (atomic write, schema ``repro.resilience.ckpt/1``) and
  resume with a bit-identical-output guarantee.
* :mod:`repro.resilience.errors` — the typed :class:`ReproError`
  hierarchy with stable error codes and exit codes; the CLI boundary
  converts every internal failure into a structured diagnostic.
* :mod:`repro.resilience.faultinject` — a deterministic, off-by-default
  registry of named fault points for chaos testing the above.
* :mod:`repro.resilience.atomicio` — the shared atomic-write helper all
  CLI artifact writers go through.
"""

from repro.resilience.atomicio import atomic_write_text
from repro.resilience.errors import (
    CheckpointError,
    ERROR_CODES,
    EXIT_CHECKPOINT,
    EXIT_FAULT,
    EXIT_INTERNAL,
    EXIT_INTERRUPT,
    EXIT_VERIFY,
    FaultInjected,
    ReproError,
)
from repro.resilience.faultinject import (
    FAULT_POINTS,
    arm,
    armed_points,
    disarm_all,
    fault,
)
from repro.resilience.governor import RunGovernor, activate, current

__all__ = [
    "ReproError",
    "CheckpointError",
    "FaultInjected",
    "ERROR_CODES",
    "EXIT_VERIFY",
    "EXIT_CHECKPOINT",
    "EXIT_FAULT",
    "EXIT_INTERNAL",
    "EXIT_INTERRUPT",
    "RunGovernor",
    "activate",
    "current",
    "atomic_write_text",
    "FAULT_POINTS",
    "arm",
    "armed_points",
    "disarm_all",
    "fault",
]
