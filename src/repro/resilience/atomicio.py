"""Atomic file writes: tmp + fsync + rename, same directory.

Every CLI artifact writer (checkpoints, ledger JSONL, traces, stats,
reports, rendered assembly, benchmark snapshots) goes through
:func:`atomic_write_text`, so a crash — or an injected fault — at any
instant leaves either the complete old file or the complete new file on
disk, never a truncated one.  The rename also implements the CLI's
``--force`` clobber semantics unchanged: overwrite-or-not is decided
*before* the run by the output-path preflight, and the final rename
replaces the target in one step.

This module deliberately imports nothing from the rest of the package
so every layer (telemetry, report, benchmarks) can use it without
cycles.
"""

from __future__ import annotations

import os
import tempfile


def atomic_write_text(path: str, text: str) -> None:
    """Write *text* to *path* atomically (tmp file + fsync + rename)."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        # Never leave the temp file behind — the artifact directory must
        # contain only complete outputs.
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
