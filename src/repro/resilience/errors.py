"""The typed error hierarchy and the process exit-code contract.

Every failure that crosses the CLI boundary is classified: either it is
a :class:`ReproError` subclass carrying a stable ``code`` (for logs and
the ``run.abort`` ledger record) and an ``exit_code``, or the boundary
wraps it as ``REPRO-INTERNAL``.  A user-facing run therefore never ends
in a raw traceback — the chaos CI job asserts exactly that.

Exit codes
----------
===== ================= ==============================================
exit  code              meaning
===== ================= ==============================================
0     —                 success (possibly *degraded*: budget ran out
                        or the run was interrupted; the module is
                        still valid, verified best-so-far)
1     —                 behaviour changed (simulator disagreement)
2     REPRO-VERIFY      translation validation failed and recovery
                        retries were exhausted
3     REPRO-CKPT        checkpoint file missing, corrupt, or from an
                        incompatible schema
4     REPRO-FAULT       an armed fault-injection point fired
6     REPRO-CACHE       fragment-cache entry corrupt/truncated/
                        mismatched (normally recovered internally by a
                        rebuild; exits only when surfaced directly)
5     REPRO-IMAGE       input image malformed (undecodable, truncated,
                        dangling references) — the loader rejected it
5     REPRO-COMPILE     mini-C source rejected by the compiler
7     REPRO-SHARD       a shard was quarantined (retries and the
                        serial fallback exhausted) and the run was
                        started with ``--strict-shards``; without the
                        flag the run degrades instead (exit 0)
70    REPRO-INTERNAL    unclassified internal error
130   REPRO-INTERRUPT   interrupted before any round could complete
===== ================= ==============================================
"""

from __future__ import annotations

from typing import Dict

EXIT_OK = 0
EXIT_BEHAVIOUR = 1
EXIT_VERIFY = 2
EXIT_CHECKPOINT = 3
EXIT_FAULT = 4
EXIT_INPUT = 5
EXIT_CACHE = 6
EXIT_SHARD = 7
EXIT_INTERNAL = 70
EXIT_INTERRUPT = 130


class ReproError(RuntimeError):
    """Base class of all typed, code-carrying pipeline errors."""

    code: str = "REPRO-INTERNAL"
    exit_code: int = EXIT_INTERNAL


class CheckpointError(ReproError):
    """A checkpoint could not be loaded (missing, corrupt, bad schema)."""

    code = "REPRO-CKPT"
    exit_code = EXIT_CHECKPOINT


class FaultInjected(ReproError):
    """An armed fault point fired (chaos testing only; see faultinject)."""

    code = "REPRO-FAULT"
    exit_code = EXIT_FAULT


class CacheError(ReproError):
    """A fragment-cache entry could not be loaded (corrupt, truncated,
    version-mismatched).  The cache layer recovers by deleting the
    entry and re-mining the shard; the type exists so the failure is
    classified — and visible in counters — rather than swallowed."""

    code = "REPRO-CACHE"
    exit_code = EXIT_CACHE


class ShardError(ReproError):
    """A shard exhausted its retry budget *and* the in-parent serial
    fallback, and the user asked for strictness (``--strict-shards``).
    The default policy quarantines the shard and degrades the run
    instead — the module stays valid, verified best-so-far."""

    code = "REPRO-SHARD"
    exit_code = EXIT_SHARD


#: code -> (exit code, description) — the documented contract, used by
#: the README/DESIGN tables and asserted by the resilience tests.
ERROR_CODES: Dict[str, tuple] = {
    "REPRO-VERIFY": (EXIT_VERIFY, "translation validation failed; "
                                  "recovery retries exhausted"),
    "REPRO-CKPT": (EXIT_CHECKPOINT, "checkpoint missing/corrupt/"
                                    "incompatible"),
    "REPRO-FAULT": (EXIT_FAULT, "armed fault-injection point fired"),
    "REPRO-IMAGE": (EXIT_INPUT, "input image malformed; the loader "
                                "rejected it"),
    "REPRO-CACHE": (EXIT_CACHE, "fragment-cache entry corrupt/"
                                "truncated/mismatched (recovered by "
                                "rebuild)"),
    "REPRO-COMPILE": (EXIT_INPUT, "mini-C source rejected by the "
                                  "compiler"),
    "REPRO-SHARD": (EXIT_SHARD, "shard quarantined (retries + serial "
                                "fallback exhausted) under "
                                "--strict-shards"),
    "REPRO-INTERNAL": (EXIT_INTERNAL, "unclassified internal error"),
    "REPRO-INTERRUPT": (EXIT_INTERRUPT, "interrupted before any round "
                                        "completed"),
}
