"""Deterministic fault injection at the pipeline's seams.

A *fault point* is a named call site at a subsystem boundary —
``fault("mis.solve")`` — that is inert unless explicitly armed.  Arming
is deterministic: a spec names the point, the failure *mode* and the
1-based hit at which it fires, so a chaos test reproduces exactly.

Specs have the form ``point[:mode[:at]]`` (CLI ``--fault``, repeatable,
or the ``REPRO_FAULT`` environment variable, comma-separated):

========= ===========================================================
mode      effect when the armed hit is reached
========= ===========================================================
raise     raise :class:`~repro.resilience.errors.FaultInjected`
          (the typed crash; CLI exit 4)
interrupt raise ``KeyboardInterrupt`` (the mid-round Ctrl-C; the
          driver must roll back or complete the round atomically)
deadline  force-expire the active governor's budget (simulated
          wall-clock exhaustion; the run must degrade, not die)
corrupt   no exception — ``fault()`` returns ``"corrupt"`` and the
          site applies a site-specific corruption (the checkpoint
          writer garbles its payload bytes before the atomic write)
========= ===========================================================

``at=0`` means "every hit from the first on" (used to exhaust the
verify-recovery retries).  Unknown point names are rejected at arm
time so a typo cannot silently disarm a chaos run.

Fault-point catalogue
---------------------
=================== =================================================
point               boundary
=================== =================================================
mine.pass           DgSpan/Edgar, entry of one mining pass
mine.search         DgSpan/Edgar, per lattice node expanded
mine.filter         Edgar, PA-specific embedding filter
mis.solve           MIS solver, entry of one overlap resolution
extract.apply       driver, before a round's batch application
extract.candidate   extractor, per candidate inside the batch (fires
                    *between* rewrites — the half-applied-round case)
verify.round        translation validator, entry
verify.counterexample
                    translation validator — forge an equivalence
                    counterexample for the first rewritten block
ledger.write        decision-ledger JSONL writer
checkpoint.write    checkpoint writer (supports ``corrupt``)
checkpoint.load     checkpoint loader
scale.pool          sharded engine, entry of one round's pool
                    expansion (fires in the parent; worker children
                    run disarmed)
scale.cache         fragment cache, entry of one persistent-entry
                    load (``corrupt`` simulates a garbled entry — the
                    cache must rebuild, not crash)
scale.progress      progress bus, queue creation and event dispatch
                    (the bus must degrade to broken — mining never
                    hangs or dies because its progress feed did)
scale.metrics       OpenMetrics exporter, entry of the
                    ``--metrics-out`` write (the CLI must warn and
                    keep its primary outputs)
scale.worker.crash  supervised executor, probed in the parent per
                    shard dispatch; the dispatched worker self-kills
                    via ``os.kill(getpid(), SIGKILL)`` — the shard
                    must be redelivered, the output bit-identical
scale.worker.hang   as above, but the worker sleeps forever —
                    recovery needs ``--shard-timeout`` (or the
                    governor's deadline teardown)
scale.shard.poison  as above, but sticky: the shard fails every
                    redelivery *and* the serial fallback — the
                    quarantine path (``run.degraded``, or exit 7
                    under ``--strict-shards``)
=================== =================================================
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.resilience import governor as _governor
from repro.resilience.errors import FaultInjected

FAULT_POINTS = frozenset({
    "mine.pass",
    "mine.search",
    "mine.filter",
    "mis.solve",
    "extract.apply",
    "extract.candidate",
    "verify.round",
    "verify.counterexample",
    "ledger.write",
    "checkpoint.write",
    "checkpoint.load",
    "scale.pool",
    "scale.cache",
    "scale.progress",
    "scale.metrics",
    "scale.worker.crash",
    "scale.worker.hang",
    "scale.shard.poison",
})

_MODES = ("raise", "interrupt", "deadline", "corrupt")

#: environment variable holding comma-separated arm specs
ENV_VAR = "REPRO_FAULT"


@dataclass
class FaultSpec:
    point: str
    mode: str = "raise"
    at: int = 1          #: 1-based hit to fire on; 0 = every hit
    hits: int = 0
    fired: int = 0


#: armed specs by point; empty = fully inert (the common case)
_ARMED: Dict[str, FaultSpec] = {}


def arm(spec: str) -> FaultSpec:
    """Arm one ``point[:mode[:at]]`` spec; returns the parsed spec."""
    parts = spec.split(":")
    point = parts[0]
    if point not in FAULT_POINTS:
        raise ValueError(
            f"unknown fault point {point!r} "
            f"(known: {', '.join(sorted(FAULT_POINTS))})"
        )
    mode = parts[1] if len(parts) > 1 and parts[1] else "raise"
    if mode not in _MODES:
        raise ValueError(
            f"unknown fault mode {mode!r} (known: {', '.join(_MODES)})"
        )
    at = int(parts[2]) if len(parts) > 2 else 1
    parsed = FaultSpec(point=point, mode=mode, at=at)
    _ARMED[point] = parsed
    return parsed


def arm_from_env(environ=os.environ) -> List[FaultSpec]:
    """Arm every spec in ``REPRO_FAULT`` (comma-separated), if set."""
    value = environ.get(ENV_VAR, "").strip()
    if not value:
        return []
    return [arm(part.strip()) for part in value.split(",")
            if part.strip()]


def disarm_all() -> None:
    _ARMED.clear()


def armed_points() -> List[str]:
    return sorted(_ARMED)


def fault(point: str) -> Optional[str]:
    """One fault point.  Inert (and near-free) unless *point* is armed.

    Returns the mode string when the point fires in a non-raising mode
    (``deadline``, ``corrupt``) so the site can apply the site-specific
    effect; raises for ``raise``/``interrupt``; returns None otherwise.
    """
    if not _ARMED:
        return None
    spec = _ARMED.get(point)
    if spec is None:
        return None
    spec.hits += 1
    if spec.at != 0 and spec.hits != spec.at:
        return None
    spec.fired += 1
    if spec.mode == "raise":
        raise FaultInjected(f"injected fault at {point} "
                            f"(hit {spec.hits})")
    if spec.mode == "interrupt":
        raise KeyboardInterrupt(f"injected interrupt at {point}")
    if spec.mode == "deadline":
        _governor.current().force_expire()
        return "deadline"
    return spec.mode
