"""dijkstra: single-source shortest paths (MiBench network/dijkstra).

An adjacency-matrix Dijkstra over a pseudo-random 12-node graph, run
from several sources.
"""

NAME = "dijkstra"

N = 12
INF = 0x3FFFFFFF

SOURCE = r"""
int adj[144];
int dist[12];
int visited[12];
int seed;

int next_rand() {
    seed = seed * 1103515245 + 12345;
    seed = seed & 0x7fffffff;
    return seed;
}

int build_graph() {
    int i;
    int j;
    for (i = 0; i < 12; i = i + 1) {
        for (j = 0; j < 12; j = j + 1) {
            int r = next_rand() % 32;
            if (i == j) {
                adj[i * 12 + j] = 0;
            } else if (r < 20) {
                adj[i * 12 + j] = r + 1;
            } else {
                adj[i * 12 + j] = 0x3fffffff;
            }
        }
    }
    return 0;
}

int dijkstra(int source) {
    int i;
    for (i = 0; i < 12; i = i + 1) {
        dist[i] = 0x3fffffff;
        visited[i] = 0;
    }
    dist[source] = 0;
    int round;
    for (round = 0; round < 12; round = round + 1) {
        int best = -1;
        int best_d = 0x3fffffff;
        for (i = 0; i < 12; i = i + 1) {
            if (visited[i] == 0 && dist[i] < best_d) {
                best = i;
                best_d = dist[i];
            }
        }
        if (best < 0) {
            return 0;
        }
        visited[best] = 1;
        for (i = 0; i < 12; i = i + 1) {
            int w = adj[best * 12 + i];
            if (w < 0x3fffffff) {
                int nd = best_d + w;
                if (nd < dist[i]) {
                    dist[i] = nd;
                }
            }
        }
    }
    return 0;
}

int main() {
    seed = 42;
    build_graph();
    int s;
    for (s = 0; s < 3; s = s + 1) {
        dijkstra(s * 4);
        int i;
        for (i = 0; i < 12; i = i + 1) {
            if (dist[i] >= 0x3fffffff) {
                putc('*');
            } else {
                print_int(dist[i]);
            }
            putc(' ');
        }
        print_nl(0);
    }
    return 0;
}
"""


def expected_output() -> str:
    seed = 42

    def next_rand():
        nonlocal seed
        seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF
        return seed

    adj = [[0] * N for __ in range(N)]
    for i in range(N):
        for j in range(N):
            r = next_rand() % 32
            if i == j:
                adj[i][j] = 0
            elif r < 20:
                adj[i][j] = r + 1
            else:
                adj[i][j] = INF

    lines = []
    for s in range(3):
        source = s * 4
        dist = [INF] * N
        visited = [False] * N
        dist[source] = 0
        for __ in range(N):
            best, best_d = -1, INF
            for i in range(N):
                if not visited[i] and dist[i] < best_d:
                    best, best_d = i, dist[i]
            if best < 0:
                break
            visited[best] = True
            for i in range(N):
                w = adj[best][i]
                if w < INF and best_d + w < dist[i]:
                    dist[i] = best_d + w
        parts = []
        for i in range(N):
            parts.append("*" if dist[i] >= INF else str(dist[i]))
        lines.append(" ".join(parts) + " ")
    return "\n".join(lines) + "\n"


EXPECTED_EXIT = 0
