"""crc: table-driven CRC-32 (MiBench telecomm/CRC32).

Builds the 256-entry reflected CRC-32 table at startup, then checksums a
pseudo-random message with the table-driven loop and — as a cross-check
— with the bit-at-a-time loop.
"""

NAME = "crc"

SOURCE = r"""
int crc_table[256];
int message[96];
int seed;

int next_rand() {
    seed = seed * 1103515245 + 12345;
    seed = seed & 0x7fffffff;
    return seed;
}

int build_table() {
    int n;
    for (n = 0; n < 256; n = n + 1) {
        int c = n;
        int k;
        for (k = 0; k < 8; k = k + 1) {
            if (c & 1) {
                c = (c >> 1) ^ 0xedb88320;
            } else {
                c = c >> 1;
            }
        }
        crc_table[n] = c;
    }
    return 0;
}

int crc_bytewise(int n) {
    int crc = ~0;
    int i;
    for (i = 0; i < n; i = i + 1) {
        int byte = message[i] & 255;
        crc = (crc >> 8) ^ crc_table[(crc ^ byte) & 255];
    }
    return ~crc;
}

int crc_bitwise(int n) {
    int crc = ~0;
    int i;
    for (i = 0; i < n; i = i + 1) {
        int byte = message[i] & 255;
        crc = crc ^ byte;
        int k;
        for (k = 0; k < 8; k = k + 1) {
            if (crc & 1) {
                crc = (crc >> 1) ^ 0xedb88320;
            } else {
                crc = crc >> 1;
            }
        }
    }
    return ~crc;
}

int main() {
    seed = 7;
    int i;
    for (i = 0; i < 96; i = i + 1) {
        message[i] = next_rand() & 255;
    }
    build_table();
    int a = crc_bytewise(96);
    int b = crc_bitwise(96);
    print_hex(a); print_nl(0);
    print_hex(b); print_nl(0);
    if (a == b) { puts_w("match"); } else { puts_w("MISMATCH"); }
    print_nl(0);
    return 0;
}
"""


def expected_output() -> str:
    seed = 7
    msg = []
    for __ in range(96):
        seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF
        msg.append(seed & 255)
    import binascii

    crc = binascii.crc32(bytes(msg)) & 0xFFFFFFFF
    return f"{crc:08x}\n{crc:08x}\nmatch\n"


EXPECTED_EXIT = 0
