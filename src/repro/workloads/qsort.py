"""qsort: quicksort + insertion-sort cross-check (MiBench auto/qsort).

Iterative quicksort with an explicit stack (no recursion in the hot
path, like embedded qsort implementations) over a pseudo-random array,
validated against an insertion sort of a copy.
"""

NAME = "qsort"

SIZE = 80

SOURCE = r"""
int data[80];
int copy[80];
int stack_lo[32];
int stack_hi[32];
int seed;

int next_rand() {
    seed = seed * 1103515245 + 12345;
    seed = seed & 0x7fffffff;
    return seed;
}

int partition(int lo, int hi) {
    int pivot = data[hi];
    int i = lo - 1;
    int j;
    for (j = lo; j < hi; j = j + 1) {
        if (data[j] <= pivot) {
            i = i + 1;
            int t = data[i];
            data[i] = data[j];
            data[j] = t;
        }
    }
    int t2 = data[i + 1];
    data[i + 1] = data[hi];
    data[hi] = t2;
    return i + 1;
}

int quicksort(int n) {
    int top = 0;
    stack_lo[0] = 0;
    stack_hi[0] = n - 1;
    top = 1;
    while (top > 0) {
        top = top - 1;
        int lo = stack_lo[top];
        int hi = stack_hi[top];
        if (lo < hi) {
            int p = partition(lo, hi);
            stack_lo[top] = lo;
            stack_hi[top] = p - 1;
            top = top + 1;
            stack_lo[top] = p + 1;
            stack_hi[top] = hi;
            top = top + 1;
        }
    }
    return 0;
}

int insertion_sort(int n) {
    int i;
    for (i = 1; i < n; i = i + 1) {
        int key = copy[i];
        int j = i - 1;
        while (j >= 0 && copy[j] > key) {
            copy[j + 1] = copy[j];
            j = j - 1;
        }
        copy[j + 1] = key;
    }
    return 0;
}

int main() {
    seed = 1234;
    int i;
    for (i = 0; i < 80; i = i + 1) {
        int v = next_rand() % 1000;
        data[i] = v;
        copy[i] = v;
    }
    quicksort(80);
    insertion_sort(80);
    int sorted = 1;
    int same = 1;
    int check = 0;
    for (i = 0; i < 80; i = i + 1) {
        if (i > 0 && data[i - 1] > data[i]) { sorted = 0; }
        if (data[i] != copy[i]) { same = 0; }
        check = check + data[i] * (i + 1);
    }
    print_int(sorted); print_nl(0);
    print_int(same); print_nl(0);
    print_int(check); print_nl(0);
    print_int(data[0]); putc(' '); print_int(data[40]); putc(' ');
    print_int(data[79]); print_nl(0);
    return 0;
}
"""


def expected_output() -> str:
    seed = 1234

    def next_rand():
        nonlocal seed
        seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF
        return seed

    data = [next_rand() % 1000 for __ in range(SIZE)]
    data.sort()
    check = sum(v * (i + 1) for i, v in enumerate(data)) & 0xFFFFFFFF
    lines = [
        "1",
        "1",
        str(check),
        f"{data[0]} {data[40]} {data[79]}",
    ]
    return "\n".join(lines) + "\n"


EXPECTED_EXIT = 0
