"""The workload suite: the paper's Table 1 program set.

Each workload module provides ``NAME``, ``SOURCE`` (mini-C),
``expected_output()`` (a pure-Python reference) and ``EXPECTED_EXIT``.
``verify_workload`` runs the compiled image in the simulator and checks
it against the reference — used both by tests and by the benchmark
harness to guarantee that abstraction preserved behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.binary.layout import layout
from repro.binary.program import Module
from repro.minicc.driver import compile_to_module
from repro.sim.machine import run_image

from repro.workloads import (  # noqa: F401  (re-exported table below)
    bitcnts as _bitcnts,
)
from repro.workloads import crc as _crc
from repro.workloads import dijkstra as _dijkstra
from repro.workloads import patricia as _patricia
from repro.workloads import qsort as _qsort
from repro.workloads import rijndael as _rijndael
from repro.workloads import search as _search
from repro.workloads import sha as _sha


@dataclass(frozen=True)
class Workload:
    """One benchmark program."""

    name: str
    source: str
    expected_output: Callable[[], str]
    expected_exit: int = 0


def _workload(module) -> Workload:
    return Workload(
        name=module.NAME,
        source=module.SOURCE,
        expected_output=module.expected_output,
        expected_exit=module.EXPECTED_EXIT,
    )


#: The paper's benchmark set, in Table 1 order.
PROGRAMS: Dict[str, Workload] = {
    module.NAME: _workload(module)
    for module in (
        _bitcnts, _crc, _dijkstra, _patricia, _qsort, _rijndael,
        _search, _sha,
    )
}


def compile_workload(name: str, schedule: bool = True) -> Module:
    """Compile one workload to a fresh rewritable module."""
    return compile_to_module(PROGRAMS[name].source, schedule=schedule)


def verify_workload(name: str, module: Module,
                    max_steps: int = 2_000_000) -> None:
    """Run *module* in the simulator; assert reference behaviour.

    Raises AssertionError on any deviation — the acceptance check every
    abstraction run must pass.
    """
    workload = PROGRAMS[name]
    result = run_image(layout(module), max_steps=max_steps)
    expected = workload.expected_output()
    if result.output_text != expected:
        raise AssertionError(
            f"{name}: output mismatch\n--- expected ---\n{expected}"
            f"--- actual ---\n{result.output_text}"
        )
    if result.exit_code != workload.expected_exit:
        raise AssertionError(
            f"{name}: exit {result.exit_code} != {workload.expected_exit}"
        )
