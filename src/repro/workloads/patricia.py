"""patricia: radix-trie insert/lookup (MiBench network/patricia).

A binary radix trie over 16-bit keys, stored in parallel node arrays
(the array-of-structs encoding embedded code uses instead of malloc).
Keys are inserted and then probed with a mix of hits and misses.
"""

NAME = "patricia"

SOURCE = r"""
int left[600];
int right[600];
int value[600];
int node_count;
int seed;

int next_rand() {
    seed = seed * 1103515245 + 12345;
    seed = seed & 0x7fffffff;
    return seed;
}

int new_node() {
    int n = node_count;
    node_count = node_count + 1;
    left[n] = -1;
    right[n] = -1;
    value[n] = -1;
    return n;
}

int insert(int key) {
    int node = 0;
    int bit = 15;
    while (bit >= 0) {
        int side = (key >> bit) & 1;
        if (side == 0) {
            if (left[node] < 0) {
                left[node] = new_node();
            }
            node = left[node];
        } else {
            if (right[node] < 0) {
                right[node] = new_node();
            }
            node = right[node];
        }
        bit = bit - 1;
    }
    if (value[node] < 0) {
        value[node] = key;
        return 1;
    }
    return 0;
}

int lookup(int key) {
    int node = 0;
    int bit = 15;
    while (bit >= 0) {
        int side = (key >> bit) & 1;
        if (side == 0) {
            node = left[node];
        } else {
            node = right[node];
        }
        if (node < 0) {
            return 0;
        }
        bit = bit - 1;
    }
    if (value[node] == key) {
        return 1;
    }
    return 0;
}

int main() {
    seed = 99;
    node_count = 0;
    new_node();
    int inserted = 0;
    int i;
    for (i = 0; i < 25; i = i + 1) {
        int key = next_rand() & 0xffff;
        inserted = inserted + insert(key);
    }
    print_int(inserted); print_nl(0);
    print_int(node_count); print_nl(0);
    seed = 99;
    int hits = 0;
    for (i = 0; i < 25; i = i + 1) {
        int key = next_rand() & 0xffff;
        hits = hits + lookup(key);
    }
    print_int(hits); print_nl(0);
    int misses = 0;
    for (i = 0; i < 25; i = i + 1) {
        int key = next_rand() & 0xffff;
        misses = misses + (1 - lookup(key));
    }
    print_int(misses); print_nl(0);
    return 0;
}
"""

#: (>> on keys is a *logical* shift in mini-C, matching the unsigned
#: masking below.)


def expected_output() -> str:
    seed = 99

    def next_rand():
        nonlocal seed
        seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF
        return seed

    trie = {}
    inserted = 0
    node_count = 1
    # replicate node counting: one node per fresh trie edge walked
    paths = set()
    for __ in range(25):
        key = next_rand() & 0xFFFF
        path = ""
        fresh = False
        for bit in range(15, -1, -1):
            path += str((key >> bit) & 1)
            if path not in paths:
                paths.add(path)
                node_count += 1
        if key not in trie.values() or path not in trie:
            pass
        if path not in trie:
            trie[path] = key
            inserted += 1
    lines = [str(inserted), str(node_count)]

    seed = 99
    hits = 0
    for __ in range(25):
        key = next_rand() & 0xFFFF
        path = format(key, "016b")
        hits += 1 if trie.get(path) == key else 0
    lines.append(str(hits))
    misses = 0
    for __ in range(25):
        key = next_rand() & 0xFFFF
        path = format(key, "016b")
        misses += 0 if trie.get(path) == key else 1
    lines.append(str(misses))
    return "\n".join(lines) + "\n"


EXPECTED_EXIT = 0
