"""bitcnts: bit-counting kernels (MiBench automotive/bitcount).

Like the original, several independent bit-count implementations run
over the same pseudo-random input stream and report their totals —
"this program which only processes the given input and calculates the
number of bits needed to represent it, does not offer as much
optimization potential as other test programs" (paper §4.2: bitcnts is
the *worst* case for graph-based PA).
"""

NAME = "bitcnts"

SOURCE = r"""
int seed;
int nibble_table[16] = {0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4};

int next_rand() {
    seed = seed * 1103515245 + 12345;
    seed = seed & 0x7fffffff;
    return seed;
}

int count_shift(int x) {
    int n = 0;
    while (x != 0) {
        n = n + (x & 1);
        x = x >> 1;
    }
    return n;
}

int count_kernighan(int x) {
    int n = 0;
    while (x != 0) {
        x = x & (x - 1);
        n = n + 1;
    }
    return n;
}

int count_nibbles(int x) {
    int n = 0;
    while (x != 0) {
        n = n + nibble_table[x & 15];
        x = x >> 4;
    }
    return n;
}

int count_bytes(int x) {
    int n = 0;
    int i;
    for (i = 0; i < 4; i = i + 1) {
        int byte = x & 255;
        n = n + nibble_table[byte & 15] + nibble_table[(byte >> 4) & 15];
        x = x >> 8;
    }
    return n;
}

int count_pairs(int x) {
    int n = 0;
    while (x != 0) {
        int pair = x & 3;
        if (pair == 3) { n = n + 2; }
        else if (pair != 0) { n = n + 1; }
        x = x >> 2;
    }
    return n;
}

int main() {
    int t0 = 0;
    int t1 = 0;
    int t2 = 0;
    int t3 = 0;
    int t4 = 0;
    seed = 1;
    int i;
    for (i = 0; i < 64; i = i + 1) {
        int x = next_rand();
        t0 = t0 + count_shift(x);
        t1 = t1 + count_kernighan(x);
        t2 = t2 + count_nibbles(x);
        t3 = t3 + count_bytes(x);
        t4 = t4 + count_pairs(x);
    }
    print_int(t0); print_nl(0);
    print_int(t1); print_nl(0);
    print_int(t2); print_nl(0);
    print_int(t3); print_nl(0);
    print_int(t4); print_nl(0);
    if (t0 == t1 && t1 == t2 && t2 == t3 && t3 == t4) {
        puts_w("agree");
    } else {
        puts_w("DISAGREE");
    }
    print_nl(0);
    return 0;
}
"""


def expected_output() -> str:
    """Reference implementation in Python."""
    seed = 1
    total = 0
    for __ in range(64):
        seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF
        total += bin(seed).count("1")
    lines = [str(total)] * 5 + ["agree"]
    return "\n".join(lines) + "\n"


EXPECTED_EXIT = 0
