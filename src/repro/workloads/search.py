"""search: Horspool substring search (MiBench office/stringsearch).

Builds the bad-character skip table per pattern and scans a synthetic
text for several patterns, cross-checked against the naive scanner.
"""

NAME = "search"

SOURCE = r"""
int text[240];
int pattern[8];
int skip[32];
int seed;

int next_rand() {
    seed = seed * 1103515245 + 12345;
    seed = seed & 0x7fffffff;
    return seed;
}

int fill_text() {
    int i;
    for (i = 0; i < 240; i = i + 1) {
        text[i] = next_rand() % 26;
    }
    return 0;
}

int load_pattern(int offset, int len) {
    int i;
    for (i = 0; i < len; i = i + 1) {
        pattern[i] = text[offset + i];
    }
    return 0;
}

int build_skip(int len) {
    int i;
    for (i = 0; i < 32; i = i + 1) {
        skip[i] = len;
    }
    for (i = 0; i < len - 1; i = i + 1) {
        skip[pattern[i]] = len - 1 - i;
    }
    return 0;
}

int horspool(int n, int len) {
    int count = 0;
    int pos = 0;
    while (pos + len <= n) {
        int j = len - 1;
        while (j >= 0 && text[pos + j] == pattern[j]) {
            j = j - 1;
        }
        if (j < 0) {
            count = count + 1;
            pos = pos + 1;
        } else {
            pos = pos + skip[text[pos + len - 1]];
        }
    }
    return count;
}

int naive(int n, int len) {
    int count = 0;
    int pos = 0;
    while (pos + len <= n) {
        int j = 0;
        while (j < len && text[pos + j] == pattern[j]) {
            j = j + 1;
        }
        if (j == len) {
            count = count + 1;
        }
        pos = pos + 1;
    }
    return count;
}

int main() {
    seed = 2024;
    fill_text();
    int trial;
    for (trial = 0; trial < 4; trial = trial + 1) {
        int offset = trial * 50 + 3;
        int len = 3 + trial;
        load_pattern(offset, len);
        build_skip(len);
        int a = horspool(240, len);
        int b = naive(240, len);
        print_int(a); putc(' '); print_int(b);
        if (a == b) { puts_w(" ok"); } else { puts_w(" BAD"); }
        print_nl(0);
    }
    return 0;
}
"""


def expected_output() -> str:
    seed = 2024

    def next_rand():
        nonlocal seed
        seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF
        return seed

    text = [next_rand() % 26 for __ in range(240)]
    lines = []
    for trial in range(4):
        offset = trial * 50 + 3
        length = 3 + trial
        pattern = text[offset:offset + length]
        count = 0
        for pos in range(0, 240 - length + 1):
            if text[pos:pos + length] == pattern:
                count += 1
        lines.append(f"{count} {count} ok")
    return "\n".join(lines) + "\n"


EXPECTED_EXIT = 0
