"""MiBench-like workload programs (paper §4).

The paper evaluates on eight MiBench programs compiled ``-Os`` against
dietlibc.  Each module here provides the same *kind* of program written
in mini-C, together with a pure-Python reference implementation that
predicts the program's exact output — every workload run is therefore a
differential test of the whole stack (compiler, linker, loader,
abstraction, simulator).
"""

from repro.workloads.suite import (
    PROGRAMS,
    Workload,
    compile_workload,
    verify_workload,
)

__all__ = ["PROGRAMS", "Workload", "compile_workload", "verify_workload"]
