"""sha: SHA-1 compression function (MiBench security/sha).

Runs the real SHA-1 compression (message schedule + 4 phases of 20
rounds, each phase with its own boolean function and constant) over two
pseudo-random 512-bit blocks.  The four near-identical-but-not-equal
phase loops are classic graph-PA material.
"""

NAME = "sha"

SOURCE = r"""
int w[80];
int h0; int h1; int h2; int h3; int h4;
int seed;

int next_rand() {
    seed = seed * 1103515245 + 12345;
    seed = seed & 0x7fffffff;
    return seed;
}

int rotl5(int x) {
    return (x << 5) | (x >> 27);
}

int rotl30(int x) {
    return (x << 30) | (x >> 2);
}

int rotl1(int x) {
    return (x << 1) | (x >> 31);
}

int schedule() {
    int t;
    for (t = 16; t < 80; t = t + 1) {
        w[t] = rotl1(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]);
    }
    return 0;
}

int compress() {
    int a = h0;
    int b = h1;
    int c = h2;
    int d = h3;
    int e = h4;
    int t;
    for (t = 0; t < 20; t = t + 1) {
        int f = (b & c) | ((~b) & d);
        int tmp = rotl5(a) + f + e + w[t] + 0x5a827999;
        e = d;
        d = c;
        c = rotl30(b);
        b = a;
        a = tmp;
    }
    for (t = 20; t < 40; t = t + 1) {
        int f = b ^ c ^ d;
        int tmp = rotl5(a) + f + e + w[t] + 0x6ed9eba1;
        e = d;
        d = c;
        c = rotl30(b);
        b = a;
        a = tmp;
    }
    for (t = 40; t < 60; t = t + 1) {
        int f = (b & c) | (b & d) | (c & d);
        int tmp = rotl5(a) + f + e + w[t] + 0x8f1bbcdc;
        e = d;
        d = c;
        c = rotl30(b);
        b = a;
        a = tmp;
    }
    for (t = 60; t < 80; t = t + 1) {
        int f = b ^ c ^ d;
        int tmp = rotl5(a) + f + e + w[t] + 0xca62c1d6;
        e = d;
        d = c;
        c = rotl30(b);
        b = a;
        a = tmp;
    }
    h0 = h0 + a;
    h1 = h1 + b;
    h2 = h2 + c;
    h3 = h3 + d;
    h4 = h4 + e;
    return 0;
}

int main() {
    h0 = 0x67452301;
    h1 = 0xefcdab89;
    h2 = 0x98badcfe;
    h3 = 0x10325476;
    h4 = 0xc3d2e1f0;
    seed = 31337;
    int block;
    for (block = 0; block < 2; block = block + 1) {
        int i;
        for (i = 0; i < 16; i = i + 1) {
            w[i] = next_rand() ^ (next_rand() << 16);
        }
        schedule();
        compress();
    }
    print_hex(h0);
    print_hex(h1);
    print_hex(h2);
    print_hex(h3);
    print_hex(h4);
    print_nl(0);
    return 0;
}
"""

_M = 0xFFFFFFFF


def expected_output() -> str:
    seed = 31337

    def next_rand():
        nonlocal seed
        seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF
        return seed

    def rotl(x, n):
        return ((x << n) | (x >> (32 - n))) & _M

    h = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0]
    for __ in range(2):
        w = []
        for __i in range(16):
            lo = next_rand()
            hi = next_rand()
            w.append((lo ^ (hi << 16)) & _M)
        for t in range(16, 80):
            w.append(rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1))
        a, b, c, d, e = h
        for t in range(80):
            if t < 20:
                f, k = (b & c) | (~b & d), 0x5A827999
            elif t < 40:
                f, k = b ^ c ^ d, 0x6ED9EBA1
            elif t < 60:
                f, k = (b & c) | (b & d) | (c & d), 0x8F1BBCDC
            else:
                f, k = b ^ c ^ d, 0xCA62C1D6
            tmp = (rotl(a, 5) + (f & _M) + e + w[t] + k) & _M
            a, b, c, d, e = tmp, a, rotl(b, 30), c, d
        h = [
            (h[0] + a) & _M, (h[1] + b) & _M, (h[2] + c) & _M,
            (h[3] + d) & _M, (h[4] + e) & _M,
        ]
    return "".join(f"{x:08x}" for x in h) + "\n"


EXPECTED_EXIT = 0
