"""rijndael: AES-style block cipher rounds (MiBench security/rijndael).

The real AES S-box, ShiftRows and the xtime-based MixColumns, applied
for ten rounds to pseudo-random blocks under a pseudo-random key
schedule (the key expansion itself is simplified — the *round* code,
where all the abstraction potential lives, is the real thing).

The paper singles this program out: "due to the nature of the
encryption algorithm, the compiler generates many very similar code
sequences.  But in order to speed up the execution, these instructions
are then reordered and rescheduled to overlap load operations with
computation" (§4.2) — which is why rijndael shows the largest win for
graph-based PA (3.7x over SFX in Table 1).  The MixColumns code below is
unrolled per column, exactly the similar-but-rescheduled pattern.
"""

from typing import List

NAME = "rijndael"


def _aes_sbox() -> List[int]:
    """Derive the AES S-box (multiplicative inverse + affine map)."""

    def gf_mul(a: int, b: int) -> int:
        p = 0
        for __ in range(8):
            if b & 1:
                p ^= a
            high = a & 0x80
            a = (a << 1) & 0xFF
            if high:
                a ^= 0x1B
            b >>= 1
        return p

    # inverses via exponentiation: a^254 = a^-1 in GF(2^8)
    def gf_inv(a: int) -> int:
        if a == 0:
            return 0
        result = 1
        power = a
        exponent = 254
        while exponent:
            if exponent & 1:
                result = gf_mul(result, power)
            power = gf_mul(power, power)
            exponent >>= 1
        return result

    sbox = []
    for x in range(256):
        inv = gf_inv(x)
        value = inv
        for shift in (1, 2, 3, 4):
            value ^= ((inv << shift) | (inv >> (8 - shift))) & 0xFF
        sbox.append(value ^ 0x63)
    return sbox


SBOX = _aes_sbox()
assert SBOX[0x00] == 0x63 and SBOX[0x01] == 0x7C and SBOX[0x53] == 0xED

_SBOX_CSV = ", ".join(str(v) for v in SBOX)

SOURCE = (
    "int sbox[256] = {" + _SBOX_CSV + "};\n"
    + r"""
int state[16];
int rk[176];
int seed;

int next_rand() {
    seed = seed * 1103515245 + 12345;
    seed = seed & 0x7fffffff;
    return seed;
}

int xtime(int x) {
    return ((x << 1) ^ ((x >> 7) * 27)) & 255;
}

int sub_bytes() {
    int i;
    for (i = 0; i < 16; i = i + 1) {
        state[i] = sbox[state[i]];
    }
    return 0;
}

int shift_rows() {
    int t = state[4];
    state[4] = state[5];
    state[5] = state[6];
    state[6] = state[7];
    state[7] = t;
    int u = state[8];
    int v = state[9];
    state[8] = state[10];
    state[9] = state[11];
    state[10] = u;
    state[11] = v;
    int x = state[15];
    state[15] = state[14];
    state[14] = state[13];
    state[13] = state[12];
    state[12] = x;
    return 0;
}

int mix_columns() {
    int b0 = state[0];
    int b1 = state[4];
    int b2 = state[8];
    int b3 = state[12];
    int t = b0 ^ b1 ^ b2 ^ b3;
    int u = b0;
    state[0] = b0 ^ t ^ xtime(b0 ^ b1);
    state[4] = b1 ^ t ^ xtime(b1 ^ b2);
    state[8] = b2 ^ t ^ xtime(b2 ^ b3);
    state[12] = b3 ^ t ^ xtime(b3 ^ u);

    b0 = state[1];
    b1 = state[5];
    b2 = state[9];
    b3 = state[13];
    t = b0 ^ b1 ^ b2 ^ b3;
    u = b0;
    state[1] = b0 ^ t ^ xtime(b0 ^ b1);
    state[5] = b1 ^ t ^ xtime(b1 ^ b2);
    state[9] = b2 ^ t ^ xtime(b2 ^ b3);
    state[13] = b3 ^ t ^ xtime(b3 ^ u);

    b0 = state[2];
    b1 = state[6];
    b2 = state[10];
    b3 = state[14];
    t = b0 ^ b1 ^ b2 ^ b3;
    u = b0;
    state[2] = b0 ^ t ^ xtime(b0 ^ b1);
    state[6] = b1 ^ t ^ xtime(b1 ^ b2);
    state[10] = b2 ^ t ^ xtime(b2 ^ b3);
    state[14] = b3 ^ t ^ xtime(b3 ^ u);

    b0 = state[3];
    b1 = state[7];
    b2 = state[11];
    b3 = state[15];
    t = b0 ^ b1 ^ b2 ^ b3;
    u = b0;
    state[3] = b0 ^ t ^ xtime(b0 ^ b1);
    state[7] = b1 ^ t ^ xtime(b1 ^ b2);
    state[11] = b2 ^ t ^ xtime(b2 ^ b3);
    state[15] = b3 ^ t ^ xtime(b3 ^ u);
    return 0;
}

int add_round_key(int round) {
    int i;
    for (i = 0; i < 16; i = i + 1) {
        state[i] = state[i] ^ rk[round * 16 + i];
    }
    return 0;
}

int encrypt_block() {
    add_round_key(0);
    int round;
    for (round = 1; round < 10; round = round + 1) {
        sub_bytes();
        shift_rows();
        mix_columns();
        add_round_key(round);
    }
    sub_bytes();
    shift_rows();
    add_round_key(10);
    return 0;
}

int print_state() {
    int c;
    for (c = 0; c < 4; c = c + 1) {
        int word = (state[c] << 24) | (state[4 + c] << 16)
                 | (state[8 + c] << 8) | state[12 + c];
        print_hex(word);
    }
    print_nl(0);
    return 0;
}

int main() {
    seed = 0xbeef;
    int i;
    for (i = 0; i < 176; i = i + 1) {
        rk[i] = next_rand() & 255;
    }
    int block;
    for (block = 0; block < 4; block = block + 1) {
        for (i = 0; i < 16; i = i + 1) {
            state[i] = next_rand() & 255;
        }
        encrypt_block();
        print_state();
    }
    return 0;
}
"""
)


def expected_output() -> str:
    seed = 0xBEEF

    def next_rand():
        nonlocal seed
        seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF
        return seed

    def xtime(x):
        return ((x << 1) ^ ((x >> 7) * 27)) & 255

    rk = [next_rand() & 255 for __ in range(176)]
    lines = []
    for __b in range(4):
        state = [next_rand() & 255 for __ in range(16)]

        def add_round_key(rnd):
            for i in range(16):
                state[i] ^= rk[rnd * 16 + i]

        def sub_bytes():
            for i in range(16):
                state[i] = SBOX[state[i]]

        def shift_rows():
            state[4:8] = state[5:8] + state[4:5]
            state[8:12] = state[10:12] + state[8:10]
            state[12:16] = state[15:16] + state[12:15]

        def mix_columns():
            for c in range(4):
                b0, b1, b2, b3 = (state[c], state[4 + c], state[8 + c],
                                  state[12 + c])
                t = b0 ^ b1 ^ b2 ^ b3
                state[c] = b0 ^ t ^ xtime(b0 ^ b1)
                state[4 + c] = b1 ^ t ^ xtime(b1 ^ b2)
                state[8 + c] = b2 ^ t ^ xtime(b2 ^ b3)
                state[12 + c] = b3 ^ t ^ xtime(b3 ^ b0)

        add_round_key(0)
        for rnd in range(1, 10):
            sub_bytes()
            shift_rows()
            mix_columns()
            add_round_key(rnd)
        sub_bytes()
        shift_rows()
        add_round_key(10)
        words = [
            (state[c] << 24) | (state[4 + c] << 16) | (state[8 + c] << 8)
            | state[12 + c]
            for c in range(4)
        ]
        lines.append("".join(f"{w:08x}" for w in words))
    return "\n".join(lines) + "\n"


EXPECTED_EXIT = 0
