"""Semantic analysis for mini-C.

Checks name resolution, arity, array/scalar usage, and collects the
per-function local-variable lists the code generator needs.  The
builtins ``putc(x)`` and ``exit(x)`` are intrinsics lowered to ``swi``;
everything else must resolve to a defined function (the runtime sources
are linked in by the driver before analysis, so ``print_int``/``__div``
and friends resolve like ordinary code — the dietlibc model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.minicc import ast

#: Intrinsics: name -> arity.  ``putc``/``exit`` lower to ``swi``;
#: ``__mem_load``/``__mem_store`` are the raw word-memory accessors the
#: runtime builds its pointer helpers from.
INTRINSICS = {"putc": 1, "exit": 1, "__mem_load": 1, "__mem_store": 2}


class SemaError(ValueError):
    """Raised when the program is semantically invalid."""


@dataclass
class FuncInfo:
    decl: ast.FuncDecl
    locals: List[str] = field(default_factory=list)  #: params first


@dataclass
class SemaInfo:
    """Analysis results consumed by the code generator."""

    globals: Dict[str, ast.GlobalVar] = field(default_factory=dict)
    functions: Dict[str, FuncInfo] = field(default_factory=dict)
    uses_division: bool = False


def analyze(program: ast.Program) -> SemaInfo:
    """Validate *program*; returns the symbol information."""
    info = SemaInfo()
    for decl in program.globals:
        if decl.name in info.globals:
            raise SemaError(f"global {decl.name!r} defined twice")
        info.globals[decl.name] = decl
    for func in program.functions:
        if func.name in info.functions or func.name in INTRINSICS:
            raise SemaError(f"function {func.name!r} defined twice")
        if func.name in info.globals:
            raise SemaError(f"{func.name!r} is both global and function")
        if len(func.params) > 4:
            raise SemaError(
                f"function {func.name!r}: more than 4 parameters "
                "(args pass in r0-r3)"
            )
        info.functions[func.name] = FuncInfo(decl=func)
    if "main" not in info.functions:
        raise SemaError("no main function")
    for func_info in info.functions.values():
        _check_function(info, func_info)
    return info


def _check_function(info: SemaInfo, func_info: FuncInfo) -> None:
    func = func_info.decl
    scope: Set[str] = set()
    func_info.locals = list(func.params)
    for param in func.params:
        if param in scope:
            raise SemaError(f"{func.name}: duplicate parameter {param!r}")
        scope.add(param)
    _check_body(info, func_info, func.body, scope, in_loop=False)


def _check_body(info, func_info, body, scope: Set[str], in_loop: bool) -> None:
    for stmt in body:
        _check_stmt(info, func_info, stmt, scope, in_loop)


def _check_stmt(info, func_info, stmt, scope: Set[str], in_loop: bool) -> None:
    func_name = func_info.decl.name
    if isinstance(stmt, ast.VarDecl):
        if stmt.name in scope:
            raise SemaError(f"{func_name}: {stmt.name!r} redeclared")
        if stmt.init is not None:
            _check_expr(info, func_info, stmt.init, scope)
        scope.add(stmt.name)
        func_info.locals.append(stmt.name)
    elif isinstance(stmt, ast.Assign):
        _check_expr(info, func_info, stmt.value, scope)
        target = stmt.target
        if isinstance(target, ast.Var):
            if target.name in scope:
                pass  # a local shadows any same-named global
            elif target.name in info.globals:
                if info.globals[target.name].is_array:
                    raise SemaError(
                        f"{func_name}: cannot assign to array {target.name!r}"
                    )
            else:
                raise SemaError(f"{func_name}: undefined {target.name!r}")
        else:
            _check_index(info, func_info, target, scope)
    elif isinstance(stmt, ast.ExprStmt):
        _check_expr(info, func_info, stmt.expr, scope)
    elif isinstance(stmt, ast.Return):
        if stmt.value is not None:
            _check_expr(info, func_info, stmt.value, scope)
    elif isinstance(stmt, ast.If):
        _check_expr(info, func_info, stmt.cond, scope)
        _check_body(info, func_info, stmt.then_body, set(scope), in_loop)
        _check_body(info, func_info, stmt.else_body, set(scope), in_loop)
    elif isinstance(stmt, ast.While):
        _check_expr(info, func_info, stmt.cond, scope)
        _check_body(info, func_info, stmt.body, set(scope), True)
    elif isinstance(stmt, ast.For):
        inner = set(scope)
        if stmt.init is not None:
            _check_stmt(info, func_info, stmt.init, inner, in_loop)
        if stmt.cond is not None:
            _check_expr(info, func_info, stmt.cond, inner)
        if stmt.step is not None:
            _check_stmt(info, func_info, stmt.step, inner, in_loop)
        _check_body(info, func_info, stmt.body, set(inner), True)
    elif isinstance(stmt, (ast.Break, ast.Continue)):
        if not in_loop:
            raise SemaError(f"{func_name}: break/continue outside a loop")
    else:
        raise SemaError(f"{func_name}: unknown statement {stmt!r}")


def _check_index(info, func_info, expr: ast.Index, scope: Set[str]) -> None:
    func_name = func_info.decl.name
    if expr.name not in info.globals:
        raise SemaError(f"{func_name}: undefined array {expr.name!r}")
    if not info.globals[expr.name].is_array:
        raise SemaError(f"{func_name}: {expr.name!r} is not an array")
    _check_expr(info, func_info, expr.index, scope)


def _check_expr(info, func_info, expr, scope: Set[str]) -> None:
    func_name = func_info.decl.name
    if isinstance(expr, (ast.Num, ast.Str)):
        return
    if isinstance(expr, ast.Var):
        if expr.name in scope:
            return
        if expr.name in info.globals:
            # A bare array name evaluates to its address (for helpers
            # like memcpy-style runtime routines).
            return
        raise SemaError(f"{func_name}: undefined {expr.name!r}")
    if isinstance(expr, ast.Index):
        _check_index(info, func_info, expr, scope)
        return
    if isinstance(expr, ast.BinOp):
        if expr.op in ("/", "%"):
            info.uses_division = True
        _check_expr(info, func_info, expr.left, scope)
        _check_expr(info, func_info, expr.right, scope)
        return
    if isinstance(expr, ast.UnOp):
        _check_expr(info, func_info, expr.operand, scope)
        return
    if isinstance(expr, ast.Call):
        if expr.name in INTRINSICS:
            arity = INTRINSICS[expr.name]
        elif expr.name in info.functions:
            arity = len(info.functions[expr.name].decl.params)
        else:
            raise SemaError(f"{func_name}: undefined function {expr.name!r}")
        if len(expr.args) != arity:
            raise SemaError(
                f"{func_name}: {expr.name} expects {arity} args, "
                f"got {len(expr.args)}"
            )
        for arg in expr.args:
            _check_expr(info, func_info, arg, scope)
        return
    raise SemaError(f"{func_name}: unknown expression {expr!r}")
