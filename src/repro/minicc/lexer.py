"""Tokenizer for the mini-C language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

KEYWORDS = frozenset(
    {"int", "if", "else", "while", "for", "return", "break", "continue"}
)

#: Multi-character operators, longest first so maximal munch works.
OPERATORS = (
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!",
    "<", ">", "=", "(", ")", "{", "}", "[", "]", ";", ",",
)


class LexerError(ValueError):
    """Raised on malformed input text."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of ``"num"``, ``"ident"``, ``"keyword"``,
    ``"string"``, ``"op"`` or ``"eof"``; ``value`` holds the decoded
    payload (int for numbers, str otherwise).
    """

    kind: str
    value: object
    line: int

    def is_op(self, op: str) -> bool:
        return self.kind == "op" and self.value == op

    def is_keyword(self, kw: str) -> bool:
        return self.kind == "keyword" and self.value == kw


def tokenize(source: str) -> List[Token]:
    """Tokenize *source*; always ends with an ``eof`` token."""
    tokens: List[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexerError("unterminated comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isdigit():
            start = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < n and source[i] in "0123456789abcdefABCDEF":
                    i += 1
                tokens.append(Token("num", int(source[start:i], 16), line))
            else:
                while i < n and source[i].isdigit():
                    i += 1
                tokens.append(Token("num", int(source[start:i]), line))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            word = source[start:i]
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line))
            continue
        if ch == "'":
            value, i = _char_literal(source, i, line)
            tokens.append(Token("num", value, line))
            continue
        if ch == '"':
            value, i = _string_literal(source, i, line)
            tokens.append(Token("string", value, line))
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line))
                i += len(op)
                break
        else:
            raise LexerError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", None, line))
    return tokens


_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}


def _char_literal(source: str, i: int, line: int):
    i += 1
    if i >= len(source):
        raise LexerError("unterminated character literal", line)
    if source[i] == "\\":
        i += 1
        if i >= len(source) or source[i] not in _ESCAPES:
            raise LexerError("bad escape", line)
        value = _ESCAPES[source[i]]
        i += 1
    else:
        value = ord(source[i])
        i += 1
    if i >= len(source) or source[i] != "'":
        raise LexerError("unterminated character literal", line)
    return value, i + 1


def _string_literal(source: str, i: int, line: int):
    i += 1
    chars: List[str] = []
    while i < len(source) and source[i] != '"':
        if source[i] == "\\":
            i += 1
            if i >= len(source) or source[i] not in _ESCAPES:
                raise LexerError("bad escape", line)
            chars.append(chr(_ESCAPES[source[i]]))
        elif source[i] == "\n":
            raise LexerError("newline in string literal", line)
        else:
            chars.append(source[i])
        i += 1
    if i >= len(source):
        raise LexerError("unterminated string literal", line)
    return "".join(chars), i + 1
