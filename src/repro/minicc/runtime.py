"""libmini: the statically linked runtime (the dietlibc stand-in).

Written in mini-C itself and compiled together with every program, like
dietlibc's statically linked object files: only the functions a program
actually calls... are all linked in here (the whole runtime is small
enough that we keep linking simple and include it wholesale; its
functions share code patterns with user code, which is precisely the
redundancy source the paper attributes to statically linked libraries).

Contents: software division/modulo (ARM has no divide instruction),
variable-amount shifts (the ISA subset has no register-specified shift),
decimal/hex printing, word-array helpers, and small math utilities.
"""

RUNTIME_SOURCE = r"""
// ---------------------------------------------------------------- division
int __div(int a, int b) {
    int neg = 0;
    if (a < 0) { a = -a; neg = 1 - neg; }
    if (b < 0) { b = -b; neg = 1 - neg; }
    // -INT_MIN overflows back to INT_MIN; saturate so the bit loops
    // below always see non-negative operands and terminate
    if (a < 0) { a = 2147483647; }
    if (b < 0) { b = 2147483647; }
    if (b == 0) { return 0; }
    int q = 0;
    int cur = b;
    int mult = 1;
    while (cur + cur <= a && cur + cur > 0) {
        cur = cur + cur;
        mult = mult + mult;
    }
    while (mult > 0) {
        if (a >= cur) {
            a = a - cur;
            q = q + mult;
        }
        cur = cur >> 1;
        mult = mult >> 1;
    }
    if (neg) { return -q; }
    return q;
}

int __mod(int a, int b) {
    int neg = 0;
    if (a < 0) { a = -a; neg = 1; }
    if (b < 0) { b = -b; }
    // -INT_MIN overflows back to INT_MIN, leaving cur >= b true for
    // every cur — an infinite loop (found by the variance fuzzer);
    // saturate to INT_MAX so the halving loop always terminates
    if (a < 0) { a = 2147483647; }
    if (b < 0) { b = 2147483647; }
    if (b == 0) { return 0; }
    int cur = b;
    while (cur + cur <= a && cur + cur > 0) {
        cur = cur + cur;
    }
    while (cur >= b) {
        if (a >= cur) {
            a = a - cur;
        }
        cur = cur >> 1;
    }
    if (neg) { return -a; }
    return a;
}

// ------------------------------------------------------- variable shifts
int __shl(int x, int n) {
    while (n > 0) {
        x = x + x;
        n = n - 1;
    }
    return x;
}

int __shr(int x, int n) {
    while (n > 0) {
        x = x >> 1;
        n = n - 1;
    }
    return x;
}

// ------------------------------------------------------------- printing
int print_int(int n) {
    if (n < 0) {
        putc('-');
        n = -n;
    }
    if (n >= 10) {
        print_int(__div(n, 10));
    }
    putc('0' + __mod(n, 10));
    return 0;
}

int print_hex(int n) {
    int shift = 28;
    while (shift >= 0) {
        int digit = __shr(n, shift) & 15;
        if (digit < 10) {
            putc('0' + digit);
        } else {
            putc('a' + digit - 10);
        }
        shift = shift - 4;
    }
    return 0;
}

int print_nl(int unused) {
    putc(10);
    return 0;
}

// ----------------------------------------------------- word-array helpers
int puts_w(int s) {
    int i = 0;
    int c = mem_r(s);
    while (c != 0) {
        putc(c);
        i = i + 1;
        c = mem_r(s + 4 * i);
    }
    return i;
}

int mem_r(int addr) {
    return __mem_load(addr);
}

int memcpy_w(int dst, int src, int n) {
    int i = 0;
    while (i < n) {
        __mem_store(dst + 4 * i, __mem_load(src + 4 * i));
        i = i + 1;
    }
    return dst;
}

int memset_w(int dst, int value, int n) {
    int i = 0;
    while (i < n) {
        __mem_store(dst + 4 * i, value);
        i = i + 1;
    }
    return dst;
}

// ------------------------------------------------------------- small math
int __abs(int x) {
    if (x < 0) { return -x; }
    return x;
}

int __min(int a, int b) {
    if (a < b) { return a; }
    return b;
}

int __max(int a, int b) {
    if (a > b) { return a; }
    return b;
}
"""
