"""Per-block list scheduler: overlap loads with computation.

The paper explains why graph-based PA wins big on rijndael: "in order to
speed up the execution, these instructions are then reordered and
rescheduled to overlap load operations with computation.  Hence, the
traditional suffix trie and fingerprint approaches cannot identify most
of the duplicates" (§4.2).  This pass reproduces that compiler behaviour:
within every basic block, instructions are re-emitted in a dependence-
respecting order that hoists loads and multiplies (long-latency on
embedded cores) and sinks stores.

Because the ready set depends on the *surrounding* instructions, the
same source-level template embedded in different contexts is emitted in
different interleavings — identical data-flow graphs, different
instruction sequences: exactly the blindness suffix tries suffer from.
"""

from __future__ import annotations

from typing import List

from repro.isa.assembler import AsmModule, Label
from repro.isa.instructions import Instruction

from repro.binary.program import BasicBlock
from repro.dfg.builder import build_dfg
from repro.dfg.linearize import block_constraint_edges, topological_order


def _rank(insn: Instruction) -> int:
    """Issue priority class; lower is scheduled earlier when ready."""
    if insn.is_load:
        return 0
    if insn.mnemonic in ("mul", "mla"):
        return 1
    if insn.is_store:
        return 3
    return 2


#: Latency model used for critical-path heights (cycles, embedded-ish).
_LATENCY = {"ldr": 3, "ldrb": 3, "mul": 4, "mla": 4, "str": 1, "strb": 1}


def _heights(n: int, edges, instructions) -> List[int]:
    """Longest latency-weighted path from each node to any block exit.

    This is the standard list-scheduling priority; crucially it depends
    on everything *downstream* of an instruction, so identical templates
    embedded in different blocks receive different priorities and hence
    different interleavings.
    """
    succ: List[List[int]] = [[] for __ in range(n)]
    for s, d in edges:
        succ[s].append(d)
    height = [0] * n
    for node in range(n - 1, -1, -1):
        latency = _LATENCY.get(instructions[node].mnemonic, 1)
        best = 0
        for nxt in succ[node]:
            best = max(best, height[nxt])
        height[node] = latency + best
    return height


#: Scheduling window: real embedded list schedulers reorder within a
#: bounded lookahead, not across hundreds of instructions.  Windowing
#: also keeps huge unrolled blocks (rijndael's MixColumns) from being
#: shuffled into a single entangled region.
WINDOW = 16


def schedule_block(instructions: List[Instruction],
                   window: int = WINDOW) -> List[Instruction]:
    """Reorder one block's instructions (dependence-preserving).

    Ready instructions issue by (class rank, deepest critical path
    first, original order); long load/multiply chains are started early,
    overlapping them with independent computation.  Blocks longer than
    the lookahead *window* are scheduled window by window — keeping
    every cross-window pair in program order trivially preserves all
    dependences between windows.  The window size is a compilation-
    variance knob: different lookaheads produce different (equally
    valid) interleavings of the same data-flow graph.
    """
    if window < 3:
        return list(instructions)
    if len(instructions) < 3:
        return list(instructions)
    if len(instructions) > window:
        out: List[Instruction] = []
        for start in range(0, len(instructions), window):
            out.extend(_schedule_window(instructions[start:start + window]))
        return out
    return _schedule_window(list(instructions))


def _schedule_window(instructions: List[Instruction]) -> List[Instruction]:
    if len(instructions) < 3:
        return list(instructions)
    dfg = build_dfg(BasicBlock(instructions=list(instructions)))
    edges = block_constraint_edges(dfg)
    height = _heights(len(instructions), edges, instructions)
    priority = [
        (_rank(insn), -height[index], index)
        for index, insn in enumerate(instructions)
    ]
    order = topological_order(len(instructions), edges, priority)
    return [instructions[i] for i in order]


def schedule_module(asm: AsmModule, window: int = WINDOW) -> AsmModule:
    """Schedule every basic block of an assembly module.

    Blocks are delimited by labels and control transfers, matching the
    splitting the rewriting framework performs later.
    """
    out = AsmModule(globals=set(asm.globals), data=list(asm.data))
    pending: List[Instruction] = []

    def flush() -> None:
        if pending:
            out.text.extend(schedule_block(pending, window=window))
            pending.clear()

    for item in asm.text:
        if isinstance(item, Label):
            flush()
            out.text.append(item)
            continue
        insn: Instruction = item
        ends_block = insn.is_terminator or (
            insn.is_branch and not insn.is_call
        )
        pending.append(insn)
        if ends_block:
            flush()
    flush()
    return out
