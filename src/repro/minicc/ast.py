"""Abstract syntax tree of the mini-C language.

Everything is a 32-bit ``int``; arrays are global, one-dimensional and
of ``int``.  The node set is intentionally small — enough to express the
MiBench-style workloads — while exercising every code-generation
template that produces abstraction opportunities (array indexing, calls,
division, short-circuit logic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
@dataclass
class Num:
    value: int


@dataclass
class Var:
    name: str


@dataclass
class Str:
    """A string literal; evaluates to the address of an interned,
    zero-terminated word array."""

    value: str


@dataclass
class Index:
    """``array[index]``"""

    name: str
    index: "Expr"


@dataclass
class BinOp:
    op: str
    left: "Expr"
    right: "Expr"


@dataclass
class UnOp:
    op: str  # "-", "!", "~"
    operand: "Expr"


@dataclass
class Call:
    name: str
    args: List["Expr"] = field(default_factory=list)


Expr = Union[Num, Var, Str, Index, BinOp, UnOp, Call]


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------
@dataclass
class VarDecl:
    """``int x;`` or ``int x = expr;`` (local scalars only)."""

    name: str
    init: Optional[Expr] = None


@dataclass
class Assign:
    """``target = value;`` where target is a Var or an Index."""

    target: Union[Var, Index]
    value: Expr


@dataclass
class ExprStmt:
    expr: Expr


@dataclass
class Return:
    value: Optional[Expr] = None


@dataclass
class If:
    cond: Expr
    then_body: List["Stmt"] = field(default_factory=list)
    else_body: List["Stmt"] = field(default_factory=list)


@dataclass
class While:
    cond: Expr
    body: List["Stmt"] = field(default_factory=list)


@dataclass
class For:
    init: Optional["Stmt"]
    cond: Optional[Expr]
    step: Optional["Stmt"]
    body: List["Stmt"] = field(default_factory=list)


@dataclass
class Break:
    pass


@dataclass
class Continue:
    pass


Stmt = Union[VarDecl, Assign, ExprStmt, Return, If, While, For, Break,
             Continue]


# ----------------------------------------------------------------------
# top level
# ----------------------------------------------------------------------
@dataclass
class GlobalVar:
    """``int g;`` / ``int g = 7;`` / ``int tab[8];`` /
    ``int tab[4] = {1, 2, 3, 4};``"""

    name: str
    size: int = 1            #: number of words; 1 for a scalar
    is_array: bool = False
    init: Tuple[int, ...] = ()


@dataclass
class FuncDecl:
    name: str
    params: List[str] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Program:
    globals: List[GlobalVar] = field(default_factory=list)
    functions: List[FuncDecl] = field(default_factory=list)
