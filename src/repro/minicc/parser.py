"""Recursive-descent parser for the mini-C language.

Grammar (precedence climbing for expressions, C-like levels)::

    program   := (global | function)*
    global    := "int" ident ("[" num "]")? ("=" init)? ";"
    function  := "int" ident "(" params? ")" block
    block     := "{" stmt* "}"
    stmt      := decl | assign | if | while | for | return
               | break | continue | exprstmt | block
    expr      := logic-or with usual C precedence
"""

from __future__ import annotations

from typing import List

from repro.minicc import ast
from repro.minicc.lexer import Token, tokenize


class ParseError(ValueError):
    """Raised on syntactically invalid input."""

    def __init__(self, message: str, token: Token):
        super().__init__(f"line {token.line}: {message}")
        self.token = token


#: Binary operator precedence, higher binds tighter.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        self.pos += 1
        return token

    def expect_op(self, op: str) -> Token:
        if not self.current.is_op(op):
            raise ParseError(f"expected {op!r}, got {self.current.value!r}",
                             self.current)
        return self.advance()

    def expect_keyword(self, kw: str) -> Token:
        if not self.current.is_keyword(kw):
            raise ParseError(f"expected {kw!r}", self.current)
        return self.advance()

    def expect_ident(self) -> str:
        if self.current.kind != "ident":
            raise ParseError(
                f"expected identifier, got {self.current.value!r}",
                self.current,
            )
        return self.advance().value

    def expect_num(self) -> int:
        negative = False
        if self.current.is_op("-"):
            self.advance()
            negative = True
        if self.current.kind != "num":
            raise ParseError("expected number", self.current)
        value = self.advance().value
        return -value if negative else value

    # ------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while self.current.kind != "eof":
            self.expect_keyword("int")
            name = self.expect_ident()
            if self.current.is_op("("):
                program.functions.append(self._function(name))
            else:
                program.globals.append(self._global(name))
        return program

    def _global(self, name: str) -> ast.GlobalVar:
        size, is_array = 1, False
        if self.current.is_op("["):
            self.advance()
            size = self.expect_num()
            if size <= 0:
                raise ParseError("array size must be positive", self.current)
            self.expect_op("]")
            is_array = True
        init: tuple = ()
        if self.current.is_op("="):
            self.advance()
            if is_array:
                self.expect_op("{")
                values: List[int] = []
                while not self.current.is_op("}"):
                    values.append(self.expect_num())
                    if self.current.is_op(","):
                        self.advance()
                self.expect_op("}")
                if len(values) > size:
                    raise ParseError("too many initializers", self.current)
                init = tuple(values)
            else:
                init = (self.expect_num(),)
        self.expect_op(";")
        return ast.GlobalVar(name=name, size=size, is_array=is_array,
                             init=init)

    def _function(self, name: str) -> ast.FuncDecl:
        self.expect_op("(")
        params: List[str] = []
        if not self.current.is_op(")"):
            while True:
                self.expect_keyword("int")
                params.append(self.expect_ident())
                if self.current.is_op(","):
                    self.advance()
                    continue
                break
        self.expect_op(")")
        body = self._block()
        return ast.FuncDecl(name=name, params=params, body=body)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _block(self) -> List[ast.Stmt]:
        self.expect_op("{")
        stmts: List[ast.Stmt] = []
        while not self.current.is_op("}"):
            stmts.append(self._statement())
        self.expect_op("}")
        return stmts

    def _statement(self) -> ast.Stmt:
        token = self.current
        if token.is_keyword("int"):
            self.advance()
            name = self.expect_ident()
            init = None
            if self.current.is_op("="):
                self.advance()
                init = self._expression()
            self.expect_op(";")
            return ast.VarDecl(name=name, init=init)
        if token.is_keyword("if"):
            return self._if()
        if token.is_keyword("while"):
            self.advance()
            self.expect_op("(")
            cond = self._expression()
            self.expect_op(")")
            return ast.While(cond=cond, body=self._body_or_stmt())
        if token.is_keyword("for"):
            return self._for()
        if token.is_keyword("return"):
            self.advance()
            value = None
            if not self.current.is_op(";"):
                value = self._expression()
            self.expect_op(";")
            return ast.Return(value=value)
        if token.is_keyword("break"):
            self.advance()
            self.expect_op(";")
            return ast.Break()
        if token.is_keyword("continue"):
            self.advance()
            self.expect_op(";")
            return ast.Continue()
        return self._simple_statement(expect_semicolon=True)

    def _body_or_stmt(self) -> List[ast.Stmt]:
        if self.current.is_op("{"):
            return self._block()
        return [self._statement()]

    def _if(self) -> ast.If:
        self.expect_keyword("if")
        self.expect_op("(")
        cond = self._expression()
        self.expect_op(")")
        then_body = self._body_or_stmt()
        else_body: List[ast.Stmt] = []
        if self.current.is_keyword("else"):
            self.advance()
            if self.current.is_keyword("if"):
                else_body = [self._if()]
            else:
                else_body = self._body_or_stmt()
        return ast.If(cond=cond, then_body=then_body, else_body=else_body)

    def _for(self) -> ast.For:
        self.expect_keyword("for")
        self.expect_op("(")
        init = None
        if not self.current.is_op(";"):
            init = self._simple_statement(expect_semicolon=False)
        self.expect_op(";")
        cond = None
        if not self.current.is_op(";"):
            cond = self._expression()
        self.expect_op(";")
        step = None
        if not self.current.is_op(")"):
            step = self._simple_statement(expect_semicolon=False)
        self.expect_op(")")
        return ast.For(init=init, cond=cond, step=step,
                       body=self._body_or_stmt())

    def _simple_statement(self, expect_semicolon: bool) -> ast.Stmt:
        """An assignment or a bare expression (no control flow)."""
        expr = self._expression()
        if self.current.is_op("="):
            if not isinstance(expr, (ast.Var, ast.Index)):
                raise ParseError("bad assignment target", self.current)
            self.advance()
            value = self._expression()
            stmt: ast.Stmt = ast.Assign(target=expr, value=value)
        else:
            stmt = ast.ExprStmt(expr=expr)
        if expect_semicolon:
            self.expect_op(";")
        return stmt

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _expression(self, min_precedence: int = 1) -> ast.Expr:
        left = self._unary()
        while (
            self.current.kind == "op"
            and self.current.value in _PRECEDENCE
            and _PRECEDENCE[self.current.value] >= min_precedence
        ):
            op = self.advance().value
            right = self._expression(_PRECEDENCE[op] + 1)
            left = ast.BinOp(op=op, left=left, right=right)
        return left

    def _unary(self) -> ast.Expr:
        if self.current.is_op("-"):
            self.advance()
            return ast.UnOp(op="-", operand=self._unary())
        if self.current.is_op("!"):
            self.advance()
            return ast.UnOp(op="!", operand=self._unary())
        if self.current.is_op("~"):
            self.advance()
            return ast.UnOp(op="~", operand=self._unary())
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "num":
            self.advance()
            return ast.Num(value=token.value)
        if token.kind == "string":
            self.advance()
            return ast.Str(value=token.value)
        if token.is_op("("):
            self.advance()
            expr = self._expression()
            self.expect_op(")")
            return expr
        if token.kind == "ident":
            name = self.advance().value
            if self.current.is_op("("):
                self.advance()
                args: List[ast.Expr] = []
                if not self.current.is_op(")"):
                    while True:
                        args.append(self._expression())
                        if self.current.is_op(","):
                            self.advance()
                            continue
                        break
                self.expect_op(")")
                return ast.Call(name=name, args=args)
            if self.current.is_op("["):
                self.advance()
                index = self._expression()
                self.expect_op("]")
                return ast.Index(name=name, index=index)
            return ast.Var(name=name)
        raise ParseError(f"unexpected token {token.value!r}", token)


def parse(source: str) -> ast.Program:
    """Parse mini-C *source* into its AST."""
    return _Parser(tokenize(source)).parse_program()
