"""Peephole cleanup: a compilation-variance knob, off by default.

Real toolchains differ most visibly in whether they run late peephole
cleanups; PA results depend on it because removing glue instructions
merges basic blocks and changes which fragments repeat.  This pass
implements the classic behaviour-preserving subset:

* ``b .L`` where ``.L`` is the very next label (only labels between the
  branch and its target) — the jump-to-next the structured code
  generator emits for every ``return`` at the end of a body and for
  empty else-arms.  Elision merges the two blocks, so downstream block
  splitting (and hence mining) sees a different program shape.
* ``mov rX, rX`` without flag setting — a true no-op.
* ``add/sub/orr/eor/bic rX, rX, #0`` without flag setting — arithmetic
  identities.

Only compiler-local labels (leading ``.``) are candidates for
branch elision: a branch to a named function must survive, because
eliding it would make the previous function fall through into the next
one and change the function splitting of
:func:`repro.binary.blocks.module_from_asm`.
"""

from __future__ import annotations

from typing import List

from repro.isa.assembler import AsmModule, Item, Label
from repro.isa.instructions import Instruction
from repro.isa.operands import Imm, LabelRef, Reg

#: Identity-under-zero data-processing mnemonics.
_ZERO_IDENTITY = frozenset({"add", "sub", "orr", "eor", "bic"})


def _is_noop(insn: Instruction) -> bool:
    """True for instructions with no architectural effect."""
    if insn.set_flags:
        return False
    ops = insn.operands
    if (insn.mnemonic == "mov" and len(ops) == 2
            and isinstance(ops[0], Reg) and isinstance(ops[1], Reg)
            and ops[0].num == ops[1].num):
        return True
    if (insn.mnemonic in _ZERO_IDENTITY and len(ops) == 3
            and isinstance(ops[0], Reg) and isinstance(ops[1], Reg)
            and ops[0].num == ops[1].num
            and isinstance(ops[2], Imm) and ops[2].value == 0):
        return True
    return False


def _is_branch_to_next(items: List[Item], index: int) -> bool:
    """True when ``items[index]`` branches to an immediately following
    label (with only labels in between) — taken or not, control ends up
    at the same instruction, so the branch is dead either way."""
    insn = items[index]
    if insn.mnemonic != "b":
        return False
    target = insn.operands[0]
    if not isinstance(target, LabelRef) or not target.name.startswith("."):
        return False
    for later in items[index + 1:]:
        if isinstance(later, Label):
            if later.name == target.name:
                return True
            continue
        return False
    return False


def peephole_items(items: List[Item]) -> List[Item]:
    """One fixpoint of the peephole rules over a text-item list."""
    current = list(items)
    while True:
        out: List[Item] = []
        changed = False
        for i, item in enumerate(current):
            if isinstance(item, Instruction):
                if _is_noop(item):
                    changed = True
                    continue
                if _is_branch_to_next(current, i):
                    changed = True
                    continue
            out.append(item)
        if not changed:
            return out
        current = out


def peephole_module(asm: AsmModule) -> AsmModule:
    """Apply the peephole rules to every text item of *asm*."""
    return AsmModule(
        text=peephole_items(asm.text),
        data=list(asm.data),
        globals=set(asm.globals),
    )
