"""Template-driven code generation: AST -> ARM-subset assembly items.

The generator is intentionally *naive* in the way mass-market compilers
at ``-Os`` are systematic: every AST shape expands into a fixed
instruction template (global access always materializes the address from
the literal pool, array indexing always computes ``base + index << 2``,
comparisons always produce the ``cmp``/``mov``/``mov<cc>`` triple, calls
always marshal through r0-r3).  Systematic templates are precisely the
duplication source the paper targets (§1: "space-wasting code
duplications ... mainly caused by the compiler's code generation
templates").

Conventions
-----------
* args in r0-r3, result in r0, r0-r3/r12 caller-saved scratch,
* the first seven locals (params first) live in r4-r10, the rest in
  stack slots; every function saves its used callee-saved registers and
  ``lr`` with ``push`` and returns with ``pop {..., pc}``,
* ``>>`` is a *logical* shift (values are 32-bit words), comparisons are
  signed; division, modulo and variable-amount shifts call runtime
  helpers (:mod:`repro.minicc.runtime`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.isa.assembler import AsmModule, DataSpace, DataWord, Label
from repro.isa.encoder import encodable_imm
from repro.isa.instructions import Instruction
from repro.isa.operands import Imm, LabelRef, Mem, Reg, RegList, ShiftedReg
from repro.isa.registers import LR, PC, SP

from repro.minicc import ast
from repro.minicc.sema import FuncInfo, SemaInfo


class CodegenError(ValueError):
    """Raised when a construct cannot be compiled."""


#: Caller-saved scratch registers used for expression evaluation.
SCRATCH = (0, 1, 2, 3, 12)
#: Callee-saved registers that home the first locals.
REG_HOMES = (4, 5, 6, 7, 8, 9, 10)

#: Comparison -> condition code (signed), and its negation.
_CC = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}
_NEG = {"eq": "ne", "ne": "eq", "lt": "ge", "le": "gt", "gt": "le", "ge": "lt"}

_DATAPROC = {"+": "add", "-": "sub", "&": "and", "|": "orr", "^": "eor"}


# ----------------------------------------------------------------------
# lowering: hoist calls / divisions / strings out of expressions
# ----------------------------------------------------------------------
@dataclass
class _LIf:
    cond_pre: List[ast.Stmt]
    cond: ast.Expr
    then_body: list
    else_body: list


@dataclass
class _LWhile:
    cond_pre: List[ast.Stmt]
    cond: ast.Expr
    body: list


@dataclass
class _LFor:
    init: list
    cond_pre: List[ast.Stmt]
    cond: Optional[ast.Expr]
    step: list
    body: list


class _Lowerer:
    """Rewrites the AST so that every call is a statement-level
    ``tmp = f(args)`` with call-free arguments."""

    def __init__(self, info: SemaInfo, func_info: FuncInfo,
                 strings: Dict[str, str]):
        self.info = info
        self.func_info = func_info
        self.strings = strings
        self._temp_count = 0

    def _new_temp(self) -> str:
        name = f"$t{self._temp_count}"
        self._temp_count += 1
        self.func_info.locals.append(name)
        return name

    def lower_body(self, body: Sequence[ast.Stmt]) -> list:
        out: list = []
        for stmt in body:
            out.extend(self.lower_stmt(stmt))
        return out

    def lower_stmt(self, stmt: ast.Stmt) -> list:
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is None:
                return [stmt]
            pre, expr = self.lower_expr(stmt.init)
            return pre + [ast.VarDecl(name=stmt.name, init=expr)]
        if isinstance(stmt, ast.Assign):
            pre, value = self.lower_expr(stmt.value)
            target = stmt.target
            if isinstance(target, ast.Index):
                ipre, index = self.lower_expr(target.index)
                pre = pre + ipre
                target = ast.Index(name=target.name, index=index)
            return pre + [ast.Assign(target=target, value=value)]
        if isinstance(stmt, ast.ExprStmt):
            if isinstance(stmt.expr, ast.Call):
                pre, call = self._lower_call(stmt.expr, want_result=False)
                return pre + ([ast.ExprStmt(expr=call)] if call else [])
            pre, expr = self.lower_expr(stmt.expr)
            return pre  # a pure expression statement has no effect
        if isinstance(stmt, ast.Return):
            if stmt.value is None:
                return [stmt]
            pre, expr = self.lower_expr(stmt.value)
            return pre + [ast.Return(value=expr)]
        if isinstance(stmt, ast.If):
            pre, cond = self.lower_expr(stmt.cond)
            return [
                _LIf(
                    cond_pre=pre,
                    cond=cond,
                    then_body=self.lower_body(stmt.then_body),
                    else_body=self.lower_body(stmt.else_body),
                )
            ]
        if isinstance(stmt, ast.While):
            pre, cond = self.lower_expr(stmt.cond)
            return [_LWhile(cond_pre=pre, cond=cond,
                            body=self.lower_body(stmt.body))]
        if isinstance(stmt, ast.For):
            init = self.lower_stmt(stmt.init) if stmt.init else []
            pre, cond = ([], None)
            if stmt.cond is not None:
                pre, cond = self.lower_expr(stmt.cond)
            step = self.lower_stmt(stmt.step) if stmt.step else []
            return [
                _LFor(init=init, cond_pre=pre, cond=cond, step=step,
                      body=self.lower_body(stmt.body))
            ]
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return [stmt]
        raise CodegenError(f"cannot lower statement {stmt!r}")

    # ------------------------------------------------------------------
    def lower_expr(self, expr: ast.Expr) -> Tuple[list, ast.Expr]:
        if isinstance(expr, ast.Num):
            return [], expr
        if isinstance(expr, ast.Var):
            return [], expr
        if isinstance(expr, ast.Str):
            return [], ast.Var(name=self._intern_string(expr.value))
        if isinstance(expr, ast.Index):
            pre, index = self.lower_expr(expr.index)
            return pre, ast.Index(name=expr.name, index=index)
        if isinstance(expr, ast.UnOp):
            pre, operand = self.lower_expr(expr.operand)
            return pre, ast.UnOp(op=expr.op, operand=operand)
        if isinstance(expr, ast.BinOp):
            return self._lower_binop(expr)
        if isinstance(expr, ast.Call):
            pre, call = self._lower_call(expr, want_result=True)
            temp = self._new_temp()
            pre.append(ast.Assign(target=ast.Var(name=temp), value=call))
            return pre, ast.Var(name=temp)
        raise CodegenError(f"cannot lower expression {expr!r}")

    def _lower_binop(self, expr: ast.BinOp) -> Tuple[list, ast.Expr]:
        if expr.op in ("/", "%"):
            helper = "__div" if expr.op == "/" else "__mod"
            return self.lower_expr(
                ast.Call(name=helper, args=[expr.left, expr.right])
            )
        if expr.op in ("<<", ">>") and not isinstance(expr.right, ast.Num):
            helper = "__shl" if expr.op == "<<" else "__shr"
            return self.lower_expr(
                ast.Call(name=helper, args=[expr.left, expr.right])
            )
        lpre, left = self.lower_expr(expr.left)
        rpre, right = self.lower_expr(expr.right)
        if expr.op in ("&&", "||") and (lpre or rpre):
            raise CodegenError(
                "calls/divisions inside && or || operands are unsupported; "
                "restructure with nested if statements"
            )
        return lpre + rpre, ast.BinOp(op=expr.op, left=left, right=right)

    def _lower_call(self, call: ast.Call, want_result: bool):
        pre: list = []
        args: List[ast.Expr] = []
        for arg in call.args:
            apre, lowered = self.lower_expr(arg)
            pre.extend(apre)
            args.append(lowered)
        return pre, ast.Call(name=call.name, args=args)

    def _intern_string(self, text: str) -> str:
        if text not in self.strings:
            self.strings[text] = f"str_lit_{len(self.strings)}"
        return self.strings[text]


# ----------------------------------------------------------------------
# per-function code generation
# ----------------------------------------------------------------------
class _FuncCodegen:
    def __init__(self, info: SemaInfo, func_info: FuncInfo,
                 strings: Dict[str, str],
                 regalloc_seed: Optional[int] = None):
        self.info = info
        self.func_info = func_info
        self.func = func_info.decl
        self.strings = strings
        self.regalloc_seed = regalloc_seed
        self.items: List[Union[Label, Instruction]] = []
        self._label_count = 0
        self._loop_stack: List[Tuple[str, str]] = []  # (continue, break)
        self._free: List[int] = list(SCRATCH)
        # homes are assigned after lowering (lowering adds temps)
        self.reg_home: Dict[str, int] = {}
        self.slot_home: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------
    def emit(self, mnemonic: str, *operands, cond: str = "al",
             set_flags: bool = False) -> None:
        self.items.append(
            Instruction(mnemonic, tuple(operands), cond=cond,
                        set_flags=set_flags)
        )

    def label(self, name: str) -> None:
        self.items.append(Label(name))

    def new_label(self, hint: str) -> str:
        self._label_count += 1
        return f".L_{self.func.name}_{hint}{self._label_count}"

    def alloc(self) -> int:
        if not self._free:
            raise CodegenError(
                f"{self.func.name}: expression too deep (out of scratch "
                "registers); split it with local variables"
            )
        return self._free.pop(0)

    def free(self, reg: int, owned: bool) -> None:
        if owned:
            self._free.insert(0, reg)
            self._free.sort()

    # ------------------------------------------------------------------
    # frame
    # ------------------------------------------------------------------
    def assign_homes(self) -> None:
        # The same name declared in disjoint sibling scopes shares one
        # home (scopes cannot overlap, so sharing is safe); deduplicate
        # first so slot offsets stay within the allocated frame.
        names: List[str] = []
        for name in self.func_info.locals:
            if name not in names:
                names.append(name)
        homes = list(REG_HOMES)
        if self.regalloc_seed is not None:
            # Register-assignment variance knob: permute which callee-
            # saved register homes which local.  Every permutation is a
            # valid allocation (the saved-register set adapts), but the
            # emitted register names — and hence exact fragment matches —
            # differ between seeds.
            random.Random(
                f"regalloc:{self.regalloc_seed}:{self.func.name}"
            ).shuffle(homes)
        for i, name in enumerate(names):
            if i < len(homes):
                self.reg_home[name] = homes[i]
            else:
                self.slot_home[name] = 4 * (i - len(homes))

    @property
    def frame_bytes(self) -> int:
        return 4 * len(self.slot_home)

    def generate(self) -> List[Union[Label, Instruction]]:
        lowerer = _Lowerer(self.info, self.func_info, self.strings)
        body = lowerer.lower_body(self.func.body)
        self.assign_homes()

        self.label(self.func.name)
        saved = sorted(set(self.reg_home.values())) + [LR]
        self.emit("push", RegList(tuple(saved)))
        if self.frame_bytes:
            self._adjust_sp("sub", self.frame_bytes)
        for i, param in enumerate(self.func.params):
            self._store_local(param, i)

        self._return_label = self.new_label("ret")
        self.gen_body(body)
        falls_off = not (self.func.body and
                         isinstance(self.func.body[-1], ast.Return))
        if falls_off:
            self.emit("mov", Reg(0), Imm(0))
        self.label(self._return_label)
        if self.frame_bytes:
            self._adjust_sp("add", self.frame_bytes)
        self.emit("pop", RegList(tuple(sorted(set(self.reg_home.values()))
                                       + [PC])))
        return self.items

    def _adjust_sp(self, mnemonic: str, amount: int) -> None:
        """Adjust sp by *amount* in rotated-immediate-encodable steps.

        Any multiple of 4 up to 1020 encodes as a rotated 8-bit
        immediate, so chunking keeps arbitrarily large frames (many
        spill slots, e.g. hundreds of lowering temps) encodable.
        """
        while amount > 0:
            step = min(amount, 1020)
            self.emit(mnemonic, Reg(SP), Reg(SP), Imm(step))
            amount -= step

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def gen_body(self, body: Sequence) -> None:
        for stmt in body:
            self.gen_stmt(stmt)

    def gen_stmt(self, stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                self._gen_assign_var(stmt.name, stmt.init)
        elif isinstance(stmt, ast.Assign):
            if isinstance(stmt.target, ast.Var):
                self._gen_assign_var(stmt.target.name, stmt.value)
            else:
                self._gen_assign_index(stmt.target, stmt.value)
        elif isinstance(stmt, ast.ExprStmt):
            if isinstance(stmt.expr, ast.Call):
                self._gen_call(stmt.expr)
            # pure expressions were dropped by lowering
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                reg, owned = self.eval_expr(stmt.value)
                if reg != 0:
                    self.emit("mov", Reg(0), Reg(reg))
                self.free(reg, owned)
            else:
                self.emit("mov", Reg(0), Imm(0))
            self.emit("b", LabelRef(self._return_label))
        elif isinstance(stmt, _LIf):
            self._gen_if(stmt)
        elif isinstance(stmt, _LWhile):
            self._gen_while(stmt)
        elif isinstance(stmt, _LFor):
            self._gen_for(stmt)
        elif isinstance(stmt, ast.Break):
            self.emit("b", LabelRef(self._loop_stack[-1][1]))
        elif isinstance(stmt, ast.Continue):
            self.emit("b", LabelRef(self._loop_stack[-1][0]))
        else:
            raise CodegenError(f"cannot generate {stmt!r}")

    def _gen_if(self, stmt: _LIf) -> None:
        self.gen_body(stmt.cond_pre)
        end_label = self.new_label("endif")
        else_label = self.new_label("else") if stmt.else_body else end_label
        self.branch_if_false(stmt.cond, else_label)
        self.gen_body(stmt.then_body)
        if stmt.else_body:
            self.emit("b", LabelRef(end_label))
            self.label(else_label)
            self.gen_body(stmt.else_body)
        self.label(end_label)

    def _gen_while(self, stmt: _LWhile) -> None:
        cond_label = self.new_label("while")
        end_label = self.new_label("endwhile")
        self.label(cond_label)
        self.gen_body(stmt.cond_pre)
        self.branch_if_false(stmt.cond, end_label)
        self._loop_stack.append((cond_label, end_label))
        self.gen_body(stmt.body)
        self._loop_stack.pop()
        self.emit("b", LabelRef(cond_label))
        self.label(end_label)

    def _gen_for(self, stmt: _LFor) -> None:
        self.gen_body(stmt.init)
        cond_label = self.new_label("for")
        step_label = self.new_label("forstep")
        end_label = self.new_label("endfor")
        self.label(cond_label)
        if stmt.cond is not None:
            self.gen_body(stmt.cond_pre)
            self.branch_if_false(stmt.cond, end_label)
        self._loop_stack.append((step_label, end_label))
        self.gen_body(stmt.body)
        self._loop_stack.pop()
        self.label(step_label)
        self.gen_body(stmt.step)
        self.emit("b", LabelRef(cond_label))
        self.label(end_label)

    # ------------------------------------------------------------------
    # assignment
    # ------------------------------------------------------------------
    def _gen_assign_var(self, name: str, value: ast.Expr) -> None:
        if isinstance(value, ast.Call):
            self._gen_call(value)
            self._store_local_or_global(name, 0)
            return
        reg, owned = self.eval_expr(value)
        self._store_local_or_global(name, reg)
        self.free(reg, owned)

    def _store_local_or_global(self, name: str, reg: int) -> None:
        if name in self.reg_home or name in self.slot_home:
            self._store_local(name, reg)
            return
        # global scalar
        addr = self.alloc()
        self.emit("ldr", Reg(addr), LabelRef(name))
        self.emit("str", Reg(reg), Mem(addr))
        self.free(addr, True)

    def _store_local(self, name: str, reg: int) -> None:
        if name in self.reg_home:
            home = self.reg_home[name]
            if home != reg:
                self.emit("mov", Reg(home), Reg(reg))
        else:
            self.emit("str", Reg(reg), Mem(SP, self.slot_home[name]))

    def _gen_assign_index(self, target: ast.Index, value: ast.Expr) -> None:
        if isinstance(value, ast.Call):
            self._gen_call(value)
            # Protect r0 from the address computation; alloc may hand
            # back r0 itself, in which case the value is already safe.
            temp = self.alloc()
            if temp != 0:
                self.emit("mov", Reg(temp), Reg(0))
            value_reg, value_owned = temp, True
        else:
            value_reg, value_owned = self.eval_expr(value)
        addr, addr_owned = self._array_address(target)
        self.emit("str", Reg(value_reg), Mem(addr))
        self.free(addr, addr_owned)
        self.free(value_reg, value_owned)

    def _array_address(self, target: ast.Index) -> Tuple[int, bool]:
        addr = self.alloc()
        self.emit("ldr", Reg(addr), LabelRef(target.name))
        if isinstance(target.index, ast.Num):
            offset = 4 * target.index.value
            if offset:
                if not encodable_imm(offset):
                    raise CodegenError("array offset too large")
                self.emit("add", Reg(addr), Reg(addr), Imm(offset))
        else:
            idx, idx_owned = self.eval_expr(target.index)
            self.emit("add", Reg(addr), Reg(addr),
                      ShiftedReg(idx, "lsl", 2))
            self.free(idx, idx_owned)
        return addr, True

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------
    def _gen_call(self, call: ast.Call) -> None:
        """Emit a call; the result (if any) lands in r0."""
        pinned: List[int] = []
        for i, arg in enumerate(call.args):
            reg, owned = self.eval_expr(arg)
            if reg != i:
                if i in self._free:
                    self._free.remove(i)
                else:
                    raise CodegenError(
                        f"{self.func.name}: argument register r{i} "
                        "unavailable (expression too entangled)"
                    )
                self.emit("mov", Reg(i), Reg(reg))
                self.free(reg, owned)
            pinned.append(i)
        if call.name == "putc":
            self.emit("swi", Imm(1))
        elif call.name == "exit":
            self.emit("swi", Imm(0))
        elif call.name == "__mem_load":
            self.emit("ldr", Reg(0), Mem(0))
        elif call.name == "__mem_store":
            self.emit("str", Reg(1), Mem(0))
        else:
            self.emit("bl", LabelRef(call.name))
        for reg in pinned:
            if reg not in self._free:
                self._free.append(reg)
        self._free.sort()

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def eval_expr(self, expr: ast.Expr) -> Tuple[int, bool]:
        """Evaluate into a register; returns (reg, owned)."""
        if isinstance(expr, ast.Num):
            return self._load_constant(expr.value)
        if isinstance(expr, ast.Var):
            return self._eval_var(expr.name)
        if isinstance(expr, ast.Index):
            addr, owned = self._array_address(expr)
            dest = addr if owned else self.alloc()
            self.emit("ldr", Reg(dest), Mem(addr))
            return dest, True
        if isinstance(expr, ast.UnOp):
            return self._eval_unop(expr)
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr)
        raise CodegenError(f"cannot evaluate {expr!r}")

    def _load_constant(self, value: int) -> Tuple[int, bool]:
        dest = self.alloc()
        masked = value & 0xFFFFFFFF
        if encodable_imm(masked):
            self.emit("mov", Reg(dest), Imm(masked))
        elif encodable_imm(~masked & 0xFFFFFFFF):
            self.emit("mvn", Reg(dest), Imm(~masked & 0xFFFFFFFF))
        else:
            self.emit("ldr", Reg(dest), LabelRef(str(masked)))
        return dest, True

    def _eval_var(self, name: str) -> Tuple[int, bool]:
        if name in self.reg_home:
            return self.reg_home[name], False
        if name in self.slot_home:
            dest = self.alloc()
            self.emit("ldr", Reg(dest), Mem(SP, self.slot_home[name]))
            return dest, True
        dest = self.alloc()
        self.emit("ldr", Reg(dest), LabelRef(name))
        decl = self.info.globals.get(name)
        if decl is not None and not decl.is_array:
            self.emit("ldr", Reg(dest), Mem(dest))
        # names not in the global table are compiler-interned labels
        # (string literals): they evaluate to their address, like arrays
        return dest, True

    def _eval_unop(self, expr: ast.UnOp) -> Tuple[int, bool]:
        if expr.op == "!":
            reg, owned = self.eval_expr(expr.operand)
            dest = reg if owned else self.alloc()
            self.emit("cmp", Reg(reg), Imm(0))
            self.emit("mov", Reg(dest), Imm(0))
            self.emit("mov", Reg(dest), Imm(1), cond="eq")
            return dest, True
        reg, owned = self.eval_expr(expr.operand)
        dest = reg if owned else self.alloc()
        if expr.op == "-":
            self.emit("rsb", Reg(dest), Reg(reg), Imm(0))
        elif expr.op == "~":
            self.emit("mvn", Reg(dest), Reg(reg))
        else:
            raise CodegenError(f"unknown unary {expr.op!r}")
        return dest, True

    def _flex_operand(self, expr: ast.Expr):
        """A flexible-operand shortcut for encodable constants."""
        if isinstance(expr, ast.Num) and encodable_imm(expr.value & 0xFFFFFFFF):
            if -0x80000000 <= expr.value < 0x100000000:
                return Imm(expr.value & 0xFFFFFFFF), None
        return None, None

    def _eval_binop(self, expr: ast.BinOp) -> Tuple[int, bool]:
        op = expr.op
        if op in _DATAPROC:
            left, lowned = self.eval_expr(expr.left)
            imm, __ = self._flex_operand(expr.right)
            if imm is not None:
                dest = left if lowned else self.alloc()
                self.emit(_DATAPROC[op], Reg(dest), Reg(left), imm)
                return dest, True
            right, rowned = self.eval_expr(expr.right)
            dest = left if lowned else (right if rowned else self.alloc())
            self.emit(_DATAPROC[op], Reg(dest), Reg(left), Reg(right))
            if rowned and dest != right:
                self.free(right, True)
            if lowned and dest != left:
                self.free(left, True)
            return dest, True
        if op == "*":
            left, lowned = self.eval_expr(expr.left)
            right, rowned = self.eval_expr(expr.right)
            # mul requires Rd != Rm on classic ARM; allocate fresh when
            # reusing would alias.
            dest = right if rowned else (left if lowned else self.alloc())
            if dest == left:
                self.emit("mul", Reg(dest), Reg(right), Reg(left))
            else:
                self.emit("mul", Reg(dest), Reg(left), Reg(right))
            if lowned and dest != left:
                self.free(left, True)
            if rowned and dest != right:
                self.free(right, True)
            return dest, True
        if op in ("<<", ">>"):
            if not isinstance(expr.right, ast.Num):
                raise CodegenError("variable shifts must be lowered first")
            amount = expr.right.value
            if not 0 <= amount < 32:
                raise CodegenError(f"shift amount out of range: {amount}")
            left, lowned = self.eval_expr(expr.left)
            dest = left if lowned else self.alloc()
            if amount == 0:
                if dest != left:
                    self.emit("mov", Reg(dest), Reg(left))
            else:
                shift_op = "lsl" if op == "<<" else "lsr"
                self.emit("mov", Reg(dest), ShiftedReg(left, shift_op, amount))
            return dest, True
        if op in _CC:
            return self._eval_comparison(expr)
        if op in ("&&", "||"):
            return self._eval_bool_value(expr)
        raise CodegenError(f"unknown operator {op!r}")

    def _eval_comparison(self, expr: ast.BinOp) -> Tuple[int, bool]:
        left, lowned = self.eval_expr(expr.left)
        imm, __ = self._flex_operand(expr.right)
        if imm is not None:
            self.emit("cmp", Reg(left), imm)
            right, rowned = None, False
        else:
            right, rowned = self.eval_expr(expr.right)
            self.emit("cmp", Reg(left), Reg(right))
        dest = left if lowned else (
            right if rowned else self.alloc()
        )
        self.emit("mov", Reg(dest), Imm(0))
        self.emit("mov", Reg(dest), Imm(1), cond=_CC[expr.op])
        if rowned and right is not None and dest != right:
            self.free(right, True)
        if lowned and dest != left:
            self.free(left, True)
        return dest, True

    def _eval_bool_value(self, expr: ast.BinOp) -> Tuple[int, bool]:
        dest = self.alloc()
        done = self.new_label("bool")
        self.emit("mov", Reg(dest), Imm(0))
        self.branch_if_false(expr, done)
        self.emit("mov", Reg(dest), Imm(1))
        self.label(done)
        return dest, True

    # ------------------------------------------------------------------
    # conditional branching
    # ------------------------------------------------------------------
    def branch_if_false(self, expr: ast.Expr, target: str) -> None:
        if isinstance(expr, ast.BinOp) and expr.op in _CC:
            self._compare(expr)
            self.emit("b", LabelRef(target), cond=_NEG[_CC[expr.op]])
            return
        if isinstance(expr, ast.BinOp) and expr.op == "&&":
            self.branch_if_false(expr.left, target)
            self.branch_if_false(expr.right, target)
            return
        if isinstance(expr, ast.BinOp) and expr.op == "||":
            true_label = self.new_label("or")
            self.branch_if_true(expr.left, true_label)
            self.branch_if_false(expr.right, target)
            self.label(true_label)
            return
        if isinstance(expr, ast.UnOp) and expr.op == "!":
            self.branch_if_true(expr.operand, target)
            return
        if isinstance(expr, ast.Num):
            if expr.value == 0:
                self.emit("b", LabelRef(target))
            return
        reg, owned = self.eval_expr(expr)
        self.emit("cmp", Reg(reg), Imm(0))
        self.free(reg, owned)
        self.emit("b", LabelRef(target), cond="eq")

    def branch_if_true(self, expr: ast.Expr, target: str) -> None:
        if isinstance(expr, ast.BinOp) and expr.op in _CC:
            self._compare(expr)
            self.emit("b", LabelRef(target), cond=_CC[expr.op])
            return
        if isinstance(expr, ast.BinOp) and expr.op == "||":
            self.branch_if_true(expr.left, target)
            self.branch_if_true(expr.right, target)
            return
        if isinstance(expr, ast.BinOp) and expr.op == "&&":
            false_label = self.new_label("and")
            self.branch_if_false(expr.left, false_label)
            self.branch_if_true(expr.right, target)
            self.label(false_label)
            return
        if isinstance(expr, ast.UnOp) and expr.op == "!":
            self.branch_if_false(expr.operand, target)
            return
        if isinstance(expr, ast.Num):
            if expr.value != 0:
                self.emit("b", LabelRef(target))
            return
        reg, owned = self.eval_expr(expr)
        self.emit("cmp", Reg(reg), Imm(0))
        self.free(reg, owned)
        self.emit("b", LabelRef(target), cond="ne")

    def _compare(self, expr: ast.BinOp) -> None:
        left, lowned = self.eval_expr(expr.left)
        imm, __ = self._flex_operand(expr.right)
        if imm is not None:
            self.emit("cmp", Reg(left), imm)
        else:
            right, rowned = self.eval_expr(expr.right)
            self.emit("cmp", Reg(left), Reg(right))
            self.free(right, rowned)
        self.free(left, lowned)


# ----------------------------------------------------------------------
# module-level generation
# ----------------------------------------------------------------------
def generate(program: ast.Program, info: SemaInfo,
             add_start: bool = True,
             layout_seed: Optional[int] = None,
             regalloc_seed: Optional[int] = None) -> AsmModule:
    """Generate an assembly module for an analyzed program.

    *layout_seed* permutes the order functions are emitted in (all
    control flow is symbolic, so any order is valid — but literal-pool
    distances, fall-through structure at the image level and the mining
    enumeration order all shift); *regalloc_seed* permutes the callee-
    saved register homes per function.  Both are compilation-variance
    knobs; ``None`` keeps the historical deterministic output.
    """
    asm = AsmModule()
    strings: Dict[str, str] = {}
    if add_start:
        asm.globals.add("_start")
        asm.text.append(Label("_start"))
        asm.text.append(Instruction("bl", (LabelRef("main"),)))
        asm.text.append(Instruction("swi", (Imm(0),)))
    functions = list(program.functions)
    if layout_seed is not None:
        random.Random(f"layout:{layout_seed}").shuffle(functions)
    for func in functions:
        generator = _FuncCodegen(info, info.functions[func.name], strings,
                                 regalloc_seed=regalloc_seed)
        asm.text.extend(generator.generate())
    for decl in program.globals:
        asm.data.append(Label(decl.name))
        for value in decl.init:
            asm.data.append(DataWord(value & 0xFFFFFFFF))
        remaining = decl.size - len(decl.init)
        if remaining > 0:
            asm.data.append(DataSpace(remaining))
    for text, label in sorted(strings.items(), key=lambda kv: kv[1]):
        asm.data.append(Label(label))
        for ch in text:
            asm.data.append(DataWord(ord(ch)))
        asm.data.append(DataWord(0))
    return asm
