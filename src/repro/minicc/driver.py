"""Compile driver: mini-C source -> assembly / module / runnable image.

Mirrors the paper's build setup: programs are compiled for size and
*statically linked* against the runtime (:mod:`repro.minicc.runtime`),
producing a self-contained image with no dynamic dependencies — "as most
embedded systems only run one specific application, there is no need for
dynamic libraries" (§4).

:class:`CompileConfig` bundles the codegen perturbation knobs that the
compilation-variance grid (:mod:`repro.variance.grid`) sweeps: scheduler
on/off and lookahead window, peephole cleanup, function-layout shuffle
and register-assignment order.  The default config reproduces the
historical single-configuration build bit for bit.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional

from repro.binary.blocks import module_from_asm
from repro.binary.image import Image
from repro.binary.layout import layout
from repro.binary.program import Module
from repro.resilience.errors import EXIT_INPUT, ReproError

from repro.minicc.codegen import CodegenError, generate
from repro.minicc.lexer import LexerError
from repro.minicc.parser import ParseError, parse
from repro.minicc.peephole import peephole_module
from repro.minicc.runtime import RUNTIME_SOURCE
from repro.minicc.scheduler import WINDOW, schedule_module
from repro.minicc.sema import SemaError, analyze


class CompileError(ReproError, ValueError):
    """Raised for any front-, middle- or back-end failure.

    A :class:`~repro.resilience.errors.ReproError`: rejected source
    crosses the CLI boundary as ``error[REPRO-COMPILE]`` (exit 5), never
    as a traceback — the contract the fuzzed-program grid relies on.
    """

    code = "REPRO-COMPILE"
    exit_code = EXIT_INPUT


@dataclass(frozen=True)
class CompileConfig:
    """One point in the compilation-variance space.

    The defaults reproduce the historical build exactly; every knob is a
    perturbation real toolchains exhibit between versions, options and
    targets (*Binary Decomposition Under Compilation Variance* studies
    precisely these).
    """

    #: Run the per-block list scheduler (off = template emission order).
    schedule: bool = True
    #: Scheduler lookahead window (different windows, different
    #: interleavings of the same DFG).
    schedule_window: int = WINDOW
    #: Late peephole cleanup (jump-to-next elision, no-op removal).
    peephole: bool = False
    #: Shuffle the function emission order (``None`` = source order).
    layout_seed: Optional[int] = None
    #: Permute callee-saved register homes (``None`` = fixed r4..r10).
    regalloc_seed: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable knob dict (variance report cells)."""
        return asdict(self)


def _compile(source: str, link_runtime: bool,
             config: CompileConfig) -> Any:
    text = source + ("\n" + RUNTIME_SOURCE if link_runtime else "")
    try:
        program = parse(text)
        info = analyze(program)
        asm = generate(program, info,
                       layout_seed=config.layout_seed,
                       regalloc_seed=config.regalloc_seed)
    except (LexerError, ParseError, SemaError, CodegenError) as exc:
        raise CompileError(str(exc)) from exc
    if config.schedule:
        asm = schedule_module(asm, window=config.schedule_window)
    if config.peephole:
        asm = peephole_module(asm)
    return asm


def _resolve_config(schedule: bool,
                    config: Optional[CompileConfig]) -> CompileConfig:
    """*config* wins when given; else the legacy ``schedule`` flag."""
    if config is not None:
        return config
    return CompileConfig(schedule=schedule)


def compile_to_asm(source: str, link_runtime: bool = True,
                   schedule: bool = True,
                   config: Optional[CompileConfig] = None) -> str:
    """Compile to assembly text (the ``-S`` view)."""
    return _compile(source, link_runtime,
                    _resolve_config(schedule, config)).render()


def compile_to_module(source: str, link_runtime: bool = True,
                      schedule: bool = True,
                      config: Optional[CompileConfig] = None) -> Module:
    """Compile to the rewritable program representation."""
    asm = _compile(source, link_runtime, _resolve_config(schedule, config))
    return module_from_asm(asm, entry="_start")


def compile_to_image(source: str, link_runtime: bool = True,
                     schedule: bool = True,
                     config: Optional[CompileConfig] = None) -> Image:
    """Compile and statically link to a runnable image."""
    return layout(compile_to_module(source, link_runtime,
                                    config=_resolve_config(schedule, config)))
