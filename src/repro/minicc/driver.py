"""Compile driver: mini-C source -> assembly / module / runnable image.

Mirrors the paper's build setup: programs are compiled for size and
*statically linked* against the runtime (:mod:`repro.minicc.runtime`),
producing a self-contained image with no dynamic dependencies — "as most
embedded systems only run one specific application, there is no need for
dynamic libraries" (§4).
"""

from __future__ import annotations

from typing import Optional

from repro.binary.blocks import module_from_asm
from repro.binary.image import Image
from repro.binary.layout import layout
from repro.binary.program import Module

from repro.minicc.codegen import CodegenError, generate
from repro.minicc.lexer import LexerError
from repro.minicc.parser import ParseError, parse
from repro.minicc.runtime import RUNTIME_SOURCE
from repro.minicc.scheduler import schedule_module
from repro.minicc.sema import SemaError, analyze


class CompileError(ValueError):
    """Raised for any front-, middle- or back-end failure."""


def _compile(source: str, link_runtime: bool, schedule: bool):
    text = source + ("\n" + RUNTIME_SOURCE if link_runtime else "")
    try:
        program = parse(text)
        info = analyze(program)
        asm = generate(program, info)
    except (LexerError, ParseError, SemaError, CodegenError) as exc:
        raise CompileError(str(exc)) from exc
    if schedule:
        asm = schedule_module(asm)
    return asm


def compile_to_asm(source: str, link_runtime: bool = True,
                   schedule: bool = True) -> str:
    """Compile to assembly text (the ``-S`` view)."""
    return _compile(source, link_runtime, schedule).render()


def compile_to_module(source: str, link_runtime: bool = True,
                      schedule: bool = True) -> Module:
    """Compile to the rewritable program representation."""
    asm = _compile(source, link_runtime, schedule)
    return module_from_asm(asm, entry="_start")


def compile_to_image(source: str, link_runtime: bool = True,
                     schedule: bool = True) -> Image:
    """Compile and statically link to a runnable image."""
    return layout(compile_to_module(source, link_runtime, schedule))
