"""minicc: a small C-like compiler targeting the ARM subset.

The paper evaluates on MiBench programs compiled with ``gcc -Os`` and
statically linked against dietlibc.  We substitute this toolchain: a
deliberately *template-driven* code generator (each AST shape expands to
a fixed instruction pattern — the paper names compiler templates as a
main source of duplication), a small statically linked runtime
(software division, decimal printing, memory helpers — the dietlibc
stand-in), and a per-block list scheduler that overlaps loads with
computation, producing exactly the "same computation, different
instruction order" blocks that defeat suffix-trie PA (§4.2, rijndael).

Pipeline: :mod:`.lexer` -> :mod:`.parser` -> :mod:`.sema` ->
:mod:`.codegen` (+ :mod:`.scheduler`) -> assembly text ->
:mod:`repro.binary` for linking into a runnable image.
"""

from repro.minicc.lexer import LexerError, Token, tokenize
from repro.minicc.parser import ParseError, parse
from repro.minicc.sema import SemaError, analyze
from repro.minicc.codegen import CodegenError, generate
from repro.minicc.driver import (
    CompileError,
    compile_to_asm,
    compile_to_image,
    compile_to_module,
)
from repro.minicc.runtime import RUNTIME_SOURCE

__all__ = [
    "tokenize",
    "Token",
    "LexerError",
    "parse",
    "ParseError",
    "analyze",
    "SemaError",
    "generate",
    "CodegenError",
    "compile_to_asm",
    "compile_to_module",
    "compile_to_image",
    "CompileError",
    "RUNTIME_SOURCE",
]
