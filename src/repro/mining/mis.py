"""Maximum independent set over collision graphs.

The paper resolves overlapping embeddings by computing a maximum
independent set of the collision graph, using Kumlander's maximum-clique
algorithm on the complement graph — a backtracking search guided and
bounded by a heuristic vertex coloring [30].  We implement the same
scheme directly: an exact branch-and-bound on the complement with a
greedy-coloring upper bound, run per connected component, plus a greedy
fallback (and ablation mode) for components above a size threshold.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.mining.collision import connected_components
from repro.report.ledger import GLOBAL as _LEDGER
from repro.resilience import governor as _governor
from repro.resilience.faultinject import fault
from repro.telemetry import GLOBAL as _TELEMETRY

#: Components larger than this fall back to the greedy heuristic; the
#: exact search is exponential in the worst case.
EXACT_LIMIT = 60


class _BudgetExhausted(Exception):
    """Internal: stops the exact search at the expansion budget."""


def greedy_mis(adjacency: Sequence[Sequence[int]]) -> List[int]:
    """Greedy independent set: repeatedly take a minimum-degree vertex.

    Fast and typically near-optimal on the sparse collision graphs PA
    produces; used as the initial lower bound of the exact search and as
    the ablation heuristic.
    """
    n = len(adjacency)
    alive = [True] * n
    degree = [len(adjacency[v]) for v in range(n)]
    chosen: List[int] = []
    remaining = n
    while remaining:
        best = min((v for v in range(n) if alive[v]), key=lambda v: degree[v])
        chosen.append(best)
        removed = [best] + [u for u in adjacency[best] if alive[u]]
        for u in removed:
            if alive[u]:
                alive[u] = False
                remaining -= 1
                for w in adjacency[u]:
                    if alive[w]:
                        degree[w] -= 1
    return sorted(chosen)


#: Branch-and-bound expansion budget; components that exceed it fall
#: back to the best solution found so far (>= the greedy seed).
EXPAND_BUDGET = 200_000


def _exact_component(vertices: List[int],
                     adjacency: Sequence[Sequence[int]],
                     info: Optional[Dict[str, Any]] = None) -> List[int]:
    """Exact MIS of one component via max clique of the complement.

    Branch and bound in the style of Kumlander [30]: vertices of the
    candidate set are greedily colored; the color count bounds the
    achievable clique size, and candidates are expanded in reverse color
    order so the bound tightens quickly.  An expansion budget keeps
    adversarial components from stalling the optimizer; on exhaustion
    the incumbent (at least the greedy seed) is returned.
    """
    n = len(vertices)
    position = {v: k for k, v in enumerate(vertices)}
    full = (1 << n) - 1
    # Complement adjacency as bitmasks (clique in complement == MIS).
    comp: List[int] = []
    for v in vertices:
        collide = 0
        for u in adjacency[v]:
            if u in position:
                collide |= 1 << position[u]
        comp.append(full & ~collide & ~(1 << position[v]))

    best: List[int] = []
    budget = [EXPAND_BUDGET]
    governor = _governor.current()

    def color_sort(candidates: int) -> Tuple[List[int], List[int]]:
        """Greedy coloring; returns vertices ordered by color + bounds."""
        order: List[int] = []
        bounds: List[int] = []
        uncolored = candidates
        color = 0
        while uncolored:
            color += 1
            available = uncolored
            while available:
                v = (available & -available).bit_length() - 1
                order.append(v)
                bounds.append(color)
                available &= ~comp[v] & ~(1 << v)
                uncolored &= ~(1 << v)
        return order, bounds

    def expand(clique: List[int], candidates: int) -> None:
        nonlocal best
        budget[0] -= 1
        if budget[0] < 0:
            raise _BudgetExhausted
        # The governor is polled coarsely: an interrupt or spent time
        # budget downgrades the solve to its incumbent (>= the greedy
        # seed) instead of finishing an unbounded exact search.
        if budget[0] % 4096 == 0 and governor.should_stop():
            raise _BudgetExhausted
        if not candidates:
            if len(clique) > len(best):
                best = clique[:]
            return
        order, bounds = color_sort(candidates)
        for idx in range(len(order) - 1, -1, -1):
            if len(clique) + bounds[idx] <= len(best):
                return
            v = order[idx]
            clique.append(v)
            expand(clique, candidates & comp[v])
            clique.pop()
            candidates &= ~(1 << v)

    seed = greedy_mis([[position[u] for u in adjacency[vertices[k]]
                        if u in position] for k in range(n)])
    best = list(seed)
    try:
        expand([], full)
    except _BudgetExhausted:
        _TELEMETRY.count("mis.budget_exhausted")
        # always-on governor tally: PAResult surfaces it so a degraded
        # (budget-limited) solve is distinguishable from a complete one
        governor.count("mis.budget_exhausted")
        if info is not None:
            info["budget_exhausted"] = info.get("budget_exhausted", 0) + 1
    return [vertices[k] for k in best]


def max_independent_set(
    adjacency: Sequence[Sequence[int]],
    exact_limit: int = EXACT_LIMIT,
    stats: Optional[Dict[str, Any]] = None,
) -> List[int]:
    """A maximum independent set of the whole collision graph.

    Solved exactly per connected component (components up to
    *exact_limit* vertices; larger ones greedily) and combined — an
    independent set never spans a collision edge, so components are
    independent subproblems.  Pass ``exact_limit=0`` for the pure greedy
    ablation mode.

    *stats*, when given, is filled with the solve's decision census
    (vertices, component counts by strategy, budget exhaustions, chosen
    size) — the provenance the decision ledger attaches to candidates.
    """
    fault("mis.solve")
    result: List[int] = []
    telemetry_on = _TELEMETRY.enabled
    ledger_on = _LEDGER.enabled
    info: Optional[Dict[str, Any]] = (
        {
            "vertices": len(adjacency),
            "components": 0,
            "singleton": 0,
            "exact": 0,
            "greedy": 0,
            "budget_exhausted": 0,
            "largest_component": 0,
        }
        if (stats is not None or ledger_on)
        else None
    )
    if telemetry_on:
        # pre-register the decision counters so exports always carry
        # them, even on runs where one branch is never taken
        _TELEMETRY.count("mis.exact_components", 0)
        _TELEMETRY.count("mis.greedy_components", 0)
        _TELEMETRY.count("mis.singleton_components", 0)
    for component in connected_components(list(map(list, adjacency))):
        if telemetry_on:
            _TELEMETRY.observe("mis.component_size", len(component))
        if info is not None:
            info["components"] += 1
            info["largest_component"] = max(
                info["largest_component"], len(component)
            )
        if len(component) == 1:
            if telemetry_on:
                _TELEMETRY.count("mis.singleton_components")
            if info is not None:
                info["singleton"] += 1
            result.extend(component)
        elif len(component) <= exact_limit:
            if telemetry_on:
                _TELEMETRY.count("mis.exact_components")
            if info is not None:
                info["exact"] += 1
            result.extend(_exact_component(component, adjacency, info))
        else:
            if telemetry_on:
                _TELEMETRY.count("mis.greedy_components")
            if info is not None:
                info["greedy"] += 1
            sub_index = {v: k for k, v in enumerate(component)}
            sub_adj = [
                [sub_index[u] for u in adjacency[v] if u in sub_index]
                for v in component
            ]
            result.extend(component[k] for k in greedy_mis(sub_adj))
    if info is not None:
        info["chosen"] = len(result)
        info["mode"] = _solve_mode(info)
        if stats is not None:
            stats.update(info)
        if ledger_on:
            _LEDGER.emit("mis", **info)
    return sorted(result)


def _solve_mode(info: Dict[str, Any]) -> str:
    """Classify one solve: did the exact search or the fallback decide?"""
    if info["greedy"] and info["exact"]:
        return "mixed"
    if info["greedy"]:
        return "greedy"
    if info["exact"]:
        return "exact"
    return "trivial"
