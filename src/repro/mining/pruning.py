"""Search-space pruning rules (paper §3.4 and §3.5).

Frequency pruning is built into the miners (an infrequent fragment has
no frequent extension; with node-disjoint embeddings the count is
antimonotone).  This module adds the PA-specific rules:

* :func:`is_convex` — the legality core: extracting an embedding must
  not create a cyclic dependency between the outlined procedure and the
  remaining block (paper Fig. 9).  An embedding is extractable only if
  no dependence path leaves the fragment and re-enters it.
* :func:`is_permanently_illegal` — a *sound* branch prune: when the
  re-entering path runs through a node that can never become part of any
  mined fragment (it has no mined edges at all), every extension of the
  embedding stays non-convex and the embedding can be dropped from the
  search.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Set

from repro.dfg.graph import DFG


def _dep_adjacency(dfg: DFG):
    """Cached (succ, pred) adjacency of the full dependence graph.

    Convexity is queried once per embedding per reported fragment —
    rebuilding dictionaries on every call dominated the whole mining
    round on dense blocks before this cache existed.
    """
    cached = getattr(dfg, "_dep_adjacency_cache", None)
    if cached is None:
        succ = [[] for __ in range(dfg.num_nodes)]
        pred = [[] for __ in range(dfg.num_nodes)]
        for s, d, __k in dfg.dep_edges:
            succ[s].append(d)
            pred[d].append(s)
        cached = (succ, pred)
        dfg._dep_adjacency_cache = cached
    return cached


def _forward_reach(dfg: DFG, start: Set[int], limit: int = None) -> Set[int]:
    """Nodes reachable from *start* in the full dependence graph.

    *limit* bounds the walk to indices ``<= limit`` — dependence edges
    only run forward, so for between-ness queries nothing past the
    fragment's last node can ever lead back into it.
    """
    succ, __ = _dep_adjacency(dfg)
    reached: Set[int] = set()
    stack = list(start)
    while stack:
        node = stack.pop()
        for nxt in succ[node]:
            if nxt not in reached and (limit is None or nxt <= limit):
                reached.add(nxt)
                stack.append(nxt)
    return reached


def _backward_reach(dfg: DFG, start: Set[int], limit: int = None) -> Set[int]:
    __, pred = _dep_adjacency(dfg)
    reached: Set[int] = set()
    stack = list(start)
    while stack:
        node = stack.pop()
        for prv in pred[node]:
            if prv not in reached and (limit is None or prv >= limit):
                reached.add(prv)
                stack.append(prv)
    return reached


def between_nodes(dfg: DFG, nodes: Iterable[int]) -> Set[int]:
    """Non-fragment nodes on a dependence path fragment -> x -> fragment.

    Extraction contracts the fragment to a single call site; each such
    *x* would then both follow and precede the call — the cycle of paper
    Fig. 9(b).  The walk is bounded to the fragment's index window:
    edges only run forward, so paths cannot leave the window and return.
    """
    node_set = set(nodes)
    low, high = min(node_set), max(node_set)
    forward = _forward_reach(dfg, node_set, limit=high)
    backward = _backward_reach(dfg, node_set, limit=low)
    return (forward & backward) - node_set


def is_convex(dfg: DFG, nodes: Iterable[int]) -> bool:
    """True if the node set can be contracted without creating a cycle."""
    return not between_nodes(dfg, nodes)


def unminable_nodes(dfg: DFG) -> FrozenSet[int]:
    """Nodes isolated in the mined edge set (cached per DFG).

    Such nodes can never join any mined fragment, so a dependence path
    through one of them permanently blocks convexity.  When the set is
    empty — the common case on densely connected graphs — the expensive
    permanence check can be skipped wholesale.
    """
    cached = getattr(dfg, "_unminable_cache", None)
    if cached is None:
        minable: Set[int] = set()
        for s, d, __ in dfg.edges:
            minable.add(s)
            minable.add(d)
        cached = frozenset(range(dfg.num_nodes)) - minable
        dfg._unminable_cache = cached
    return cached


def never_convex_within(dfg: DFG, nodes: Iterable[int],
                        max_nodes: int) -> bool:
    """True if no superset of *nodes* with at most *max_nodes* nodes can
    be convex.

    ``between(F') ⊇ between(F) - F'`` for every ``F' ⊇ F``, so a convex
    superset must swallow the whole between set:
    ``|F'| >= |F| + |between(F)|``.  When that already exceeds the size
    cap, the embedding can never be extracted (neither by call — which
    needs convexity — nor by cross-jump — which needs the even stronger
    successor closure) and is dead weight in the search.

    The check is free for "local" fragments: ``between`` fits inside the
    fragment's index window, so when the window itself is within budget
    nothing needs computing.
    """
    node_set = set(nodes)
    headroom = max_nodes - len(node_set)
    if headroom < 0:
        return True
    span_slack = (max(node_set) - min(node_set) + 1) - len(node_set)
    if span_slack <= headroom:
        return False  # between ⊆ window gap ⊆ headroom: can't prune
    return len(between_nodes(dfg, node_set)) > headroom


def is_permanently_illegal(dfg: DFG, nodes: Iterable[int]) -> bool:
    """True if no extension of this embedding can ever become convex.

    Conservative: only claims permanence when a cycle-causing node is
    isolated in the *mined* edge set, because the miner can only ever
    grow fragments along mined edges.
    """
    unminable = unminable_nodes(dfg)
    if not unminable:
        return False
    culprits = between_nodes(dfg, nodes)
    return bool(culprits & unminable)
