"""Frequent subgraph mining (paper §3).

* :mod:`.dfs_code` — gSpan's canonical form (DFS codes) extended with an
  edge-direction flag, exactly as the paper's §3.3 describes for DgSpan.
* :mod:`.gspan` — DgSpan: directed gSpan counting *graphs* a fragment
  occurs in.
* :mod:`.edgar` — Edgar: the embedding-based extension; counts
  non-overlapping *embeddings* via a maximum independent set over the
  collision graph (:mod:`.collision`, :mod:`.mis`) and applies
  PA-specific pruning (:mod:`.pruning`).
"""

from repro.mining.dfs_code import DFSCode, EdgeTuple, is_min, min_dfs_code
from repro.mining.embeddings import Embedding
from repro.mining.gspan import DgSpan, Fragment, MiningDB
from repro.mining.edgar import Edgar
from repro.mining.collision import build_collision_graph
from repro.mining.mis import greedy_mis, max_independent_set

__all__ = [
    "DFSCode",
    "EdgeTuple",
    "is_min",
    "min_dfs_code",
    "Embedding",
    "Fragment",
    "MiningDB",
    "DgSpan",
    "Edgar",
    "build_collision_graph",
    "max_independent_set",
    "greedy_mis",
]
