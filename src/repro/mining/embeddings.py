"""Embeddings: concrete occurrences of a fragment in the DFG database.

An :class:`Embedding` records *where* a fragment occurs: which DFG, and
which graph node plays each DFS-index role.  Edgar's frequency is defined
over embeddings (paper §3.4): a fragment occurring twice inside one basic
block counts twice — exactly the occurrences PA can outline — as long as
the occurrences do not overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Tuple


@dataclass(frozen=True)
class Embedding:
    """One occurrence of a fragment.

    ``graph`` is the index of the DFG in the mining database; ``nodes``
    maps DFS index -> graph node (position *k* holds the graph node that
    plays DFS role *k*).
    """

    graph: int
    nodes: Tuple[int, ...]

    @property
    def node_set(self) -> FrozenSet[int]:
        return frozenset(self.nodes)

    def overlaps(self, other: "Embedding") -> bool:
        """True if the two occurrences share an instruction.

        Only embeddings inside the same DFG can collide; a node can be
        outlined at most once (paper §3.4).
        """
        if self.graph != other.graph:
            return False
        return bool(set(self.nodes) & set(other.nodes))


def dedupe_by_node_set(embeddings: Sequence[Embedding]) -> List[Embedding]:
    """Collapse automorphic embeddings.

    Symmetric fragments embed the same instruction set in several
    role-assignments; for both overlap resolution and extraction only the
    instruction *set* matters, so one representative per (graph, node
    set) suffices.  Keeping them all would blow up the collision graph
    factorially for symmetric fragments.
    """
    seen = set()
    unique: List[Embedding] = []
    for emb in embeddings:
        key = (emb.graph, emb.node_set)
        if key not in seen:
            seen.add(key)
            unique.append(emb)
    return unique
