"""Edgar: the embedding-based graph miner (paper §3.4, §3.5).

Edgar extends DgSpan in three ways:

1. **Embedding-based frequency** — a fragment is frequent when it has at
   least ``min_support`` *non-overlapping* occurrences, even inside a
   single basic block.  Non-overlap is decided via a maximum independent
   set of the collision graph; the count is antimonotone because
   disjoint occurrences of a child project onto disjoint occurrences of
   its parent, so frequency pruning stays sound.
2. **Overlap resolution** — reported fragments carry their deduplicated
   embedding list; :func:`non_overlapping_embeddings` selects a maximum
   disjoint subset (Kumlander-style exact MIS, :mod:`repro.mining.mis`).
3. **PA-specific pruning** — embeddings that can never become
   extractable (the Fig. 9 cyclic-dependency case, made permanent by an
   unminable culprit node) are dropped from the search.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.dfg.graph import DFG

from repro.mining.collision import build_collision_graph
from repro.mining.dfs_code import DFSCode
from repro.mining.embeddings import Embedding, dedupe_by_node_set
from repro.mining.gspan import DgSpan, MiningDB
from repro.mining.mis import max_independent_set
from repro.mining.pruning import is_permanently_illegal, never_convex_within
from repro.resilience.faultinject import fault
from repro.telemetry import GLOBAL as _TELEMETRY


#: Collision-graph construction is quadratic per graph; beyond this many
#: occurrences in a single DFG the candidate is truncated (a sound
#: undercount — extraction simply uses fewer occurrences).
MAX_PER_GRAPH = 400


def non_overlapping_embeddings(
    embeddings: Sequence[Embedding], exact_limit: int = 60,
    stats: Optional[Dict[str, Any]] = None,
) -> List[Embedding]:
    """A maximum subset of pairwise node-disjoint embeddings.

    *stats*, when given, is filled with the overlap resolution's
    provenance: the collision graph (node count, edge count, adjacency
    lists), the chosen indices, and the MIS solver's decision census.
    """
    unique = dedupe_by_node_set(embeddings)
    per_graph: dict = {}
    capped = []
    for emb in unique:
        count = per_graph.get(emb.graph, 0)
        if count >= MAX_PER_GRAPH:
            continue
        per_graph[emb.graph] = count + 1
        capped.append(emb)
    if _TELEMETRY.enabled:
        _TELEMETRY.count("mis.overlap_resolutions")
        _TELEMETRY.count("mis.capped_embeddings", len(unique) - len(capped))
    adjacency = build_collision_graph(capped)
    chosen = max_independent_set(adjacency, exact_limit=exact_limit,
                                 stats=stats)
    if stats is not None:
        stats["edges"] = sum(len(n) for n in adjacency) // 2
        stats["adjacency"] = adjacency
        stats["chosen_indices"] = list(chosen)
    return [capped[i] for i in chosen]


class Edgar(DgSpan):
    """Embedding-based DgSpan with MIS overlap resolution + PA pruning."""

    def __init__(
        self,
        min_support: int = 2,
        min_nodes: int = 2,
        max_nodes: int = 12,
        max_embeddings: int = 4000,
        pa_pruning: bool = True,
        mis_exact_limit: int = 60,
    ):
        super().__init__(
            min_support=min_support,
            min_nodes=min_nodes,
            max_nodes=max_nodes,
            max_embeddings=max_embeddings,
        )
        self.pa_pruning = pa_pruning
        self.mis_exact_limit = mis_exact_limit

    # ------------------------------------------------------------------
    def _filter_embeddings(
        self, db: MiningDB, code: DFSCode, embeddings: List[Embedding]
    ) -> List[Embedding]:
        if not self.pa_pruning:
            return embeddings
        fault("mine.filter")
        kept: List[Embedding] = []
        never_convex = cyclic = 0
        for emb in embeddings:
            if never_convex_within(
                db.dfgs[emb.graph], emb.nodes, self.max_nodes
            ):
                never_convex += 1
                continue
            if is_permanently_illegal(db.dfgs[emb.graph], emb.nodes):
                cyclic += 1
                continue
            kept.append(emb)
        if never_convex or cyclic:
            # split tallies feed the decision ledger's per-round prune
            # record (never-convex vs the Fig. 9 cyclic-dependency case)
            self.pruned_never_convex += never_convex
            self.pruned_cyclic += cyclic
            _TELEMETRY.count(
                "mining.pa_pruned_embeddings", never_convex + cyclic
            )
        return kept

    # ------------------------------------------------------------------
    def _is_frequent(self, db: MiningDB, embeddings: List[Embedding]) -> bool:
        """At least ``min_support`` pairwise disjoint occurrences?

        Cheap cases first: occurrences in *k* distinct graphs are always
        pairwise disjoint, and within one graph a disjoint pair is found
        by scanning; the exact MIS is only needed for larger supports.
        """
        unique = dedupe_by_node_set(embeddings)
        if len(unique) < self.min_support:
            return False
        graphs = {e.graph for e in unique}
        if len(graphs) >= self.min_support:
            return True
        if self.min_support == 2:
            by_graph: dict = {}
            for emb in unique:
                by_graph.setdefault(emb.graph, []).append(emb)
            for members in by_graph.values():
                # bounded scan: beyond a few hundred occurrences of one
                # fragment inside one block, a disjoint pair among the
                # first members decides the test in practice
                scan = members[:200]
                for i, a in enumerate(scan):
                    for b in scan[i + 1:]:
                        if not (a.node_set & b.node_set):
                            return True
            return False
        return len(self._disjoint(unique)) >= self.min_support

    def _support(self, db: MiningDB, embeddings: List[Embedding]) -> int:
        return len(dedupe_by_node_set(embeddings))

    def _disjoint(self, unique: List[Embedding]) -> List[Embedding]:
        adjacency = build_collision_graph(unique)
        chosen = max_independent_set(adjacency, exact_limit=self.mis_exact_limit)
        return [unique[i] for i in chosen]
