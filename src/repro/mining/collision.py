"""Collision graphs over the embeddings of one fragment (paper §3.4).

Nodes are embeddings; an edge connects two embeddings that share at
least one instruction of the same DFG.  Only one member of each such
pair can be outlined, so the usable frequency of a fragment is the size
of a maximum independent set of this graph (equivalently, a maximum
clique of its complement — the formulation of Kumlander's algorithm the
paper adopts).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.mining.embeddings import Embedding
from repro.telemetry import GLOBAL as _TELEMETRY


def build_collision_graph(
    embeddings: Sequence[Embedding],
) -> List[List[int]]:
    """Adjacency lists of the collision graph.

    Index *i* of the result corresponds to ``embeddings[i]``.  Embeddings
    are first grouped by DFG — occurrences in different graphs can never
    collide — so construction is quadratic only within each graph.
    """
    adjacency: List[List[int]] = [[] for __ in embeddings]
    by_graph: Dict[int, List[int]] = {}
    for index, emb in enumerate(embeddings):
        by_graph.setdefault(emb.graph, []).append(index)
    for indices in by_graph.values():
        for a_pos, i in enumerate(indices):
            set_i = embeddings[i].node_set
            for j in indices[a_pos + 1:]:
                if set_i & embeddings[j].node_set:
                    adjacency[i].append(j)
                    adjacency[j].append(i)
    if _TELEMETRY.enabled and embeddings:
        _TELEMETRY.observe("collision.graph_size", len(embeddings))
        _TELEMETRY.observe(
            "collision.graph_edges",
            sum(len(neighbors) for neighbors in adjacency) // 2,
        )
    return adjacency


def connected_components(adjacency: List[List[int]]) -> List[List[int]]:
    """Connected components of an adjacency-list graph."""
    n = len(adjacency)
    seen = [False] * n
    components: List[List[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        stack = [start]
        seen[start] = True
        component = []
        while stack:
            node = stack.pop()
            component.append(node)
            for neighbor in adjacency[node]:
                if not seen[neighbor]:
                    seen[neighbor] = True
                    stack.append(neighbor)
        components.append(sorted(component))
    return components
