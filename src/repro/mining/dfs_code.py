"""DFS codes: gSpan's canonical form, extended to directed graphs.

A DFS code is the sorted list of edge tuples in the order a depth-first
traversal attaches them to the growing subgraph (paper §3.3, Fig. 7).
Each tuple is

    ``(i, j, label_i, direction, edge_label, label_j)``

where *i*, *j* are DFS discovery indices and *direction* is 0 when the
underlying directed edge runs ``i -> j`` and 1 when it runs ``j -> i`` —
"the direction of an edge can simply be expressed by an additional
flag" (paper §3.3).  Codes are compared with gSpan's neighborhood-
restricted lexicographic order; the *minimal* code of a graph is its
canonical form, and the traversal of the search lattice can stop as soon
as a non-minimal code is reached.
"""

from __future__ import annotations

from functools import cmp_to_key
from typing import Dict, List, Sequence, Tuple

#: (i, j, label_i, direction, edge_label, label_j) — labels are interned ints.
EdgeTuple = Tuple[int, int, int, int, int, int]
DFSCode = Tuple[EdgeTuple, ...]


def is_forward(edge: EdgeTuple) -> bool:
    """Forward edges discover a new node: ``i < j``."""
    return edge[0] < edge[1]


def compare_edges(e1: EdgeTuple, e2: EdgeTuple) -> int:
    """gSpan's DFS lexicographic edge order (directed variant).

    Returns a negative value when ``e1`` sorts before ``e2``, positive
    when after, and 0 when equal.
    """
    i1, j1 = e1[0], e1[1]
    i2, j2 = e2[0], e2[1]
    f1, f2 = i1 < j1, i2 < j2
    if f1 and f2:
        if j1 != j2:
            return -1 if j1 < j2 else 1
        if i1 != i2:
            # For equal targets the *deeper* source sorts first.
            return -1 if i1 > i2 else 1
    elif not f1 and not f2:
        if i1 != i2:
            return -1 if i1 < i2 else 1
        if j1 != j2:
            return -1 if j1 < j2 else 1
    elif f1:  # e1 forward, e2 backward
        return -1 if j1 <= i2 else 1
    else:  # e1 backward, e2 forward
        return -1 if i1 < j2 else 1
    # identical positions: fall back to the label part
    l1, l2 = e1[2:], e2[2:]
    if l1 == l2:
        return 0
    return -1 if l1 < l2 else 1


def compare_codes(c1: Sequence[EdgeTuple], c2: Sequence[EdgeTuple]) -> int:
    """Lexicographic comparison of whole codes under :func:`compare_edges`."""
    for e1, e2 in zip(c1, c2):
        cmp = compare_edges(e1, e2)
        if cmp:
            return cmp
    if len(c1) == len(c2):
        return 0
    return -1 if len(c1) < len(c2) else 1


edge_sort_key = cmp_to_key(compare_edges)


def rightmost_path(code: Sequence[EdgeTuple]) -> List[int]:
    """DFS indices on the rightmost path, root first.

    The rightmost path is the chain of forward edges leading to the
    highest-numbered (rightmost) vertex.  (Hand-rolled loops: this is
    the hottest helper of the whole miner.)
    """
    if not code:
        return []
    current = 0
    for edge in code:
        if edge[1] > current:
            current = edge[1]
        if edge[0] > current:
            current = edge[0]
    path = [current]
    for k in range(len(code) - 1, -1, -1):
        edge = code[k]
        if edge[0] < edge[1] and edge[1] == current:
            current = edge[0]
            path.append(current)
    path.reverse()
    return path


def code_num_nodes(code: Sequence[EdgeTuple]) -> int:
    best = -1
    for edge in code:
        if edge[1] > best:
            best = edge[1]
        if edge[0] > best:
            best = edge[0]
    return best + 1


def node_labels_of(code: Sequence[EdgeTuple]) -> List[int]:
    """Recover node labels (by DFS index) from a code."""
    labels: Dict[int, int] = {}
    for i, j, li, __, ___, lj in code:
        labels.setdefault(i, li)
        labels.setdefault(j, lj)
    return [labels[i] for i in range(len(labels))]


def graph_edges_of(code: Sequence[EdgeTuple]) -> List[Tuple[int, int, int]]:
    """Edges of the code's graph in *graph* direction: (src, dst, label)."""
    edges = []
    for i, j, __, direction, elabel, ___ in code:
        if direction == 0:
            edges.append((i, j, elabel))
        else:
            edges.append((j, i, elabel))
    return edges


class _CodeGraph:
    """Adjacency view of the graph a DFS code denotes."""

    def __init__(self, code: Sequence[EdgeTuple]):
        self.labels = node_labels_of(code)
        n = len(self.labels)
        #: adj[v] = list of (other, elabel, direction_from_v)
        self.adj: List[List[Tuple[int, int, int]]] = [[] for __ in range(n)]
        self.edges: List[Tuple[int, int, int]] = graph_edges_of(code)
        for src, dst, elabel in self.edges:
            self.adj[src].append((dst, elabel, 0))
            self.adj[dst].append((src, elabel, 1))


def _min_extensions(graph: _CodeGraph, code: List[EdgeTuple],
                    mappings: List[Tuple[int, ...]]):
    """All rightmost extensions of *code* over its own graph.

    Returns ``{edge_tuple: [extended mappings]}`` following gSpan's
    rightmost-extension rule: backward edges leave the rightmost vertex
    toward the rightmost path; forward edges leave rightmost-path
    vertices toward undiscovered nodes.
    """
    extensions: Dict[EdgeTuple, List[Tuple[int, ...]]] = {}
    rm_path = rightmost_path(code)
    rightmost = rm_path[-1] if rm_path else 0
    for mapping in mappings:
        mapped = set(mapping)
        used = _used_edges(code, mapping)
        if not code:
            # seed: every edge in both orientations
            for src, dst, elabel in graph.edges:
                for a, b, direction in ((src, dst, 0), (dst, src, 1)):
                    tup = (0, 1, graph.labels[a], direction, elabel,
                           graph.labels[b])
                    extensions.setdefault(tup, []).append((a, b))
            continue
        # backward extensions from the rightmost vertex
        g_rightmost = mapping[rightmost]
        for other, elabel, direction in graph.adj[g_rightmost]:
            if other not in mapped:
                continue
            back_to = mapping.index(other)
            if back_to == rightmost or back_to not in rm_path:
                continue
            gedge = (
                (g_rightmost, other, elabel)
                if direction == 0
                else (other, g_rightmost, elabel)
            )
            if gedge in used:
                continue
            tup = (rightmost, back_to, graph.labels[g_rightmost], direction,
                   elabel, graph.labels[other])
            extensions.setdefault(tup, []).append(mapping)
        # forward extensions from rightmost-path vertices
        new_index = len(mapping)
        for dfs_index in rm_path:
            g_node = mapping[dfs_index]
            for other, elabel, direction in graph.adj[g_node]:
                if other in mapped:
                    continue
                tup = (dfs_index, new_index, graph.labels[g_node], direction,
                       elabel, graph.labels[other])
                extensions.setdefault(tup, []).append(mapping + (other,))
    return extensions


def _used_edges(code: Sequence[EdgeTuple], mapping: Tuple[int, ...]):
    """Graph edges already consumed by *mapping* of *code*."""
    used = set()
    for i, j, __, direction, elabel, ___ in code:
        if direction == 0:
            used.add((mapping[i], mapping[j], elabel))
        else:
            used.add((mapping[j], mapping[i], elabel))
    return used


def min_dfs_code(code: Sequence[EdgeTuple]) -> DFSCode:
    """The canonical (minimal) DFS code of the graph *code* denotes.

    Built greedily: at every step, the smallest extension over all
    embeddings of the current minimal prefix is appended — the gSpan
    construction of the canonical form.
    """
    graph = _CodeGraph(code)
    built: List[EdgeTuple] = []
    mappings: List[Tuple[int, ...]] = [()]
    for __ in range(len(code)):
        extensions = _min_extensions(graph, built, mappings)
        best = min(extensions, key=edge_sort_key)
        mappings = extensions[best]
        built.append(best)
    return tuple(built)


def is_min(code: Sequence[EdgeTuple]) -> bool:
    """True if *code* is the canonical form of its own graph.

    Incremental and early-aborting: at each step, candidate extensions
    are compared against the expected edge tuple one by one; finding any
    smaller tuple disproves minimality immediately, and only embeddings
    matching the expected tuple are carried forward.  This avoids
    materializing the full extension map the way :func:`min_dfs_code`
    must.
    """
    graph = _CodeGraph(code)
    labels = graph.labels
    adj = graph.adj
    built: List[EdgeTuple] = []
    mappings: List[Tuple[int, ...]] = [()]
    for k, expected in enumerate(code):
        e_i, e_j, __, e_dir, e_el, e_lj = expected
        expected_forward = e_i < e_j
        e_rest = (e_dir, e_el, e_lj)
        matched: List[Tuple[int, ...]] = []
        if not built:
            e_label4 = expected[2:]
            for src, dst, elabel in graph.edges:
                for a, b, direction in ((src, dst, 0), (dst, src, 1)):
                    label4 = (labels[a], direction, elabel, labels[b])
                    if label4 < e_label4:
                        return False
                    if label4 == e_label4:
                        matched.append((a, b))
            built.append(expected)
            mappings = matched
            continue
        rm_path = rightmost_path(built)
        rightmost = rm_path[-1]
        rm_set = set(rm_path)
        for mapping in mappings:
            mapped = set(mapping)
            used = _used_edges(built, mapping)
            g_rightmost = mapping[rightmost]
            # backward extensions from the rightmost vertex; any backward
            # extension sorts before every forward one
            for other, elabel, direction in adj[g_rightmost]:
                if other not in mapped:
                    continue
                back_to = mapping.index(other)
                if back_to == rightmost or back_to not in rm_set:
                    continue
                gedge = (
                    (g_rightmost, other, elabel)
                    if direction == 0
                    else (other, g_rightmost, elabel)
                )
                if gedge in used:
                    continue
                if expected_forward:
                    return False
                if back_to < e_j:
                    return False
                if back_to > e_j:
                    continue
                rest = (direction, elabel, labels[other])
                if rest < e_rest:
                    return False
                if rest == e_rest:
                    matched.append(mapping)
            # forward extensions; deeper sources sort first
            if expected_forward:
                for dfs_index in rm_path:
                    if dfs_index < e_i:
                        continue
                    g_node = mapping[dfs_index]
                    deeper = dfs_index > e_i
                    for other, elabel, direction in adj[g_node]:
                        if other in mapped:
                            continue
                        if deeper:
                            return False
                        rest = (direction, elabel, labels[other])
                        if rest < e_rest:
                            return False
                        if rest == e_rest:
                            matched.append(mapping + (other,))
        built.append(expected)
        mappings = matched
    return True
