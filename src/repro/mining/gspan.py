"""DgSpan: gSpan for directed graphs (paper §3.3).

The miner arranges all connected subgraphs of the DFG database in the
gSpan search lattice, traverses it depth-first along rightmost-path
extensions, detects duplicates with the minimal-DFS-code canonical form
(:mod:`repro.mining.dfs_code`), and prunes infrequent branches.

DgSpan uses the classical *graph-based* frequency: the number of
database graphs a fragment occurs in.  A fragment appearing twice inside
one basic block therefore counts once — the limitation that motivates
Edgar (:mod:`repro.mining.edgar`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dfg.graph import DFG

from repro.mining.dfs_code import (
    DFSCode,
    EdgeTuple,
    code_num_nodes,
    edge_sort_key,
    graph_edges_of,
    is_min,
    node_labels_of,
    rightmost_path,
    _used_edges,
)
from repro.mining.embeddings import Embedding, dedupe_by_node_set
from repro.report.ledger import GLOBAL as _LEDGER
from repro.resilience import governor as _governor
from repro.resilience.faultinject import fault
from repro.telemetry import GLOBAL as _TELEMETRY


class _DeadlineReached(Exception):
    """Internal: unwinds the search when the time budget is spent."""


class _MinedGraph:
    """One DFG with interned labels and mixed-direction adjacency."""

    __slots__ = ("nodes", "edges", "adj")

    def __init__(self, node_labels: List[int],
                 edges: List[Tuple[int, int, int]]):
        self.nodes = node_labels
        self.edges = edges
        #: adj[v] = [(other, edge_label, direction_from_v), ...]
        self.adj: List[List[Tuple[int, int, int]]] = [
            [] for __ in node_labels
        ]
        for src, dst, elabel in edges:
            self.adj[src].append((dst, elabel, 0))
            self.adj[dst].append((src, elabel, 1))


class MiningDB:
    """The mining database: interning tables + per-DFG mined graphs."""

    def __init__(self, dfgs: Sequence[DFG]):
        self.dfgs = list(dfgs)
        label_set: Set[str] = set()
        kind_set: Set[str] = set()
        for dfg in self.dfgs:
            label_set.update(dfg.labels)
            kind_set.update(k for (__, ___, k) in dfg.edges)
        self.node_labels = sorted(label_set)
        self.edge_kinds = sorted(kind_set)
        self._label_id = {s: i for i, s in enumerate(self.node_labels)}
        self._kind_id = {s: i for i, s in enumerate(self.edge_kinds)}
        self.graphs: List[_MinedGraph] = []
        for dfg in self.dfgs:
            nodes = [self._label_id[s] for s in dfg.labels]
            edges = [
                (s, d, self._kind_id[k]) for (s, d, k) in sorted(dfg.edges)
            ]
            self.graphs.append(_MinedGraph(nodes, edges))

    def label_str(self, label_id: int) -> str:
        return self.node_labels[label_id]

    def kind_str(self, kind_id: int) -> str:
        return self.edge_kinds[kind_id]


@dataclass
class Fragment:
    """A frequent fragment: its canonical code and all its occurrences.

    ``support`` follows the discovering miner's frequency semantics —
    the number of database graphs for DgSpan, the number of distinct
    (deduplicated) embeddings for Edgar.  The extraction driver
    re-evaluates candidates with the exact non-overlapping count.
    """

    code: DFSCode
    node_labels: List[str]
    edges: List[Tuple[int, int, str]]
    embeddings: List[Embedding]
    support: int

    @property
    def num_nodes(self) -> int:
        return len(self.node_labels)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def __repr__(self) -> str:
        return (
            f"Fragment(nodes={self.num_nodes}, support={self.support}, "
            f"labels={self.node_labels})"
        )


class DgSpan:
    """Directed gSpan with graph-based frequency.

    Parameters
    ----------
    min_support:
        Minimum frequency (miner-specific semantics) for a fragment to
        be reported and extended.
    min_nodes / max_nodes:
        Fragment size window.  Growth stops at *max_nodes* (procedural
        abstraction candidates are small; the window bounds the
        exponential lattice).
    max_embeddings:
        Safety valve against factorial blow-up on highly symmetric
        fragments; branches whose embedding list exceeds the cap are
        truncated (a warning counter is kept in ``truncated_branches``).
    """

    def __init__(
        self,
        min_support: int = 2,
        min_nodes: int = 2,
        max_nodes: int = 12,
        max_embeddings: int = 4000,
    ):
        self.min_support = min_support
        self.min_nodes = min_nodes
        self.max_nodes = max_nodes
        self.max_embeddings = max_embeddings
        self.truncated_branches = 0
        self.visited_nodes = 0  # lattice nodes expanded (for benches)
        #: PA-specific embedding pruning tallies, split by cause (only
        #: Edgar increments them; defined here so the driver's ledger
        #: emission reads them uniformly off either miner).
        self.pruned_never_convex = 0
        self.pruned_cyclic = 0
        #: Optional search-driver hook: called with an upper bound on the
        #: subtree's (fragment size, non-overlapping occurrence count);
        #: returning True prunes the subtree.  The PA driver uses it to
        #: cut every branch that cannot beat the current best candidate
        #: (both quantities are antimonotone along lattice edges, so the
        #: prune is exact for the "find the best extraction" query).
        self.prune_subtree = None
        #: Optional streaming sink; when set, frequent fragments are
        #: passed here instead of being accumulated in a list.
        self.on_fragment = None
        #: Optional ``time.monotonic()`` deadline; the search unwinds
        #: cleanly when it passes (partial results remain valid — every
        #: reported fragment was genuinely frequent).  The active run
        #: governor is consulted alongside it, so an interrupt or a
        #: governor-level budget unwinds through the same clean path.
        self.deadline = None
        self.deadline_hit = False
        self._governor = _governor.current()

    # ------------------------------------------------------------------
    # frequency semantics (overridden by Edgar)
    # ------------------------------------------------------------------
    def _is_frequent(self, db: MiningDB, embeddings: List[Embedding]) -> bool:
        return len({e.graph for e in embeddings}) >= self.min_support

    def _support(self, db: MiningDB, embeddings: List[Embedding]) -> int:
        return len({e.graph for e in embeddings})

    def _filter_embeddings(
        self, db: MiningDB, code: DFSCode, embeddings: List[Embedding]
    ) -> List[Embedding]:
        """Hook for PA-specific embedding pruning (Edgar)."""
        return embeddings

    def _occurrence_bound(
        self, db: MiningDB, code: DFSCode, embeddings: List[Embedding]
    ) -> int:
        """Sound upper bound on usable (disjoint) occurrences.

        Disjoint occurrences of an *n*-node fragment inside one graph
        can never exceed ``graph nodes // n`` — a far tighter bound than
        the raw embedding count when occurrences overlap heavily (the
        giant-unrolled-block case), and still antimonotone because
        descendants only grow *n* and shrink the embedding set.
        """
        size = max(1, code_num_nodes(code))
        per_graph: Dict[int, int] = {}
        for emb in dedupe_by_node_set(embeddings):
            per_graph[emb.graph] = per_graph.get(emb.graph, 0) + 1
        return sum(
            min(count, len(db.graphs[gid].nodes) // size)
            for gid, count in per_graph.items()
        )

    # ------------------------------------------------------------------
    def mine(self, dfgs: Sequence[DFG]) -> List[Fragment]:
        """Return all frequent fragments of the database."""
        fault("mine.pass")
        db = MiningDB(dfgs)
        # visited_nodes and truncated_branches accumulate across calls
        # (the driver mines the full graph and the flow projection with
        # one miner instance and reads the totals afterwards)
        self.deadline_hit = False
        self._governor = _governor.current()
        results: List[Fragment] = []

        seeds: Dict[EdgeTuple, List[Embedding]] = {}
        for gid, graph in enumerate(db.graphs):
            for src, dst, elabel in graph.edges:
                for a, b, direction in ((src, dst, 0), (dst, src, 1)):
                    tup = (
                        0, 1, graph.nodes[a], direction, elabel,
                        graph.nodes[b],
                    )
                    seeds.setdefault(tup, []).append(
                        Embedding(gid, (a, b))
                    )
        # Exploration order: seeds spanning several graphs first (their
        # candidates are cheap to confirm and raise the PA driver's
        # benefit floor early), then by embedding count.  Single-graph
        # seeds — e.g. the inside of one giant unrolled block, where
        # embeddings overlap heavily and extraction rarely pays — are
        # visited last, under an already-high floor and, when a deadline
        # is set, only with leftover budget.  Canonical-form
        # deduplication makes the result set independent of sibling
        # order.
        def seed_order(tup):
            embeddings = seeds[tup]
            graphs = len({e.graph for e in embeddings})
            return (-graphs, -len(embeddings), edge_sort_key(tup))

        visited_before = self.visited_nodes
        truncated_before = self.truncated_branches
        try:
            with _TELEMETRY.span("mining.mine", graphs=len(db.graphs),
                                 seeds=len(seeds),
                                 max_nodes=self.max_nodes):
                for tup in sorted(seeds, key=seed_order):
                    code = (tup,)
                    if is_min(code):
                        self._search(db, code, seeds[tup], results)
        except _DeadlineReached:
            self.deadline_hit = True
            _TELEMETRY.count("mining.deadline_hits")
        if _LEDGER.enabled:
            _LEDGER.emit(
                "mine.pass",
                engine=type(self).__name__.lower(),
                graphs=len(db.graphs),
                seeds=len(seeds),
                max_nodes=self.max_nodes,
                lattice_nodes=self.visited_nodes - visited_before,
                truncated_branches=(
                    self.truncated_branches - truncated_before
                ),
                deadline_hit=self.deadline_hit,
            )
        return results

    # ------------------------------------------------------------------
    def _search(
        self,
        db: MiningDB,
        code: DFSCode,
        embeddings: List[Embedding],
        results: List[Fragment],
    ) -> None:
        fault("mine.search")
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise _DeadlineReached
        if self._governor.should_stop():
            raise _DeadlineReached
        if len(embeddings) > self.max_embeddings:
            # Safety valve against combinatorial blow-up inside large
            # blocks with many repeated labels: keep a deterministic
            # prefix (a sound undercount of frequency and benefit).
            self.truncated_branches += 1
            _TELEMETRY.count("mining.truncated_branches")
            embeddings = embeddings[: self.max_embeddings]
        embeddings = self._filter_embeddings(db, code, embeddings)
        if _TELEMETRY.enabled:
            support_started = time.perf_counter()
            frequent = self._is_frequent(db, embeddings)
            _TELEMETRY.observe(
                "mining.support_check_seconds",
                time.perf_counter() - support_started,
            )
        else:
            frequent = self._is_frequent(db, embeddings)
        if not frequent:
            _TELEMETRY.count("mining.infrequent_prunes")
            return
        if self.prune_subtree is not None:
            occurrence_bound = self._occurrence_bound(db, code, embeddings)
            if self.prune_subtree(self.max_nodes, occurrence_bound):
                _TELEMETRY.count("mining.subtree_prunes")
                return
        self.visited_nodes += 1
        if _TELEMETRY.enabled:
            _TELEMETRY.count("mining.lattice_nodes")
            _TELEMETRY.count(
                "mining.embeddings_enumerated", len(embeddings)
            )
        num_nodes = code_num_nodes(code)
        if num_nodes >= self.min_nodes:
            _TELEMETRY.count("mining.fragments_reported")
            fragment = self._fragment(db, code, embeddings)
            if self.on_fragment is not None:
                self.on_fragment(fragment)
            else:
                results.append(fragment)
        if num_nodes >= self.max_nodes:
            return

        children = self._extensions(db, code, embeddings)
        for tup in sorted(
            children, key=lambda t: (-len(children[t]), edge_sort_key(t))
        ):
            child = code + (tup,)
            if is_min(child):
                self._search(db, child, children[tup], results)

    # ------------------------------------------------------------------
    def _extensions(
        self, db: MiningDB, code: DFSCode, embeddings: List[Embedding]
    ) -> Dict[EdgeTuple, List[Embedding]]:
        """Rightmost-path extensions of *code* over every embedding."""
        extensions: Dict[EdgeTuple, List[Embedding]] = {}
        rm_path = rightmost_path(code)
        rightmost = rm_path[-1]
        rm_set = set(rm_path)
        for emb in embeddings:
            graph = db.graphs[emb.graph]
            mapping = emb.nodes
            mapped = set(mapping)
            used = _used_edges(code, mapping)
            # backward extensions: rightmost vertex -> rightmost path
            g_rightmost = mapping[rightmost]
            for other, elabel, direction in graph.adj[g_rightmost]:
                if other not in mapped:
                    continue
                back_to = mapping.index(other)
                if back_to == rightmost or back_to not in rm_set:
                    continue
                gedge = (
                    (g_rightmost, other, elabel)
                    if direction == 0
                    else (other, g_rightmost, elabel)
                )
                if gedge in used:
                    continue
                tup = (
                    rightmost, back_to, graph.nodes[g_rightmost],
                    direction, elabel, graph.nodes[other],
                )
                extensions.setdefault(tup, []).append(emb)
            # forward extensions: rightmost path -> new node
            new_index = len(mapping)
            for dfs_index in rm_path:
                g_node = mapping[dfs_index]
                for other, elabel, direction in graph.adj[g_node]:
                    if other in mapped:
                        continue
                    tup = (
                        dfs_index, new_index, graph.nodes[g_node],
                        direction, elabel, graph.nodes[other],
                    )
                    extensions.setdefault(tup, []).append(
                        Embedding(emb.graph, mapping + (other,))
                    )
        return extensions

    # ------------------------------------------------------------------
    def _fragment(
        self, db: MiningDB, code: DFSCode, embeddings: List[Embedding]
    ) -> Fragment:
        labels = [db.label_str(lab) for lab in node_labels_of(code)]
        edges = [
            (s, d, db.kind_str(k)) for (s, d, k) in graph_edges_of(code)
        ]
        unique = dedupe_by_node_set(embeddings)
        return Fragment(
            code=code,
            node_labels=labels,
            edges=edges,
            embeddings=unique,
            support=self._support(db, embeddings),
        )
