"""Instruction -> 32-bit word encoding.

The encodings follow the ARM architecture's A32 layout for the supported
subset (data processing, multiply, single and multiple data transfer,
branch, software interrupt).  Symbolic operands (branch labels,
``ldr =label`` pseudo loads) cannot be encoded directly: the layout phase
(:mod:`repro.binary.layout`) first rewrites them into pc-relative form
and passes the resolved word offsets in here.
"""

from __future__ import annotations

from repro.isa.instructions import (
    DATAPROC_COMPARE,
    DATAPROC_MOVE,
    DATAPROC_OPCODES,
    CONDITIONS,
    Instruction,
)
from repro.isa.operands import SHIFT_OPS, Imm, LabelRef, Reg, ShiftedReg
from repro.isa.registers import SP


class EncodingError(ValueError):
    """Raised when an instruction has no binary encoding."""


def encode_rotated_imm(value: int) -> int:
    """Encode *value* as an 8-bit immediate rotated right by an even amount.

    Returns the 12-bit ``rot<<8 | imm8`` field, or raises
    :class:`EncodingError` when the value is not representable (the caller
    is then expected to materialize it via a literal pool instead).
    """
    value &= 0xFFFFFFFF
    for rot in range(16):
        imm8 = ((value << (2 * rot)) | (value >> (32 - 2 * rot))) & 0xFFFFFFFF
        if imm8 < 256:
            return (rot << 8) | imm8
    raise EncodingError(f"immediate {value:#x} not encodable as rotated 8-bit")


def encodable_imm(value: int) -> bool:
    """True if *value* fits the rotated 8-bit immediate format."""
    try:
        encode_rotated_imm(value)
    except EncodingError:
        return False
    return True


def _encode_shifter(op: object) -> int:
    """Encode a flexible second operand into bits [25] and [11:0]."""
    if isinstance(op, Imm):
        return (1 << 25) | encode_rotated_imm(op.value)
    if isinstance(op, Reg):
        return op.num
    if isinstance(op, ShiftedReg):
        if op.amount == 0 and op.shift_op != "lsl":
            raise EncodingError("zero shift amount only valid for lsl")
        return (op.amount << 7) | (SHIFT_OPS.index(op.shift_op) << 5) | op.num
    raise EncodingError(f"bad flexible operand: {op!r}")


def encode(insn: Instruction, branch_offset_words: int | None = None) -> int:
    """Encode *insn* into its 32-bit word.

    ``branch_offset_words`` is the signed word distance ``target - (pc+8)``
    for ``b``/``bl``; it must be supplied by the layout phase.
    """
    cond = CONDITIONS.index(insn.cond) << 28
    m, ops = insn.mnemonic, insn.operands

    if m in DATAPROC_OPCODES:
        opcode = DATAPROC_OPCODES.index(m) << 21
        s_bit = (1 << 20) if insn.set_flags else 0
        if m in DATAPROC_MOVE:
            rn, rd, flex = 0, ops[0].num, ops[1]
        elif m in DATAPROC_COMPARE:
            rn, rd, flex = ops[0].num, 0, ops[1]
            s_bit = 1 << 20
        else:
            rd, rn, flex = ops[0].num, ops[1].num, ops[2]
        return cond | opcode | s_bit | (rn << 16) | (rd << 12) | _encode_shifter(flex)

    if m in ("mul", "mla"):
        s_bit = (1 << 20) if insn.set_flags else 0
        a_bit = (1 << 21) if m == "mla" else 0
        rd, rm, rs = ops[0].num, ops[1].num, ops[2].num
        rn = ops[3].num if m == "mla" else 0
        return (
            cond | a_bit | s_bit | (rd << 16) | (rn << 12) | (rs << 8) | 0x90 | rm
        )

    if m in ("ldr", "ldrb", "str", "strb"):
        mem = ops[1]
        if isinstance(mem, LabelRef):
            raise EncodingError(
                "ldr =label pseudo must be resolved to pc-relative form "
                "before encoding"
            )
        load = m.startswith("ldr")
        byte = m.endswith("b")
        word = cond | (1 << 26)
        word |= (1 << 20) if load else 0
        word |= (1 << 22) if byte else 0
        word |= (1 << 24) if mem.pre else 0
        word |= (1 << 21) if (mem.pre and mem.writeback) else 0
        word |= (ops[0].num << 12) | (mem.base << 16)
        if mem.index is not None:
            word |= (1 << 25) | (1 << 23) | mem.index
        else:
            offset = mem.offset
            if offset >= 0:
                word |= 1 << 23
            else:
                offset = -offset
            if offset >= 4096:
                raise EncodingError(f"ldr/str offset too large: {mem.offset}")
            word |= offset
        return word

    if m in ("push", "pop"):
        mask = 0
        for r in ops[0].regs:
            mask |= 1 << r
        word = cond | (0b100 << 25) | (1 << 21) | (SP << 16) | mask
        if m == "push":
            word |= 1 << 24  # P: decrement-before
        else:
            word |= (1 << 23) | (1 << 20)  # U: increment-after, L: load
        return word

    if m in ("b", "bl"):
        if branch_offset_words is None:
            raise EncodingError(f"{m} needs a resolved branch offset")
        if not -(1 << 23) <= branch_offset_words < (1 << 23):
            raise EncodingError(f"branch offset out of range: {branch_offset_words}")
        word = cond | (0b101 << 25) | (branch_offset_words & 0xFFFFFF)
        if m == "bl":
            word |= 1 << 24
        return word

    if m == "bx":
        return cond | 0x012FFF10 | ops[0].num

    if m == "swi":
        imm = ops[0].value
        if not 0 <= imm < (1 << 24):
            raise EncodingError(f"swi immediate out of range: {imm}")
        return cond | (0b1111 << 24) | imm

    raise EncodingError(f"cannot encode: {insn}")
