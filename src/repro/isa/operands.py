"""Operand object model.

Operands are small immutable value objects.  Their ``__str__`` produces
the exact assembler syntax, which doubles as the node label used by the
graph miner (two instructions match only if their text is identical,
matching the paper's "completely identical instructions" rule).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.isa.registers import reg_name

SHIFT_OPS = ("lsl", "lsr", "asr", "ror")


@dataclass(frozen=True)
class Reg:
    """A plain register operand."""

    num: int

    def __str__(self) -> str:
        return reg_name(self.num)


@dataclass(frozen=True)
class Imm:
    """An immediate operand, printed as ``#value``."""

    value: int

    def __str__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class ShiftedReg:
    """A register shifted by a constant amount, e.g. ``r1, lsl #2``."""

    num: int
    shift_op: str
    amount: int

    def __post_init__(self) -> None:
        if self.shift_op not in SHIFT_OPS:
            raise ValueError(f"bad shift op: {self.shift_op!r}")
        if not 0 <= self.amount < 32:
            raise ValueError(f"bad shift amount: {self.amount}")

    def __str__(self) -> str:
        return f"{reg_name(self.num)}, {self.shift_op} #{self.amount}"


@dataclass(frozen=True)
class Mem:
    """A load/store address operand.

    ``[base, #offset]``            pre-indexed (``pre=True``), no writeback
    ``[base, #offset]!``           pre-indexed with base writeback
    ``[base], #offset``            post-indexed (always writes back)
    ``[base, index]``              register offset (pre-indexed)
    """

    base: int
    offset: int = 0
    index: int | None = None
    pre: bool = True
    writeback: bool = False

    def __post_init__(self) -> None:
        if not self.pre and not self.writeback:
            # Post-indexed addressing always updates the base register.
            object.__setattr__(self, "writeback", True)

    @property
    def offset_str(self) -> str:
        if self.index is not None:
            return reg_name(self.index)
        return f"#{self.offset}"

    def __str__(self) -> str:
        base = reg_name(self.base)
        if self.pre:
            if self.index is None and self.offset == 0 and not self.writeback:
                return f"[{base}]"
            bang = "!" if self.writeback else ""
            return f"[{base}, {self.offset_str}]{bang}"
        return f"[{base}], {self.offset_str}"


@dataclass(frozen=True)
class RegList:
    """A register list for ``ldm``/``stm``, printed ``{r4, r5, lr}``."""

    regs: Tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "regs", tuple(sorted(set(self.regs))))
        if not self.regs:
            raise ValueError("empty register list")

    def __str__(self) -> str:
        return "{" + ", ".join(reg_name(r) for r in self.regs) + "}"


@dataclass(frozen=True)
class LabelRef:
    """A symbolic reference to a label.

    Used as the target of branches and as the payload of the ``ldr rX,
    =label`` pseudo-instruction that the loader synthesizes from
    pc-relative literal-pool loads (paper §2.1 steps 3-4: once labels are
    introduced the code is fully independent of concrete addresses).
    """

    name: str

    def __str__(self) -> str:
        return self.name


Operand = object  # documentation alias; operands are duck-typed value objects
