"""Two-way assembler for the ARM subset.

``parse_instruction`` parses exactly the syntax that
``str(Instruction)`` produces, so the instruction text round-trips.
``parse_program`` additionally understands labels, comments and the small
set of data directives (``.word``, ``.space``, ``.global``, ``.text``,
``.data``) that the mini-C compiler and the test suite use.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Set, Union

from repro.isa.instructions import (
    ALL_MNEMONICS,
    CONDITIONS,
    DATAPROC_COMPARE,
    Instruction,
    InstructionError,
)
from repro.isa.operands import (
    SHIFT_OPS,
    Imm,
    LabelRef,
    Mem,
    Reg,
    RegList,
    ShiftedReg,
)
from repro.isa.registers import is_reg_name, reg_num


class AssemblerError(ValueError):
    """Raised on unparsable assembly text."""


# Mnemonics that accept the trailing ``s`` (set flags) suffix.
_S_SUFFIX_OK = frozenset(
    {
        "and", "eor", "sub", "rsb", "add", "adc", "sbc", "rsc",
        "orr", "bic", "mov", "mvn", "mul", "mla",
    }
)

_LABEL_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")


def _split_mnemonic(word: str) -> tuple:
    """Split e.g. ``addeqs`` into ``('add', 'eq', True)``.

    Tries the longest base mnemonic first so ``ldrb`` does not parse as
    ``ldr`` + (invalid) suffix ``b``.
    """
    word = word.lower()
    candidates = sorted(
        (m for m in ALL_MNEMONICS if word.startswith(m)), key=len, reverse=True
    )
    for base in candidates:
        rest = word[len(base):]
        set_flags = False
        if rest.endswith("s") and base in _S_SUFFIX_OK:
            # ``s`` may follow the condition (``addeqs``); peel it last.
            maybe_cond = rest[:-1]
            if maybe_cond == "" or maybe_cond in CONDITIONS:
                rest_wo_s, set_flags = maybe_cond, True
            else:
                rest_wo_s = rest
        else:
            rest_wo_s = rest
        if rest_wo_s == "":
            return base, "al", set_flags
        if rest_wo_s in CONDITIONS:
            return base, rest_wo_s, set_flags
    raise AssemblerError(f"unknown mnemonic: {word!r}")


def _split_operands(text: str) -> List[str]:
    """Split an operand string on top-level commas.

    Commas inside ``[...]`` and ``{...}`` do not separate operands.
    """
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in text:
        if ch in "[{":
            depth += 1
        elif ch in "]}":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    last = "".join(current).strip()
    if last:
        parts.append(last)
    # Re-attach shift specifications ("r1, lsl #2") to the preceding
    # register token: they are one operand in the object model.
    merged: List[str] = []
    for part in parts:
        first_word = part.split(None, 1)[0].lower() if part else ""
        if merged and first_word in SHIFT_OPS:
            merged[-1] = merged[-1] + ", " + part
        else:
            merged.append(part)
    return merged


def _parse_imm(text: str) -> int:
    text = text.strip()
    if text.startswith("#"):
        text = text[1:]
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError(f"bad immediate: {text!r}") from None


def _parse_reglist(text: str) -> RegList:
    inner = text.strip()[1:-1]
    regs: List[int] = []
    for tok in inner.split(","):
        tok = tok.strip()
        if not tok:
            continue
        if "-" in tok:
            lo_s, hi_s = tok.split("-", 1)
            lo, hi = reg_num(lo_s), reg_num(hi_s)
            if hi < lo:
                raise AssemblerError(f"bad register range: {tok!r}")
            regs.extend(range(lo, hi + 1))
        else:
            regs.append(reg_num(tok))
    return RegList(tuple(regs))


def _parse_mem(text: str) -> Mem:
    text = text.strip()
    writeback = text.endswith("!")
    if writeback:
        text = text[:-1].rstrip()
    if text.endswith("]"):
        # Pre-indexed: [base] or [base, off]
        inner = text[1:-1]
        parts = [p.strip() for p in inner.split(",")]
        if len(parts) > 2:
            raise AssemblerError(
                f"scaled register offsets are outside the supported subset: "
                f"{text!r}"
            )
        base = reg_num(parts[0])
        if len(parts) == 1:
            return Mem(base, 0, pre=True, writeback=writeback)
        off = parts[1]
        if is_reg_name(off):
            return Mem(base, 0, index=reg_num(off), pre=True, writeback=writeback)
        return Mem(base, _parse_imm(off), pre=True, writeback=writeback)
    # Post-indexed: [base], off
    m = re.match(r"^\[\s*([a-z0-9]+)\s*\]\s*,\s*(.+)$", text, re.IGNORECASE)
    if not m:
        raise AssemblerError(f"bad memory operand: {text!r}")
    base = reg_num(m.group(1))
    off = m.group(2).strip()
    if is_reg_name(off):
        return Mem(base, 0, index=reg_num(off), pre=False)
    return Mem(base, _parse_imm(off), pre=False)


def _parse_operand(text: str, branch_target: bool = False) -> object:
    text = text.strip()
    if not text:
        raise AssemblerError("empty operand")
    if text.startswith("["):
        return _parse_mem(text)
    if text.startswith("{"):
        return _parse_reglist(text)
    if text.startswith("#"):
        return Imm(_parse_imm(text))
    if text.startswith("="):
        return LabelRef(text[1:].strip())
    if "," in text:
        reg_part, shift_part = text.split(",", 1)
        shift_part = shift_part.strip()
        m = re.match(r"^(lsl|lsr|asr|ror)\s+#(-?\w+)$", shift_part, re.IGNORECASE)
        if not m:
            raise AssemblerError(f"bad shifted register: {text!r}")
        return ShiftedReg(
            reg_num(reg_part), m.group(1).lower(), int(m.group(2), 0)
        )
    if is_reg_name(text):
        return Reg(reg_num(text))
    if branch_target and _LABEL_RE.match(text):
        return LabelRef(text)
    raise AssemblerError(f"bad operand: {text!r}")


def parse_instruction(text: str) -> Instruction:
    """Parse one instruction from its assembler text."""
    text = text.strip()
    if not text:
        raise AssemblerError("empty instruction")
    parts = text.split(None, 1)
    mnemonic, cond, set_flags = _split_mnemonic(parts[0])
    if mnemonic in DATAPROC_COMPARE:
        set_flags = True
    operand_text = parts[1] if len(parts) > 1 else ""
    if not operand_text:
        raise AssemblerError(f"{mnemonic} needs operands")
    branch_target = mnemonic in ("b", "bl")
    if mnemonic in ("ldr", "ldrb", "str", "strb"):
        # The post-indexed form "[base], #off" contains a top-level comma;
        # split off the destination register and parse the rest as one
        # address operand.
        if "," not in operand_text:
            raise AssemblerError(f"{mnemonic} needs two operands")
        rd_text, addr_text = operand_text.split(",", 1)
        operands = (
            _parse_operand(rd_text),
            _parse_operand(addr_text),
        )
    else:
        operands = tuple(
            _parse_operand(tok, branch_target=branch_target)
            for tok in _split_operands(operand_text)
        )
    try:
        return Instruction(mnemonic, operands, cond=cond,
                           set_flags=set_flags)
    except InstructionError as exc:
        raise AssemblerError(str(exc)) from exc


# ----------------------------------------------------------------------
# program-level items
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Label:
    """A position marker in a section."""

    name: str

    def __str__(self) -> str:
        return f"{self.name}:"


@dataclass(frozen=True)
class DataWord:
    """A 32-bit literal datum, possibly a label address (jump tables)."""

    value: Union[int, LabelRef]

    def __str__(self) -> str:
        if isinstance(self.value, LabelRef):
            return f".word {self.value}"
        return f".word {self.value}"


@dataclass(frozen=True)
class DataSpace:
    """*words* zero-initialized 32-bit words of reserved storage."""

    words: int

    def __str__(self) -> str:
        return f".space {self.words * 4}"


Item = Union[Label, Instruction, DataWord, DataSpace]


@dataclass
class AsmModule:
    """A parsed assembly module: text items, data items, exported names."""

    text: List[Item] = field(default_factory=list)
    data: List[Item] = field(default_factory=list)
    globals: Set[str] = field(default_factory=set)

    def render(self) -> str:
        """Pretty-print the module back to assembler text."""
        lines: List[str] = [".text"]
        for name in sorted(self.globals):
            lines.append(f".global {name}")
        for item in self.text:
            if isinstance(item, Label):
                lines.append(str(item))
            else:
                lines.append("    " + str(item))
        if self.data:
            lines.append(".data")
            for item in self.data:
                if isinstance(item, Label):
                    lines.append(str(item))
                else:
                    lines.append("    " + str(item))
        return "\n".join(lines) + "\n"


def parse_program(source: str) -> AsmModule:
    """Parse a whole assembly module (labels, directives, instructions)."""
    module = AsmModule()
    section = module.text
    for raw_line in source.splitlines():
        line = raw_line.split("@", 1)[0].split(";", 1)[0].strip()
        if not line:
            continue
        while line:
            m = re.match(r"^([A-Za-z_.$][A-Za-z0-9_.$]*)\s*:\s*(.*)$", line)
            if not m:
                break
            section.append(Label(m.group(1)))
            line = m.group(2).strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split(None, 1)
            directive = parts[0]
            arg = parts[1].strip() if len(parts) > 1 else ""
            if directive == ".text":
                section = module.text
            elif directive == ".data":
                section = module.data
            elif directive == ".global":
                module.globals.add(arg)
            elif directive == ".word":
                for tok in arg.split(","):
                    tok = tok.strip()
                    try:
                        section.append(DataWord(int(tok, 0)))
                    except ValueError:
                        section.append(DataWord(LabelRef(tok)))
            elif directive == ".space":
                nbytes = int(arg, 0)
                if nbytes % 4:
                    raise AssemblerError(".space must be word aligned")
                section.append(DataSpace(nbytes // 4))
            elif directive == ".align":
                pass  # everything is word aligned already
            else:
                raise AssemblerError(f"unknown directive: {directive}")
            continue
        section.append(parse_instruction(line))
    return module
