"""The instruction object model and per-mnemonic semantics metadata.

An :class:`Instruction` is an immutable value object.  Its text rendering
(``str(insn)``) is the *node label* used throughout the system: the
assembler parses it back, the DFG builder hashes it, and the miner
matches fragments on it.  Two instructions are "the same" for procedural
abstraction exactly when their text is identical (paper §5: exact
matching; see :mod:`repro.pa.canonical` for the fuzzy variant).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

from repro.isa.operands import Imm, LabelRef, Mem, Reg, RegList, ShiftedReg
from repro.isa.registers import LR, PC, SP


class InstructionError(ValueError):
    """Raised for malformed instructions."""


#: ARM condition codes in encoding order (0b0000 .. 0b1110).
CONDITIONS = (
    "eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc",
    "hi", "ls", "ge", "lt", "gt", "le", "al",
)

#: Data-processing mnemonics in ARM opcode-field order (0b0000 .. 0b1111).
DATAPROC_OPCODES = (
    "and", "eor", "sub", "rsb", "add", "adc", "sbc", "rsc",
    "tst", "teq", "cmp", "cmn", "orr", "mov", "bic", "mvn",
)

#: Data-processing mnemonics taking (rd, rn, op2).
DATAPROC_3OP = frozenset(
    {"and", "eor", "sub", "rsb", "add", "adc", "sbc", "rsc", "orr", "bic"}
)
#: Data-processing mnemonics taking (rd, op2).
DATAPROC_MOVE = frozenset({"mov", "mvn"})
#: Comparison mnemonics taking (rn, op2); these always set the flags.
DATAPROC_COMPARE = frozenset({"tst", "teq", "cmp", "cmn"})
#: Mnemonics whose result depends on the incoming carry flag.
CARRY_READERS = frozenset({"adc", "sbc", "rsc"})

LOADS = frozenset({"ldr", "ldrb"})
STORES = frozenset({"str", "strb"})
MULTIPLIES = frozenset({"mul", "mla"})
BRANCHES = frozenset({"b", "bl", "bx"})
BLOCK_TRANSFERS = frozenset({"push", "pop"})

ALL_MNEMONICS = (
    DATAPROC_3OP
    | DATAPROC_MOVE
    | DATAPROC_COMPARE
    | LOADS
    | STORES
    | MULTIPLIES
    | BRANCHES
    | BLOCK_TRANSFERS
    | {"swi"}
)


@dataclass(frozen=True)
class Instruction:
    """One ARM-subset machine instruction.

    Parameters
    ----------
    mnemonic:
        Base mnemonic without condition or ``s`` suffix, e.g. ``"add"``.
    operands:
        Tuple of operand value objects.
    cond:
        Condition code; ``"al"`` (always) by default.
    set_flags:
        True for the ``s`` suffix (update NZCV from the result).
    """

    mnemonic: str
    operands: Tuple[object, ...] = field(default_factory=tuple)
    cond: str = "al"
    set_flags: bool = False

    def __post_init__(self) -> None:
        if self.mnemonic not in ALL_MNEMONICS:
            raise InstructionError(f"unknown mnemonic: {self.mnemonic!r}")
        if self.cond not in CONDITIONS:
            raise InstructionError(f"unknown condition: {self.cond!r}")
        object.__setattr__(self, "operands", tuple(self.operands))
        self._check_shape()

    # ------------------------------------------------------------------
    # shape validation
    # ------------------------------------------------------------------
    def _check_shape(self) -> None:
        m, ops = self.mnemonic, self.operands

        def need(n: int) -> None:
            if len(ops) != n:
                raise InstructionError(f"{m} takes {n} operands, got {len(ops)}")

        if m in DATAPROC_3OP:
            need(3)
            self._need_reg(0)
            self._need_reg(1)
            self._need_flex(2)
        elif m in DATAPROC_MOVE:
            need(2)
            self._need_reg(0)
            self._need_flex(1)
        elif m in DATAPROC_COMPARE:
            need(2)
            self._need_reg(0)
            self._need_flex(1)
            if not self.set_flags:
                object.__setattr__(self, "set_flags", True)
        elif m == "mul":
            need(3)
            for i in range(3):
                self._need_reg(i)
        elif m == "mla":
            need(4)
            for i in range(4):
                self._need_reg(i)
        elif m in LOADS | STORES:
            need(2)
            self._need_reg(0)
            if not isinstance(ops[1], (Mem, LabelRef)):
                raise InstructionError(f"{m} needs a memory or =label operand")
            if isinstance(ops[1], LabelRef) and m != "ldr":
                raise InstructionError("only ldr supports the =label pseudo form")
        elif m in BLOCK_TRANSFERS:
            need(1)
            if not isinstance(ops[0], RegList):
                raise InstructionError(f"{m} needs a register list")
        elif m in ("b", "bl"):
            need(1)
            if not isinstance(ops[0], LabelRef):
                raise InstructionError(f"{m} needs a label target")
        elif m == "bx":
            need(1)
            self._need_reg(0)
        elif m == "swi":
            need(1)
            if not isinstance(ops[0], Imm):
                raise InstructionError("swi needs an immediate")

    def _need_reg(self, i: int) -> None:
        if not isinstance(self.operands[i], Reg):
            raise InstructionError(
                f"{self.mnemonic} operand {i} must be a register, "
                f"got {self.operands[i]!r}"
            )

    def _need_flex(self, i: int) -> None:
        if not isinstance(self.operands[i], (Reg, Imm, ShiftedReg)):
            raise InstructionError(
                f"{self.mnemonic} operand {i} must be a register, immediate "
                f"or shifted register, got {self.operands[i]!r}"
            )

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        name = self.mnemonic
        if self.cond != "al":
            name += self.cond
        if self.set_flags and self.mnemonic not in DATAPROC_COMPARE:
            name += "s"
        if not self.operands:
            return name
        if self.mnemonic == "ldr" and isinstance(self.operands[1], LabelRef):
            return f"{name} {self.operands[0]}, ={self.operands[1]}"
        return f"{name} " + ", ".join(str(op) for op in self.operands)

    # ------------------------------------------------------------------
    # classification helpers
    # ------------------------------------------------------------------
    @property
    def is_load(self) -> bool:
        return self.mnemonic in LOADS or self.mnemonic == "pop"

    @property
    def is_store(self) -> bool:
        return self.mnemonic in STORES or self.mnemonic == "push"

    @property
    def is_memory(self) -> bool:
        """True if the instruction accesses data memory.

        The ``ldr rX, =label`` pseudo form materializes an address and is
        resolved from a literal pool, i.e. from constant memory; it does
        not participate in data-memory ordering.
        """
        if self.mnemonic == "ldr" and isinstance(self.operands[1], LabelRef):
            return False
        return self.is_load or self.is_store

    @property
    def is_branch(self) -> bool:
        return self.mnemonic in BRANCHES

    @property
    def is_call(self) -> bool:
        return self.mnemonic == "bl"

    @property
    def is_return(self) -> bool:
        """True for the idioms that return from a procedure."""
        if self.mnemonic == "bx" and self.operands[0] == Reg(LR):
            return True
        if (
            self.mnemonic == "mov"
            and self.operands[0] == Reg(PC)
            and self.operands[1] == Reg(LR)
        ):
            return True
        if self.mnemonic == "pop" and PC in self.operands[0].regs:
            return True
        return False

    @property
    def is_terminator(self) -> bool:
        """True if control does not (necessarily) fall through.

        ``bl`` is *not* a terminator: control returns to the next
        instruction, so a call may appear mid-block.
        """
        if self.mnemonic in ("b", "bx"):
            return True
        if self.is_return:
            return True
        if self.writes_pc:
            return True
        return False

    @property
    def is_conditional(self) -> bool:
        return self.cond != "al"

    @property
    def writes_pc(self) -> bool:
        return PC in self.regs_written()

    @property
    def label_target(self) -> str | None:
        """Target label of a ``b``/``bl`` instruction, else None."""
        if self.mnemonic in ("b", "bl"):
            return self.operands[0].name
        return None

    # ------------------------------------------------------------------
    # register read/write sets (the raw material of the DFG builder)
    # ------------------------------------------------------------------
    def regs_read(self) -> FrozenSet[int]:
        """Registers whose incoming value the instruction consumes."""
        m, ops = self.mnemonic, self.operands
        reads: set[int] = set()

        def flex(op: object) -> None:
            if isinstance(op, Reg):
                reads.add(op.num)
            elif isinstance(op, ShiftedReg):
                reads.add(op.num)

        if m in DATAPROC_3OP:
            reads.add(ops[1].num)
            flex(ops[2])
        elif m in DATAPROC_MOVE:
            flex(ops[1])
        elif m in DATAPROC_COMPARE:
            reads.add(ops[0].num)
            flex(ops[1])
        elif m == "mul":
            reads.add(ops[1].num)
            reads.add(ops[2].num)
        elif m == "mla":
            reads.add(ops[1].num)
            reads.add(ops[2].num)
            reads.add(ops[3].num)
        elif m in LOADS:
            if isinstance(ops[1], Mem):
                reads.add(ops[1].base)
                if ops[1].index is not None:
                    reads.add(ops[1].index)
        elif m in STORES:
            reads.add(ops[0].num)
            reads.add(ops[1].base)
            if ops[1].index is not None:
                reads.add(ops[1].index)
        elif m == "push":
            reads.add(SP)
            reads.update(ops[0].regs)
        elif m == "pop":
            reads.add(SP)
        elif m == "bx":
            reads.add(ops[0].num)
        elif m == "bl":
            # Argument registers: the callee may consume r0-r3 and sp.
            # Modelling the full calling convention keeps the DFG (and
            # therefore extraction order) conservative around calls.
            reads.update((0, 1, 2, 3, SP))
        elif m == "swi":
            reads.update((0, 1, 2, 3))
        return frozenset(reads)

    def regs_written(self) -> FrozenSet[int]:
        """Registers the instruction (re)defines."""
        m, ops = self.mnemonic, self.operands
        writes: set[int] = set()
        if m in DATAPROC_3OP or m in DATAPROC_MOVE:
            writes.add(ops[0].num)
        elif m in ("mul", "mla"):
            writes.add(ops[0].num)
        elif m in LOADS:
            writes.add(ops[0].num)
            if isinstance(ops[1], Mem) and ops[1].writeback:
                writes.add(ops[1].base)
        elif m in STORES:
            if ops[1].writeback:
                writes.add(ops[1].base)
        elif m == "push":
            writes.add(SP)
        elif m == "pop":
            writes.add(SP)
            writes.update(ops[0].regs)
        elif m == "bl":
            # Scratch registers and lr are clobbered across a call.
            writes.update((0, 1, 2, 3, 12, LR))
        elif m == "swi":
            writes.add(0)
        return frozenset(writes)

    def reads_flags(self) -> bool:
        """True if the instruction's behaviour depends on NZCV."""
        if self.cond != "al":
            return True
        return self.mnemonic in CARRY_READERS

    def writes_flags(self) -> bool:
        """True if the instruction updates NZCV."""
        return self.set_flags
