"""ARM-subset instruction set architecture.

This package models the 32-bit ARM instruction subset that the paper's
post link-time optimizer operates on: data-processing instructions with
condition codes and optional flag setting, single and multiple load/store
(with pre/post indexing and base writeback), multiply, branches, and the
``swi`` software interrupt.  It provides:

* an object model for instructions and operands (:mod:`.instructions`,
  :mod:`.operands`),
* a two-way text assembler/pretty-printer (:mod:`.assembler`),
* real 32-bit binary encodings with an encoder and a decoder
  (:mod:`.encoder`, :mod:`.decoder`), so that the rewriting framework can
  start from nothing but a statically linked word image, exactly as the
  paper's framework does.
"""

from repro.isa.registers import (
    FP,
    LR,
    NUM_REGS,
    PC,
    SP,
    reg_name,
    reg_num,
)
from repro.isa.operands import (
    Imm,
    LabelRef,
    Mem,
    Reg,
    RegList,
    ShiftedReg,
)
from repro.isa.instructions import (
    CONDITIONS,
    Instruction,
    InstructionError,
)
from repro.isa.assembler import (
    AssemblerError,
    parse_instruction,
    parse_program,
)
from repro.isa.encoder import EncodingError, encode
from repro.isa.decoder import DecodingError, decode

__all__ = [
    "NUM_REGS",
    "SP",
    "LR",
    "PC",
    "FP",
    "reg_name",
    "reg_num",
    "Reg",
    "Imm",
    "ShiftedReg",
    "Mem",
    "RegList",
    "LabelRef",
    "Instruction",
    "InstructionError",
    "CONDITIONS",
    "AssemblerError",
    "parse_instruction",
    "parse_program",
    "encode",
    "decode",
    "EncodingError",
    "DecodingError",
]
