"""32-bit word -> Instruction decoding.

This is the entry point of the "pure post link-time" story: the rewriting
framework starts from nothing but a statically linked word image and
recovers the instruction stream with this decoder (paper §2.1 step 1).
Branch targets are rendered as synthetic ``loc_<address>`` labels so that
the recovered program is immediately address-independent (steps 3-4).

Words that do not match any supported encoding raise
:class:`DecodingError`; the loader treats them as interwoven data
(step 5).
"""

from __future__ import annotations

from repro.isa.instructions import (
    CONDITIONS,
    DATAPROC_COMPARE,
    DATAPROC_MOVE,
    DATAPROC_OPCODES,
    Instruction,
)
from repro.isa.operands import SHIFT_OPS, Imm, LabelRef, Mem, Reg, RegList, ShiftedReg
from repro.isa.registers import SP

from repro.resilience.errors import EXIT_INPUT, ReproError


class DecodingError(ReproError, ValueError):
    """Raised when a word does not decode to a supported instruction.

    A typed :class:`~repro.resilience.errors.ReproError`: one escaping
    to the CLI boundary means the input image contained an undecodable
    word where an instruction was required, which is an ``error[REPRO-
    IMAGE]`` diagnostic (exit 5), never a traceback.  The loader's
    speculative decode still catches it locally (undecodable words are
    reclassified as interwoven data), so only genuine failures escape.
    ``ValueError`` is kept in the bases for callers that catch it.
    """

    code = "REPRO-IMAGE"
    exit_code = EXIT_INPUT


def target_label(addr: int) -> str:
    """The synthetic label name used for a recovered branch target."""
    return f"loc_{addr:08x}"


def _decode_shifter(word: int) -> object:
    """Decode the flexible second operand from bits [25] and [11:0]."""
    if word & (1 << 25):
        rot = (word >> 8) & 0xF
        imm8 = word & 0xFF
        value = ((imm8 >> (2 * rot)) | (imm8 << (32 - 2 * rot))) & 0xFFFFFFFF
        return Imm(value)
    if word & (1 << 4):
        raise DecodingError("register-specified shift amounts are unsupported")
    amount = (word >> 7) & 0x1F
    shift_op = SHIFT_OPS[(word >> 5) & 0x3]
    rm = word & 0xF
    if amount == 0:
        if shift_op != "lsl":
            raise DecodingError(f"zero-amount {shift_op} shift is unsupported")
        return Reg(rm)
    return ShiftedReg(rm, shift_op, amount)


def decode(word: int, addr: int = 0) -> Instruction:
    """Decode one 32-bit *word* located at byte address *addr*.

    The address is needed to resolve the targets of pc-relative branches
    into symbolic labels.
    """
    word &= 0xFFFFFFFF
    cond_bits = word >> 28
    if cond_bits == 0b1111:
        raise DecodingError(f"unconditional-space word: {word:#010x}")
    cond = CONDITIONS[cond_bits]
    op_major = (word >> 25) & 0b111

    # bx: must be tested before data processing (it overlaps teq's space).
    if word & 0x0FFFFFF0 == 0x012FFF10:
        return Instruction("bx", (Reg(word & 0xF),), cond=cond)

    # Multiply: 000000AS .... 1001 ....
    if (word >> 22) & 0b111111 == 0 and (word >> 4) & 0xF == 0b1001:
        a_bit = bool(word & (1 << 21))
        s_bit = bool(word & (1 << 20))
        rd = (word >> 16) & 0xF
        rn = (word >> 12) & 0xF
        rs = (word >> 8) & 0xF
        rm = word & 0xF
        if a_bit:
            ops = (Reg(rd), Reg(rm), Reg(rs), Reg(rn))
            return Instruction("mla", ops, cond=cond, set_flags=s_bit)
        if rn != 0:
            raise DecodingError("mul with nonzero Rn field")
        return Instruction("mul", (Reg(rd), Reg(rm), Reg(rs)), cond=cond,
                           set_flags=s_bit)

    if op_major in (0b000, 0b001):
        opcode = (word >> 21) & 0xF
        mnemonic = DATAPROC_OPCODES[opcode]
        s_bit = bool(word & (1 << 20))
        rn = (word >> 16) & 0xF
        rd = (word >> 12) & 0xF
        flex = _decode_shifter(word)
        if mnemonic in DATAPROC_COMPARE:
            if not s_bit:
                raise DecodingError("compare without S bit (MRS/MSR space)")
            if rd != 0:
                raise DecodingError("compare with nonzero Rd field")
            return Instruction(mnemonic, (Reg(rn), flex), cond=cond)
        if mnemonic in DATAPROC_MOVE:
            if rn != 0:
                raise DecodingError(f"{mnemonic} with nonzero Rn field")
            return Instruction(mnemonic, (Reg(rd), flex), cond=cond,
                               set_flags=s_bit)
        return Instruction(mnemonic, (Reg(rd), Reg(rn), flex), cond=cond,
                           set_flags=s_bit)

    if op_major in (0b010, 0b011):
        load = bool(word & (1 << 20))
        byte = bool(word & (1 << 22))
        pre = bool(word & (1 << 24))
        up = bool(word & (1 << 23))
        wb = bool(word & (1 << 21))
        rn = (word >> 16) & 0xF
        rd = (word >> 12) & 0xF
        mnemonic = ("ldr" if load else "str") + ("b" if byte else "")
        if word & (1 << 25):
            if word & 0xFF0:
                raise DecodingError("shifted register offsets are unsupported")
            if not up:
                raise DecodingError("subtracted register offsets are unsupported")
            mem = Mem(rn, 0, index=word & 0xF, pre=pre,
                      writeback=(wb if pre else True))
        else:
            offset = word & 0xFFF
            if not up:
                offset = -offset
            if not pre and wb:
                raise DecodingError("post-indexed with W bit (LDRT space)")
            mem = Mem(rn, offset, pre=pre, writeback=(wb if pre else True))
        return Instruction(mnemonic, (Reg(rd), mem), cond=cond)

    if op_major == 0b100:
        load = bool(word & (1 << 20))
        pre = bool(word & (1 << 24))
        up = bool(word & (1 << 23))
        wb = bool(word & (1 << 21))
        rn = (word >> 16) & 0xF
        if word & (1 << 22):
            raise DecodingError("ldm/stm with S bit is unsupported")
        regs = tuple(r for r in range(16) if word & (1 << r))
        if rn != SP or not wb:
            raise DecodingError("only sp-based push/pop ldm/stm are supported")
        if load and not pre and up:
            return Instruction("pop", (RegList(regs),), cond=cond)
        if not load and pre and not up:
            return Instruction("push", (RegList(regs),), cond=cond)
        raise DecodingError("unsupported ldm/stm addressing mode")

    if op_major == 0b101:
        link = bool(word & (1 << 24))
        offset = word & 0xFFFFFF
        if offset & (1 << 23):
            offset -= 1 << 24
        target = addr + 8 + 4 * offset
        mnemonic = "bl" if link else "b"
        return Instruction(mnemonic, (LabelRef(target_label(target)),), cond=cond)

    if op_major == 0b111 and (word >> 24) & 0xF == 0b1111:
        return Instruction("swi", (Imm(word & 0xFFFFFF),), cond=cond)

    raise DecodingError(f"unsupported encoding: {word:#010x}")
