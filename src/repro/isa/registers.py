"""Register file model for the ARM subset.

The ARM architecture exposes sixteen 32-bit general purpose registers.
Three of them have a fixed role in the procedure call standard and are
given the conventional aliases ``sp`` (r13, stack pointer), ``lr`` (r14,
link register) and ``pc`` (r15, program counter).  ``fp`` (r11) is the
frame pointer alias used by our mini-C compiler.
"""

from __future__ import annotations

NUM_REGS = 16

FP = 11
SP = 13
LR = 14
PC = 15

_ALIASES = {"fp": FP, "sp": SP, "lr": LR, "pc": PC}
_ALIAS_BY_NUM = {FP: "fp", SP: "sp", LR: "lr", PC: "pc"}


def reg_name(num: int) -> str:
    """Return the canonical textual name of register *num*.

    Registers with a calling-convention role are printed with their alias
    (``sp``/``lr``/``pc``/``fp``); all others as ``rN``.
    """
    if not 0 <= num < NUM_REGS:
        raise ValueError(f"register number out of range: {num}")
    return _ALIAS_BY_NUM.get(num, f"r{num}")


def reg_num(name: str) -> int:
    """Parse a register name (``r0`` .. ``r15`` or an alias) to its number."""
    name = name.strip().lower()
    if name in _ALIASES:
        return _ALIASES[name]
    if name.startswith("r"):
        try:
            num = int(name[1:])
        except ValueError:
            raise ValueError(f"not a register name: {name!r}") from None
        if 0 <= num < NUM_REGS:
            return num
    raise ValueError(f"not a register name: {name!r}")


def is_reg_name(name: str) -> bool:
    """Return True if *name* parses as a register name."""
    try:
        reg_num(name)
    except ValueError:
        return False
    return True
