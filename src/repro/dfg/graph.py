"""The DFG data structure used by the miner.

A deliberately small, index-based directed multigraph: node *i* is the
*i*-th instruction of the originating basic block, so the original
program order is always recoverable from the node numbering — a property
both the collision detection and the extraction phase rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.isa.instructions import Instruction

#: Edge kinds.  ``d``: register read-after-write (true data flow),
#: ``m``: memory ordering, ``f``: flag flow, ``a``: register/flag
#: anti-dependence (write-after-read), ``o``: output dependence
#: (write-after-write).
EDGE_KINDS = ("d", "m", "f", "a", "o")

#: The default edge kinds visible to the subgraph miner: the full
#: dependence graph.  The paper's Fig. 9 legality check is performed on
#: the mined DFG itself, which is only sound when that graph carries
#: *all* dependencies — so anti- ("a") and output- ("o") dependencies
#: are part of the mined graph, not just the legality overlay.  Mining
#: on pure data flow ({"d", "m", "f"}) is available as an ablation.
MINED_KINDS = frozenset({"d", "m", "f", "a", "o"})

#: Ablation: pure data-flow edges only.
FLOW_KINDS = frozenset({"d", "m", "f"})

Edge = Tuple[int, int, str]


@dataclass
class DFG:
    """Dependence graph of one basic block.

    ``edges`` is the mined (matched) edge set; ``dep_edges`` the full
    constraint set used for legality.  ``edges`` is always a subset of
    ``dep_edges``.
    """

    labels: List[str]
    insns: List[Instruction]
    edges: Set[Edge]
    dep_edges: Set[Edge]
    origin: Tuple[str, int] = ("?", -1)

    #: lazily built adjacency caches
    _succ: Optional[List[List[Tuple[int, str]]]] = field(
        default=None, repr=False, compare=False
    )
    _pred: Optional[List[List[Tuple[int, str]]]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if len(self.labels) != len(self.insns):
            raise ValueError("labels and insns must align")
        for src, dst, kind in self.dep_edges:
            if not (0 <= src < len(self.labels) and 0 <= dst < len(self.labels)):
                raise ValueError(f"edge out of range: {(src, dst, kind)}")
            if src >= dst:
                raise ValueError(
                    f"dependence edge against program order: {(src, dst, kind)}"
                )
        if not self.edges <= self.dep_edges:
            raise ValueError("mined edges must be a subset of dep edges")

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.labels)

    def _build_adjacency(self) -> None:
        succ: List[List[Tuple[int, str]]] = [[] for __ in self.labels]
        pred: List[List[Tuple[int, str]]] = [[] for __ in self.labels]
        for src, dst, kind in sorted(self.edges):
            succ[src].append((dst, kind))
            pred[dst].append((src, kind))
        self._succ, self._pred = succ, pred

    def successors(self, node: int) -> List[Tuple[int, str]]:
        """Outgoing mined edges of *node* as ``(dst, kind)`` pairs."""
        if self._succ is None:
            self._build_adjacency()
        return self._succ[node]

    def predecessors(self, node: int) -> List[Tuple[int, str]]:
        """Incoming mined edges of *node* as ``(src, kind)`` pairs."""
        if self._pred is None:
            self._build_adjacency()
        return self._pred[node]

    def induced_dep_edges(self, nodes: Iterable[int]) -> Set[Edge]:
        """Full constraint edges between the given nodes."""
        node_set = set(nodes)
        return {
            (s, d, k)
            for (s, d, k) in self.dep_edges
            if s in node_set and d in node_set
        }

    def dep_successors(self, node: int) -> Set[int]:
        """Direct successors in the full constraint graph."""
        return {d for (s, d, __) in self.dep_edges if s == node}

    def dep_predecessors(self, node: int) -> Set[int]:
        return {s for (s, d, __) in self.dep_edges if d == node}

    # ------------------------------------------------------------------
    def in_degree(self, node: int, kinds: FrozenSet[str] = MINED_KINDS) -> int:
        return sum(1 for (s, d, k) in self.edges if d == node and k in kinds)

    def out_degree(self, node: int, kinds: FrozenSet[str] = MINED_KINDS) -> int:
        return sum(1 for (s, d, k) in self.edges if s == node and k in kinds)

    # ------------------------------------------------------------------
    def to_networkx(self, full: bool = False) -> "nx.MultiDiGraph":
        """Export to networkx (for tests, visualization, assertions)."""
        graph = nx.MultiDiGraph()
        for i, label in enumerate(self.labels):
            graph.add_node(i, label=label)
        for src, dst, kind in (self.dep_edges if full else self.edges):
            graph.add_edge(src, dst, kind=kind)
        return graph

    def __repr__(self) -> str:
        return (
            f"DFG(origin={self.origin}, nodes={self.num_nodes}, "
            f"edges={len(self.edges)}/{len(self.dep_edges)})"
        )
