"""Data-flow graphs of basic blocks (paper §2.1 step 6).

Every eligible basic block is turned into a directed acyclic dependence
graph whose nodes are instructions (labelled by their exact text) and
whose edges are dependencies between them.  The *mined* edge set — true
data flow: register read-after-write, memory ordering, flag flow — is
what the subgraph miner matches on; the *full* edge set additionally
contains register/flag anti- and output-dependencies and is what the
extraction phase uses to prove that a reordering or outlining is legal.
"""

from repro.dfg.graph import DFG, Edge
from repro.dfg.builder import build_dfg, build_dfgs
from repro.dfg.stats import degree_histogram, fanout_summary

__all__ = [
    "DFG",
    "Edge",
    "build_dfg",
    "build_dfgs",
    "degree_histogram",
    "fanout_summary",
]
