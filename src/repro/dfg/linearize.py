"""Linearization helpers: valid instruction orders of a block's DFG.

Any topological order of the full dependence graph — with the block's
final control transfer pinned last — is an execution-equivalent
re-sequencing of the block.  Both the mini-C compiler's scheduler (which
*creates* instruction-order variation) and the PA extractor (which must
re-linearize blocks after contracting a fragment) build on these
helpers.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Sequence, Set, Tuple

from repro.dfg.graph import DFG


class LinearizeError(RuntimeError):
    """Raised when ordering constraints are cyclic."""


def block_constraint_edges(dfg: DFG) -> Set[Tuple[int, int]]:
    """Ordering constraints of a whole block.

    The full dependence edges, plus "everything before the control
    transfer" when the block ends in one — a branch guards the execution
    of everything in front of it, so nothing may migrate past it.
    """
    edges = {(s, d) for (s, d, __) in dfg.dep_edges}
    if dfg.insns:
        last = dfg.insns[-1]
        if last.is_terminator or (last.is_branch and not last.is_call):
            final = dfg.num_nodes - 1
            edges.update((i, final) for i in range(final))
    return edges


def topological_order(
    n: int,
    edges: Iterable[Tuple[int, int]],
    priority: Sequence,
) -> List[int]:
    """Kahn's algorithm with a priority heap for deterministic output.

    ``priority[v]`` may be any comparable; ties between ready nodes are
    broken by taking the smallest priority first.
    """
    indeg = [0] * n
    succ: List[List[int]] = [[] for __ in range(n)]
    for s, d in edges:
        succ[s].append(d)
        indeg[d] += 1
    heap = [(priority[v], v) for v in range(n) if indeg[v] == 0]
    heapq.heapify(heap)
    out: List[int] = []
    while heap:
        __, v = heapq.heappop(heap)
        out.append(v)
        for w in succ[v]:
            indeg[w] -= 1
            if indeg[w] == 0:
                heapq.heappush(heap, (priority[w], w))
    if len(out) != n:
        raise LinearizeError("cyclic constraints during linearization")
    return out


def is_valid_order(dfg: DFG, order: Sequence[int]) -> bool:
    """Check that *order* is a permutation respecting all constraints."""
    if sorted(order) != list(range(dfg.num_nodes)):
        return False
    position = {node: k for k, node in enumerate(order)}
    return all(
        position[s] < position[d] for s, d in block_constraint_edges(dfg)
    )
