"""DFG shape statistics (paper Tables 2 and 3).

The paper explains graph-based PA's advantage through the fan shape of
the dependence graphs: if every node had in- and out-degree at most one,
the graphs would be plain chains and the suffix trie would find the same
duplicates.  These helpers reproduce the two measurements the paper
reports: the full in/out-degree histogram and the fraction of nodes with
fan-in or fan-out greater than one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple

from repro.dfg.graph import DFG, MINED_KINDS


@dataclass
class DegreeHistogram:
    """Degree counts bucketed as in paper Table 3: 0, 1, 2, 3, >= 4."""

    in_counts: Tuple[int, int, int, int, int]
    out_counts: Tuple[int, int, int, int, int]

    BUCKETS = ("0", "1", "2", "3", ">=4")

    @property
    def total_nodes(self) -> int:
        return sum(self.in_counts)


def degree_histogram(
    dfgs: Iterable[DFG], kinds: FrozenSet[str] = MINED_KINDS
) -> DegreeHistogram:
    """Bucketed in/out-degree histogram over all nodes of all DFGs."""
    in_buckets = [0] * 5
    out_buckets = [0] * 5
    for dfg in dfgs:
        indeg = [0] * dfg.num_nodes
        outdeg = [0] * dfg.num_nodes
        for src, dst, kind in dfg.edges:
            if kind in kinds:
                outdeg[src] += 1
                indeg[dst] += 1
        for node in range(dfg.num_nodes):
            in_buckets[min(indeg[node], 4)] += 1
            out_buckets[min(outdeg[node], 4)] += 1
    return DegreeHistogram(tuple(in_buckets), tuple(out_buckets))


@dataclass
class FanoutSummary:
    """Counts for paper Table 2."""

    high_degree: int  #: nodes with in-degree > 1 or out-degree > 1
    low_degree: int   #: all remaining nodes

    @property
    def total(self) -> int:
        return self.high_degree + self.low_degree

    @property
    def high_fraction(self) -> float:
        return self.high_degree / self.total if self.total else 0.0


def fanout_summary(
    dfgs: Iterable[DFG], kinds: FrozenSet[str] = MINED_KINDS
) -> FanoutSummary:
    """Count instructions with ``(deg_in | deg_out) > 1`` (Table 2)."""
    high = low = 0
    for dfg in dfgs:
        indeg = [0] * dfg.num_nodes
        outdeg = [0] * dfg.num_nodes
        for src, dst, kind in dfg.edges:
            if kind in kinds:
                outdeg[src] += 1
                indeg[dst] += 1
        for node in range(dfg.num_nodes):
            if indeg[node] > 1 or outdeg[node] > 1:
                high += 1
            else:
                low += 1
    return FanoutSummary(high, low)
