"""Dependence analysis: basic block -> DFG.

All instructions of a block are analysed to determine the dependencies
between them (paper §2.1 step 6).  Resources are the sixteen registers, a
FLAGS pseudo-register (NZCV) and a single conservative MEM location:

========  =========================================================
kind      meaning
========  =========================================================
``d``     register read-after-write (true data flow; mined)
``m``     memory read-after-write, store -> load (mined)
``f``     flag read-after-write, e.g. ``cmp`` -> ``bge`` (mined)
``a``     anti-dependence, read -> next write (legality only)
``o``     output dependence, write -> next write (legality only)
========  =========================================================

Calls (``bl``) and software interrupts are conservative barriers: they
read and write the argument registers per the calling convention (see
:meth:`Instruction.regs_read`), clobber the flags, and both read and
write memory.  Edges always point forward in program order, so the graph
is acyclic by construction.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.isa.instructions import Instruction

from repro.binary.program import BasicBlock, Module
from repro.dfg.graph import DFG, Edge, MINED_KINDS
from repro.telemetry import GLOBAL as _TELEMETRY

#: Pseudo-resources used alongside register numbers.
FLAGS = "flags"
MEM = "mem"


def _accesses(insn: Instruction) -> Tuple[Set[object], Set[object]]:
    """Return the (reads, writes) resource sets of one instruction."""
    reads: Set[object] = set(insn.regs_read())
    writes: Set[object] = set(insn.regs_written())
    if insn.reads_flags():
        reads.add(FLAGS)
    if insn.writes_flags():
        writes.add(FLAGS)
    if insn.is_memory:
        if insn.is_load:
            reads.add(MEM)
        if insn.is_store:
            writes.add(MEM)
    if insn.mnemonic in ("bl", "swi"):
        reads.add(MEM)
        writes.add(MEM)
        writes.add(FLAGS)
    return reads, writes


def _flow_kind(resource: object) -> str:
    if resource == FLAGS:
        return "f"
    if resource == MEM:
        return "m"
    return "d"


def build_dfg(
    block: BasicBlock,
    origin: Tuple[str, int] = ("?", -1),
    mined_kinds: FrozenSet[str] = MINED_KINDS,
) -> DFG:
    """Build the dependence graph of one basic block."""
    labels = [str(insn) for insn in block.instructions]
    dep_edges: Set[Edge] = set()

    last_writer: Dict[object, int] = {}
    readers_since: Dict[object, List[int]] = {}

    for i, insn in enumerate(block.instructions):
        reads, writes = _accesses(insn)
        for resource in reads:
            writer = last_writer.get(resource)
            if writer is not None:
                dep_edges.add((writer, i, _flow_kind(resource)))
            readers_since.setdefault(resource, []).append(i)
        for resource in writes:
            pending_readers = readers_since.get(resource, [])
            for reader in pending_readers:
                if reader != i:
                    dep_edges.add((reader, i, "a"))
            writer = last_writer.get(resource)
            intervening = any(r not in (i, writer) for r in pending_readers)
            if writer is not None and writer != i and not intervening:
                dep_edges.add((writer, i, "o"))
            last_writer[resource] = i
            readers_since[resource] = []

    edges = {(s, d, k) for (s, d, k) in dep_edges if k in mined_kinds}
    return DFG(
        labels=labels,
        insns=list(block.instructions),
        edges=edges,
        dep_edges=dep_edges,
        origin=origin,
    )


def build_dfgs(
    module: Module,
    min_nodes: int = 1,
    include_exempt: bool = False,
    mined_kinds: FrozenSet[str] = MINED_KINDS,
) -> List[DFG]:
    """Build the mining database: one DFG per eligible basic block.

    Blocks of PA-exempt functions (reached through function pointers or
    containing interwoven data; paper §2.1 step 5) are skipped unless
    *include_exempt* is set.
    """
    dfgs: List[DFG] = []
    with _TELEMETRY.span("dfg.build"):
        for func in module.functions:
            if func.pa_exempt and not include_exempt:
                continue
            for bi, block in enumerate(func.blocks):
                if len(block.instructions) < min_nodes:
                    continue
                dfgs.append(
                    build_dfg(block, origin=(func.name, bi),
                              mined_kinds=mined_kinds)
                )
    if _TELEMETRY.enabled:
        _TELEMETRY.count("dfg.builds")
        _TELEMETRY.count("dfg.graphs", len(dfgs))
        _TELEMETRY.count("dfg.nodes", sum(d.num_nodes for d in dfgs))
        _TELEMETRY.count("dfg.edges", sum(len(d.dep_edges) for d in dfgs))
    return dfgs
