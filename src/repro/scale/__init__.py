"""Sharded, parallel, incremental, cached mining (``src/repro/scale/``).

The serial engines treat every block DFG as one pool: each round mines
the whole database from scratch, although an extraction only rewrites a
handful of blocks and identical blocks recur both across rounds and
across runs.  This subsystem makes mining *sharded*, *parallel*,
*incremental* and *cached* while keeping the sharded engine's output
bit-identical for any worker count and any cache state:

:mod:`repro.scale.cluster`
    Pre-clustering: blocks partition into shards (connected components
    over shared labelled-edge signatures) that provably cannot share a
    frequent fragment, so each shard's lattice search is independent.
:mod:`repro.scale.shard`
    The shard-scoped mining funnel (mine -> legality -> MIS -> order ->
    score), runnable in-process or in a worker process, plus the
    serialization that moves shard results across process and cache
    boundaries.
:mod:`repro.scale.pool`
    The multiprocess worklist scheduler: a worker fleet expands shard
    lattices concurrently with deterministic merge ordering and
    governor-aware teardown (SIGINT/deadline propagate; completed
    shards are salvaged as best-so-far).
:mod:`repro.scale.supervise`
    The fault-tolerant shard executor under the scheduler: tracked
    worker processes with sentinel watching (a SIGKILL'd/OOM-killed
    worker is detected in one poll tick and its shard redelivered),
    bounded retry with deterministic governor-aware backoff, a
    per-shard soft timeout, and a serial-fallback-then-quarantine
    policy for shards that keep failing.
:mod:`repro.scale.cache`
    The content-addressed fragment cache: shard results keyed by a
    canonical content digest, held in memory across rounds and
    (optionally) on disk across runs.
:mod:`repro.scale.delta`
    The incremental re-mining planner: after an extraction touches a
    few blocks, only the shards containing rewritten blocks are
    predicted dirty; every other shard's lattice is reused verbatim
    through the cache.
"""

from repro.scale.cache import CACHE_SCHEMA, CacheStats, FragmentCache
from repro.scale.cluster import Shard, cluster_dfgs, edge_signatures
from repro.scale.delta import DeltaPlan, DeltaPlanner
from repro.scale.pool import ScaleStats, run_sharded_round
from repro.scale.shard import (
    SHARD_SCHEMA,
    ShardPayload,
    ShardResult,
    build_payload,
    mine_shard,
    revive_candidates,
)
from repro.scale.supervise import (
    DEFAULT_SHARD_RETRIES,
    ShardAttempt,
    SuperviseOutcome,
    mine_serial,
    supervise_mine,
)

__all__ = [
    "DEFAULT_SHARD_RETRIES",
    "CACHE_SCHEMA",
    "CacheStats",
    "DeltaPlan",
    "DeltaPlanner",
    "FragmentCache",
    "SHARD_SCHEMA",
    "ScaleStats",
    "Shard",
    "ShardAttempt",
    "ShardPayload",
    "ShardResult",
    "SuperviseOutcome",
    "build_payload",
    "cluster_dfgs",
    "edge_signatures",
    "mine_serial",
    "mine_shard",
    "revive_candidates",
    "run_sharded_round",
    "supervise_mine",
]
