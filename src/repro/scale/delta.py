"""Incremental re-mining: invalidate only what an extraction touched.

An extraction rewrites a handful of blocks; every other block — and
therefore every shard not containing one of the rewritten blocks —
mines to exactly the same result next round.  The invalidation rule
falls out of content addressing:

    a shard is re-mined if and only if its payload digest changed,
    i.e. iff it contains a rewritten block, gained/lost a member
    through re-clustering, or a narrowed legality fact (a block's
    lr-liveness, a fragile callee the shard calls) changed.

Position is deliberately *not* part of shard identity: a cross-jump
splits a block and renumbers every later block of the module
enumeration (which is why the serial engine drops its carryover
wholesale on any cross-jump round), but an untouched shard's content
digest is unchanged, so its lattice is still reused verbatim.

The planner itself is bookkeeping, not policy — the cache would serve
clean shards anyway.  Its value is *observability*: the per-round
clean/dirty split is emitted to the ledger and telemetry, and the
``lattice_nodes_reused`` figure it enables is the headline incremental
metric in benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Set


@dataclass
class DeltaPlan:
    """One round's predicted shard split (indices into the shard list)."""

    clean: List[int] = field(default_factory=list)
    dirty: List[int] = field(default_factory=list)
    #: True on the planner's first round (no previous digests — every
    #: shard is "dirty" to the planner even when a persistent cache
    #: will serve it warm).
    initial: bool = False

    @property
    def reuse_fraction(self) -> float:
        total = len(self.clean) + len(self.dirty)
        return len(self.clean) / total if total else 0.0


class DeltaPlanner:
    """Tracks shard digests across rounds of one run."""

    def __init__(self) -> None:
        self._previous: Set[str] = set()
        self._rounds = 0

    def plan(self, digests: Sequence[str]) -> DeltaPlan:
        """Classify this round's shards against the previous round's.

        Also commits *digests* as the new baseline — call once per
        round, before mining.
        """
        plan = DeltaPlan(initial=self._rounds == 0)
        for index, digest in enumerate(digests):
            if digest in self._previous:
                plan.clean.append(index)
            else:
                plan.dirty.append(index)
        self._previous = set(digests)
        self._rounds += 1
        return plan
