"""Fault-tolerant supervised shard execution.

The sharded engine's unit of failure containment is the shard: a pure,
self-contained payload whose mine is deterministic and repeatable.
This module supervises that unit — it replaces the bare
``multiprocessing.Pool`` the engine used to dispatch on (where one
SIGKILL'd child left its async handle pending forever and any child
exception aborted the whole round) with a tracked-process executor
whose state machine is::

    dispatch ──ok──────────────────────────────▶ completed
       │
       ├─ worker died / soft timeout / raised ─▶ retry (bounded,
       │                                         deterministic backoff)
       └─ retry budget exhausted ──────────────▶ serial fallback
                                                  in the parent
                    ├─ ok ─────────────────────▶ completed (recovered)
                    └─ failed ─────────────────▶ quarantined (dropped;
                                                  ``run.degraded``, or
                                                  ``ShardError`` under
                                                  ``--strict-shards``)

Mechanics:

* **Sentinel watching.**  Each worker is a tracked
  ``multiprocessing.Process`` with a duplex task pipe; the parent
  blocks in ``multiprocessing.connection.wait`` on every worker's
  result pipe *and* process sentinel, so a dead worker (SIGKILL, OOM,
  segfault) is detected in one poll tick and its in-flight shard is
  redelivered to a respawned worker.
* **Bounded retry with deterministic backoff.**  Each shard gets
  ``retries`` redeliveries (``--shard-retries``); the n-th failure
  backs off ``min(0.05 * 2**(n-1), 1.0)`` seconds, capped by the
  governor's remaining budget so a dying run never sleeps through its
  deadline.  Because :func:`~repro.scale.shard.mine_shard` is pure,
  a retried shard returns bit-identical results — the crash/retry
  schedule is invisible in the output (the crashy-vs-clean CI gate).
* **Soft timeout.**  With ``--shard-timeout``, a shard in flight
  longer than the limit has its worker killed and is redelivered —
  the recovery path for a hung (not dead) worker.
* **Adaptive poll.**  The wait loop's poll interval backs off 1 ms →
  50 ms (reset on any progress) so a long mine does not burn a parent
  core, while completions are still picked up within a tick.
* **Chaos directives.**  The fault points ``scale.worker.crash``
  (worker self-kills via ``os.kill(getpid(), SIGKILL)``),
  ``scale.worker.hang`` and ``scale.shard.poison`` are probed in the
  *parent* at dispatch time — workers run disarmed, so hit counting
  stays deterministic — and shipped to the worker as a task directive.
  A poisoned shard is remembered and fails every redelivery *and* the
  serial fallback, which is exactly the path that exercises
  quarantine.

The in-process path (``workers <= 1``) runs the same retry/quarantine
state machine via :func:`mine_serial` (minus crash/hang directives,
which only make sense for a child process).

Progress surface: every redelivery publishes a ``shard.retry`` event
and every quarantine resolution a ``shard.quarantined`` event onto the
``repro.telemetry.events/1`` stream; the caller turns the outcome's
counts into ``scale.shard.retries`` / ``scale.shards.quarantined``
counters (OpenMetrics: ``repro_scale_shard_retries_total`` /
``repro_scale_shards_quarantined_total``) and ``scale.retry`` /
``scale.quarantine`` ledger records.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, field
from multiprocessing import connection as _mpconn
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.report.ledger import GLOBAL as _LEDGER
from repro.resilience import governor as _governor
from repro.resilience.errors import FaultInjected
from repro.resilience.faultinject import disarm_all, fault
from repro.resilience.governor import RunGovernor
from repro.telemetry import GLOBAL as _TELEMETRY
from repro.telemetry import progress as _progress
from repro.telemetry import remote as _remote

from repro.scale.cluster import Shard
from repro.scale.shard import ShardPayload, ShardResult, mine_shard

#: Default redeliveries per shard before the serial fallback
#: (``--shard-retries``).
DEFAULT_SHARD_RETRIES = 2

#: Adaptive poll interval bounds for the supervisor wait loop: start at
#: 1 ms, double on idle ticks up to 50 ms, reset on any progress.
POLL_MIN = 0.001
POLL_MAX = 0.05

#: Retry backoff: the n-th failure of a shard waits
#: ``min(BACKOFF_BASE * 2**(n-1), BACKOFF_CAP)`` seconds before
#: redelivery, never more than the governor's remaining budget.
BACKOFF_BASE = 0.05
BACKOFF_CAP = 1.0

#: Grace period for workers to exit on their own during teardown
#: before they are killed.
_SHUTDOWN_GRACE = 2.0

#: Parent-side dispatch probes: fault point -> task directive.
_WORKER_FAULT_DIRECTIVES = (
    ("scale.worker.crash", "crash"),
    ("scale.worker.hang", "hang"),
    ("scale.shard.poison", "poison"),
)

#: The serial path only honours poison — crash/hang directives would
#: take down the parent itself.
_SERIAL_FAULT_DIRECTIVES = (
    ("scale.shard.poison", "poison"),
)


@dataclass
class ShardAttempt:
    """One failed delivery of a shard (feeds ``scale.retry`` records)."""

    shard: int
    attempt: int           #: 1-based delivery number that failed
    error: str
    will_retry: bool       #: False when this failure exhausted the budget


@dataclass
class SuperviseOutcome:
    """Everything one supervised expansion produced and endured."""

    completed: Dict[int, ShardResult] = field(default_factory=dict)
    #: shards torn down before completing (governor stop mid-round)
    lost: List[int] = field(default_factory=list)
    torn_down: bool = False
    stragglers: int = 0
    #: total redeliveries (a shard retried twice counts twice)
    retries: int = 0
    #: distinct shards that needed more than one delivery
    shards_retried: int = 0
    #: exhausted shards recovered by the in-parent serial fallback
    fallbacks: int = 0
    #: every failed delivery, in failure order
    failures: List[ShardAttempt] = field(default_factory=list)
    #: quarantine resolutions: ``{"shard", "attempts", "error",
    #: "recovered"}`` — recovered means the serial fallback saved it
    quarantined: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def dropped(self) -> List[Dict[str, Any]]:
        """Quarantined shards that stayed dropped (fallback failed)."""
        return [q for q in self.quarantined if not q["recovered"]]


@contextlib.contextmanager
def _suppressed_ledger():
    """Silence ledger emission around in-process shard mining: shard
    funnels never write decision records directly — the parent emits
    per-shard ledger records itself, identically for every worker
    count.  (Telemetry is handled separately by the capture scope.)"""
    ledger_was = _LEDGER.enabled
    _LEDGER.enabled = False
    try:
        yield
    finally:
        _LEDGER.enabled = ledger_was


def _worker_init(progress_queue=None) -> None:
    """Runs once in every supervised child before it accepts work.

    SIGINT is ignored (teardown is the parent's decision); SIGTERM is
    reset to the default action — the CLI parent runs under the
    governor's graceful SIGTERM handler (set a flag, finish the round),
    a forked child inherits it, and a child that shrugs off SIGTERM
    would hang the supervisor's join.  Inherited instrumentation
    registries and armed fault specs are cleared so a child neither
    double-counts nor fires parent-targeted chaos specs.  When the
    parent runs a progress bus, its queue arrives here and the child's
    publish hooks are routed onto it.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    disarm_all()
    _TELEMETRY.enabled = False
    _LEDGER.enabled = False
    # also drops any bus inherited from the parent through fork
    _progress.worker_attach(progress_queue)


def _mine_shard_job(payload: ShardPayload, budget: Optional[float],
                    capture_telemetry: bool = False) -> ShardResult:
    """Mine one shard under a child-local governor.

    With *capture_telemetry*, the mine records spans/counters into an
    isolated scope whose snapshot rides back on the (transient)
    ``result.telemetry`` field for the parent to stitch in.
    """
    child_governor = RunGovernor(time_budget=budget)
    with _governor.activate(child_governor):
        if not capture_telemetry:
            return mine_shard(payload)
        with _remote.capture() as captured:
            result = mine_shard(payload)
        result.telemetry = captured.snapshot
        return result


def _supervised_worker(conn, progress_queue, capture_telemetry) -> None:
    """Child main loop: recv task, mine (or obey a chaos directive),
    send back ``(shard, result, error)``.  ``None`` means shut down."""
    _worker_init(progress_queue)
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            break
        if task is None:
            break
        shard_index, payload, budget, directive = task
        try:
            if directive == "crash":
                os.kill(os.getpid(), signal.SIGKILL)
            if directive == "hang":
                while True:                      # until the soft
                    time.sleep(60.0)             # timeout kills us
            if directive == "poison":
                raise FaultInjected(
                    f"injected poison on shard {shard_index}")
            result = _mine_shard_job(payload, budget, capture_telemetry)
        except BaseException as exc:  # noqa: B036 - must not die silently
            try:
                conn.send((shard_index, None,
                           f"{type(exc).__name__}: {exc}"))
            except Exception:
                break
            continue
        try:
            conn.send((shard_index, result, None))
        except Exception:
            break
    try:
        conn.close()
    except Exception:
        pass


def _probe_directive(shard_index: int, poisoned: Set[int],
                     points=_WORKER_FAULT_DIRECTIVES) -> Optional[str]:
    """Evaluate the worker chaos points for one dispatch (parent-side,
    so hit counting follows the deterministic dispatch order).  A
    poison hit is sticky: the shard fails every redelivery and the
    serial fallback, which is the quarantine path."""
    if shard_index in poisoned:
        return "poison"
    for point, directive in points:
        try:
            fired = fault(point) is not None
        except FaultInjected:
            fired = True
        if fired:
            if directive == "poison":
                poisoned.add(shard_index)
            return directive
    return None


def _backoff(attempt: int, governor: RunGovernor) -> float:
    """Deterministic, governor-aware redelivery delay in seconds."""
    delay = min(BACKOFF_BASE * (2 ** (attempt - 1)), BACKOFF_CAP)
    remaining = governor.remaining()
    if remaining is not None:
        delay = max(0.0, min(delay, remaining))
    return delay


class _Worker:
    """One tracked child process with its duplex task pipe."""

    def __init__(self, progress_queue, capture_telemetry: bool):
        parent_conn, child_conn = multiprocessing.Pipe()
        self.conn = parent_conn
        self.process = multiprocessing.Process(
            target=_supervised_worker,
            args=(child_conn, progress_queue, capture_telemetry),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        #: shard index in flight, or None when idle
        self.shard: Optional[int] = None
        self.dispatched_at = 0.0

    @property
    def sentinel(self):
        return self.process.sentinel

    def kill(self) -> None:
        try:
            self.process.kill()
        except Exception:
            pass
        self.process.join()
        try:
            self.conn.close()
        except Exception:
            pass


def supervise_mine(
    to_mine: List[Tuple[Shard, ShardPayload, str]],
    workers: int,
    governor: RunGovernor,
    bus=None,
    capture_telemetry: bool = False,
    retries: int = DEFAULT_SHARD_RETRIES,
    timeout: Optional[float] = None,
) -> SuperviseOutcome:
    """Expand the missing shards on a supervised worker fleet.

    Dispatch order is largest-first (by payload size) for load
    balance; redeliveries queue behind their backoff.  Neither can
    affect results — only which shards finish before a teardown.
    When a progress *bus* is active its worker queue rides into the
    children, the wait loop drains it, and stale heartbeats are
    flagged as stragglers (counted on the governor so degradation
    notes surface them).
    """
    outcome = SuperviseOutcome()
    order = sorted(
        range(len(to_mine)),
        key=lambda i: (
            -sum(len(insns) for insns in to_mine[i][1].block_insns),
            to_mine[i][0].index,
        ),
    )
    payload_by_shard = {
        shard.index: payload for shard, payload, __ in to_mine
    }
    #: (ready_at, shard) — ready_at gates redelivery backoff
    pending: List[Tuple[float, int]] = [
        (0.0, to_mine[i][0].index) for i in order
    ]
    attempts: Dict[int, int] = {}
    retried: Set[int] = set()
    poisoned: Set[int] = set()
    #: (shard, failed deliveries, last error) awaiting serial fallback
    exhausted: List[Tuple[int, int, str]] = []
    queue = bus.worker_queue() if bus is not None else None
    fleet: List[_Worker] = []
    poll = POLL_MIN

    def fail(shard_index: int, error: str) -> None:
        attempt = attempts[shard_index]
        will_retry = attempt <= retries
        outcome.failures.append(
            ShardAttempt(shard_index, attempt, error, will_retry))
        if will_retry:
            delay = _backoff(attempt, governor)
            pending.append((time.monotonic() + delay, shard_index))
            outcome.retries += 1
            retried.add(shard_index)
            _progress.publish("shard.retry", shard=shard_index,
                              attempt=attempt, error=error,
                              backoff=round(delay, 3))
        else:
            exhausted.append((shard_index, attempt, error))

    def reap(worker: _Worker, error: str) -> None:
        """A dead/hung worker: fail its in-flight shard, drop it."""
        shard_index = worker.shard
        worker.shard = None
        worker.kill()
        fleet.remove(worker)
        if shard_index is not None:
            fail(shard_index, error)

    try:
        while pending or any(w.shard is not None for w in fleet):
            if bus is not None:
                bus.drain()
                for __ in bus.stragglers():
                    outcome.stragglers += 1
                    governor.count("scale.stragglers")
                    _TELEMETRY.count("scale.shards.stalled")
            if governor.should_stop():
                outcome.torn_down = True
                break
            now = time.monotonic()
            progressed = False
            # keep the fleet sized to the remaining work (respawn
            # after deaths; never beyond the requested worker count)
            busy = sum(1 for w in fleet if w.shard is not None)
            target = min(workers, busy + len(pending))
            while len(fleet) < target:
                fleet.append(_Worker(queue, capture_telemetry))
            # dispatch every backoff-ready shard onto an idle worker
            for worker in fleet:
                if worker.shard is not None:
                    continue
                slot = next(
                    (i for i, (at, __) in enumerate(pending)
                     if at <= now),
                    None,
                )
                if slot is None:
                    break
                __, shard_index = pending.pop(slot)
                attempts[shard_index] = attempts.get(shard_index, 0) + 1
                directive = _probe_directive(shard_index, poisoned)
                worker.shard = shard_index
                worker.dispatched_at = now
                progressed = True
                try:
                    worker.conn.send((
                        shard_index,
                        payload_by_shard[shard_index],
                        governor.remaining(),
                        directive,
                    ))
                except (OSError, ValueError):
                    reap(worker,
                         f"worker pid {worker.process.pid} was gone "
                         f"at dispatch")
            # wait on every result pipe and every process sentinel:
            # a completion *or* a death wakes the parent in one tick
            waitables: List[Any] = [w.sentinel for w in fleet]
            waitables += [w.conn for w in fleet if w.shard is not None]
            wait_for = poll
            next_ready = min((at for at, __ in pending), default=None)
            if next_ready is not None:
                wait_for = min(wait_for, max(0.0, next_ready - now))
            ready = (set(_mpconn.wait(waitables, timeout=wait_for))
                     if waitables else set())
            for worker in list(fleet):
                if worker.shard is None or worker.conn not in ready:
                    continue
                try:
                    shard_index, result, error = worker.conn.recv()
                except (EOFError, OSError):
                    reap(worker,
                         f"worker pid {worker.process.pid} died "
                         f"mid-shard (exitcode "
                         f"{worker.process.exitcode})")
                    progressed = True
                    continue
                worker.shard = None
                progressed = True
                if error is None:
                    outcome.completed[shard_index] = result
                else:
                    fail(shard_index, error)
            for worker in list(fleet):
                if (worker.sentinel in ready
                        and not worker.process.is_alive()):
                    reap(worker,
                         f"worker pid {worker.process.pid} died "
                         f"(exitcode {worker.process.exitcode})")
                    progressed = True
            if timeout is not None:
                now = time.monotonic()
                for worker in list(fleet):
                    if (worker.shard is not None
                            and now - worker.dispatched_at > timeout):
                        reap(worker,
                             f"shard {worker.shard} exceeded the "
                             f"{timeout:g}s soft timeout")
                        progressed = True
            # adaptive spin: 1 ms after progress, doubling to the
            # 50 ms cap while nothing moves
            poll = POLL_MIN if progressed else min(poll * 2, POLL_MAX)
        if outcome.torn_down:
            lost = {shard for __, shard in pending}
            lost |= {w.shard for w in fleet if w.shard is not None}
            lost |= {shard for shard, __, ___ in exhausted}
            outcome.lost = sorted(lost)
            exhausted = []
    except BaseException:
        outcome.torn_down = True
        raise
    finally:
        for worker in fleet:
            try:
                worker.conn.send(None)
            except Exception:
                pass
        deadline = time.monotonic() + _SHUTDOWN_GRACE
        for worker in fleet:
            worker.process.join(
                timeout=max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join()
            try:
                worker.conn.close()
            except Exception:
                pass
        if bus is not None:
            # events the children flushed before exiting
            bus.drain()
    # serial fallback: re-mine every exhausted shard in the parent, in
    # deterministic shard order; what still fails is quarantined
    for shard_index, failed, error in sorted(exhausted):
        if governor.should_stop():
            outcome.torn_down = True
            outcome.lost.append(shard_index)
            continue
        record = {"shard": shard_index, "attempts": failed + 1,
                  "error": error, "recovered": False}
        try:
            if shard_index in poisoned:
                raise FaultInjected(
                    f"injected poison on shard {shard_index}")
            with _suppressed_ledger():
                with _remote.capture(
                        enabled=capture_telemetry) as captured:
                    result = mine_shard(payload_by_shard[shard_index])
            result.telemetry = captured.snapshot
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:  # noqa: B036 - quarantine, not crash
            record["error"] = f"{type(exc).__name__}: {exc}"
            outcome.quarantined.append(record)
            _progress.publish("shard.quarantined", shard=shard_index,
                              attempts=record["attempts"],
                              recovered=False, error=record["error"])
            continue
        record["recovered"] = True
        outcome.completed[shard_index] = result
        outcome.fallbacks += 1
        outcome.quarantined.append(record)
        _progress.publish("shard.quarantined", shard=shard_index,
                          attempts=record["attempts"], recovered=True)
    outcome.shards_retried = len(retried)
    return outcome


def mine_serial(
    to_mine: List[Tuple[Shard, ShardPayload, str]],
    governor: RunGovernor,
    bus=None,
    capture_telemetry: bool = False,
    retries: int = DEFAULT_SHARD_RETRIES,
) -> SuperviseOutcome:
    """The ``workers <= 1`` path: same retry/quarantine state machine,
    in-process (no crash/hang directives — there is no child to kill;
    a quarantined shard is dropped directly, the parent *is* the
    serial fallback)."""
    outcome = SuperviseOutcome()
    poisoned: Set[int] = set()
    retried: Set[int] = set()
    for shard, payload, __ in to_mine:
        if governor.should_stop():
            outcome.torn_down = True
            outcome.lost.append(shard.index)
            continue
        attempt = 0
        while True:
            attempt += 1
            error: Optional[str] = None
            try:
                if _probe_directive(shard.index, poisoned,
                                    _SERIAL_FAULT_DIRECTIVES) is not None:
                    raise FaultInjected(
                        f"injected poison on shard {shard.index}")
                with _suppressed_ledger():
                    with _remote.capture(
                            enabled=capture_telemetry) as captured:
                        result = mine_shard(payload)
                result.telemetry = captured.snapshot
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:  # noqa: B036 - retry, not crash
                error = f"{type(exc).__name__}: {exc}"
            if error is None:
                outcome.completed[shard.index] = result
                break
            will_retry = attempt <= retries
            outcome.failures.append(
                ShardAttempt(shard.index, attempt, error, will_retry))
            if will_retry:
                outcome.retries += 1
                retried.add(shard.index)
                _progress.publish("shard.retry", shard=shard.index,
                                  attempt=attempt, error=error,
                                  backoff=0.0)
                continue
            outcome.quarantined.append({
                "shard": shard.index, "attempts": attempt,
                "error": error, "recovered": False,
            })
            _progress.publish("shard.quarantined", shard=shard.index,
                              attempts=attempt, recovered=False,
                              error=error)
            break
        if bus is not None:
            for __beat in bus.stragglers():
                outcome.stragglers += 1
                governor.count("scale.stragglers")
                _TELEMETRY.count("scale.shards.stalled")
    outcome.shards_retried = len(retried)
    return outcome


__all__ = [
    "BACKOFF_BASE",
    "BACKOFF_CAP",
    "DEFAULT_SHARD_RETRIES",
    "POLL_MAX",
    "POLL_MIN",
    "ShardAttempt",
    "SuperviseOutcome",
    "mine_serial",
    "supervise_mine",
]
