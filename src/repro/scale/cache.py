"""The content-addressed fragment cache.

Maps a shard payload digest (:meth:`~repro.scale.shard.ShardPayload.digest`)
to the mined :class:`~repro.scale.shard.ShardResult` body.  Two layers:

* an **in-memory** table, always on in scale mode — this is what makes
  re-mining incremental *within* a run (round N+1 re-uses every shard
  round N left untouched);
* an optional **persistent directory** (``--fragment-cache DIR``),
  one JSON file per key written through the resilience atomic writer —
  this is what makes identical blocks never re-mine *across* runs.

Durability contract: a corrupted, truncated or version-mismatched
entry surfaces as a typed :class:`~repro.resilience.errors.CacheError`
from the strict loader; :meth:`FragmentCache.get` converts that into a
counted miss and deletes the bad file, so the shard is simply re-mined
and the entry rebuilt — never a crash, and never a silent stale reuse
(the key *is* the content, and the schema tag is checked on read).

Writes are equally non-fatal: an unwritable directory, ``ENOSPC`` or
``EACCES`` while persisting an entry must never crash a mine that
already succeeded.  The first write failure warns once, counts
``scale.cache.write_failed`` (and ``stats.write_failed``), and
degrades the cache to memory-only for the rest of the run — results
are unchanged, the next run simply starts cold.
"""

from __future__ import annotations

import json
import os
import sys
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.resilience.atomicio import atomic_write_text
from repro.resilience.errors import CacheError
from repro.resilience.faultinject import fault
from repro.telemetry import GLOBAL as _TELEMETRY

#: Version tag of the persisted cache entry format.  A mismatch is an
#: invalid entry (rebuilt), not an error — old caches degrade to cold.
CACHE_SCHEMA = "repro.scale.cache/1"

#: Keys a persisted entry body must provide (shard result wire format).
_REQUIRED_BODY = ("candidates", "lattice_nodes", "tallies")


@dataclass
class CacheStats:
    """Hit/miss census of one cache instance (telemetry + bench)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid: int = 0          #: corrupt/truncated/mismatched entries
    memory_hits: int = 0
    disk_hits: int = 0
    #: persist failures (ENOSPC/EACCES/...); nonzero means the cache
    #: degraded to memory-only partway through the run
    write_failed: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class FragmentCache:
    """Content-addressed shard-result store (see module docstring)."""

    def __init__(self, directory: Optional[str] = None):
        self.directory = directory
        self._memory: Dict[str, Dict[str, Any]] = {}
        self.stats = CacheStats()
        if directory:
            try:
                os.makedirs(directory, exist_ok=True)
            except OSError as exc:
                self._persistence_failed(exc)

    def _persistence_failed(self, exc: OSError) -> None:
        """Degrade to memory-only for the rest of the run: warn once,
        count the failure, stop touching the directory."""
        self.stats.write_failed += 1
        self.directory = None
        _TELEMETRY.count("scale.cache.write_failed")
        print(f"warning: fragment-cache persistence disabled ({exc})",
              file=sys.stderr)

    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key + ".json")

    def load_entry(self, key: str) -> Dict[str, Any]:
        """Strictly load one persisted entry body; every failure typed.

        Raises :class:`CacheError` for a missing, unreadable, garbled,
        schema-mismatched, key-mismatched or field-incomplete entry.
        """
        if fault("scale.cache") == "corrupt":
            raise CacheError(f"injected cache corruption for {key[:12]}")
        path = self._path(key)
        try:
            with open(path) as handle:
                doc = json.load(handle)
        except FileNotFoundError:
            raise CacheError(f"no cache entry for {key[:12]}") from None
        except (OSError, ValueError) as exc:
            raise CacheError(
                f"unreadable cache entry {path}: {exc}"
            ) from exc
        if not isinstance(doc, dict) or doc.get("schema") != CACHE_SCHEMA:
            raise CacheError(
                f"{path}: unsupported cache schema "
                f"{doc.get('schema') if isinstance(doc, dict) else type(doc)}"
                f" (expected {CACHE_SCHEMA})"
            )
        if doc.get("key") != key:
            raise CacheError(
                f"{path}: entry key {str(doc.get('key'))[:12]}... does "
                f"not match its address (corrupt or misplaced entry)"
            )
        body = doc.get("result")
        if not isinstance(body, dict) or any(
            name not in body for name in _REQUIRED_BODY
        ):
            raise CacheError(f"{path}: cache entry body is incomplete")
        return body

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored body for *key*, or None (a counted miss).

        Invalid persisted entries are deleted and counted in
        ``stats.invalid`` — the caller re-mines and the subsequent
        :meth:`put` rebuilds the entry.
        """
        body = self._memory.get(key)
        if body is not None:
            self.stats.hits += 1
            self.stats.memory_hits += 1
            return body
        if self.directory and os.path.exists(self._path(key)):
            try:
                body = self.load_entry(key)
            except CacheError:
                self.stats.invalid += 1
                try:
                    os.unlink(self._path(key))
                except OSError:
                    pass
            else:
                self._memory[key] = body
                self.stats.hits += 1
                self.stats.disk_hits += 1
                return body
        self.stats.misses += 1
        return None

    def put(self, key: str, body: Dict[str, Any]) -> None:
        """Store *body* under *key* (write-through when persistent)."""
        self._memory[key] = body
        self.stats.stores += 1
        if self.directory:
            try:
                atomic_write_text(
                    self._path(key),
                    json.dumps(
                        {"schema": CACHE_SCHEMA, "key": key,
                         "result": body},
                        sort_keys=True,
                    ),
                )
            except OSError as exc:
                # a full/readonly disk must not fail the mine that
                # just succeeded — the entry stays in memory
                self._persistence_failed(exc)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._memory)
