"""Shard-scoped mining: the candidate funnel over one cluster.

A :class:`ShardPayload` is a *self-contained*, content-addressed unit
of mining work: the shard's instruction lists, the per-block legality
facts the funnel needs (lr-liveness on exit, the sp-fragile callees the
shard actually calls), and the mining-relevant config knobs.  Nothing
in it references global DFG indices, block coordinates or symbol names
outside the shard, so

* it pickles across a process boundary unchanged (worker pools), and
* its :meth:`~ShardPayload.digest` is a stable cache key — two shards
  with identical content mine to identical results no matter where (or
  in which round, or in which run) their blocks live.

:func:`mine_shard` runs the same consider-funnel as the serial driver
(floor prune -> legality -> MIS -> order consistency -> score) with a
shard-local benefit floor, and returns a :class:`ShardResult` whose
candidates use *local* graph ids; :func:`revive_candidates` maps them
back onto the round's global DFG database, re-deriving instruction
objects and origins, exactly like checkpoint carryover revival.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.binary.program import BasicBlock
from repro.dfg.builder import build_dfg
from repro.dfg.graph import DFG, FLOW_KINDS
from repro.isa.instructions import Instruction
from repro.isa.operands import LabelRef
from repro.mining.edgar import Edgar, non_overlapping_embeddings
from repro.mining.embeddings import Embedding
from repro.mining.gspan import DgSpan, Fragment
from repro.pa.extract import call_site_feasible, order_consistent_subset
from repro.pa.fragments import Candidate, best_possible_benefit, score
from repro.pa.legality import ExtractionMethod, legal_embeddings
from repro.telemetry import GLOBAL as _TELEMETRY
from repro.telemetry import progress as _progress

import hashlib
import time

#: Version tag of the shard payload/result wire format.  Bump on any
#: change to the funnel, the payload fields or the candidate wire
#: format — it is folded into every cache key, so a bump invalidates
#: all persisted entries instead of silently reviving stale results.
SHARD_SCHEMA = "repro.scale.shard/1"

#: Funnel tallies a shard reports (mirrors the serial driver's skip
#: census; replayed into telemetry by the parent in shard order).
TALLY_KEYS = (
    "considered", "floor", "illegal", "lr_infeasible",
    "order_inconsistent", "unprofitable", "scored",
)


@dataclass(frozen=True)
class ShardMiningConfig:
    """The mining-relevant PAConfig subset (part of the cache key)."""

    miner: str
    min_support: int
    min_nodes: int
    max_nodes: int
    max_embeddings: int
    pa_pruning: bool
    mis_exact_limit: int
    mined_kinds: Tuple[str, ...]      #: sorted
    flow_pass: bool

    @classmethod
    def from_config(cls, config) -> "ShardMiningConfig":
        return cls(
            miner=config.miner,
            min_support=config.min_support,
            min_nodes=config.min_nodes,
            max_nodes=config.max_nodes,
            max_embeddings=config.max_embeddings,
            pa_pruning=config.pa_pruning,
            mis_exact_limit=config.mis_exact_limit,
            mined_kinds=tuple(sorted(config.mined_kinds)),
            flow_pass=config.flow_pass,
        )


@dataclass
class ShardPayload:
    """One self-contained unit of mining work (see module docstring)."""

    shard_index: int
    #: per local graph: the block's instructions, in order
    block_insns: List[List[Instruction]]
    #: per local graph: is lr live on exit from this block?
    lr_live: Tuple[bool, ...]
    #: sp-fragile callee names, restricted to calls the shard makes
    fragile: Tuple[str, ...]
    config: ShardMiningConfig

    def digest(self) -> str:
        """The content-addressed cache key of this work unit.

        hashlib (not ``hash()``, which is per-process salted) over the
        schema tag, the mining config, and each block's rendered
        instruction text + lr flag, plus the restricted fragile set.
        Rendered text is a faithful canonical form — the checkpoint
        layer already relies on the render -> reparse round trip being
        exact.
        """
        hasher = hashlib.sha256()
        conf = self.config
        parts = [
            SHARD_SCHEMA,
            conf.miner,
            str(conf.min_support),
            str(conf.min_nodes),
            str(conf.max_nodes),
            str(conf.max_embeddings),
            str(conf.pa_pruning),
            str(conf.mis_exact_limit),
            ",".join(conf.mined_kinds),
            str(conf.flow_pass),
            "\x1e".join(self.fragile),
        ]
        for insns, lr_flag in zip(self.block_insns, self.lr_live):
            parts.append(
                ("L" if lr_flag else "-")
                + "\x1e".join(str(insn) for insn in insns)
            )
        hasher.update("\x1f".join(parts).encode())
        return hasher.hexdigest()


@dataclass
class ShardResult:
    """What one mined shard reports back (wire/cache format).

    ``candidates`` hold *local* graph ids and carry no origins — both
    are re-derived against the live module at revival, which is what
    makes the result position-independent and cacheable.
    """

    shard_index: int
    candidates: List[Dict[str, Any]] = field(default_factory=list)
    lattice_nodes: int = 0
    tallies: Dict[str, int] = field(default_factory=dict)
    #: the mine was truncated by the deadline — partial, never cached
    deadline_hit: bool = False
    #: wall-clock of this mine.  Transient observability — excluded
    #: from :meth:`to_doc`, so a cached entry never replays a stale
    #: timing (cache hits report 0.0).
    mine_seconds: float = 0.0
    #: worker telemetry snapshot (:mod:`repro.telemetry.remote`), set
    #: by the pool when capture is on.  Transient, never persisted.
    telemetry: Optional[Dict[str, Any]] = None

    def to_doc(self) -> Dict[str, Any]:
        """The JSON body persisted by the fragment cache."""
        return {
            "candidates": self.candidates,
            "lattice_nodes": self.lattice_nodes,
            "tallies": dict(self.tallies),
        }

    @classmethod
    def from_doc(cls, shard_index: int,
                 doc: Dict[str, Any]) -> "ShardResult":
        return cls(
            shard_index=shard_index,
            candidates=list(doc["candidates"]),
            lattice_nodes=int(doc["lattice_nodes"]),
            tallies={k: int(v) for k, v in doc["tallies"].items()},
        )


def shard_call_targets(block_insns: Sequence[Sequence[Instruction]]
                       ) -> frozenset:
    """Direct call targets appearing anywhere in the shard's blocks."""
    targets = set()
    for insns in block_insns:
        for insn in insns:
            if insn.is_call and insn.operands and isinstance(
                insn.operands[0], LabelRef
            ):
                targets.add(insn.operands[0].name)
    return frozenset(targets)


def build_payload(shard, dfgs: Sequence[DFG], lr_live, fragile,
                  config) -> ShardPayload:
    """Assemble the self-contained payload of one shard.

    *lr_live* is the module-global set of (function, block) origins
    with lr live-out; *fragile* the module-global sp-fragile callee
    set.  Both are narrowed to shard-local facts here: per-block flags,
    and the intersection with the calls the shard actually makes — so
    the payload (and its digest) only changes when a fact that can
    change this shard's mining outcome changes.
    """
    block_insns = [list(dfgs[g].insns) for g in shard.graph_ids]
    lr_flags = tuple(dfgs[g].origin in lr_live for g in shard.graph_ids)
    fragile_local = tuple(sorted(
        frozenset(fragile) & shard_call_targets(block_insns)
    ))
    return ShardPayload(
        shard_index=shard.index,
        block_insns=block_insns,
        lr_live=lr_flags,
        fragile=fragile_local,
        config=ShardMiningConfig.from_config(config),
    )


def _make_miner(conf: ShardMiningConfig):
    if conf.miner == "edgar":
        return Edgar(
            min_support=conf.min_support,
            min_nodes=conf.min_nodes,
            max_nodes=conf.max_nodes,
            max_embeddings=conf.max_embeddings,
            pa_pruning=conf.pa_pruning,
            mis_exact_limit=conf.mis_exact_limit,
        )
    if conf.miner == "dgspan":
        return DgSpan(
            min_support=conf.min_support,
            min_nodes=conf.min_nodes,
            max_nodes=conf.max_nodes,
            max_embeddings=conf.max_embeddings,
        )
    raise ValueError(f"unknown miner: {conf.miner!r}")


def _candidate_to_wire(candidate: Candidate) -> Dict[str, Any]:
    fragment = candidate.fragment
    return {
        "method": candidate.method.value,
        "benefit": candidate.benefit,
        "embeddings": [[e.graph, list(e.nodes)]
                       for e in candidate.embeddings],
        "union_edges": sorted(list(e) for e in candidate.union_edges),
        "fragment": {
            "labels": list(fragment.node_labels),
            "edges": [list(e) for e in fragment.edges],
            "support": fragment.support,
        },
    }


def mine_shard(payload: ShardPayload) -> ShardResult:
    """Run the candidate funnel over one shard, in the calling process.

    The same pipeline as the serial driver's ``collect_candidates`` —
    shallow pre-pass, full pass, flow-projection pass, with the
    consider-funnel streaming fragments through legality, MIS overlap
    resolution, order consistency and the benefit model — except that
    the benefit floor is *shard-local* (starts at zero) and lr/fragile
    facts come from the payload.  Deterministic for fixed payload
    content: no randomness, no global state, stable tie-breaks.

    The active run governor is polled throughout, so a deadline or
    interrupt unwinds cleanly mid-shard; the result is then flagged
    ``deadline_hit`` (still sound, but partial — callers must not
    cache it).
    """
    started = time.perf_counter()
    _progress.publish("shard.start", shard=payload.shard_index,
                      blocks=len(payload.block_insns))
    conf = payload.config
    mined_kinds = frozenset(conf.mined_kinds)
    dfgs = [
        build_dfg(BasicBlock([], list(insns)), origin=("", local),
                  mined_kinds=mined_kinds)
        for local, insns in enumerate(payload.block_insns)
    ]
    fragile = frozenset(payload.fragile)
    lr_flags = payload.lr_live
    miner = _make_miner(conf)
    best: List[Optional[Candidate]] = [None]
    collected: List[Candidate] = []
    tallies = {key: 0 for key in TALLY_KEYS}

    def floor() -> int:
        return best[0].benefit if best[0] is not None else 0

    def prune_subtree(size_cap: int, occurrence_bound: int) -> bool:
        return best_possible_benefit(size_cap, occurrence_bound) <= floor()

    def consider(frag) -> None:
        tallies["considered"] += 1
        _progress.heartbeat(
            shard=payload.shard_index,
            considered=tallies["considered"],
            scored=tallies["scored"],
            lattice_nodes=miner.visited_nodes,
            best_benefit=floor(),
        )
        per_graph: Dict[int, int] = {}
        for emb in frag.embeddings:
            per_graph[emb.graph] = per_graph.get(emb.graph, 0) + 1
        occ_bound = sum(
            min(count, dfgs[gid].num_nodes // max(1, frag.num_nodes))
            for gid, count in per_graph.items()
        )
        if best_possible_benefit(frag.num_nodes, occ_bound) <= floor():
            tallies["floor"] += 1
            return
        if len(frag.embeddings) > 1000:
            # same deterministic-prefix bound as the serial funnel
            frag.embeddings = frag.embeddings[:1000]
        method, legal = legal_embeddings(dfgs, frag, fragile)
        if method is None or len(legal) < 2:
            tallies["illegal"] += 1
            return
        if method is ExtractionMethod.CALL:
            legal = [
                e for e in legal
                if not lr_flags[e.graph]
                and call_site_feasible(dfgs[e.graph], e.nodes)
            ]
            if len(legal) < 2:
                tallies["lr_infeasible"] += 1
                return
        disjoint = non_overlapping_embeddings(
            legal, exact_limit=conf.mis_exact_limit
        )
        kept, union = order_consistent_subset(dfgs, disjoint)
        if len(kept) < 2:
            tallies["order_inconsistent"] += 1
            return
        witness = kept[0]
        insns = [dfgs[witness.graph].insns[n] for n in witness.nodes]
        candidate = score(frag, method, insns, kept, union, origins=())
        if candidate is None:
            tallies["unprofitable"] += 1
            return
        tallies["scored"] += 1
        collected.append(candidate)
        if best[0] is None or candidate.sort_key() < best[0].sort_key():
            best[0] = candidate

    miner.prune_subtree = prune_subtree
    miner.on_fragment = consider
    try:
        with _TELEMETRY.span("scale.shard.mine",
                             shard=payload.shard_index,
                             graphs=len(dfgs)):
            if miner.max_nodes > 4:
                # shallow pre-pass seeds the shard-local floor cheaply
                saved_max = miner.max_nodes
                miner.max_nodes = 3
                try:
                    miner.mine(dfgs)
                finally:
                    miner.max_nodes = saved_max
            miner.mine(dfgs)
            if conf.flow_pass and FLOW_KINDS != mined_kinds:
                flow_dfgs = [
                    build_dfg(BasicBlock([], list(insns)),
                              origin=("", local), mined_kinds=FLOW_KINDS)
                    for local, insns in enumerate(payload.block_insns)
                ]
                miner.mine(flow_dfgs)
    finally:
        miner.prune_subtree = None
        miner.on_fragment = None
    collected.sort(key=lambda c: c.sort_key())
    result = ShardResult(
        shard_index=payload.shard_index,
        candidates=[_candidate_to_wire(c) for c in collected],
        lattice_nodes=miner.visited_nodes,
        tallies=tallies,
        deadline_hit=miner.deadline_hit,
        mine_seconds=time.perf_counter() - started,
    )
    _progress.publish(
        "shard.done",
        shard=payload.shard_index,
        seconds=round(result.mine_seconds, 6),
        lattice_nodes=result.lattice_nodes,
        candidates=len(result.candidates),
        deadline_hit=result.deadline_hit,
    )
    return result


def revive_candidates(dfgs: Sequence[DFG], graph_ids: Sequence[int],
                      wire: Sequence[Dict[str, Any]]) -> List[Candidate]:
    """Map a shard result's candidates onto the global DFG database.

    Local graph ids become global ones through *graph_ids* (the shard's
    member list), instruction objects are re-read from the live DFGs
    via the witness embedding, and origins are re-derived — the same
    revival the checkpoint carryover uses, which is what lets cached
    results apply to a module whose *other* blocks have changed.
    """
    revived: List[Candidate] = []
    for data in wire:
        embeddings = [
            Embedding(graph_ids[local], tuple(nodes))
            for local, nodes in data["embeddings"]
        ]
        witness = embeddings[0]
        insns = [dfgs[witness.graph].insns[n] for n in witness.nodes]
        origins = tuple(sorted({dfgs[e.graph].origin for e in embeddings}))
        frag = data["fragment"]
        fragment = Fragment(
            code=(),
            node_labels=list(frag["labels"]),
            edges=[tuple(e) for e in frag["edges"]],
            embeddings=embeddings,
            support=frag["support"],
        )
        revived.append(
            Candidate(
                fragment=fragment,
                method=ExtractionMethod(data["method"]),
                insns=insns,
                embeddings=embeddings,
                benefit=data["benefit"],
                union_edges={tuple(e) for e in data["union_edges"]},
                origins=origins,
            )
        )
    return revived
