"""Pre-clustering: partition block DFGs into independent shards.

Every fragment the miners report is *connected* (gSpan grows fragments
edge by edge along the DFS code), so any fragment of two or more nodes
contains at least one edge, and every embedding of it places that edge
inside its host block's DFG.  Two blocks can therefore share a frequent
fragment only if their DFGs share at least one labelled edge signature

    (source canonical label, dependence kind, target canonical label).

Connected components over shared edge signatures are consequently a
*sound* partition of the mining database: all embeddings of any
multi-node fragment lie inside a single component, so each component
("shard") can be mined independently — smaller lattices, parallel
expansion, and content-addressed reuse — without losing a candidate.

The flow-projection pass mines the same blocks restricted to
``FLOW_KINDS``; those edge signatures are a subset of the full-graph
ones, so flow-pass fragments are contained in the same components and
the partition covers both passes.

(Single-node fragments *could* span components, but they can never
become candidates: ``call_benefit(1, n) < 0`` and
``crossjump_benefit(1, n) = 0`` for every occurrence count, so the
driver's profitability gate discards them regardless of support.)

Shard identity is deterministic: shards are ordered by their smallest
global DFG index and carry their member indices in ascending order, so
the clustering — and everything downstream keyed on it — is a pure
function of the module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.dfg.graph import DFG

#: One labelled edge signature: (source label, kind, target label).
EdgeSignature = Tuple[str, str, str]


def edge_signatures(dfg: DFG) -> FrozenSet[EdgeSignature]:
    """The labelled edge signatures of one block DFG (mined edges only)."""
    return frozenset(
        (dfg.labels[src], kind, dfg.labels[dst])
        for (src, dst, kind) in dfg.edges
    )


@dataclass(frozen=True)
class Shard:
    """One independent cluster of the mining database.

    ``graph_ids`` are ascending indices into the round's global DFG
    list; ``index`` is the shard's position in the deterministic shard
    order (ascending smallest member index).
    """

    index: int
    graph_ids: Tuple[int, ...]

    @property
    def num_graphs(self) -> int:
        return len(self.graph_ids)

    def num_nodes(self, dfgs: Sequence[DFG]) -> int:
        """Total instruction count of the shard (scheduling weight)."""
        return sum(dfgs[g].num_nodes for g in self.graph_ids)


class _UnionFind:
    __slots__ = ("parent",)

    def __init__(self, size: int) -> None:
        self.parent = list(range(size))

    def find(self, x: int) -> int:
        parent = self.parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # smaller root wins, keeping representatives deterministic
            if rb < ra:
                ra, rb = rb, ra
            self.parent[rb] = ra


def cluster_dfgs(dfgs: Sequence[DFG]) -> List[Shard]:
    """Partition *dfgs* into independent shards (see module docstring).

    Blocks whose DFGs share no labelled edge signature with any other
    block become singleton shards — they still need mining (Edgar's
    frequency counts disjoint occurrences *within* one block), but
    their lattice is private.
    """
    uf = _UnionFind(len(dfgs))
    first_with: Dict[EdgeSignature, int] = {}
    for gid, dfg in enumerate(dfgs):
        for signature in edge_signatures(dfg):
            anchor = first_with.setdefault(signature, gid)
            if anchor != gid:
                uf.union(anchor, gid)
    members: Dict[int, List[int]] = {}
    for gid in range(len(dfgs)):
        members.setdefault(uf.find(gid), []).append(gid)
    shards = []
    for index, root in enumerate(sorted(members)):
        shards.append(Shard(index=index, graph_ids=tuple(members[root])))
    return shards
