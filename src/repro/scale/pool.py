"""The multiprocess worklist scheduler for sharded mining.

One call to :func:`run_sharded_round` replaces the serial driver's
``collect_candidates`` for a round: cluster the DFG database, consult
the fragment cache per shard, mine the missing shards (in-process for
``workers <= 1``, in a worker pool otherwise), and merge.

Determinism invariants (the bit-identity gate relies on these):

* **Worker count never changes the result.**  Each shard is mined by
  the same pure function (:func:`~repro.scale.shard.mine_shard`) with a
  shard-local benefit floor — no cross-shard state — and the merge
  concatenates shard results in deterministic shard order before one
  stable sort by the candidate sort key.  Scheduling order, pool size
  and completion order are invisible.
* **Cache state never changes the result.**  A cache key is a complete
  content digest of the work unit (instructions, legality facts,
  mining config, wire-format schema), so a hit returns exactly what
  mining would produce.
* **Instrumentation parity.**  When telemetry is enabled, shard mining
  records into an isolated capture scope (:mod:`repro.telemetry.remote`)
  in *both* the in-process and the worker path, and the parent stitches
  every snapshot back in deterministic shard order — so counters and
  span counts are identical for any ``--workers`` value and any cache
  temperature (only durations, pids and timestamps differ, which is
  what a trace is for).  When telemetry is disabled the same capture
  scope runs suppressed, preserving the bit-identity guarantee.  The
  ledger stays parent-only either way: the parent replays each shard's
  funnel tallies and emits per-shard ledger records itself.  Progress
  events (:mod:`repro.telemetry.progress`) flow from workers over a
  queue handed through the pool initializer and are drained in the
  parent's poll loop, which doubles as the straggler watchdog.

Fault tolerance: shard expansion runs on the supervised executor
(:mod:`repro.scale.supervise`) — tracked worker processes with
sentinel watching, a bounded per-shard retry budget with deterministic
governor-aware backoff, an optional soft timeout, and a
serial-fallback-then-quarantine policy for shards that keep failing.
A quarantined shard degrades the run (``run.degraded`` +
``scale.quarantine`` ledger record) or, under ``--strict-shards``,
raises a typed :class:`~repro.resilience.errors.ShardError` after the
round rolls back.  Because a retried shard re-runs the same pure
function, the crash/retry schedule is as invisible as the worker
count.

Governor-aware teardown: the parent polls the active run governor
between completions; on SIGINT/SIGTERM/deadline it tears the fleet
down (children ignore SIGINT — delivery is the parent's decision),
salvages every shard that already completed as the round's
best-so-far, and reports the lost shards — mirroring the serial
engine's anytime semantics.  Worker children run with fault injection
disarmed, so chaos specs fire deterministically in the parent (see
``scale.pool`` and the ``scale.worker.*``/``scale.shard.poison``
dispatch directives).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dfg.builder import build_dfgs
from repro.pa.fragments import Candidate
from repro.pa.legality import sp_fragile_functions
from repro.pa.liveness import lr_live_out_blocks
from repro.report.ledger import GLOBAL as _LEDGER
from repro.resilience.errors import ShardError
from repro.resilience.faultinject import fault
from repro.resilience.governor import RunGovernor
from repro.telemetry import GLOBAL as _TELEMETRY
from repro.telemetry import progress as _progress
from repro.telemetry import remote as _remote

from repro.scale.cache import FragmentCache
from repro.scale.cluster import Shard, cluster_dfgs
from repro.scale.delta import DeltaPlanner
from repro.scale.shard import (
    ShardPayload,
    ShardResult,
    build_payload,
    revive_candidates,
)
from repro.scale.supervise import (
    DEFAULT_SHARD_RETRIES,
    SuperviseOutcome,
    mine_serial,
    supervise_mine,
)

#: shard tally key -> the serial funnel's telemetry counter name
_TALLY_COUNTERS = {
    "considered": "pa.candidates.considered",
    "floor": "pa.candidates.skipped_floor",
    "illegal": "pa.candidates.skipped_illegal",
    "lr_infeasible": "pa.candidates.skipped_lr_infeasible",
    "order_inconsistent": "pa.candidates.skipped_order",
    "unprofitable": "pa.candidates.skipped_unprofitable",
    "scored": "pa.candidates.scored",
}


@dataclass
class ScaleStats:
    """One round's sharding/caching census."""

    workers: int = 1
    shards: int = 0
    shards_mined: int = 0
    #: shards torn down before completing (governor stop mid-round)
    shards_lost: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalid: int = 0
    lattice_nodes_mined: int = 0
    lattice_nodes_reused: int = 0
    deadline_hits: int = 0
    delta_clean: int = 0
    delta_dirty: int = 0
    #: shards whose heartbeats went stale past the watchdog threshold
    #: (they may still have completed — stalled flags imbalance, not
    #: loss)
    stragglers: int = 0
    #: shard redeliveries (worker death / timeout / failed attempt)
    shard_retries: int = 0
    #: distinct shards that needed more than one delivery
    shards_retried: int = 0
    #: exhausted shards recovered by the in-parent serial fallback
    shard_fallbacks: int = 0
    #: shards dropped after retries and the serial fallback all failed
    shards_quarantined: int = 0
    tallies: Dict[str, int] = field(default_factory=dict)


def run_sharded_round(
    module,
    config,
    governor: RunGovernor,
    cache: FragmentCache,
    planner: Optional[DeltaPlanner] = None,
) -> Tuple[List[Candidate], ScaleStats]:
    """Mine one round sharded/parallel/cached; return merged candidates.

    The returned list is sorted best-first by the same key as the
    serial funnel and is a pure function of (module content, config) —
    independent of ``config.workers``, cache temperature, scheduling
    and teardown history of previous runs.
    """
    workers = max(1, config.workers)
    stats = ScaleStats(workers=workers)
    bus = _progress.active()
    capture_telemetry = _TELEMETRY.enabled
    with _TELEMETRY.span("scale.round", workers=workers):
        dfgs = build_dfgs(module, min_nodes=0,
                          mined_kinds=config.mined_kinds)
        if not dfgs:
            return [], stats
        lr_live = lr_live_out_blocks(module)
        fragile = sp_fragile_functions(module)
        with _TELEMETRY.span("scale.cluster"):
            shards = cluster_dfgs(dfgs)
        payloads = [
            build_payload(shard, dfgs, lr_live, fragile, config)
            for shard in shards
        ]
        digests = [payload.digest() for payload in payloads]
        stats.shards = len(shards)
        if planner is not None:
            plan = planner.plan(digests)
            stats.delta_clean = len(plan.clean)
            stats.delta_dirty = len(plan.dirty)
        invalid_before = cache.stats.invalid
        results: Dict[int, ShardResult] = {}
        to_mine: List[Tuple[Shard, ShardPayload, str]] = []
        with _TELEMETRY.span("scale.cache.lookup"):
            for shard, payload, digest in zip(shards, payloads, digests):
                body = cache.get(digest)
                if body is not None:
                    result = ShardResult.from_doc(shard.index, body)
                    results[shard.index] = result
                    stats.lattice_nodes_reused += result.lattice_nodes
                else:
                    to_mine.append((shard, payload, digest))
        stats.cache_hits = len(results)
        stats.cache_misses = len(to_mine)
        stats.cache_invalid = cache.stats.invalid - invalid_before
        _progress.publish(
            "round.shards",
            shards=stats.shards,
            cached=stats.cache_hits,
            to_mine=len(to_mine),
            workers=workers,
        )
        lost: List[int] = []
        torn_down = False
        sup: Optional[SuperviseOutcome] = None
        retry_budget = getattr(config, "shard_retries",
                               DEFAULT_SHARD_RETRIES)
        if to_mine:
            fault("scale.pool")
            with _TELEMETRY.span("scale.mine", shards=len(to_mine)):
                if workers <= 1:
                    sup = mine_serial(to_mine, governor, bus,
                                      capture_telemetry,
                                      retries=retry_budget)
                else:
                    sup = supervise_mine(
                        to_mine, workers, governor, bus,
                        capture_telemetry,
                        retries=retry_budget,
                        timeout=getattr(config, "shard_timeout", None),
                    )
                results.update(sup.completed)
                lost = sup.lost
                torn_down = sup.torn_down
                stats.stragglers = sup.stragglers
                stats.shard_retries = sup.retries
                stats.shards_retried = sup.shards_retried
                stats.shard_fallbacks = sup.fallbacks
                stats.shards_quarantined = len(sup.dropped)
                if capture_telemetry:
                    # stitch worker telemetry in deterministic shard
                    # order, inside the scale.mine span so worker
                    # spans nest under it in the profile tree
                    for shard in shards:
                        result = results.get(shard.index)
                        if result is None or result.telemetry is None:
                            continue
                        _remote.merge_snapshot(_TELEMETRY,
                                               result.telemetry)
                        result.telemetry = None
            for shard, payload, digest in to_mine:
                result = results.get(shard.index)
                if result is None:
                    continue
                stats.shards_mined += 1
                stats.lattice_nodes_mined += result.lattice_nodes
                if capture_telemetry and result.mine_seconds:
                    _TELEMETRY.observe("scale.shard.mine_seconds",
                                       result.mine_seconds)
                    _TELEMETRY.event(
                        "scale.shard.timing",
                        shard=shard.index,
                        seconds=round(result.mine_seconds, 6),
                        lattice_nodes=result.lattice_nodes,
                        graphs=shard.num_graphs,
                    )
                if result.deadline_hit:
                    # partial (the mine unwound at the deadline);
                    # usable this round, but never cached
                    stats.deadline_hits += 1
                else:
                    cache.put(digest, result.to_doc())
        stats.shards_lost = len(lost)
        # merge: shard order, then one stable best-first sort — the
        # only ordering downstream ever sees
        merged: List[Candidate] = []
        tallies: Dict[str, int] = {}
        for shard in shards:
            result = results.get(shard.index)
            if result is None:
                continue
            for key, value in result.tallies.items():
                tallies[key] = tallies.get(key, 0) + value
            merged.extend(
                revive_candidates(dfgs, shard.graph_ids,
                                  result.candidates)
            )
        merged.sort(key=lambda c: c.sort_key())
        stats.tallies = tallies
        if _TELEMETRY.enabled:
            _TELEMETRY.count("scale.rounds")
            _TELEMETRY.count("scale.shards", stats.shards)
            _TELEMETRY.count("scale.shards.mined", stats.shards_mined)
            _TELEMETRY.count("scale.shards.lost", stats.shards_lost)
            _TELEMETRY.count("scale.cache.hits", stats.cache_hits)
            _TELEMETRY.count("scale.cache.misses", stats.cache_misses)
            _TELEMETRY.count("scale.cache.invalid", stats.cache_invalid)
            _TELEMETRY.count("scale.lattice_nodes.reused",
                             stats.lattice_nodes_reused)
            _TELEMETRY.count("scale.lattice_nodes.mined",
                             stats.lattice_nodes_mined)
            _TELEMETRY.count("scale.shard.retries",
                             stats.shard_retries)
            _TELEMETRY.count("scale.shards.quarantined",
                             stats.shards_quarantined)
            for key in sorted(tallies):
                counter = _TALLY_COUNTERS.get(key)
                if counter and tallies[key]:
                    _TELEMETRY.count(counter, tallies[key])
        dropped = ({q["shard"] for q in sup.dropped}
                   if sup is not None else set())
        if _LEDGER.enabled:
            for shard, payload, digest in zip(shards, payloads, digests):
                result = results.get(shard.index)
                _LEDGER.emit(
                    "scale.shard",
                    index=shard.index,
                    graphs=shard.num_graphs,
                    nodes=shard.num_nodes(dfgs),
                    digest=digest[:12],
                    cached=shard.index not in
                           {s.index for s, __, ___ in to_mine},
                    candidates=(len(result.candidates)
                                if result else None),
                    lattice_nodes=(result.lattice_nodes
                                   if result else None),
                    lost=shard.index in lost,
                    quarantined=shard.index in dropped,
                )
            if sup is not None:
                for attempt in sup.failures:
                    _LEDGER.emit(
                        "scale.retry",
                        shard=attempt.shard,
                        attempt=attempt.attempt,
                        error=attempt.error,
                        retried=attempt.will_retry,
                    )
                for q in sup.quarantined:
                    _LEDGER.emit(
                        "scale.quarantine",
                        shard=q["shard"],
                        attempts=q["attempts"],
                        error=q["error"],
                        recovered=q["recovered"],
                    )
            _LEDGER.emit(
                "scale.round",
                workers=workers,
                shards=stats.shards,
                mined=stats.shards_mined,
                lost=stats.shards_lost,
                cache_hits=stats.cache_hits,
                cache_misses=stats.cache_misses,
                cache_invalid=stats.cache_invalid,
                lattice_nodes_mined=stats.lattice_nodes_mined,
                lattice_nodes_reused=stats.lattice_nodes_reused,
                delta_clean=stats.delta_clean,
                delta_dirty=stats.delta_dirty,
                stragglers=stats.stragglers,
                retries=stats.shard_retries,
                fallbacks=stats.shard_fallbacks,
                quarantined=stats.shards_quarantined,
                candidates=len(merged),
            )
            if torn_down or lost:
                _LEDGER.emit(
                    "scale.salvage",
                    salvaged=sorted(results),
                    lost=sorted(lost),
                    candidates=len(merged),
                )
        if stats.shards_quarantined:
            # the merge above already excluded the dropped shards; the
            # run continues degraded — unless the user asked for
            # strictness, in which case the round rolls back and the
            # failure surfaces as a documented exit code
            governor.note("shards_quarantined")
            if getattr(config, "strict_shards", False):
                assert sup is not None
                detail = "; ".join(
                    f"shard {q['shard']}: {q['error']}"
                    for q in sup.dropped)
                raise ShardError(
                    f"{stats.shards_quarantined} shard(s) quarantined "
                    f"after {retry_budget} retr"
                    f"{'y' if retry_budget == 1 else 'ies'} and the "
                    f"serial fallback ({detail})")
    return merged, stats
