"""The multiprocess worklist scheduler for sharded mining.

One call to :func:`run_sharded_round` replaces the serial driver's
``collect_candidates`` for a round: cluster the DFG database, consult
the fragment cache per shard, mine the missing shards (in-process for
``workers <= 1``, in a worker pool otherwise), and merge.

Determinism invariants (the bit-identity gate relies on these):

* **Worker count never changes the result.**  Each shard is mined by
  the same pure function (:func:`~repro.scale.shard.mine_shard`) with a
  shard-local benefit floor — no cross-shard state — and the merge
  concatenates shard results in deterministic shard order before one
  stable sort by the candidate sort key.  Scheduling order, pool size
  and completion order are invisible.
* **Cache state never changes the result.**  A cache key is a complete
  content digest of the work unit (instructions, legality facts,
  mining config, wire-format schema), so a hit returns exactly what
  mining would produce.
* **Instrumentation parity.**  When telemetry is enabled, shard mining
  records into an isolated capture scope (:mod:`repro.telemetry.remote`)
  in *both* the in-process and the worker path, and the parent stitches
  every snapshot back in deterministic shard order — so counters and
  span counts are identical for any ``--workers`` value and any cache
  temperature (only durations, pids and timestamps differ, which is
  what a trace is for).  When telemetry is disabled the same capture
  scope runs suppressed, preserving the bit-identity guarantee.  The
  ledger stays parent-only either way: the parent replays each shard's
  funnel tallies and emits per-shard ledger records itself.  Progress
  events (:mod:`repro.telemetry.progress`) flow from workers over a
  queue handed through the pool initializer and are drained in the
  parent's poll loop, which doubles as the straggler watchdog.

Governor-aware teardown: the parent polls the active run governor
between completions; on SIGINT/SIGTERM/deadline it terminates the pool
(children ignore SIGINT — delivery is the parent's decision), salvages
every shard that already completed as the round's best-so-far, and
reports the lost shards — mirroring the serial engine's anytime
semantics.  Worker children run with fault injection disarmed, so
chaos specs fire deterministically in the parent (see ``scale.pool``).
"""

from __future__ import annotations

import contextlib
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dfg.builder import build_dfgs
from repro.pa.fragments import Candidate
from repro.pa.legality import sp_fragile_functions
from repro.pa.liveness import lr_live_out_blocks
from repro.report.ledger import GLOBAL as _LEDGER
from repro.resilience import governor as _governor
from repro.resilience.faultinject import disarm_all, fault
from repro.resilience.governor import RunGovernor
from repro.telemetry import GLOBAL as _TELEMETRY
from repro.telemetry import progress as _progress
from repro.telemetry import remote as _remote

from repro.scale.cache import FragmentCache
from repro.scale.cluster import Shard, cluster_dfgs
from repro.scale.delta import DeltaPlanner
from repro.scale.shard import (
    ShardPayload,
    ShardResult,
    build_payload,
    mine_shard,
    revive_candidates,
)

#: shard tally key -> the serial funnel's telemetry counter name
_TALLY_COUNTERS = {
    "considered": "pa.candidates.considered",
    "floor": "pa.candidates.skipped_floor",
    "illegal": "pa.candidates.skipped_illegal",
    "lr_infeasible": "pa.candidates.skipped_lr_infeasible",
    "order_inconsistent": "pa.candidates.skipped_order",
    "unprofitable": "pa.candidates.skipped_unprofitable",
    "scored": "pa.candidates.scored",
}


@dataclass
class ScaleStats:
    """One round's sharding/caching census."""

    workers: int = 1
    shards: int = 0
    shards_mined: int = 0
    #: shards torn down before completing (governor stop mid-round)
    shards_lost: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalid: int = 0
    lattice_nodes_mined: int = 0
    lattice_nodes_reused: int = 0
    deadline_hits: int = 0
    delta_clean: int = 0
    delta_dirty: int = 0
    #: shards whose heartbeats went stale past the watchdog threshold
    #: (they may still have completed — stalled flags imbalance, not
    #: loss)
    stragglers: int = 0
    tallies: Dict[str, int] = field(default_factory=dict)


@contextlib.contextmanager
def _suppressed_ledger():
    """Silence ledger emission around in-process shard mining: shard
    funnels never write decision records directly — the parent emits
    per-shard ledger records itself, identically for every worker
    count.  (Telemetry is handled separately by the capture scope.)"""
    ledger_was = _LEDGER.enabled
    _LEDGER.enabled = False
    try:
        yield
    finally:
        _LEDGER.enabled = ledger_was


def _worker_init(progress_queue=None) -> None:
    """Runs once in every pool child before it accepts work.

    SIGINT is ignored (teardown is the parent's decision — it
    ``terminate()``s the pool, which delivers SIGTERM); inherited
    instrumentation registries and armed fault specs are cleared so a
    child neither double-counts nor fires parent-targeted chaos specs.
    When the parent runs a progress bus, its queue arrives here (mp
    queues only cross the fork through the initializer) and the child's
    publish hooks are routed onto it.
    """
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # The CLI parent runs under the governor's graceful SIGTERM handler
    # (set a flag, finish the round); a forked child inherits it, which
    # would turn ``pool.terminate()``'s SIGTERM into a no-op and hang
    # ``pool.join()``.  Children must die on SIGTERM.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    disarm_all()
    _TELEMETRY.enabled = False
    _LEDGER.enabled = False
    # also drops any bus inherited from the parent through fork
    _progress.worker_attach(progress_queue)


def _mine_shard_job(payload: ShardPayload, budget: Optional[float],
                    capture_telemetry: bool = False) -> ShardResult:
    """Pool entry point: mine one shard under a child-local governor.

    With *capture_telemetry*, the mine records spans/counters into an
    isolated scope whose snapshot rides back on the (transient)
    ``result.telemetry`` field for the parent to stitch in.
    """
    child_governor = RunGovernor(time_budget=budget)
    with _governor.activate(child_governor):
        if not capture_telemetry:
            return mine_shard(payload)
        with _remote.capture() as captured:
            result = mine_shard(payload)
        result.telemetry = captured.snapshot
        return result


def _mine_parallel(
    to_mine: List[Tuple[Shard, ShardPayload, str]],
    workers: int,
    governor: RunGovernor,
    bus=None,
    capture_telemetry: bool = False,
) -> Tuple[Dict[int, ShardResult], List[int], bool, int]:
    """Expand the missing shards on a worker pool.

    Returns ``(completed by shard index, lost shard indices,
    torn_down, stragglers)``.  Dispatch order is largest-first (by
    payload size) for load balance; it cannot affect results — only
    which shards finish before a teardown.  When a progress *bus* is
    active, its worker queue rides into the children through the pool
    initializer, the poll loop drains it, and stale heartbeats are
    flagged as stragglers (counted on the governor so degradation
    notes surface them).
    """
    order = sorted(
        range(len(to_mine)),
        key=lambda i: (
            -sum(len(insns) for insns in to_mine[i][1].block_insns),
            to_mine[i][0].index,
        ),
    )
    completed: Dict[int, ShardResult] = {}
    torn_down = False
    stragglers = 0
    queue = bus.worker_queue() if bus is not None else None
    pool = multiprocessing.Pool(
        processes=min(workers, len(to_mine)),
        initializer=_worker_init,
        initargs=(queue,),
    )
    pending: Dict[int, object] = {}
    try:
        budget = governor.remaining()
        for i in order:
            shard, payload, __ = to_mine[i]
            pending[shard.index] = pool.apply_async(
                _mine_shard_job, (payload, budget, capture_telemetry)
            )
        while pending:
            if bus is not None:
                bus.drain()
                for shard_index in bus.stragglers():
                    stragglers += 1
                    governor.count("scale.stragglers")
                    _TELEMETRY.count("scale.shards.stalled")
            if governor.should_stop():
                torn_down = True
                break
            progressed = False
            for index in sorted(pending):
                handle = pending[index]
                if handle.ready():
                    # a child exception (a real bug; chaos specs are
                    # disarmed there) re-raises here and unwinds
                    # through the driver's round rollback
                    completed[index] = handle.get()
                    del pending[index]
                    progressed = True
            if pending and not progressed:
                time.sleep(0.01)
        if not pending:
            pool.close()
        else:
            torn_down = True
            pool.terminate()
    except BaseException:
        torn_down = True
        pool.terminate()
        raise
    finally:
        pool.join()
    if bus is not None:
        # events the children flushed before exiting
        bus.drain()
    return completed, sorted(pending), torn_down, stragglers


def run_sharded_round(
    module,
    config,
    governor: RunGovernor,
    cache: FragmentCache,
    planner: Optional[DeltaPlanner] = None,
) -> Tuple[List[Candidate], ScaleStats]:
    """Mine one round sharded/parallel/cached; return merged candidates.

    The returned list is sorted best-first by the same key as the
    serial funnel and is a pure function of (module content, config) —
    independent of ``config.workers``, cache temperature, scheduling
    and teardown history of previous runs.
    """
    workers = max(1, config.workers)
    stats = ScaleStats(workers=workers)
    bus = _progress.active()
    capture_telemetry = _TELEMETRY.enabled
    with _TELEMETRY.span("scale.round", workers=workers):
        dfgs = build_dfgs(module, min_nodes=0,
                          mined_kinds=config.mined_kinds)
        if not dfgs:
            return [], stats
        lr_live = lr_live_out_blocks(module)
        fragile = sp_fragile_functions(module)
        with _TELEMETRY.span("scale.cluster"):
            shards = cluster_dfgs(dfgs)
        payloads = [
            build_payload(shard, dfgs, lr_live, fragile, config)
            for shard in shards
        ]
        digests = [payload.digest() for payload in payloads]
        stats.shards = len(shards)
        if planner is not None:
            plan = planner.plan(digests)
            stats.delta_clean = len(plan.clean)
            stats.delta_dirty = len(plan.dirty)
        invalid_before = cache.stats.invalid
        results: Dict[int, ShardResult] = {}
        to_mine: List[Tuple[Shard, ShardPayload, str]] = []
        with _TELEMETRY.span("scale.cache.lookup"):
            for shard, payload, digest in zip(shards, payloads, digests):
                body = cache.get(digest)
                if body is not None:
                    result = ShardResult.from_doc(shard.index, body)
                    results[shard.index] = result
                    stats.lattice_nodes_reused += result.lattice_nodes
                else:
                    to_mine.append((shard, payload, digest))
        stats.cache_hits = len(results)
        stats.cache_misses = len(to_mine)
        stats.cache_invalid = cache.stats.invalid - invalid_before
        _progress.publish(
            "round.shards",
            shards=stats.shards,
            cached=stats.cache_hits,
            to_mine=len(to_mine),
            workers=workers,
        )
        lost: List[int] = []
        torn_down = False
        if to_mine:
            fault("scale.pool")
            with _TELEMETRY.span("scale.mine", shards=len(to_mine)):
                if workers <= 1:
                    with _suppressed_ledger():
                        for shard, payload, digest in to_mine:
                            if governor.should_stop():
                                lost.append(shard.index)
                                torn_down = True
                                continue
                            with _remote.capture(
                                enabled=capture_telemetry
                            ) as captured:
                                result = mine_shard(payload)
                            result.telemetry = captured.snapshot
                            results[shard.index] = result
                            if bus is not None:
                                for __ in bus.stragglers():
                                    stats.stragglers += 1
                                    governor.count("scale.stragglers")
                                    _TELEMETRY.count(
                                        "scale.shards.stalled")
                else:
                    completed, lost, torn_down, stalled = \
                        _mine_parallel(to_mine, workers, governor,
                                       bus, capture_telemetry)
                    results.update(completed)
                    stats.stragglers = stalled
                if capture_telemetry:
                    # stitch worker telemetry in deterministic shard
                    # order, inside the scale.mine span so worker
                    # spans nest under it in the profile tree
                    for shard in shards:
                        result = results.get(shard.index)
                        if result is None or result.telemetry is None:
                            continue
                        _remote.merge_snapshot(_TELEMETRY,
                                               result.telemetry)
                        result.telemetry = None
            for shard, payload, digest in to_mine:
                result = results.get(shard.index)
                if result is None:
                    continue
                stats.shards_mined += 1
                stats.lattice_nodes_mined += result.lattice_nodes
                if capture_telemetry and result.mine_seconds:
                    _TELEMETRY.observe("scale.shard.mine_seconds",
                                       result.mine_seconds)
                    _TELEMETRY.event(
                        "scale.shard.timing",
                        shard=shard.index,
                        seconds=round(result.mine_seconds, 6),
                        lattice_nodes=result.lattice_nodes,
                        graphs=shard.num_graphs,
                    )
                if result.deadline_hit:
                    # partial (the mine unwound at the deadline);
                    # usable this round, but never cached
                    stats.deadline_hits += 1
                else:
                    cache.put(digest, result.to_doc())
        stats.shards_lost = len(lost)
        # merge: shard order, then one stable best-first sort — the
        # only ordering downstream ever sees
        merged: List[Candidate] = []
        tallies: Dict[str, int] = {}
        for shard in shards:
            result = results.get(shard.index)
            if result is None:
                continue
            for key, value in result.tallies.items():
                tallies[key] = tallies.get(key, 0) + value
            merged.extend(
                revive_candidates(dfgs, shard.graph_ids,
                                  result.candidates)
            )
        merged.sort(key=lambda c: c.sort_key())
        stats.tallies = tallies
        if _TELEMETRY.enabled:
            _TELEMETRY.count("scale.rounds")
            _TELEMETRY.count("scale.shards", stats.shards)
            _TELEMETRY.count("scale.shards.mined", stats.shards_mined)
            _TELEMETRY.count("scale.shards.lost", stats.shards_lost)
            _TELEMETRY.count("scale.cache.hits", stats.cache_hits)
            _TELEMETRY.count("scale.cache.misses", stats.cache_misses)
            _TELEMETRY.count("scale.cache.invalid", stats.cache_invalid)
            _TELEMETRY.count("scale.lattice_nodes.reused",
                             stats.lattice_nodes_reused)
            _TELEMETRY.count("scale.lattice_nodes.mined",
                             stats.lattice_nodes_mined)
            for key in sorted(tallies):
                counter = _TALLY_COUNTERS.get(key)
                if counter and tallies[key]:
                    _TELEMETRY.count(counter, tallies[key])
        if _LEDGER.enabled:
            for shard, payload, digest in zip(shards, payloads, digests):
                result = results.get(shard.index)
                _LEDGER.emit(
                    "scale.shard",
                    index=shard.index,
                    graphs=shard.num_graphs,
                    nodes=shard.num_nodes(dfgs),
                    digest=digest[:12],
                    cached=shard.index not in
                           {s.index for s, __, ___ in to_mine},
                    candidates=(len(result.candidates)
                                if result else None),
                    lattice_nodes=(result.lattice_nodes
                                   if result else None),
                    lost=shard.index in lost,
                )
            _LEDGER.emit(
                "scale.round",
                workers=workers,
                shards=stats.shards,
                mined=stats.shards_mined,
                lost=stats.shards_lost,
                cache_hits=stats.cache_hits,
                cache_misses=stats.cache_misses,
                cache_invalid=stats.cache_invalid,
                lattice_nodes_mined=stats.lattice_nodes_mined,
                lattice_nodes_reused=stats.lattice_nodes_reused,
                delta_clean=stats.delta_clean,
                delta_dirty=stats.delta_dirty,
                stragglers=stats.stragglers,
                candidates=len(merged),
            )
            if torn_down or lost:
                _LEDGER.emit(
                    "scale.salvage",
                    salvaged=sorted(results),
                    lost=sorted(lost),
                    candidates=len(merged),
                )
    return merged, stats
