#!/usr/bin/env python
"""Quickstart: shrink an ARM program with graph-based procedural abstraction.

Three functions compute the same 6-instruction value in different
instruction orders.  Sequence-based tools cannot unify them; the graph
miner can.  We assemble, abstract, re-link, and run the program before
and after to show behaviour is preserved while the text shrinks.

Run:  python examples/quickstart.py
"""

from repro.binary import layout, module_from_asm
from repro.isa.assembler import parse_program
from repro.pa import PAConfig, run_pa
from repro.sim import run_image

PROGRAM = """
.text
.global _start
_start:
    bl f1
    swi #2
    bl f2
    swi #2
    bl f3
    swi #2
    mov r0, #0
    swi #0
f1:
    push {r4, r5, r6, lr}
    mov r1, #3
    mov r2, #5
    add r3, r1, r2
    mul r4, r3, r1
    sub r5, r4, #2
    eor r6, r5, r1
    mov r0, r6
    pop {r4, r5, r6, pc}
f2:
    push {r4, r5, r6, r7, lr}
    mov r1, #3
    mov r7, #9
    mov r2, #5
    add r3, r1, r2
    add r7, r7, #1
    mul r4, r3, r1
    eor r7, r7, r3
    sub r5, r4, #2
    eor r6, r5, r1
    add r0, r6, r7
    pop {r4, r5, r6, r7, pc}
f3:
    push {r4, r5, r6, lr}
    mov r2, #5
    mov r1, #3
    add r3, r1, r2
    mul r4, r3, r1
    sub r5, r4, #2
    eor r6, r5, r1
    add r0, r6, #100
    pop {r4, r5, r6, pc}
"""


def main() -> None:
    module = module_from_asm(parse_program(PROGRAM), entry="_start")
    before = run_image(layout(module))
    size_before = module.num_instructions
    print(f"before: {size_before} instructions, "
          f"output {before.output_text!r}")

    result = run_pa(module, PAConfig(miner="edgar"))

    after = run_image(layout(module))
    print(f"after:  {module.num_instructions} instructions, "
          f"output {after.output_text!r}")
    print(f"saved {result.saved} instructions in {result.rounds} rounds")
    for record in result.records:
        print(f"  round {record.round}: {record.method} x{record.occurrences}"
              f" of {record.size} instructions -> {record.new_symbol}")

    assert after.output == before.output and after.exit_code == before.exit_code
    print("\ncompacted program:")
    print(module.render())


if __name__ == "__main__":
    main()
