#!/usr/bin/env python
"""The paper's running example (Figs. 1-6), step by step.

Builds the data-flow graph of the 7-instruction ARM block of Fig. 1,
shows why the suffix trie only sees a 2-instruction repeat while the
graph miner finds 3-instruction fragments, and reproduces the 8 vs 7
instruction arithmetic of Figs. 3-5.

Run:  python examples/running_example.py
"""

from repro.binary.program import BasicBlock
from repro.dfg.builder import build_dfg
from repro.dfg.graph import FLOW_KINDS
from repro.isa.assembler import parse_instruction
from repro.mining.edgar import Edgar, non_overlapping_embeddings

FIG1 = [
    "ldr r3, [r1], #4",
    "sub r2, r2, r3",
    "add r4, r2, #4",
    "ldr r3, [r1], #4",
    "sub r2, r2, r3",
    "ldr r3, [r1], #4",
    "add r4, r2, #4",
]


def main() -> None:
    print("Fig. 1 basic block:")
    for i, text in enumerate(FIG1):
        print(f"  {i}: {text}")

    block = BasicBlock(instructions=[parse_instruction(t) for t in FIG1])
    dfg = build_dfg(block, mined_kinds=FLOW_KINDS)
    print("\nFig. 2 data-flow edges:")
    for src, dst, kind in sorted(dfg.edges):
        print(f"  {src} -{kind}-> {dst}   "
              f"({dfg.labels[src]}  ->  {dfg.labels[dst]})")

    # suffix-trie view: longest repeated contiguous sequence
    best = 0
    for length in range(2, len(FIG1)):
        for start in range(len(FIG1) - length + 1):
            needle = FIG1[start:start + length]
            occurrences = sum(
                1 for s in range(len(FIG1) - length + 1)
                if FIG1[s:s + length] == needle
            )
            if occurrences >= 2:
                best = max(best, length)
    print(f"\nSuffix trie: longest repeated sequence = {best} instructions "
          "(ldr; sub)")
    print("Fig. 3 arithmetic: outlining it twice leaves 5 + 3 = 8 "
          "instructions")

    miner = Edgar(min_support=2, min_nodes=3, max_nodes=3)
    fragments = miner.mine([dfg])
    print(f"\nGraph miner: {len(fragments)} frequent 3-node fragment(s) "
          "with two non-overlapping embeddings (Figs. 4/5):")
    for fragment in fragments:
        chosen = non_overlapping_embeddings(fragment.embeddings)
        print(f"  {fragment.node_labels}")
        for emb in chosen:
            print(f"    occurrence at block positions {sorted(emb.nodes)}")
    print("Fig. 4 arithmetic: outlining a 3-node fragment twice leaves "
          "3 + 4 = 7 instructions")

    # Fig. 8: overlapping embeddings of a larger fragment
    miner4 = Edgar(min_support=2, min_nodes=4, max_nodes=4)
    overlapping = miner4.mine([dfg])
    print(f"\n4-node fragments with two disjoint embeddings: "
          f"{len(overlapping)} (Fig. 8: the candidates overlap on a "
          "shared ldr, so none qualifies)")


if __name__ == "__main__":
    main()
