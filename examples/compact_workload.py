#!/usr/bin/env python
"""Compact a MiBench-like workload with all three abstraction engines.

Compiles one of the paper's benchmark programs with the bundled mini-C
toolchain, then runs the suffix-trie baseline (SFX), DgSpan, and Edgar
to a fixpoint, verifying the program's behaviour against its reference
output after each engine.

Run:  python examples/compact_workload.py [workload]
      (default workload: crc; see repro.workloads.PROGRAMS for names)
"""

import sys
import time

from repro.pa import PAConfig, run_pa, run_sfx
from repro.workloads import PROGRAMS, compile_workload, verify_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "crc"
    if name not in PROGRAMS:
        raise SystemExit(f"unknown workload {name!r}; "
                         f"choose from {', '.join(sorted(PROGRAMS))}")

    baseline = compile_workload(name)
    print(f"{name}: {baseline.num_instructions} instructions, "
          f"{len(baseline.functions)} functions")

    rows = []
    for engine in ("sfx", "dgspan", "edgar"):
        module = compile_workload(name)
        started = time.perf_counter()
        if engine == "sfx":
            result = run_sfx(module)
        else:
            # bounded like the benchmark harness; raise for deeper runs
            result = run_pa(module, PAConfig(miner=engine,
                                             time_budget=120.0))
        elapsed = time.perf_counter() - started
        verify_workload(name, module)  # behaviour must be unchanged
        rows.append((engine, result.saved, result.rounds,
                     result.call_extractions, result.crossjump_extractions,
                     elapsed))

    print(f"\n{'engine':8s} {'saved':>6s} {'rounds':>7s} {'calls':>6s} "
          f"{'xjumps':>7s} {'time':>8s}")
    for engine, saved, rounds, calls, xjumps, elapsed in rows:
        print(f"{engine:8s} {saved:6d} {rounds:7d} {calls:6d} "
              f"{xjumps:7d} {elapsed:7.1f}s")
    print("\nbehaviour verified against the Python reference after every "
          "engine")


if __name__ == "__main__":
    main()
