#!/usr/bin/env python
"""Drive the bundled mini-C toolchain end to end.

Compiles a small program to ARM-subset assembly, links it against the
runtime into a binary image, executes it on the simulator, decompiles
the image back (the post link-time loader needs no symbols), and prints
each artifact.

Run:  python examples/mini_compiler.py
"""

from repro.binary import layout, load_image
from repro.minicc import compile_to_asm, compile_to_module
from repro.sim import run_image

SOURCE = """
int squares[10];

int fill(int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        squares[i] = i * i;
    }
    return n;
}

int total(int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i = i + 1) {
        s = s + squares[i];
    }
    return s;
}

int main() {
    fill(10);
    print_int(total(10));
    print_nl(0);
    print_int(total(10) / 5);
    print_nl(0);
    return 0;
}
"""


def main() -> None:
    print("=== generated assembly (first 40 lines) ===")
    asm = compile_to_asm(SOURCE)
    print("\n".join(asm.splitlines()[:40]))
    print("    ...")

    module = compile_to_module(SOURCE)
    image = layout(module)
    print(f"\n=== linked image: {len(image.text)} text words, "
          f"{len(image.data)} data words, entry {image.entry:#x} ===")

    result = run_image(image)
    print(f"\n=== execution: exit={result.exit_code}, "
          f"{result.steps} instructions ===")
    print(result.output_text)

    # post link-time decompilation, exactly what the PA framework does
    image.symbols = {}
    recovered = load_image(image)
    print(f"=== recovered without symbols: "
          f"{len(recovered.functions)} functions, "
          f"{recovered.num_instructions} instructions ===")
    for func in recovered.functions[:4]:
        print(f"  {func.name}: {len(func.blocks)} blocks")
    again = run_image(layout(recovered))
    assert again.output == result.output
    print("re-linked image behaves identically")


if __name__ == "__main__":
    main()
