"""CPU semantics: arithmetic, flags, conditions, memory addressing."""

import pytest

from repro.isa.assembler import parse_instruction
from repro.isa.registers import LR, PC, SP
from repro.sim.cpu import CPU, Flags, to_signed
from repro.sim.memory import Memory


def make_cpu():
    return CPU(Memory(), syscall=lambda n, c: None)


def run(cpu, *texts):
    for text in texts:
        cpu.regs[PC] = 0x8000
        cpu.step(parse_instruction(text))


class TestToSigned:
    def test_positive(self):
        assert to_signed(5) == 5

    def test_negative(self):
        assert to_signed(0xFFFFFFFF) == -1
        assert to_signed(0x80000000) == -(1 << 31)


class TestDataProcessing:
    def test_mov_imm(self):
        cpu = make_cpu()
        run(cpu, "mov r0, #42")
        assert cpu.regs[0] == 42

    def test_mvn(self):
        cpu = make_cpu()
        run(cpu, "mvn r0, #0")
        assert cpu.regs[0] == 0xFFFFFFFF

    def test_add_wraps(self):
        cpu = make_cpu()
        cpu.regs[1] = 0xFFFFFFFF
        run(cpu, "add r0, r1, #2")
        assert cpu.regs[0] == 1

    def test_sub(self):
        cpu = make_cpu()
        cpu.regs[1] = 10
        run(cpu, "sub r0, r1, #3")
        assert cpu.regs[0] == 7

    def test_rsb(self):
        cpu = make_cpu()
        cpu.regs[1] = 3
        run(cpu, "rsb r0, r1, #0")
        assert to_signed(cpu.regs[0]) == -3

    def test_logical_ops(self):
        cpu = make_cpu()
        cpu.regs[1] = 0b1100
        cpu.regs[2] = 0b1010
        run(cpu, "and r0, r1, r2")
        assert cpu.regs[0] == 0b1000
        run(cpu, "orr r0, r1, r2")
        assert cpu.regs[0] == 0b1110
        run(cpu, "eor r0, r1, r2")
        assert cpu.regs[0] == 0b0110
        run(cpu, "bic r0, r1, r2")
        assert cpu.regs[0] == 0b0100

    def test_shifted_operands(self):
        cpu = make_cpu()
        cpu.regs[1] = 1
        run(cpu, "mov r0, r1, lsl #4")
        assert cpu.regs[0] == 16
        cpu.regs[1] = 0x80000000
        run(cpu, "mov r0, r1, lsr #31")
        assert cpu.regs[0] == 1
        run(cpu, "mov r0, r1, asr #31")
        assert cpu.regs[0] == 0xFFFFFFFF
        cpu.regs[1] = 0x81
        run(cpu, "mov r0, r1, ror #1")
        assert cpu.regs[0] == 0x80000040

    def test_mul_mla(self):
        cpu = make_cpu()
        cpu.regs[1], cpu.regs[2], cpu.regs[3] = 6, 7, 100
        run(cpu, "mul r0, r1, r2")
        assert cpu.regs[0] == 42
        run(cpu, "mla r0, r1, r2, r3")
        assert cpu.regs[0] == 142

    def test_adc_uses_carry(self):
        cpu = make_cpu()
        cpu.flags.c = True
        cpu.regs[1] = 1
        run(cpu, "adc r0, r1, #1")
        assert cpu.regs[0] == 3


class TestFlags:
    def test_cmp_equal_sets_z(self):
        cpu = make_cpu()
        cpu.regs[0] = 5
        run(cpu, "cmp r0, #5")
        assert cpu.flags.z and cpu.flags.c

    def test_cmp_less_sets_n(self):
        cpu = make_cpu()
        cpu.regs[0] = 3
        run(cpu, "cmp r0, #5")
        assert cpu.flags.n and not cpu.flags.c

    def test_unsigned_carry(self):
        cpu = make_cpu()
        cpu.regs[0] = 7
        run(cpu, "cmp r0, #5")
        assert cpu.flags.c  # no borrow

    def test_overflow(self):
        cpu = make_cpu()
        cpu.regs[0] = 0x7FFFFFFF
        run(cpu, "adds r1, r0, #1")
        assert cpu.flags.v and cpu.flags.n

    def test_subs_flags(self):
        cpu = make_cpu()
        cpu.regs[0] = 0
        run(cpu, "subs r1, r0, #1")
        assert cpu.flags.n and not cpu.flags.c

    def test_tst_teq(self):
        cpu = make_cpu()
        cpu.regs[0] = 0b1000
        run(cpu, "tst r0, #7")
        assert cpu.flags.z
        run(cpu, "teq r0, #8")
        assert cpu.flags.z

    @pytest.mark.parametrize(
        "cond,n,z,c,v,expected",
        [
            ("eq", False, True, False, False, True),
            ("ne", False, True, False, False, False),
            ("lt", True, False, False, False, True),
            ("lt", False, False, False, True, True),
            ("ge", True, False, False, True, True),
            ("gt", False, False, False, False, True),
            ("le", False, True, False, False, True),
            ("hi", False, False, True, False, True),
            ("ls", False, False, True, False, False),
            ("al", True, True, True, True, True),
        ],
    )
    def test_condition_table(self, cond, n, z, c, v, expected):
        flags = Flags(n=n, z=z, c=c, v=v)
        assert flags.passes(cond) is expected

    def test_conditional_skip(self):
        cpu = make_cpu()
        cpu.regs[0] = 0
        run(cpu, "cmp r0, #1", "moveq r1, #7")
        assert cpu.regs[1] == 0  # not equal: skipped
        run(cpu, "cmp r0, #0", "moveq r1, #7")
        assert cpu.regs[1] == 7


class TestMemoryAccess:
    def test_ldr_str(self):
        cpu = make_cpu()
        cpu.regs[1] = 0x1000
        cpu.regs[0] = 0xCAFEBABE
        run(cpu, "str r0, [r1, #4]")
        assert cpu.memory.load_word(0x1004) == 0xCAFEBABE
        run(cpu, "ldr r2, [r1, #4]")
        assert cpu.regs[2] == 0xCAFEBABE

    def test_byte_access(self):
        cpu = make_cpu()
        cpu.regs[1] = 0x1000
        cpu.regs[0] = 0x1FF
        run(cpu, "strb r0, [r1]")
        assert cpu.memory.load_word(0x1000) == 0xFF
        run(cpu, "ldrb r2, [r1]")
        assert cpu.regs[2] == 0xFF

    def test_post_index_writeback(self):
        cpu = make_cpu()
        cpu.memory.store_word(0x1000, 111)
        cpu.regs[1] = 0x1000
        run(cpu, "ldr r0, [r1], #4")
        assert cpu.regs[0] == 111
        assert cpu.regs[1] == 0x1004

    def test_pre_index_writeback(self):
        cpu = make_cpu()
        cpu.memory.store_word(0x1004, 222)
        cpu.regs[1] = 0x1000
        run(cpu, "ldr r0, [r1, #4]!")
        assert cpu.regs[0] == 222
        assert cpu.regs[1] == 0x1004

    def test_register_offset(self):
        cpu = make_cpu()
        cpu.memory.store_word(0x1010, 333)
        cpu.regs[1], cpu.regs[2] = 0x1000, 0x10
        run(cpu, "ldr r0, [r1, r2]")
        assert cpu.regs[0] == 333

    def test_push_pop(self):
        cpu = make_cpu()
        cpu.regs[SP] = 0x2000
        cpu.regs[4], cpu.regs[5] = 44, 55
        run(cpu, "push {r4, r5}")
        assert cpu.regs[SP] == 0x1FF8
        cpu.regs[4] = cpu.regs[5] = 0
        run(cpu, "pop {r4, r5}")
        assert (cpu.regs[4], cpu.regs[5]) == (44, 55)
        assert cpu.regs[SP] == 0x2000


class TestControlFlow:
    def test_bx(self):
        cpu = make_cpu()
        cpu.regs[3] = 0x9000
        cpu.regs[PC] = 0x8000
        cpu.step(parse_instruction("bx r3"))
        assert cpu.regs[PC] == 0x9000

    def test_mov_pc_lr(self):
        cpu = make_cpu()
        cpu.regs[LR] = 0x8765 & ~3
        cpu.regs[PC] = 0x8000
        cpu.step(parse_instruction("mov pc, lr"))
        assert cpu.regs[PC] == cpu.regs[LR]

    def test_pop_pc(self):
        cpu = make_cpu()
        cpu.regs[SP] = 0x2000
        cpu.memory.store_word(0x2000, 0xABC0)
        cpu.step(parse_instruction("pop {pc}"))
        assert cpu.regs[PC] == 0xABC0
        assert cpu.regs[SP] == 0x2004

    def test_bl_sets_lr(self):
        cpu = make_cpu()
        cpu.regs[PC] = 0x8000
        cpu.step(parse_instruction("bl loc_00009000"))
        assert cpu.regs[PC] == 0x9000
        assert cpu.regs[LR] == 0x8004

    def test_pc_reads_plus_8(self):
        cpu = make_cpu()
        cpu.regs[PC] = 0x8000
        cpu.step(parse_instruction("mov r0, pc"))
        assert cpu.regs[0] == 0x8008
