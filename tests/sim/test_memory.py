"""Simulator memory: byte/word access, endianness, page boundaries."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.memory import PAGE_SIZE, Memory


def test_zero_initialized():
    mem = Memory()
    assert mem.load_word(0x8000) == 0
    assert mem.load_byte(12345) == 0


def test_little_endian():
    mem = Memory()
    mem.store_word(0x100, 0x11223344)
    assert mem.load_byte(0x100) == 0x44
    assert mem.load_byte(0x101) == 0x33
    assert mem.load_byte(0x102) == 0x22
    assert mem.load_byte(0x103) == 0x11


def test_byte_store_masks():
    mem = Memory()
    mem.store_byte(0x10, 0x1FF)
    assert mem.load_byte(0x10) == 0xFF


def test_word_store_masks():
    mem = Memory()
    mem.store_word(0x10, 0x1_2345_6789)
    assert mem.load_word(0x10) == 0x23456789


def test_page_boundary_word():
    mem = Memory()
    addr = PAGE_SIZE - 2
    mem.store_word(addr, 0xAABBCCDD)
    assert mem.load_word(addr) == 0xAABBCCDD
    assert mem.load_byte(PAGE_SIZE - 1) == 0xCC
    assert mem.load_byte(PAGE_SIZE) == 0xBB


def test_write_words_bulk():
    mem = Memory()
    mem.write_words(0x200, [1, 2, 3])
    assert [mem.load_word(0x200 + 4 * i) for i in range(3)] == [1, 2, 3]


@given(
    st.integers(0, 2**22),
    st.integers(0, 0xFFFFFFFF),
)
def test_word_roundtrip(addr, value):
    mem = Memory()
    mem.store_word(addr, value)
    assert mem.load_word(addr) == value


@given(st.integers(0, 2**22), st.integers(0, 255))
def test_byte_roundtrip(addr, value):
    mem = Memory()
    mem.store_byte(addr, value)
    assert mem.load_byte(addr) == value
