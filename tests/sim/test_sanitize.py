"""The simulation-time stack sanitizer.

Three obligations: it never perturbs architectural state (sanitized and
plain runs are bit-identical), it stays silent on well-behaved code,
and it catches the sp-fragility composition dynamically — the saved-lr
clobber fires *before* the wild jump crashes the machine.
"""

import pytest

from repro.binary.layout import layout
from repro.sim.machine import Machine, run_image
from repro.sim.sanitize import (
    RETADDR_CLOBBER,
    Sanitizer,
    counterexample_kinds,
    run_sanitized,
)

from tests.conftest import SHARED_FRAGMENT_PROGRAM, module_from_source

CLEAN = SHARED_FRAGMENT_PROGRAM

LITERAL_POOL = """
_start:
    bl f
    mov r0, #0
    swi #0
f:
    ldr r0, =123
    swi #2
    mov pc, lr
"""


def _run_pair(asm):
    image = layout(module_from_source(asm))
    plain = run_image(image)
    image2 = layout(module_from_source(asm))
    sanitizer = Sanitizer()
    machine = Machine(image2, sanitizer=sanitizer)
    sanitized = machine.run()
    return plain, sanitized, sanitizer


def test_clean_program_has_no_findings():
    plain, sanitized, sanitizer = _run_pair(CLEAN)
    assert sanitizer.findings == []
    assert sanitizer.kinds == set()


def test_sanitized_run_is_bit_identical():
    plain, sanitized, sanitizer = _run_pair(CLEAN)
    assert sanitized.output == plain.output
    assert sanitized.exit_code == plain.exit_code
    assert sanitized.steps == plain.steps


def test_literal_pool_loads_are_not_stack_reads():
    """The shadow window must stop at the image, not extend into it:
    pc-relative literal loads are reads of initialized .text."""
    plain, sanitized, sanitizer = _run_pair(LITERAL_POOL)
    assert sanitizer.findings == []
    assert sanitized.output == plain.output


def test_saved_lr_clobber_is_caught():
    module = module_from_source("""
_start:
    bl f
    mov r0, #0
    swi #0
f:
    push {lr}
    mov r0, #7
    str r0, [sp]
    pop {pc}
""")
    result, error, sanitizer = run_sanitized(layout(module),
                                             max_steps=100_000)
    assert RETADDR_CLOBBER in sanitizer.kinds
    clobbers = [f for f in sanitizer.findings
                if f.kind == RETADDR_CLOBBER]
    assert "saved return address" in clobbers[0].detail


def test_run_sanitized_returns_result_on_clean_program():
    result, error, sanitizer = run_sanitized(
        layout(module_from_source(CLEAN))
    )
    assert error is None
    assert result is not None and result.exit_code == 0
    assert sanitizer.findings == []


def test_counterexample_kinds_is_a_set_difference():
    before, after = Sanitizer(), Sanitizer()
    before.attach(0x80000)
    after.attach(0x80000)
    before._emit("uninit-slot-read", 0x8000, "pre-existing")
    after._emit("uninit-slot-read", 0x8000, "pre-existing")
    after._emit(RETADDR_CLOBBER, 0x8010, "new")
    assert counterexample_kinds(before, after) == {RETADDR_CLOBBER}
    assert counterexample_kinds(after, before) == set()


def test_findings_serialize():
    module = module_from_source("""
_start:
    bl f
    mov r0, #0
    swi #0
f:
    push {lr}
    mov r0, #7
    str r0, [sp]
    pop {pc}
""")
    _, _, sanitizer = run_sanitized(layout(module), max_steps=100_000)
    payload = [f.to_dict() for f in sanitizer.findings]
    assert payload and {"kind", "pc", "detail", "addr"} <= set(payload[0])
