"""Extended CPU semantics: borrow chains, rotations, predication."""

import pytest

from repro.isa.assembler import parse_instruction
from repro.isa.registers import PC
from repro.sim.cpu import CPU
from repro.sim.memory import Memory


def make_cpu():
    return CPU(Memory(), syscall=lambda n, c: None)


def run(cpu, *texts):
    for text in texts:
        cpu.regs[PC] = 0x8000
        cpu.step(parse_instruction(text))


class TestCarryChains:
    def test_sbc_no_borrow(self):
        cpu = make_cpu()
        cpu.regs[1] = 10
        run(cpu, "subs r2, r1, #3", "sbc r3, r1, #3")
        # subs set C (no borrow): sbc behaves like sub
        assert cpu.regs[3] == 7

    def test_sbc_with_borrow(self):
        cpu = make_cpu()
        cpu.regs[1] = 1
        run(cpu, "subs r2, r1, #3")     # borrow: C clear
        cpu.regs[1] = 10
        run(cpu, "sbc r3, r1, #3")
        assert cpu.regs[3] == 6         # 10 - 3 - 1

    def test_rsc(self):
        cpu = make_cpu()
        cpu.flags.c = True
        cpu.regs[1] = 3
        run(cpu, "rsc r0, r1, #10")
        assert cpu.regs[0] == 7

    def test_64bit_add_idiom(self):
        # adds/adc implements 64-bit addition
        cpu = make_cpu()
        cpu.regs[0], cpu.regs[1] = 0xFFFFFFFF, 0x1   # low words
        cpu.regs[2], cpu.regs[3] = 0x2, 0x3          # high words
        run(cpu, "adds r4, r0, r1", "adc r5, r2, r3")
        assert cpu.regs[4] == 0
        assert cpu.regs[5] == 6


class TestPredication:
    @pytest.mark.parametrize(
        "setup,cond,taken",
        [
            ("cmp r1, #5", "eq", True),
            ("cmp r1, #5", "ne", False),
            ("cmp r1, #9", "lt", True),
            ("cmp r1, #3", "gt", True),
            ("cmp r1, #9", "ls", True),   # 5 <= 9 unsigned
            ("cmp r1, #3", "hi", True),   # 5 > 3 unsigned
            ("cmn r1, #5", "pl", True),   # 5 + 5 positive
        ],
    )
    def test_predicated_mov(self, setup, cond, taken):
        cpu = make_cpu()
        cpu.regs[1] = 5
        run(cpu, setup, f"mov{cond} r0, #1")
        assert (cpu.regs[0] == 1) is taken

    def test_predicated_memory_op_skipped(self):
        cpu = make_cpu()
        cpu.regs[1] = 0x1000
        cpu.regs[0] = 0
        run(cpu, "cmp r0, #1", "streq r0, [r1]")
        assert cpu.memory.load_word(0x1000) == 0

    def test_predicated_skip_does_not_touch_flags(self):
        cpu = make_cpu()
        run(cpu, "cmp r0, #0")          # Z set
        run(cpu, "addnes r1, r1, #1")   # skipped: flags unchanged
        assert cpu.flags.z


class TestShifterEdgeCases:
    def test_ror(self):
        cpu = make_cpu()
        cpu.regs[1] = 0x0000_00F0
        run(cpu, "mov r0, r1, ror #4")
        assert cpu.regs[0] == 0x0000_000F

    def test_asr_sign_extension(self):
        cpu = make_cpu()
        cpu.regs[1] = 0x8000_0000
        run(cpu, "mov r0, r1, asr #4")
        assert cpu.regs[0] == 0xF800_0000

    def test_lsl_drops_high_bits(self):
        cpu = make_cpu()
        cpu.regs[1] = 0xFFFF_FFFF
        run(cpu, "mov r0, r1, lsl #16")
        assert cpu.regs[0] == 0xFFFF_0000

    def test_shifted_operand_in_arithmetic(self):
        cpu = make_cpu()
        cpu.regs[1], cpu.regs[2] = 100, 3
        run(cpu, "add r0, r1, r2, lsl #2")
        assert cpu.regs[0] == 112
        run(cpu, "sub r0, r1, r2, lsl #1")
        assert cpu.regs[0] == 94
