"""Whole-machine execution: syscalls, exit paths, error handling."""

import pytest

from repro.sim.machine import ExecutionError

from tests.conftest import run_asm


def test_exit_code():
    result = run_asm("_start:\n mov r0, #42\n swi #0\n")
    assert result.exit_code == 42
    assert result.output == b""


def test_putc():
    result = run_asm(
        """
        _start:
            mov r0, #72
            swi #1
            mov r0, #105
            swi #1
            mov r0, #0
            swi #0
        """
    )
    assert result.output == b"Hi"


def test_print_int_syscall():
    result = run_asm(
        """
        _start:
            mvn r0, #41
            swi #2
            mov r0, #0
            swi #0
        """
    )
    assert result.output == b"-42"


def test_exit_via_sentinel_return():
    # returning from _start exits with r0
    result = run_asm("_start:\n mov r0, #9\n mov pc, lr\n")
    assert result.exit_code == 9


def test_step_budget():
    with pytest.raises(ExecutionError):
        run_asm("_start:\nspin:\n b spin\n", max_steps=1000)


def test_unknown_syscall():
    with pytest.raises(ExecutionError):
        run_asm("_start:\n swi #99\n swi #0\n")


def test_call_and_return():
    result = run_asm(
        """
        _start:
            mov r0, #5
            bl double
            swi #0
        double:
            add r0, r0, r0
            mov pc, lr
        """
    )
    assert result.exit_code == 10


def test_steps_counted():
    # the exiting swi aborts mid-step and is not counted
    result = run_asm("_start:\n mov r0, #0\n swi #0\n")
    assert result.steps == 1


def test_exit_code_is_low_byte():
    result = run_asm("_start:\n mov r0, #0x1F0\n swi #0\n")
    assert result.exit_code == 0xF0
