"""Opt-in stress grid: per-round verification across engine configs.

Run with ``pytest tests/integration/test_stress_grid.py -m stress``
(an hour of compute).  Every extraction round of every configuration is
followed by a full behavioural check against the workload's reference —
the harness that historically surfaced the lr-liveness and sp-bracket
miscompiles.
"""

import pytest

from repro.dfg.graph import FLOW_KINDS, MINED_KINDS
from repro.pa.driver import PAConfig, apply_candidate, best_candidate
from repro.workloads import PROGRAMS, compile_workload, verify_workload


CONFIGS = [
    PAConfig(miner="edgar", time_budget=60),
    PAConfig(miner="edgar", mined_kinds=FLOW_KINDS, flow_pass=False,
             time_budget=60),
    PAConfig(miner="edgar", flow_pass=False, time_budget=60),
    PAConfig(miner="dgspan", time_budget=60),
    PAConfig(miner="edgar", max_nodes=5, time_budget=60),
    PAConfig(miner="edgar", mis_exact_limit=0, time_budget=60),
    PAConfig(miner="edgar", pa_pruning=False, time_budget=60),
]

_FAST_PROGRAMS = ("crc", "dijkstra", "search", "qsort")


@pytest.mark.stress
@pytest.mark.parametrize("name", _FAST_PROGRAMS)
@pytest.mark.parametrize("config_index", range(len(CONFIGS)))
def test_stress_round_by_round(name, config_index):
    config = CONFIGS[config_index]
    module = compile_workload(name)
    for round_index in range(100):
        candidate = best_candidate(module, config)
        if candidate is None:
            break
        record = apply_candidate(module, config, candidate)
        try:
            verify_workload(name, module)
        except AssertionError as exc:
            raise AssertionError(
                f"{name} cfg#{config_index} round {round_index} "
                f"({record.method} size={record.size} "
                f"x{record.occurrences}): {exc}"
            ) from exc
