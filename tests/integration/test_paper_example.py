"""The paper's running example (Figs. 1-5).

The 7-instruction ARM block of Fig. 1 steps through an array and
performs some calculations; the varying instruction order hides the
repeated 3-instruction data-flow fragment from suffix tries while the
graph miner finds it (Figs. 4 and 5).
"""

import pytest

from repro.binary.program import BasicBlock
from repro.dfg.builder import build_dfg, build_dfgs
from repro.dfg.graph import FLOW_KINDS
from repro.isa.assembler import parse_instruction
from repro.mining.edgar import Edgar
from repro.pa.sfx import SFXConfig, run_sfx

from tests.conftest import module_from_source

#: Fig. 1, with the paper's pre-indexed writeback loads written in the
#: equivalent post-increment form.
FIG1_BLOCK = [
    "ldr r3, [r1], #4",
    "sub r2, r2, r3",
    "add r4, r2, #4",
    "ldr r3, [r1], #4",
    "sub r2, r2, r3",
    "ldr r3, [r1], #4",
    "add r4, r2, #4",
]


def fig1_dfg(mined_kinds=FLOW_KINDS):
    block = BasicBlock(
        instructions=[parse_instruction(t) for t in FIG1_BLOCK]
    )
    return build_dfg(block, mined_kinds=mined_kinds)


def test_fig2_dataflow_shape():
    """The writeback chains the loads; sub chains through r2."""
    dfg = fig1_dfg()
    d_edges = {(s, d) for (s, d, k) in dfg.edges if k == "d"}
    assert (0, 3) in d_edges          # ldr -> ldr via r1 writeback
    assert (3, 5) in d_edges
    assert (0, 1) in d_edges          # ldr -> sub via r3
    assert (1, 2) in d_edges          # sub -> add via r2
    assert (1, 4) in d_edges          # sub -> sub via r2
    assert (4, 6) in d_edges          # sub -> add via r2


def test_suffix_trie_sees_only_the_two_instruction_pair():
    """SFX detects 'ldr; sub' twice, nothing longer (paper §2.2)."""
    texts = FIG1_BLOCK
    best = None
    for length in range(2, 5):
        for start in range(len(texts) - length + 1):
            needle = texts[start:start + length]
            count = sum(
                1
                for s in range(len(texts) - length + 1)
                if texts[s:s + length] == needle
            )
            if count >= 2:
                best = max(best or 0, length)
    assert best == 2


def test_graph_miner_finds_three_instruction_fragments():
    """Edgar finds non-overlapping 3-node fragments appearing twice
    (Figs. 4 and 5)."""
    dfg = fig1_dfg()
    miner = Edgar(min_support=2, min_nodes=3, max_nodes=3)
    fragments = miner.mine([dfg])
    assert fragments, "no 3-node fragment with two disjoint embeddings"
    sizes = {
        (f.num_nodes, len(f.embeddings)) for f in fragments
    }
    assert (3, 2) in sizes
    labels = {tuple(sorted(f.node_labels)) for f in fragments}
    # Fig. 4's fragment: ldr + sub + add
    assert (
        "add r4, r2, #4", "ldr r3, [r1], #4", "sub r2, r2, r3"
    ) in labels


def test_fig8_overlapping_embeddings_rejected():
    """The ldr-ldr-sub fragment embeds twice but the occurrences share
    the middle ldr (Fig. 8): only one can be outlined, so the fragment
    is infrequent for Edgar."""
    dfg = fig1_dfg()
    miner = Edgar(min_support=2, min_nodes=3, max_nodes=3)
    labels = {
        tuple(sorted(f.node_labels)) for f in miner.mine([dfg])
    }
    assert (
        "ldr r3, [r1], #4", "ldr r3, [r1], #4", "sub r2, r2, r3"
    ) not in labels


def test_every_reported_fragment_has_two_disjoint_embeddings():
    dfg = fig1_dfg()
    miner = Edgar(min_support=2, min_nodes=2, max_nodes=4)
    for fragment in miner.mine([dfg]):
        node_sets = [set(e.nodes) for e in fragment.embeddings]
        assert any(
            not (a & b)
            for i, a in enumerate(node_sets)
            for b in node_sets[i + 1:]
        ), fragment


def test_arithmetic_of_figs_3_4():
    """Fig. 3: suffix-trie outlining of the pair yields 5+3=8
    instructions; Fig. 4: graph outlining of the triple yields 3+4=7."""
    size_pair, n = 2, 2
    remaining_sfx = 7 - size_pair * n + n   # block after outlining
    proc_sfx = size_pair + 1
    assert remaining_sfx + proc_sfx == 8

    size_triple = 3
    remaining_graph = 7 - size_triple * n + n
    proc_graph = size_triple + 1
    assert remaining_graph + proc_graph == 7
