"""Differential soundness testing on generated mini-C programs.

A deterministic generator emits random (but terminating) mini-C
programs; each is compiled and executed, then both abstraction engines
run to a fixpoint and the transformed binary must behave identically.
This is the widest net for extraction soundness bugs — the kind of
search that caught the lr-liveness and sp-bracket miscompiles.
"""

import random

import pytest

from repro.binary.layout import layout
from repro.minicc.driver import compile_to_module
from repro.pa.driver import PAConfig, run_pa
from repro.pa.sfx import run_sfx
from repro.sim.machine import run_image

_OPS = ["+", "-", "*", "&", "|", "^"]
_CMP = ["<", "<=", ">", ">=", "==", "!="]


def _expr(rng: random.Random, names, depth=0) -> str:
    choice = rng.random()
    if depth >= 2 or choice < 0.35:
        if rng.random() < 0.5 and names:
            return rng.choice(names)
        return str(rng.randint(0, 255))
    if choice < 0.8:
        op = rng.choice(_OPS)
        return (f"({_expr(rng, names, depth + 1)} {op} "
                f"{_expr(rng, names, depth + 1)})")
    if choice < 0.9:
        return (f"({_expr(rng, names, depth + 1)} "
                f"{rng.choice(['>>', '<<'])} {rng.randint(1, 7)})")
    return (f"({_expr(rng, names, depth + 1)} % "
            f"{rng.randint(1, 9)})")


def _statements(rng: random.Random, names, counters, helpers=(), depth=0):
    """*counters* are loop variables reserved for ``for`` headers only,
    and *helpers* lists the callable functions (acyclic by construction)
    — both guarantee termination of the generated program."""
    lines = []
    for __ in range(rng.randint(2, 6)):
        kind = rng.random()
        if kind < 0.5 or depth >= 2 or not counters:
            target = rng.choice(names)
            lines.append(f"{target} = {_expr(rng, names)};")
        elif kind < 0.7:
            cond = (f"{rng.choice(names)} {rng.choice(_CMP)} "
                    f"{rng.randint(0, 64)}")
            body = _statements(rng, names, counters, helpers, depth + 1)
            lines.append(f"if ({cond}) {{ {' '.join(body)} }}")
        elif kind < 0.85:
            counter = counters[0]
            body = _statements(rng, names, counters[1:], helpers, depth + 1)
            lines.append(
                f"for ({counter} = 0; {counter} < {rng.randint(2, 6)}; "
                f"{counter} = {counter} + 1) {{ {' '.join(body)} }}"
            )
        elif helpers:
            helper = rng.choice(helpers)
            lines.append(
                f"{rng.choice(names)} = {helper}({rng.choice(names)}, "
                f"{_expr(rng, names)});"
            )
        else:
            target = rng.choice(names)
            lines.append(f"{target} = {_expr(rng, names)};")
    return lines


def generate_program(seed: int) -> str:
    rng = random.Random(seed)
    names = ["a", "b", "c", "d"]
    decls = " ".join(f"int {n} = {rng.randint(0, 99)};" for n in names)
    loop_decls = "int i0; int i1;"
    # acyclic call graph: mix -> (), stir -> mix, work/main -> both
    mix = " ".join(_statements(rng, ["x", "y"], ["i0", "i1"], ()))
    stir = " ".join(_statements(rng, ["x", "y"], ["i0", "i1"], ("mix",)))
    body1 = " ".join(_statements(rng, names, ["i0", "i1"], ("mix", "stir")))
    body2 = " ".join(_statements(rng, names, ["i0", "i1"], ("mix", "stir")))
    return f"""
    int mix(int x, int y) {{ {loop_decls} {mix} return x + y; }}
    int stir(int x, int y) {{ {loop_decls} {stir} return x ^ y; }}
    int work(int a, int b) {{
        int c = 1; int d = 2; {loop_decls}
        {body2}
        return a + b + c + d;
    }}
    int main() {{
        {decls} {loop_decls}
        {body1}
        print_int(a); putc(' ');
        print_int(b); putc(' ');
        print_int(work(c, d));
        print_nl(0);
        return (a ^ b) & 127;
    }}
    """


@pytest.mark.parametrize("seed", range(20))
def test_random_program_pa_preserves_behaviour(seed):
    source = generate_program(seed)
    reference_module = compile_to_module(source)
    reference = run_image(layout(reference_module), max_steps=3_000_000)

    for engine in ("sfx", "edgar"):
        module = compile_to_module(source)
        if engine == "sfx":
            run_sfx(module)
        else:
            run_pa(module, PAConfig(miner="edgar", time_budget=30))
        result = run_image(layout(module), max_steps=3_000_000)
        assert result.output == reference.output, (seed, engine)
        assert result.exit_code == reference.exit_code, (seed, engine)
        assert module.num_instructions <= reference_module.num_instructions
