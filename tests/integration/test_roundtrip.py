"""Binary <-> program round trips on full compiled workloads."""

import pytest

from repro.binary.layout import layout
from repro.binary.loader import load_image
from repro.sim.machine import run_image
from repro.workloads import PROGRAMS, compile_workload


@pytest.mark.parametrize("name", ["crc", "qsort", "sha"])
def test_load_relayout_behaviour(name):
    image = layout(compile_workload(name))
    reference = run_image(image, max_steps=2_000_000)
    module = load_image(image)
    again = run_image(layout(module), max_steps=2_000_000)
    assert again.output == reference.output
    assert again.exit_code == reference.exit_code


@pytest.mark.parametrize("name", ["bitcnts", "dijkstra"])
def test_roundtrip_fixpoint(name):
    image = layout(compile_workload(name))
    once = layout(load_image(image))
    twice = layout(load_image(once))
    assert once.text == twice.text
    assert once.data == twice.data


def test_loader_recovers_without_symbols():
    image = layout(compile_workload("search"))
    reference = run_image(image, max_steps=2_000_000)
    image.symbols = {}
    module = load_image(image)
    result = run_image(layout(module), max_steps=2_000_000)
    assert result.output == reference.output


def test_literal_pools_survive_rewriting():
    image = layout(compile_workload("crc"))
    module = load_image(image)
    pools = [
        str(insn)
        for func in module.functions
        for insn in func.iter_instructions()
        if str(insn).startswith("ldr") and "=" in str(insn)
    ]
    # crc uses big polynomial constants and global addresses
    assert any("=" in p for p in pools)
    assert len(pools) > 10
