"""The ``audit`` subcommand and the output-clobber guard.

Every CLI flag that names an output file must refuse to overwrite an
existing file unless ``--force`` — including the paths added in this
layer (``audit --json``, ``pa -o``, ``compile --image-out``).
"""

import json

import pytest

from repro.cli import main
from repro.verify.absint import AUDIT_SCHEMA


@pytest.fixture
def clean_asm(tmp_path):
    path = tmp_path / "clean.s"
    path.write_text(
        """
        _start:
            bl f
            mov r0, #0
            swi #0
        f:
            push {r4, lr}
            mov r4, #7
            mov r0, r4
            pop {r4, pc}
        """
    )
    return str(path)


@pytest.fixture
def clobber_asm(tmp_path):
    path = tmp_path / "clobber.s"
    path.write_text(
        """
        _start:
            bl f
            mov r0, #0
            swi #0
        f:
            push {lr}
            mov r0, #7
            str r0, [sp]
            pop {pc}
        """
    )
    return str(path)


@pytest.fixture
def mini_c(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(
        "int main() { print_int(6 * 7); print_nl(0); return 0; }"
    )
    return str(path)


def test_audit_text_output(clean_asm, capsys):
    assert main(["audit", clean_asm, "--assembly"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("audit: ")
    assert "f: net=0 height=known" in out
    assert "fragile=no" in out


def test_audit_json_to_stdout(clean_asm, capsys):
    assert main(["audit", clean_asm, "--assembly", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == AUDIT_SCHEMA
    assert payload["ok"] is True
    assert payload["source"] == clean_asm
    assert "f" in payload["functions"]


def test_audit_exit_1_on_proven_clobber(clobber_asm, capsys):
    assert main(["audit", clobber_asm, "--assembly"]) == 1
    out = capsys.readouterr().out
    assert "retaddr-clobber" in out


def test_audit_json_file_and_clobber_guard(clean_asm, tmp_path, capsys):
    out = tmp_path / "audit.json"
    assert main(["audit", clean_asm, "--assembly",
                 "--json", str(out)]) == 0
    first = out.read_bytes()
    assert json.loads(first)["schema"] == AUDIT_SCHEMA

    with pytest.raises(SystemExit) as exc:
        main(["audit", clean_asm, "--assembly", "--json", str(out)])
    assert "refusing to overwrite" in str(exc.value)
    assert out.read_bytes() == first

    assert main(["audit", clean_asm, "--assembly",
                 "--json", str(out), "--force"]) == 0


def test_audit_json_missing_directory_rejected(clean_asm, tmp_path):
    with pytest.raises(SystemExit) as exc:
        main(["audit", clean_asm, "--assembly",
              "--json", str(tmp_path / "nope" / "audit.json")])
    assert "does not exist" in str(exc.value)


def test_pa_output_clobber_guard(clean_asm, tmp_path, capsys):
    out = tmp_path / "compacted.s"
    out.write_text("sentinel\n")
    with pytest.raises(SystemExit) as exc:
        main(["pa", clean_asm, "--assembly", "-o", str(out)])
    assert "refusing to overwrite" in str(exc.value)
    assert out.read_text() == "sentinel\n"

    assert main(["pa", clean_asm, "--assembly", "-o", str(out),
                 "--force"]) in (0, 1)
    assert out.read_text() != "sentinel\n"


def test_compile_image_out_clobber_guard(mini_c, tmp_path, capsys):
    img = tmp_path / "prog.img"
    img.write_bytes(b"sentinel")
    with pytest.raises(SystemExit) as exc:
        main(["compile", mini_c, "--image-out", str(img)])
    assert "refusing to overwrite" in str(exc.value)
    assert img.read_bytes() == b"sentinel"

    assert main(["compile", mini_c, "--image-out", str(img),
                 "--force"]) == 0
    assert img.read_bytes() != b"sentinel"


def test_pa_sanitize_ok_run_is_clean(clean_asm, capsys):
    code = main(["pa", clean_asm, "--assembly", "--sanitize"])
    assert code in (0, 1)  # 1 = nothing abstracted, never 2
    err = capsys.readouterr().err
    assert "SANITIZER FAILED" not in err
