"""The command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def mini_c(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(
        "int main() { print_int(6 * 7); print_nl(0); return 3; }"
    )
    return str(path)


@pytest.fixture
def assembly(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text(
        """
        _start:
            mov r0, #9
            swi #2
            mov r0, #0
            swi #0
        """
    )
    return str(path)


def test_compile(mini_c, capsys):
    assert main(["compile", mini_c]) == 0
    out = capsys.readouterr().out
    assert "main:" in out and "bl main" in out


def test_run_mini_c(mini_c, capsys):
    code = main(["run", mini_c])
    assert code == 3
    assert capsys.readouterr().out == "42\n"


def test_run_assembly(assembly, capsys):
    code = main(["run", assembly])
    assert code == 0
    assert capsys.readouterr().out == "9"


def test_pa_reports_and_verifies(tmp_path, capsys):
    path = tmp_path / "dup.s"
    path.write_text(
        """
        _start:
            bl f1
            bl f2
            mov r0, #0
            swi #0
        f1:
            push {r4, lr}
            mov r1, #3
            add r2, r1, #5
            mul r3, r2, r1
            eor r4, r3, r2
            mov r0, r4
            pop {r4, pc}
        f2:
            push {r4, lr}
            mov r1, #3
            add r2, r1, #5
            mul r3, r2, r1
            eor r4, r3, r2
            add r0, r4, #1
            pop {r4, pc}
        """
    )
    out_path = tmp_path / "out.s"
    code = main(["pa", str(path), "--engine", "edgar",
                 "-o", str(out_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "saved" in out and "[OK]" in out
    assert out_path.exists()
    assert "pa_" in out_path.read_text()


@pytest.fixture
def duplicated_asm(tmp_path):
    path = tmp_path / "dup.s"
    path.write_text(
        """
        _start:
            bl f1
            bl f2
            mov r0, #0
            swi #0
        f1:
            push {r4, lr}
            mov r1, #3
            add r2, r1, #5
            mul r3, r2, r1
            eor r4, r3, r2
            mov r0, r4
            pop {r4, pc}
        f2:
            push {r4, lr}
            mov r1, #3
            add r2, r1, #5
            mul r3, r2, r1
            eor r4, r3, r2
            add r0, r4, #1
            pop {r4, pc}
        """
    )
    return str(path)


def test_stats_on_workload(capsys):
    assert main(["stats", "crc"]) == 0
    assert "degree" in capsys.readouterr().out


def test_pa_telemetry_exports(duplicated_asm, tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    stats_path = tmp_path / "stats.json"
    code = main(["pa", duplicated_asm,
                 "--trace-out", str(trace_path),
                 "--stats-out", str(stats_path)])
    assert code == 0
    events = json.loads(trace_path.read_text())
    assert any(e.get("ph") == "X" and e["name"] == "pa.run"
               for e in events)
    stats = json.loads(stats_path.read_text())
    assert stats["schema"] == "repro.telemetry.stats/2"
    assert stats["counters"]["mining.lattice_nodes"] > 0
    assert stats["counters"]["mining.embeddings_enumerated"] > 0
    assert "mis.exact_components" in stats["counters"]
    assert "mis.greedy_components" in stats["counters"]
    assert any(e["name"] == "pa.round" and "mine_seconds" in e
               for e in stats["events"])
    assert any(e["name"] == "pa.extraction" for e in stats["events"])


def test_pa_without_telemetry_flags_leaves_registry_empty(duplicated_asm):
    from repro import telemetry

    telemetry.reset()
    assert main(["pa", duplicated_asm]) == 0
    assert telemetry.get().spans == []
    assert telemetry.get().counters == {}


def test_profile_prints_phase_tree(duplicated_asm, capsys):
    assert main(["profile", duplicated_asm]) == 0
    out = capsys.readouterr().out
    assert "pa.run" in out
    assert "pa.round" in out
    assert "mining.lattice_nodes" in out
    assert "saved" in out


def test_table1_json_export(tmp_path, capsys):
    json_path = tmp_path / "table1.json"
    code = main(["table1", "crc", "--time-budget", "30",
                 "--json", str(json_path)])
    assert code == 0
    stats = json.loads(json_path.read_text())
    assert stats["schema"] == "repro.telemetry.stats/2"
    rows = [e for e in stats["events"] if e["name"] == "table1.row"]
    assert {(r["program"], r["engine"]) for r in rows} == {
        ("crc", "sfx"), ("crc", "dgspan"), ("crc", "edgar")
    }
    assert all(r["seconds"] >= 0 and "saved" in r for r in rows)


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
