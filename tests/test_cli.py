"""The command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def mini_c(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(
        "int main() { print_int(6 * 7); print_nl(0); return 3; }"
    )
    return str(path)


@pytest.fixture
def assembly(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text(
        """
        _start:
            mov r0, #9
            swi #2
            mov r0, #0
            swi #0
        """
    )
    return str(path)


def test_compile(mini_c, capsys):
    assert main(["compile", mini_c]) == 0
    out = capsys.readouterr().out
    assert "main:" in out and "bl main" in out


def test_run_mini_c(mini_c, capsys):
    code = main(["run", mini_c])
    assert code == 3
    assert capsys.readouterr().out == "42\n"


def test_run_assembly(assembly, capsys):
    code = main(["run", assembly])
    assert code == 0
    assert capsys.readouterr().out == "9"


def test_pa_reports_and_verifies(tmp_path, capsys):
    path = tmp_path / "dup.s"
    path.write_text(
        """
        _start:
            bl f1
            bl f2
            mov r0, #0
            swi #0
        f1:
            push {r4, lr}
            mov r1, #3
            add r2, r1, #5
            mul r3, r2, r1
            eor r4, r3, r2
            mov r0, r4
            pop {r4, pc}
        f2:
            push {r4, lr}
            mov r1, #3
            add r2, r1, #5
            mul r3, r2, r1
            eor r4, r3, r2
            add r0, r4, #1
            pop {r4, pc}
        """
    )
    out_path = tmp_path / "out.s"
    code = main(["pa", str(path), "--engine", "edgar",
                 "-o", str(out_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "saved" in out and "[OK]" in out
    assert out_path.exists()
    assert "pa_" in out_path.read_text()


def test_stats_on_workload(capsys):
    assert main(["stats", "crc"]) == 0
    assert "degree" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
