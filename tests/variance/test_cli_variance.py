"""The ``variance`` subcommand and the compile-knob CLI flags."""

import json

import pytest

from repro.cli import main

SOURCE = """
int f1(int x) {
    int a = x + 3;
    int b = a * x;
    int c = b - 2;
    return c ^ a;
}
int f2(int x) {
    int a = x + 3;
    int b = a * x;
    int c = b - 2;
    return (c ^ a) + 9;
}
int main() {
    print_int(f1(4) + f2(6));
    print_nl(0);
    return 0;
}
"""


@pytest.fixture
def mini_c(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SOURCE)
    return str(path)


def test_variance_json_report(mini_c, tmp_path, capsys):
    out = tmp_path / "variance.json"
    code = main([
        "variance", "--workload", mini_c, "--variants", "3",
        "--engine", "sfx", "--json", str(out),
    ])
    assert code == 0
    report = json.loads(out.read_text())
    assert report["schema"] == "repro.variance/1"
    assert report["oracle_ok"] is True
    assert len(report["variants"]) == 3
    human = capsys.readouterr().out
    assert "fragment overlap" in human


def test_variance_bare_json_prints_report_to_stdout(mini_c, capsys):
    code = main([
        "variance", "--workload", mini_c, "--variants", "2",
        "--engine", "sfx", "--json",
    ])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["schema"] == "repro.variance/1"


def test_variance_fuzzed_source(capsys):
    code = main([
        "variance", "--fuzz-seed", "3", "--variants", "2",
        "--engine", "sfx",
    ])
    assert code == 0
    assert "fuzz-3" in capsys.readouterr().out


def test_variance_min_overlap_gate_can_fail(mini_c, capsys):
    # an impossible gate (> 1.0) must trip the soft-gate exit code
    code = main([
        "variance", "--workload", mini_c, "--variants", "2",
        "--engine", "sfx", "--min-overlap", "1.1",
    ])
    assert code == 1
    assert "min-overlap" in capsys.readouterr().err


def test_variance_ledger_out(mini_c, tmp_path):
    ledger_path = tmp_path / "ledger.jsonl"
    code = main([
        "variance", "--workload", mini_c, "--variants", "2",
        "--engine", "sfx", "--ledger-out", str(ledger_path),
    ])
    assert code == 0
    types = {
        json.loads(line)["type"]
        for line in ledger_path.read_text().splitlines()
    }
    assert "variance.variant" in types
    assert "variance.summary" in types


def test_variance_rejects_unknown_workload(capsys):
    with pytest.raises(SystemExit):
        main(["variance", "--workload", "no-such-thing"])


def test_variance_refuses_to_overwrite_json(mini_c, tmp_path):
    out = tmp_path / "variance.json"
    out.write_text("{}")
    with pytest.raises(SystemExit):
        main([
            "variance", "--workload", mini_c, "--variants", "2",
            "--engine", "sfx", "--json", str(out),
        ])


# ----------------------------------------------------------------------
# compile-knob flags
# ----------------------------------------------------------------------
def test_compile_knob_flags_change_the_listing(mini_c, capsys):
    assert main(["compile", mini_c]) == 0
    baseline = capsys.readouterr().out
    assert main(["compile", mini_c, "--no-schedule"]) == 0
    unscheduled = capsys.readouterr().out
    assert main(["compile", mini_c, "--peephole"]) == 0
    peepholed = capsys.readouterr().out
    assert unscheduled != baseline
    assert len(peepholed.splitlines()) < len(baseline.splitlines())


def test_compile_layout_seed_reorders_functions(mini_c, capsys):
    assert main(["compile", mini_c, "--layout-seed", "1"]) == 0
    shuffled = capsys.readouterr().out
    assert main(["compile", mini_c]) == 0
    baseline = capsys.readouterr().out
    assert sorted(shuffled.splitlines()) == sorted(baseline.splitlines())


def test_compile_image_out_and_run_round_trip(mini_c, tmp_path, capsys):
    img = tmp_path / "prog.img"
    assert main(["compile", mini_c, "--image-out", str(img)]) == 0
    capsys.readouterr()
    assert main(["run", mini_c]) == 0
    direct = capsys.readouterr().out
    assert main(["run", str(img)]) == 0
    via_image = capsys.readouterr().out
    assert via_image == direct


def test_corrupted_image_exits_with_typed_diagnostic(tmp_path, capsys):
    img = tmp_path / "bad.img"
    img.write_bytes(b"RIMG" + b"\x00" * 40)
    code = main(["run", str(img)])
    assert code == 5
    err = capsys.readouterr().err
    assert "error[REPRO-IMAGE]" in err
    assert "Traceback" not in err


def test_truncated_image_exits_with_typed_diagnostic(mini_c, tmp_path,
                                                     capsys):
    img = tmp_path / "prog.img"
    assert main(["compile", mini_c, "--image-out", str(img)]) == 0
    img.write_bytes(img.read_bytes()[:50])
    code = main(["pa", str(img)])
    assert code == 5
    assert "error[REPRO-IMAGE]" in capsys.readouterr().err
