"""The differential variance harness and its overlap metric."""

from types import SimpleNamespace

from repro.variance.harness import (
    VARIANCE_SCHEMA,
    VarianceConfig,
    fragment_fingerprints,
    run_variance,
)

#: Two functions sharing an abstractable computation, cheap to sweep.
SHARED_SOURCE = """
int f1(int x) {
    int a = x + 3;
    int b = a * x;
    int c = b - 2;
    return c ^ a;
}
int f2(int x) {
    int a = x + 3;
    int b = a * x;
    int c = b - 2;
    return (c ^ a) + 100;
}
int main() {
    print_int(f1(5) + f2(7));
    print_nl(0);
    return 0;
}
"""


def _record(*instructions):
    return SimpleNamespace(instructions=tuple(instructions))


def test_fingerprints_are_register_and_label_canonical():
    # the same computation under different registers and labels must
    # collapse to one fingerprint — the metric measures *what* was
    # mined, not how it was spelled
    a = fragment_fingerprints([
        _record("add r1, r2, #3", "mul r3, r1, r2", "b loop_a"),
    ])
    b = fragment_fingerprints([
        _record("add r5, r6, #3", "mul r7, r5, r6", "b loop_b"),
    ])
    assert a == b
    assert len(a) == 1


def test_fingerprints_distinguish_different_computations():
    a = fragment_fingerprints([_record("add r1, r2, #3")])
    b = fragment_fingerprints([_record("sub r1, r2, #3")])
    assert a != b


def test_fingerprints_keep_immediate_structure_stable():
    # canonicalization abstracts immediate *values*; two fragments
    # differing only in constants share a fingerprint
    a = fragment_fingerprints([_record("add r1, r2, #3")])
    b = fragment_fingerprints([_record("add r4, r0, #7")])
    assert a == b


def test_run_variance_report_shape_and_oracle():
    report = run_variance(
        SHARED_SOURCE,
        VarianceConfig(engine="sfx", n_variants=3),
        source_name="shared",
    )
    assert report["schema"] == VARIANCE_SCHEMA
    assert report["source"] == "shared"
    assert report["n_variants"] == 3
    assert len(report["variants"]) == 3
    assert report["oracle_ok"] is True
    assert report["cross_variant_behaviour_ok"] is True
    # 3 variants -> 3 unordered pairs
    assert len(report["overlap"]["pairs"]) == 3
    assert 0.0 <= report["overlap"]["min_jaccard"] <= 1.0
    assert 0.0 <= report["overlap"]["mean_jaccard"] <= 1.0
    for row in report["variants"]:
        assert row["saved"] >= 0
        assert row["instructions_after"] <= row["instructions_before"]
        assert row["oracle_ok"] is True
    savings = report["savings"]
    assert savings["min"] <= savings["mean"] <= savings["max"]
    assert 0.0 <= savings["degradation"] <= 1.0


def test_run_variance_with_graph_engine_finds_the_shared_fragment():
    report = run_variance(
        SHARED_SOURCE,
        VarianceConfig(engine="edgar", n_variants=2, time_budget=20.0),
        source_name="shared",
    )
    assert report["oracle_ok"] is True
    assert all(row["saved"] > 0 for row in report["variants"])
