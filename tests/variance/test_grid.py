"""The variant build matrix."""

import pytest

from repro.minicc.driver import CompileConfig
from repro.variance.grid import VARIANT_AXES, variant_grid


def test_variant_zero_is_the_baseline():
    grid = variant_grid(1)
    assert grid[0].name == "baseline"
    assert grid[0].config == CompileConfig()


def test_single_axis_variants_move_one_knob():
    baseline = CompileConfig()
    for variant in variant_grid(6)[1:]:
        moved = [
            axis for axis in VARIANT_AXES
            if getattr(variant.config, axis) != getattr(baseline, axis)
        ]
        assert moved, f"{variant.name} is identical to the baseline"
        assert len(moved) == 1, (
            f"single-axis variant {variant.name} moved {moved}"
        )


def test_grid_is_deterministic():
    assert variant_grid(12, seed=7) == variant_grid(12, seed=7)


def test_names_are_unique():
    grid = variant_grid(16, seed=3)
    assert len({v.name for v in grid}) == len(grid)


def test_grid_rejects_empty():
    with pytest.raises(ValueError):
        variant_grid(0)
