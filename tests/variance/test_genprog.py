"""The seeded mini-C program generator: the total-by-construction property.

The contract (see the module docstring of ``repro.variance.genprog``):
for any seed, the generated program compiles, assembles, links, runs to
a clean exit inside the dynamic budget, and survives the
binary -> program -> binary round trip.  The ``slow``-marked tests
extend this to 100k-instruction programs and a full ``pa --verify``
round trip with the differential oracle agreeing.
"""

import pytest

from repro.binary.layout import layout
from repro.binary.loader import load_image
from repro.minicc.driver import compile_to_image, compile_to_module
from repro.pa.driver import PAConfig, run_pa
from repro.sim.machine import run_image
from repro.variance.genprog import GenConfig, generate_source, sized_config


def test_same_seed_same_source():
    a = generate_source(GenConfig(seed=42))
    b = generate_source(GenConfig(seed=42))
    assert a == b


def test_different_seeds_differ():
    assert generate_source(GenConfig(seed=1)) != generate_source(
        GenConfig(seed=2)
    )


def test_sized_config_scales_static_size():
    small = sized_config(0, 2_000)
    large = sized_config(0, 50_000)
    assert large.n_functions > small.n_functions
    assert large.estimated_instructions() >= 10 * small.estimated_instructions()


@pytest.mark.parametrize("seed", range(8))
def test_generated_programs_compile_and_terminate(seed):
    source = generate_source(GenConfig(seed=seed))
    image = compile_to_image(source)
    result = run_image(image)
    assert result.exit_code == 0
    # dyn_budget is an estimate; even an order of magnitude of slack
    # keeps us far from the simulator's 50M default step ceiling
    assert result.steps < 20_000_000
    # main prints acc, a global checksum, and one line per array
    assert len(result.output_text.splitlines()) >= 3


@pytest.mark.parametrize("seed", [0, 3])
@pytest.mark.parametrize("target", [1_500, 6_000])
def test_generated_programs_scale_and_round_trip(seed, target):
    source = generate_source(sized_config(seed, target))
    module = compile_to_module(source)
    image = layout(module)
    reference = run_image(image)
    assert reference.exit_code == 0
    # binary -> program -> binary: the loader's symbolization must
    # reconstruct a module that lays out to the same behaviour
    reloaded = load_image(image)
    replay = run_image(layout(reloaded))
    assert (replay.output, replay.exit_code) == (
        reference.output, reference.exit_code
    )


def test_small_program_survives_verified_abstraction():
    source = generate_source(GenConfig(seed=5, n_functions=4,
                                       stmts_per_function=5))
    module = compile_to_module(source)
    reference = run_image(layout(module))
    run_pa(module, PAConfig(miner="edgar", time_budget=20.0, verify=True))
    result = run_image(layout(module))
    assert (result.output, result.exit_code) == (
        reference.output, reference.exit_code
    )


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(20))
def test_generated_programs_sweep(seed):
    source = generate_source(GenConfig(seed=seed, n_functions=10,
                                       stmts_per_function=10))
    result = run_image(compile_to_image(source))
    assert result.exit_code == 0


@pytest.mark.slow
def test_huge_program_compiles_runs_and_reloads():
    # ~100k instructions: past the fixed data base, so this also
    # exercises the layout bump and the relocated stack
    source = generate_source(sized_config(11, 100_000))
    module = compile_to_module(source)
    image = layout(module)
    assert len(image.text) > 80_000
    reference = run_image(image)
    assert reference.exit_code == 0
    replay = run_image(layout(load_image(image)))
    assert (replay.output, replay.exit_code) == (
        reference.output, reference.exit_code
    )


@pytest.mark.slow
@pytest.mark.parametrize("seed", [2, 9])
def test_verified_abstraction_on_medium_programs(seed):
    source = generate_source(sized_config(seed, 4_000))
    module = compile_to_module(source)
    reference = run_image(layout(module))
    run_pa(module, PAConfig(miner="edgar", time_budget=60.0, verify=True))
    result = run_image(layout(module))
    assert (result.output, result.exit_code) == (
        reference.output, reference.exit_code
    )
