"""Global properties of the abstraction engines."""

import pytest

from repro.binary.layout import layout
from repro.pa.driver import PAConfig, run_pa
from repro.pa.sfx import run_sfx
from repro.sim.machine import run_image
from repro.workloads import compile_workload

from tests.conftest import SHARED_FRAGMENT_PROGRAM, module_from_source


def test_pa_never_increases_size(shared_fragment_module):
    before = shared_fragment_module.num_instructions
    run_pa(shared_fragment_module, PAConfig())
    assert shared_fragment_module.num_instructions <= before


def test_pa_fixpoint_is_stable(shared_fragment_module):
    run_pa(shared_fragment_module, PAConfig())
    size = shared_fragment_module.num_instructions
    second = run_pa(shared_fragment_module, PAConfig())
    assert second.saved == 0
    assert shared_fragment_module.num_instructions == size


def test_sfx_fixpoint_is_stable():
    module = compile_workload("crc")
    run_sfx(module)
    again = run_sfx(module)
    assert again.saved == 0


def test_result_module_is_the_input_module(shared_fragment_module):
    result = run_pa(shared_fragment_module, PAConfig())
    assert result.module is shared_fragment_module
    assert result.instructions_after == shared_fragment_module.num_instructions


def test_records_sum_to_savings():
    module = compile_workload("dijkstra")
    result = run_pa(module, PAConfig(time_budget=60))
    assert result.saved == sum(r.benefit for r in result.records)
    assert result.call_extractions + result.crossjump_extractions == len(
        result.records
    )


def test_outlined_procedures_are_registered_functions(
    shared_fragment_module,
):
    result = run_pa(shared_fragment_module, PAConfig())
    for record in result.records:
        if record.method == "call":
            func = shared_fragment_module.function(record.new_symbol)
            body = list(func.iter_instructions())
            assert body[-1].is_return
            assert len(body) >= record.size + 1
    # the module still links and runs
    run_image(layout(shared_fragment_module))


def test_engines_keep_exempt_and_entry():
    module = compile_workload("sha")
    entry_before = module.entry
    run_pa(module, PAConfig(time_budget=30))
    assert module.entry == entry_before
