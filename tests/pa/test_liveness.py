"""Module-wide lr liveness — including the cross-jump regression."""

from repro.binary.layout import layout
from repro.pa.driver import PAConfig, run_pa
from repro.pa.liveness import lr_live_out_blocks
from repro.pa.sfx import SFXConfig, run_sfx
from repro.sim.machine import run_image

from tests.conftest import module_from_source, run_asm


def keys(module):
    return lr_live_out_blocks(module)


def test_leaf_function_blocks_live():
    module = module_from_source(
        """
        _start:
            bl f
            swi #0
        f:
            mov r1, #1
            cmp r1, #0
            beq out
            add r1, r1, #1
        out:
            mov pc, lr
        """
    )
    live = keys(module)
    # every f block preceding the lr-consuming return is live-out
    assert ("f", 0) in live
    assert ("f", 1) in live
    assert ("f", 2) not in live  # the return block itself consumes lr


def test_stack_saving_function_dead():
    module = module_from_source(
        """
        _start:
            bl f
            swi #0
        f:
            push {r4, lr}
            mov r4, #1
            pop {r4, pc}
        """
    )
    live = keys(module)
    assert ("f", 0) not in live


def test_bl_kills_liveness():
    module = module_from_source(
        """
        _start:
            mov r0, #0
            bl f
            swi #0
        f:
            mov pc, lr
        """
    )
    # _start block 0: the bl rewrites lr before... actually the bl is in
    # the same block; lr is never read in _start, so nothing is live
    assert ("_start", 0) not in keys(module)


def test_cross_function_tail_keeps_liveness():
    """The rijndael regression shape: a shared tail in another function
    consumes lr; its feeder blocks must be live-out."""
    module = module_from_source(
        """
        _start:
            bl f
            bl g
            swi #0
        f:
            mov r1, #1
            b shared
        g:
            mov r1, #2
            b shared
        shared:
            add r1, r1, #1
            mov pc, lr
        """
    )
    live = keys(module)
    assert ("f", 0) in live
    assert ("g", 0) in live


def test_regression_no_call_outlining_into_tail_merged_leaf():
    """After tail-merging two leaf returns, outlining from a feeder
    block must be refused (a bl there would clobber the still-live lr).
    Behaviour before the fix: infinite loop."""
    src = """
    _start:
        bl f
        swi #2
        bl g
        swi #2
        mov r0, #0
        swi #0
    f:
        mov r1, #3
        add r2, r1, #5
        eor r3, r2, r1
        orr r0, r3, #1
        mov pc, lr
    g:
        mov r1, #3
        add r2, r1, #5
        eor r3, r2, r1
        orr r0, r3, #2
        mov pc, lr
    """
    reference = run_asm(src)

    for engine in ("sfx", "edgar"):
        module = module_from_source(src)
        if engine == "sfx":
            run_sfx(module, SFXConfig())
        else:
            run_pa(module, PAConfig(miner="edgar"))
        result = run_image(layout(module), max_steps=100_000)
        assert (result.exit_code, result.output) == (
            reference.exit_code, reference.output
        ), engine


# ----------------------------------------------------------------------
# differential check against the historical single-register fixpoint
# ----------------------------------------------------------------------
def _reference_lr_live_out(module):
    """The pre-framework algorithm, kept verbatim as a test oracle: a
    chaotic-iteration boolean fixpoint with per-block (reads-first,
    kills) summaries.  The production path now goes through the generic
    solver in repro.verify; on every workload both must agree exactly."""
    from repro.isa.registers import LR

    def block_summary(block):
        reads_first = False
        kills = False
        for insn in block.instructions:
            if LR in insn.regs_read():
                if not kills:
                    reads_first = True
            if LR in insn.regs_written() and not insn.is_conditional:
                kills = True
        return reads_first, kills

    label_to_block, ordered = {}, []
    for func in module.functions:
        for bi, block in enumerate(func.blocks):
            key = (func.name, bi)
            ordered.append((key, block))
            if bi == 0:
                label_to_block.setdefault(func.name, key)
            for label in block.labels:
                label_to_block[label] = key
    succ = {}
    for index, (key, block) in enumerate(ordered):
        targets, falls_through = [], True
        for insn in block.instructions:
            if insn.is_branch and not insn.is_call:
                target = insn.label_target
                if target is not None and target in label_to_block:
                    targets.append(label_to_block[target])
                if not insn.is_conditional:
                    falls_through = False
            elif insn.is_terminator and not insn.is_conditional:
                falls_through = False
        if falls_through and index + 1 < len(ordered):
            next_key, __ = ordered[index + 1]
            if next_key[0] == key[0]:
                targets.append(next_key)
        succ[key] = targets

    summaries = {key: block_summary(block) for key, block in ordered}
    live_in = {key: False for key in summaries}
    live_out = {key: False for key in summaries}
    changed = True
    while changed:
        changed = False
        for key in summaries:
            out = any(live_in[s] for s in succ[key])
            reads_first, kills = summaries[key]
            inn = reads_first or (not kills and out)
            if out != live_out[key] or inn != live_in[key]:
                live_out[key] = out
                live_in[key] = inn
                changed = True
    return {key for key, live in live_out.items() if live}


def test_differential_lr_liveness_on_all_workloads():
    from repro.workloads import PROGRAMS, compile_workload

    for name in sorted(PROGRAMS):
        module = compile_workload(name)
        assert lr_live_out_blocks(module) == _reference_lr_live_out(
            module
        ), name


def test_differential_lr_liveness_after_abstraction():
    """Agreement must also hold on post-extraction modules (shared
    tails, outlined helpers)."""
    from repro.workloads import compile_workload

    for name in ("crc", "qsort"):
        module = compile_workload(name)
        run_pa(module, PAConfig(miner="edgar"))
        assert lr_live_out_blocks(module) == _reference_lr_live_out(
            module
        ), name
