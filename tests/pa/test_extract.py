"""Extraction mechanics: outlining, cross-jumping, re-linearization."""

import pytest

from repro.binary.layout import layout
from repro.binary.program import BasicBlock
from repro.dfg.builder import build_dfg, build_dfgs
from repro.isa.assembler import parse_instruction
from repro.mining.embeddings import Embedding
from repro.pa.extract import (
    ExtractionError,
    body_order,
    call_site_feasible,
    extract_call,
    extract_crossjump,
    order_consistent_subset,
)
from repro.sim.machine import run_image

from tests.conftest import module_from_source, run_asm


def insns(*texts):
    return [parse_instruction(t) for t in texts]


class TestOrderConsistency:
    def test_compatible_occurrences_kept(self):
        src = """
        _start:
            mov r0, #1
            add r1, r0, #2
            mov r0, #1
            add r1, r0, #2
            swi #0
        """
        module = module_from_source(src)
        dfgs = build_dfgs(module)
        embs = [Embedding(0, (0, 1)), Embedding(0, (2, 3))]
        kept, union = order_consistent_subset(dfgs, embs)
        assert len(kept) == 2
        assert (0, 1) in union

    def test_conflicting_orders_dropped(self):
        # same two instructions, opposite output-dependence order
        src = """
        _start:
            mov r0, #1
            mov r0, #2
            mov r0, #2
            mov r0, #1
            swi #0
        """
        module = module_from_source(src)
        dfgs = build_dfgs(module)
        # roles: role0 = "mov r0, #1", role1 = "mov r0, #2"
        embs = [Embedding(0, (0, 1)), Embedding(0, (3, 2))]
        kept, union = order_consistent_subset(dfgs, embs)
        assert len(kept) == 1

    def test_body_order_respects_union(self):
        body = insns("mov r1, #2", "mov r0, #1")
        ordered = body_order(body, {(1, 0)})
        assert [str(i) for i in ordered] == ["mov r0, #1", "mov r1, #2"]

    def test_body_order_cycle_raises(self):
        body = insns("mov r0, #1", "mov r1, #2")
        with pytest.raises(ExtractionError):
            body_order(body, {(0, 1), (1, 0)})


class TestCallSiteFeasibility:
    def test_leaf_function_body_infeasible(self):
        # the block's return reads lr and must stay last: clash
        dfg = build_dfg(BasicBlock(instructions=insns(
            "mov r1, #3", "add r2, r1, #1", "mov pc, lr"
        )))
        assert not call_site_feasible(dfg, [0, 1])

    def test_lr_reader_before_fragment_ok(self):
        dfg = build_dfg(BasicBlock(instructions=insns(
            "push {r4, lr}", "mov r1, #3", "add r2, r1, #1"
        )))
        assert call_site_feasible(dfg, [1, 2])


class TestExtractCallBehaviour:
    SRC = """
    _start:
        bl f1
        swi #2
        bl f2
        swi #2
        mov r0, #0
        swi #0
    f1:
        push {r4, lr}
        mov r1, #3
        mov r2, #5
        add r3, r1, r2
        mul r4, r3, r1
        mov r0, r4
        pop {r4, pc}
    f2:
        push {r4, lr}
        mov r2, #5
        mov r1, #3
        add r3, r1, r2
        mul r4, r3, r1
        add r0, r4, #1
        pop {r4, pc}
    """

    def _fragment_embeddings(self, module):
        """Locate the shared 4-instruction computation in both bodies."""
        dfgs = build_dfgs(module)
        wanted = {"mov r1, #3", "mov r2, #5", "add r3, r1, r2",
                  "mul r4, r3, r1"}
        embeddings = []
        for gi, dfg in enumerate(dfgs):
            if wanted <= set(dfg.labels):
                order = ["mov r1, #3", "mov r2, #5", "add r3, r1, r2",
                         "mul r4, r3, r1"]
                nodes = tuple(dfg.labels.index(t) for t in order)
                embeddings.append(Embedding(gi, nodes))
        assert len(embeddings) == 2
        return dfgs, embeddings

    def test_outline_preserves_behaviour(self):
        reference = run_asm(self.SRC)
        module = module_from_source(self.SRC)
        dfgs, embeddings = self._fragment_embeddings(module)
        kept, union = order_consistent_subset(dfgs, embeddings)
        body = [dfgs[kept[0].graph].insns[n] for n in kept[0].nodes]
        before = module.num_instructions
        name = extract_call(module, dfgs, body, kept, union)
        assert module.num_instructions == before - 2 * 4 + 2 + 5
        result = run_image(layout(module))
        assert (result.exit_code, result.output) == (
            reference.exit_code, reference.output
        )
        outlined = module.function(name)
        assert outlined.blocks[0].instructions[-1].is_return

    def test_outlined_body_has_return(self):
        module = module_from_source(self.SRC)
        dfgs, embeddings = self._fragment_embeddings(module)
        kept, union = order_consistent_subset(dfgs, embeddings)
        body = [dfgs[kept[0].graph].insns[n] for n in kept[0].nodes]
        name = extract_call(module, dfgs, body, kept, union)
        texts = [str(i) for i in module.function(name).blocks[0]]
        assert texts[-1] == "mov pc, lr"
        assert len(texts) == 5


class TestExtractCrossjumpBehaviour:
    SRC = """
    _start:
        mov r5, #1
        cmp r5, #1
        beq path_a
        mov r0, #7
        eor r1, r0, #3
        add r0, r1, #1
        swi #2
        b finish
    path_a:
        mov r0, #7
        eor r1, r0, #3
        add r0, r1, #1
        swi #2
        b finish
    finish:
        mov r0, #0
        swi #0
    """

    def test_tail_merge_preserves_behaviour(self):
        reference = run_asm(self.SRC)
        module = module_from_source(self.SRC)
        dfgs = build_dfgs(module)
        tail = ["mov r0, #7", "eor r1, r0, #3", "add r0, r1, #1"]
        embeddings = []
        for gi, dfg in enumerate(dfgs):
            if set(tail) <= set(dfg.labels) and dfg.labels[-1] == "b finish":
                # include everything: the whole block is the shared tail
                embeddings.append(
                    Embedding(gi, tuple(range(dfg.num_nodes)))
                )
        assert len(embeddings) == 2
        kept, union = order_consistent_subset(dfgs, embeddings)
        body = [dfgs[kept[0].graph].insns[n] for n in kept[0].nodes]
        before = module.num_instructions
        extract_crossjump(module, dfgs, body, kept, union)
        size = len(body)
        assert module.num_instructions == before - (size - 1)
        result = run_image(layout(module))
        assert (result.exit_code, result.output) == (
            reference.exit_code, reference.output
        )


class TestMultipleOccurrencesInOneBlock:
    SRC = """
    _start:
        mov r1, #9
        add r2, r1, #4
        eor r4, r2, r1
        add r6, r4, #0
        mov r1, #9
        add r2, r1, #4
        eor r4, r2, r1
        add r6, r6, r4
        mov r0, r6
        swi #2
        mov r0, #0
        swi #0
    """

    def test_two_call_sites_in_one_block(self):
        """The paper's Edgar motivation: one block, two occurrences."""
        reference = run_asm(self.SRC)
        module = module_from_source(self.SRC)
        dfgs = build_dfgs(module)
        big = max(range(len(dfgs)), key=lambda i: dfgs[i].num_nodes)
        dfg = dfgs[big]
        first, second = (0, 1, 2), (4, 5, 6)
        assert [dfg.labels[i] for i in first] == [
            dfg.labels[j] for j in second
        ]
        embeddings = [Embedding(big, first), Embedding(big, second)]
        kept, union = order_consistent_subset(dfgs, embeddings)
        assert len(kept) == 2
        body = [dfg.insns[n] for n in kept[0].nodes]
        before = module.num_instructions
        extract_call(module, dfgs, body, kept, union)
        # two sites shrink to calls; a 4-instruction proc is added
        assert module.num_instructions == before - 2 * 3 + 2 + 4
        result = run_image(layout(module))
        assert (result.exit_code, result.output) == (
            reference.exit_code, reference.output
        )
