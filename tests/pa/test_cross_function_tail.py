"""Cross-function tail merging (classic shared-epilogue scenario)."""

from repro.binary.layout import layout
from repro.pa.driver import PAConfig, run_pa
from repro.sim.machine import run_image

from tests.conftest import module_from_source, run_asm

SHARED_EPILOGUE = """
_start:
    bl f
    swi #2
    bl g
    swi #2
    mov r0, #0
    swi #0
f:
    push {r4, r5, r6, lr}
    mov r1, #2
    mul r4, r1, r1
    add r0, r4, #10
    eor r0, r0, #3
    orr r0, r0, #1
    pop {r4, r5, r6, pc}
g:
    push {r4, r5, r6, lr}
    mov r1, #7
    mul r4, r1, r1
    add r0, r4, #10
    eor r0, r0, #3
    orr r0, r0, #1
    pop {r4, r5, r6, pc}
"""


def test_shared_epilogue_cross_jumped_or_outlined():
    reference = run_asm(SHARED_EPILOGUE)
    module = module_from_source(SHARED_EPILOGUE)
    result = run_pa(module, PAConfig())
    assert result.saved > 0
    out = run_image(layout(module))
    assert (out.exit_code, out.output) == (
        reference.exit_code, reference.output
    )


def test_cross_jump_reached_from_other_function_runs():
    """When a tail is shared across functions, the non-survivor branches
    into the survivor's function body; control must still return to the
    right caller."""
    module = module_from_source(SHARED_EPILOGUE)
    result = run_pa(module, PAConfig())
    rendered = module.render()
    if result.crossjump_extractions:
        assert "tail_" in rendered or "b " in rendered
    out = run_image(layout(module))
    assert out.output_text == run_asm(SHARED_EPILOGUE).output_text


def test_tail_merge_of_leaf_returns():
    source = """
    _start:
        bl f
        swi #2
        bl g
        swi #2
        mov r0, #0
        swi #0
    f:
        mov r1, #2
        add r0, r1, #40
        eor r0, r0, #7
        and r0, r0, #127
        mov pc, lr
    g:
        mov r1, #9
        add r0, r1, #40
        eor r0, r0, #7
        and r0, r0, #127
        mov pc, lr
    """
    reference = run_asm(source)
    module = module_from_source(source)
    result = run_pa(module, PAConfig())
    # call outlining is illegal everywhere (leaf functions, live lr), so
    # any savings here must come from cross-jumps
    assert result.call_extractions == 0
    out = run_image(layout(module))
    assert (out.exit_code, out.output) == (
        reference.exit_code, reference.output
    )
