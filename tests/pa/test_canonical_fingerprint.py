"""Fuzzy canonical matching (Fig. 13) and block fingerprints."""

from repro.isa.assembler import parse_instruction
from repro.pa.canonical import canonical_dfg, canonical_label, fuzzy_potential
from repro.pa.fingerprint import (
    block_fingerprint,
    group_by_fingerprint,
    identical_block_groups,
)

from tests.conftest import module_from_source


def canon(text):
    return canonical_label(parse_instruction(text))


class TestCanonicalLabels:
    def test_paper_fig13(self):
        # Fig. 13: ldr R, [R]! / sub R, R, R / add R, R, I
        assert canon("ldr r3, [r1, #0]!") == "ldr R, [R, I]!"
        assert canon("sub r2, r2, r3") == "sub R, R, R"
        assert canon("add r4, r2, #4") == "add R, R, I"

    def test_registers_abstracted(self):
        assert canon("add r1, r2, r3") == canon("add r9, r10, fp")

    def test_immediates_abstracted(self):
        assert canon("mov r0, #1") == canon("mov r0, #200")

    def test_mnemonic_and_shape_preserved(self):
        assert canon("add r0, r1, r2") != canon("sub r0, r1, r2")
        assert canon("add r0, r1, r2") != canon("add r0, r1, #2")

    def test_condition_preserved(self):
        assert canon("moveq r0, #1") != canon("mov r0, #1")

    def test_shifted_and_memory_forms(self):
        assert canon("add r0, r1, r2, lsl #2") == "add R, R, R, lsl I"
        assert canon("ldr r0, [r1], #4") == "ldr R, [R], I"
        assert canon("ldr r0, [r1, r2]") == "ldr R, [R, R]"
        assert canon("push {r4, r5, lr}") == "push {R, R, R}"
        assert canon("bl foo") == "bl L"

    def test_canonical_dfg_relabels_only(self):
        module = module_from_source(
            "_start:\n mov r1, #1\n add r2, r1, #2\n swi #0\n"
        )
        from repro.dfg.builder import build_dfgs

        dfg = build_dfgs(module)[0]
        fuzzy = canonical_dfg(dfg)
        assert fuzzy.labels == ["mov R, I", "add R, R, I", "swi I"]
        assert fuzzy.edges == dfg.edges


class TestFuzzyPotential:
    def test_fuzzy_sees_register_renamed_duplicates(self):
        src = """
        _start:
            push {r4, r5, r6, r7, lr}
            mov r1, #3
            add r2, r1, #5
            mul r4, r2, r1
            eor r6, r4, r2
            mov r3, #7
            add r5, r3, #9
            mul r7, r5, r3
            eor r8, r7, r5
            add r0, r6, r8
            swi #2
            mov r0, #0
            swi #0
        """
        module = module_from_source(src)
        report = fuzzy_potential(module)
        assert report.fuzzy_best > report.exact_best
        assert report.additional_potential > 0


class TestFingerprints:
    def test_identical_blocks_same_fingerprint(self):
        src = """
        _start:
            cmp r0, #0
            beq a
        a:
            mov r1, #1
            add r2, r1, #2
            b done
        b:
            mov r1, #1
            add r2, r1, #2
            b done
        done:
            swi #0
        """
        module = module_from_source(src)
        groups = group_by_fingerprint(module)
        assert any(len(g) >= 2 for g in groups.values())
        identical = identical_block_groups(module)
        assert any(len(g) >= 2 for g in identical)

    def test_register_renaming_preserves_fingerprint(self):
        from repro.binary.program import BasicBlock

        a = BasicBlock(instructions=[
            parse_instruction("mov r1, #1"),
            parse_instruction("add r2, r1, #2"),
        ])
        b = BasicBlock(instructions=[
            parse_instruction("mov r5, #1"),
            parse_instruction("add r6, r5, #9"),
        ])
        assert block_fingerprint(a) == block_fingerprint(b)

    def test_different_shape_different_fingerprint(self):
        from repro.binary.program import BasicBlock

        a = BasicBlock(instructions=[parse_instruction("mov r1, #1")])
        b = BasicBlock(instructions=[parse_instruction("ldr r1, [r2]")])
        assert block_fingerprint(a) != block_fingerprint(b)
