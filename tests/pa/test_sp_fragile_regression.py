"""Regression: frameless sp-reading callees must never gain a bracket.

Found by the fuzzed mini-C corpus (``repro.variance.genprog`` seeds 2
and 9 at ~4k instructions): round 1 outlined a frameless procedure
whose body stored through ``sp`` — sound at its original call sites,
where ``sp`` still points at the enclosing function's frame.  A later
round then outlined a fragment *containing* ``bl pa_N`` and, because
that fragment holds a call, wrapped it in ``push {lr}`` / ``pop {pc}``.
The bracket shifts ``sp`` by one word for the nested call, so the
frameless callee's store clobbered the saved return address and the
``pop {pc}`` jumped to address 0 (per-round translation validation
cannot see the cross-round composition).

The program below reproduces the composition deterministically: the
six-instruction sp-storing run is the most profitable round-1 fragment
(benefit 3), and after its call sites are rewritten the seven
instructions ``bl <outlined>`` .. ``add r4, r4, r4`` form round 2's
most profitable fragment (also benefit 3) — which must now be rejected
for call outlining, since its bracket would shift ``sp`` under the
fragile callee.
"""

from repro.binary.layout import layout
from repro.isa.registers import LR, PC
from repro.pa.driver import PAConfig, run_pa
from repro.pa.legality import sp_fragile_functions
from repro.pa.sfx import run_sfx
from repro.sim.machine import run_image

from tests.conftest import module_from_source, run_asm

COMPOSITION_PROGRAM = """
.text
.global _start
_start:
    bl f1
    swi #2
    bl f2
    swi #2
    mov r0, #0
    swi #0
f1:
    push {r4, lr}
    sub sp, sp, #8
    mov r7, #0
    str r7, [sp]
    str r7, [sp, #4]
    mov r6, #1
    str r6, [sp, #4]
    str r7, [sp]
    bl helper
    mov r4, #5
    add r4, r4, #9
    eor r4, r4, #3
    orr r4, r4, #1
    add r4, r4, r4
    ldr r0, [sp, #4]
    add r0, r0, r4
    add r0, r0, r7
    add r0, r0, r3
    add sp, sp, #8
    pop {r4, pc}
f2:
    push {r4, lr}
    sub sp, sp, #8
    mov r5, #3
    add r5, r5, #40
    mov r7, #0
    str r7, [sp]
    str r7, [sp, #4]
    mov r6, #1
    str r6, [sp, #4]
    str r7, [sp]
    bl helper
    mov r4, #5
    add r4, r4, #9
    eor r4, r4, #3
    orr r4, r4, #1
    add r4, r4, r4
    ldr r0, [sp]
    add r0, r0, r5
    add r0, r0, r4
    add sp, sp, #8
    pop {r4, pc}
helper:
    mov r3, #1
    mov pc, lr
"""


def _bracketed(func) -> bool:
    """True for the exact outlining bracket: push {lr} .. pop {pc}.

    Ordinary frames (``push {r4, lr}`` .. ``pop {r4, pc}``) don't
    count: their bodies call fragile procedures from the fragment's
    original position, where ``sp`` is exactly what the inline code
    saw.  Only a *new* bracket around an existing call site shifts it.
    """
    insns = [i for b in func.blocks for i in b.instructions]
    return bool(insns) and (
        insns[0].mnemonic == "push" and insns[0].operands[0].regs == (LR,)
    ) and (
        insns[-1].mnemonic == "pop" and insns[-1].operands[0].regs == (PC,)
    )


def assert_no_bracketed_call_to_fragile(module):
    """No push{lr}/pop{pc}-bracketed function may call a fragile one."""
    fragile = sp_fragile_functions(module)
    for func in module.functions:
        if not _bracketed(func):
            continue
        for block in func.blocks:
            for insn in block.instructions:
                if insn.is_call and str(insn.operands[0]) in fragile:
                    raise AssertionError(
                        f"{func.name} brackets a call to fragile "
                        f"{insn.operands[0]}"
                    )


def test_sfx_rejects_bracketing_fragile_callee():
    reference = run_asm(COMPOSITION_PROGRAM)
    assert reference.exit_code == 0
    module = module_from_source(COMPOSITION_PROGRAM)
    result = run_sfx(module)
    # round 1 must still outline the sp-storing run (the bug's trigger
    # requires a fragile procedure to exist)
    assert sp_fragile_functions(module), "expected a frameless sp user"
    assert result.saved > 0
    assert_no_bracketed_call_to_fragile(module)
    out = run_image(layout(module), max_steps=100_000)
    assert (out.output, out.exit_code) == (
        reference.output, reference.exit_code
    )


def test_composition_program_miscompiles_without_the_gate(monkeypatch):
    """The program is a live trigger: disabling the gate reproduces the
    original failure (saved lr clobbered, pc slides to 0, no exit)."""
    import pytest

    import repro.pa.sfx as sfx_mod
    from repro.sim.machine import ExecutionError

    monkeypatch.setattr(
        sfx_mod, "sp_fragile_functions", lambda module: frozenset()
    )
    module = module_from_source(COMPOSITION_PROGRAM)
    run_sfx(module)
    with pytest.raises(ExecutionError):
        run_image(layout(module), max_steps=100_000)


def test_static_catch_absint_proves_fragility_with_evidence():
    """The gate's verdict is now an absint *fact*: the outlined
    sp-storing helper is provably fragile (it writes the caller's
    frame), and the ledger carries the evidence."""
    from repro.report.ledger import GLOBAL as ledger
    from repro.verify.absint import module_summaries

    module = module_from_source(COMPOSITION_PROGRAM)
    run_sfx(module)
    fragile = sp_fragile_functions(module)
    assert fragile, "round 1 must still outline the sp-storing run"

    summaries = module_summaries(module)
    for name in fragile:
        assert summaries[name].fragile
        assert summaries[name].touches_caller_frame or \
            summaries[name].net_delta != 0 or \
            not summaries[name].height_known
    # the helper writes through sp at its entry height: caller memory
    assert any(summaries[n].caller_writes for n in fragile)

    ledger.enable()
    ledger.reset()
    try:
        sp_fragile_functions(module)
        records = ledger.records_of("legality.sp_fragile")
    finally:
        ledger.reset()
        ledger.disable()
    assert {r["function"] for r in records} == set(fragile)
    assert all("caller_writes" in r for r in records)


def test_dynamic_catch_sanitizer_flags_the_clobber(monkeypatch):
    """With the gate disabled the sanitizer catches the composition at
    the faulting store — a retaddr-clobber finding naming the saved-lr
    slot — before the wild jump kills the run."""
    from repro.sim.sanitize import RETADDR_CLOBBER, run_sanitized

    import repro.pa.sfx as sfx_mod

    # gated build: zero findings
    module = module_from_source(COMPOSITION_PROGRAM)
    run_sfx(module)
    _, error, sanitizer = run_sanitized(layout(module),
                                        max_steps=100_000)
    assert error is None and sanitizer.findings == []

    # ungated build: the clobber is flagged at its site
    monkeypatch.setattr(
        sfx_mod, "sp_fragile_functions", lambda module: frozenset()
    )
    broken = module_from_source(COMPOSITION_PROGRAM)
    run_sfx(broken)
    _, error, sanitizer = run_sanitized(layout(broken),
                                        max_steps=100_000)
    assert error is not None
    assert RETADDR_CLOBBER in sanitizer.kinds
    finding = next(f for f in sanitizer.findings
                   if f.kind == RETADDR_CLOBBER)
    assert "saved return address" in finding.detail


def test_driver_rejects_bracketing_fragile_callee():
    reference = run_asm(COMPOSITION_PROGRAM)
    module = module_from_source(COMPOSITION_PROGRAM)
    run_pa(module, PAConfig(verify=True, time_budget=10.0))
    assert_no_bracketed_call_to_fragile(module)
    out = run_image(layout(module), max_steps=100_000)
    assert (out.output, out.exit_code) == (
        reference.output, reference.exit_code
    )
