"""Extraction legality: fragment-level and placement-level rules."""

import pytest

from repro.binary.program import BasicBlock, Function, Module
from repro.dfg.builder import build_dfg
from repro.isa.assembler import parse_instruction
from repro.pa.legality import (
    ExtractionMethod,
    classify_fragment,
    embedding_legal,
    sp_fragile_functions,
)


def insns(*texts):
    return [parse_instruction(t) for t in texts]


def dfg_of(*texts):
    return build_dfg(BasicBlock(instructions=insns(*texts)))


class TestClassifyCall:
    def test_plain_computation(self):
        assert classify_fragment(
            insns("mov r0, #1", "add r1, r0, #2")
        ) is ExtractionMethod.CALL

    def test_lr_reader_rejected(self):
        assert classify_fragment(insns("push {r4, lr}")) is None
        assert classify_fragment(insns("mov r0, lr")) is None

    def test_lr_writer_rejected(self):
        assert classify_fragment(insns("mov lr, r0")) is None
        assert classify_fragment(insns("pop {r4, lr}")) is None

    def test_call_inside_allowed(self):
        assert classify_fragment(
            insns("mov r0, #1", "bl helper")
        ) is ExtractionMethod.CALL

    def test_call_plus_sp_write_rejected(self):
        assert classify_fragment(
            insns("bl helper", "push {r4}")
        ) is None
        assert classify_fragment(
            insns("bl helper", "sub sp, sp, #8")
        ) is None

    def test_call_plus_sp_relative_access_rejected(self):
        # the push {lr} bracket shifts sp: [sp, #8] would be off by 4
        # (this exact case miscompiled sha)
        assert classify_fragment(
            insns("bl helper", "ldr r0, [sp, #8]")
        ) is None
        assert classify_fragment(
            insns("str r0, [sp]", "bl helper")
        ) is None

    def test_sp_write_without_call_allowed(self):
        assert classify_fragment(
            insns("sub sp, sp, #8", "str r0, [sp]")
        ) is ExtractionMethod.CALL

    def test_conditional_instructions_allowed(self):
        assert classify_fragment(
            insns("cmp r0, #0", "moveq r1, #1")
        ) is ExtractionMethod.CALL

    def test_call_to_fragile_callee_rejected(self):
        # the bracket's sp shift is visible to a frameless callee that
        # addresses the caller's frame (found by the fuzzed corpus:
        # a round-1 frameless pa body was swallowed by a bracketed
        # round-2 extraction, clobbering the saved return address)
        frag = insns("mov r1, r2", "bl pa_1")
        assert classify_fragment(frag) is ExtractionMethod.CALL
        assert classify_fragment(frag, frozenset({"pa_1"})) is None
        assert classify_fragment(
            frag, frozenset({"other"})
        ) is ExtractionMethod.CALL

    def test_fragile_callee_without_other_calls_rejected(self):
        assert classify_fragment(
            insns("bl pa_1",), frozenset({"pa_1"})
        ) is None


def function_of(name, *texts):
    return Function(name=name, blocks=[BasicBlock(instructions=insns(*texts))])


class TestSpFragileFunctions:
    def test_frameless_sp_reader_is_fragile(self):
        # the exact shape the fuzzer's counterexample outlined in round 1
        module = Module(functions=[function_of(
            "pa_1", "mov r9, r0", "mov r0, #0", "str r0, [sp]",
            "str r0, [sp, #4]", "mov pc, lr",
        )])
        assert sp_fragile_functions(module) == frozenset({"pa_1"})

    def test_framed_function_is_safe(self):
        module = Module(functions=[function_of(
            "f", "push {r4, lr}", "sub sp, sp, #8", "str r0, [sp]",
            "ldr r1, [sp, #4]", "add sp, sp, #8", "pop {r4, pc}",
        )])
        assert sp_fragile_functions(module) == frozenset()

    def test_bracketed_outlined_function_is_safe(self):
        module = Module(functions=[function_of(
            "pa_2", "push {lr}", "mov r0, #1", "bl helper", "pop {pc}",
        )])
        assert sp_fragile_functions(module) == frozenset()

    def test_sp_untouched_function_is_safe(self):
        module = Module(functions=[function_of(
            "leaf", "add r0, r0, #1", "mov pc, lr",
        )])
        assert sp_fragile_functions(module) == frozenset()

    def test_net_sp_shift_is_fragile(self):
        # a frameless body carrying a net allocation would desync a
        # later bracket's pop {pc}
        module = Module(functions=[function_of(
            "pa_3", "sub sp, sp, #8", "mov r0, #1", "mov pc, lr",
        )])
        assert sp_fragile_functions(module) == frozenset({"pa_3"})

    def test_balanced_read_before_alloc_is_fragile(self):
        # balanced deltas, but the first sp touch is a read: the slot
        # it addresses belongs to the caller
        module = Module(functions=[function_of(
            "pa_4", "ldr r0, [sp]", "sub sp, sp, #4",
            "add sp, sp, #4", "mov pc, lr",
        )])
        assert sp_fragile_functions(module) == frozenset({"pa_4"})

    def test_unaccountable_sp_write_is_fragile(self):
        module = Module(functions=[function_of(
            "trampoline", "mov sp, r0", "mov pc, lr",
        )])
        assert sp_fragile_functions(module) == frozenset({"trampoline"})


class TestClassifyCrossjump:
    def test_return_tail(self):
        assert classify_fragment(
            insns("add r0, r0, #1", "mov pc, lr")
        ) is ExtractionMethod.CROSSJUMP

    def test_pop_return_tail(self):
        assert classify_fragment(
            insns("mov r0, r4", "pop {r4, pc}")
        ) is ExtractionMethod.CROSSJUMP

    def test_branch_tail(self):
        assert classify_fragment(
            insns("add r0, r0, #1", "b loop")
        ) is ExtractionMethod.CROSSJUMP

    def test_conditional_branch_rejected(self):
        assert classify_fragment(
            insns("add r0, r0, #1", "beq out")
        ) is None

    def test_two_terminators_rejected(self):
        assert classify_fragment(insns("b a", "b b")) is None

    def test_lr_return_with_call_inside_rejected(self):
        assert classify_fragment(
            insns("bl helper", "mov pc, lr")
        ) is None

    def test_pop_return_with_call_inside_allowed(self):
        assert classify_fragment(
            insns("bl helper", "pop {pc}")
        ) is ExtractionMethod.CROSSJUMP


class TestEmbeddingLegal:
    def test_convex_ok(self):
        dfg = dfg_of("mov r0, #1", "add r1, r0, #2", "mul r2, r1, r1")
        assert embedding_legal(dfg, [0, 1], ExtractionMethod.CALL)

    def test_paper_fig9_cycle_rejected(self):
        # fragment {0, 2} with 1 in between: contracting creates a cycle
        dfg = dfg_of("mov r0, #1", "add r1, r0, #2", "mul r2, r1, r1")
        assert not embedding_legal(dfg, [0, 2], ExtractionMethod.CALL)

    def test_crossjump_needs_block_end(self):
        dfg = dfg_of("mov r0, #1", "add r1, r0, #2", "b out")
        assert not embedding_legal(dfg, [0, 1], ExtractionMethod.CROSSJUMP)
        assert embedding_legal(dfg, [0, 1, 2], ExtractionMethod.CROSSJUMP)

    def test_crossjump_needs_successor_closure(self):
        # r1 defined in fragment, used by an instruction outside it
        dfg = dfg_of(
            "mov r0, #1", "add r1, r0, #2", "mul r2, r1, r1", "b out"
        )
        assert not embedding_legal(dfg, [1, 3], ExtractionMethod.CROSSJUMP)
        assert embedding_legal(dfg, [1, 2, 3], ExtractionMethod.CROSSJUMP)

    def test_call_occurrence_with_terminator_rejected(self):
        """The CALL placement rule: an occurrence containing the block's
        control transfer can never be outlined as a call (a bl replacing
        the terminator would be a miscompile).  classify_fragment routes
        such fragments to cross-jump, but embedding_legal re-checks the
        guarantee defensively."""
        dfg = dfg_of("mov r0, #1", "add r1, r0, #2", "b out")
        assert not embedding_legal(dfg, [0, 1, 2], ExtractionMethod.CALL)
        assert not embedding_legal(dfg, [2], ExtractionMethod.CALL)
        assert embedding_legal(dfg, [0, 1], ExtractionMethod.CALL)

    def test_call_occurrence_with_return_rejected(self):
        dfg = dfg_of("mov r0, #1", "mov pc, lr")
        assert not embedding_legal(dfg, [0, 1], ExtractionMethod.CALL)
        assert not embedding_legal(dfg, [1], ExtractionMethod.CALL)

    def test_call_occurrence_with_conditional_branch_rejected(self):
        dfg = dfg_of("cmp r0, #0", "beq out")
        assert not embedding_legal(dfg, [0, 1], ExtractionMethod.CALL)

    def test_classifier_routes_terminator_fragments_away_from_call(self):
        """The guarantee embedding_legal re-checks: no fragment holding
        a control transfer ever classifies as CALL."""
        for texts in (
            ["mov r0, #1", "b out"],
            ["mov r0, #1", "mov pc, lr"],
            ["mov r0, #1", "bx lr"],
        ):
            method = classify_fragment(insns(*texts))
            assert method is not ExtractionMethod.CALL, texts
