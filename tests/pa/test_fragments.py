"""The cost/benefit model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.assembler import parse_instruction
from repro.pa.fragments import (
    best_possible_benefit,
    call_benefit,
    call_overhead,
    crossjump_benefit,
)


class TestCallBenefit:
    def test_paper_arithmetic(self):
        # n occurrences of size s -> n calls + proc of s+1
        assert call_benefit(size=6, occurrences=3, overhead=1) == \
            3 * 6 - 3 - (6 + 1)

    def test_two_small_occurrences_never_pay(self):
        assert call_benefit(2, 2, 1) < 0
        assert call_benefit(3, 2, 1) == 0

    def test_grows_with_occurrences(self):
        assert call_benefit(4, 5, 1) > call_benefit(4, 3, 1)

    def test_bracket_overhead(self):
        plain = [parse_instruction("add r0, r0, #1")]
        with_call = [parse_instruction("bl foo")]
        assert call_overhead(plain) == 1
        assert call_overhead(with_call) == 2


class TestCrossjumpBenefit:
    def test_formula(self):
        assert crossjump_benefit(size=5, occurrences=3) == 2 * 4

    def test_single_occurrence_saves_nothing(self):
        assert crossjump_benefit(5, 1) == 0

    def test_single_instruction_saves_nothing(self):
        assert crossjump_benefit(1, 4) == 0


@given(st.integers(1, 30), st.integers(2, 30))
def test_bound_dominates_both_methods(size, occurrences):
    bound = best_possible_benefit(size, occurrences)
    assert bound >= call_benefit(size, occurrences, 1)
    assert bound >= call_benefit(size, occurrences, 2)
    assert bound >= crossjump_benefit(size, occurrences)


@given(st.integers(1, 30), st.integers(2, 29))
def test_benefit_antimonotone_in_occurrences(size, occurrences):
    """Fewer occurrences can never increase the bound — the property the
    lattice pruning relies on."""
    assert best_possible_benefit(size, occurrences) <= best_possible_benefit(
        size, occurrences + 1
    )


@given(st.integers(1, 29), st.integers(2, 30))
def test_benefit_antimonotone_in_size(size, occurrences):
    assert best_possible_benefit(size, occurrences) <= best_possible_benefit(
        size + 1, occurrences
    )
