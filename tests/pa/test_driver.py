"""The iterative PA driver: candidate choice, benefit accounting, fixpoint."""

import pytest

from repro.binary.layout import layout
from repro.pa.driver import PAConfig, best_candidate, run_pa
from repro.pa.legality import ExtractionMethod
from repro.sim.machine import run_image

from tests.conftest import (
    SHARED_FRAGMENT_PROGRAM,
    module_from_source,
    run_asm,
)


def test_finds_reordered_fragment(shared_fragment_module):
    candidate = best_candidate(shared_fragment_module, PAConfig())
    assert candidate is not None
    assert candidate.method is ExtractionMethod.CALL
    assert candidate.occurrences == 2
    assert candidate.size >= 4


def test_run_to_fixpoint_preserves_behaviour(
    shared_fragment_module, shared_fragment_reference
):
    result = run_pa(shared_fragment_module, PAConfig())
    assert result.saved > 0
    assert result.instructions_after == shared_fragment_module.num_instructions
    out = run_image(layout(shared_fragment_module))
    assert (out.exit_code, out.output) == (
        shared_fragment_reference.exit_code,
        shared_fragment_reference.output,
    )


def test_savings_equal_benefit_sum(shared_fragment_module):
    result = run_pa(shared_fragment_module, PAConfig())
    assert result.saved == sum(r.benefit for r in result.records)


def test_dgspan_misses_single_block_duplicates():
    """A fragment occurring twice inside ONE block: Edgar-only."""
    src = """
    _start:
        mov r1, #9
        add r2, r1, #4
        eor r4, r2, r1
        orr r4, r4, #1
        add r6, r4, #0
        mov r1, #9
        add r2, r1, #4
        eor r4, r2, r1
        orr r4, r4, #1
        add r6, r6, r4
        mov r0, r6
        swi #2
        mov r0, #0
        swi #0
    """
    reference = run_asm(src)

    module = module_from_source(src)
    dgspan = run_pa(module, PAConfig(miner="dgspan"))
    assert dgspan.saved == 0

    module = module_from_source(src)
    edgar = run_pa(module, PAConfig(miner="edgar"))
    assert edgar.saved > 0
    out = run_image(layout(module))
    assert (out.exit_code, out.output) == (
        reference.exit_code, reference.output
    )


def test_leaf_functions_not_outlined():
    # lr lives in the register: call outlining would corrupt the return
    src = """
    _start:
        bl f
        bl g
        mov r0, #0
        swi #0
    f:
        mov r1, #3
        add r2, r1, #5
        mul r3, r2, r1
        eor r0, r3, r1
        mov pc, lr
    g:
        mov r1, #3
        add r2, r1, #5
        mul r3, r2, r1
        eor r0, r3, r1
        mov pc, lr
    """
    reference = run_asm(src)
    module = module_from_source(src)
    result = run_pa(module, PAConfig())
    out = run_image(layout(module))
    assert (out.exit_code, out.output) == (
        reference.exit_code, reference.output
    )


def test_max_rounds_respected(shared_fragment_module):
    result = run_pa(shared_fragment_module, PAConfig(max_rounds=0))
    assert result.saved == 0 and result.rounds == 0


def test_exempt_functions_untouched():
    src = """
    _start:
        ldr r5, =f
        bl f
        bl g
        mov r0, #0
        swi #0
    f:
        push {r4, lr}
        mov r1, #3
        add r2, r1, #5
        mul r3, r2, r1
        eor r4, r3, r1
        mov r0, r4
        pop {r4, pc}
    g:
        push {r4, lr}
        mov r1, #3
        add r2, r1, #5
        mul r3, r2, r1
        eor r4, r3, r1
        mov r0, r4
        pop {r4, pc}
    """
    module = module_from_source(src)
    f_before = [str(i) for i in module.function("f").iter_instructions()]
    result = run_pa(module, PAConfig())
    f_after = [str(i) for i in module.function("f").iter_instructions()]
    # f's address is taken: it must not be rewritten
    assert f_before == f_after


def test_unknown_miner_rejected(shared_fragment_module):
    with pytest.raises(ValueError):
        run_pa(shared_fragment_module, PAConfig(miner="magic"))
