"""Batching, carryover, and time-budget behaviour of the driver."""

import pytest

from repro.binary.layout import layout
from repro.pa.driver import (
    PAConfig,
    apply_batch,
    best_candidate,
    collect_candidates,
    run_pa,
)
from repro.sim.machine import run_image

from tests.conftest import module_from_source, run_asm

TWO_INDEPENDENT = """
_start:
    bl f1
    swi #2
    bl f2
    swi #2
    bl g1
    swi #2
    bl g2
    swi #2
    mov r0, #0
    swi #0
f1:
    push {r4, lr}
    mov r1, #3
    add r2, r1, #5
    mul r3, r2, r1
    eor r4, r3, r2
    mov r0, r4
    pop {r4, pc}
f2:
    push {r4, lr}
    mov r1, #3
    add r2, r1, #5
    mul r3, r2, r1
    eor r4, r3, r2
    add r0, r4, #1
    pop {r4, pc}
g1:
    push {r4, lr}
    mov r1, #7
    orr r2, r1, #8
    sub r3, r2, r1
    and r4, r3, r2
    mov r0, r4
    pop {r4, pc}
g2:
    push {r4, lr}
    mov r1, #7
    orr r2, r1, #8
    sub r3, r2, r1
    and r4, r3, r2
    add r0, r4, #2
    pop {r4, pc}
"""


def test_collect_returns_multiple_candidates():
    module = module_from_source(TWO_INDEPENDENT)
    candidates = collect_candidates(module, PAConfig())
    assert len(candidates) >= 2
    # best first
    benefits = [c.benefit for c in candidates]
    assert benefits == sorted(benefits, reverse=True)


def test_batch_applies_non_conflicting():
    reference = run_asm(TWO_INDEPENDENT)
    module = module_from_source(TWO_INDEPENDENT)
    candidates = collect_candidates(module, PAConfig())
    records, touched_blocks, touched_functions = apply_batch(
        module, PAConfig(), candidates
    )
    assert len(records) >= 2
    result = run_image(layout(module))
    assert (result.exit_code, result.output) == (
        reference.exit_code, reference.output
    )


def test_batch_vs_strict_same_savings():
    batched = module_from_source(TWO_INDEPENDENT)
    rb = run_pa(batched, PAConfig(batch=True))
    strict = module_from_source(TWO_INDEPENDENT)
    rs = run_pa(strict, PAConfig(batch=False))
    assert rb.saved == rs.saved
    assert rb.rounds <= rs.rounds


def test_candidates_have_origins():
    module = module_from_source(TWO_INDEPENDENT)
    for candidate in collect_candidates(module, PAConfig()):
        assert candidate.origins
        for func_name, block_index in candidate.origins:
            func = module.function(func_name)
            assert 0 <= block_index < len(func.blocks)


def test_warm_candidates_raise_floor():
    module = module_from_source(TWO_INDEPENDENT)
    first = collect_candidates(module, PAConfig())
    warm = collect_candidates(module, PAConfig(), warm=first)
    # warm-started collection still returns the same best candidate
    assert warm[0].benefit == first[0].benefit


def test_time_budget_zero_still_terminates():
    module = module_from_source(TWO_INDEPENDENT)
    result = run_pa(module, PAConfig(time_budget=0.0001))
    # budget exhausted almost immediately: nothing (or very little) done,
    # but the module stays consistent and runnable
    run_image(layout(module))
    assert result.saved >= 0
