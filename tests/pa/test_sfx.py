"""SFX baseline: sequence detection, legality, blindness to reordering."""

import pytest

from repro.binary.layout import layout
from repro.pa.sfx import SFXConfig, run_sfx
from repro.sim.machine import run_image

from tests.conftest import module_from_source, run_asm


def test_extracts_repeated_sequence():
    src = """
    _start:
        push {r4, lr}
        mov r1, #3
        add r2, r1, #5
        eor r3, r2, r1
        orr r3, r3, #1
        mov r4, r3
        mov r1, #3
        add r2, r1, #5
        eor r3, r2, r1
        orr r3, r3, #1
        add r0, r4, r3
        swi #2
        mov r0, #0
        swi #0
    """
    reference = run_asm(src)
    module = module_from_source(src)
    result = run_sfx(module)
    assert result.saved > 0
    out = run_image(layout(module))
    assert (out.exit_code, out.output) == (
        reference.exit_code, reference.output
    )


def test_blind_to_reordering():
    """The paper's core observation: reordered occurrences are invisible
    to sequence matching."""
    src = """
    _start:
        push {r4, lr}
        mov r1, #3
        mov r2, #5
        add r3, r1, r2
        mul r4, r3, r1
        mov r2, #5
        mov r1, #3
        add r3, r1, r2
        mul r4, r3, r1
        mov r0, r4
        swi #2
        mov r0, #0
        swi #0
    """
    module = module_from_source(src)
    result = run_sfx(module, SFXConfig(min_len=3))
    # the 4-instruction computation appears twice but never as the same
    # contiguous string
    assert result.saved == 0


def test_lr_reading_sequences_skipped():
    src = """
    _start:
        bl f
        bl g
        mov r0, #0
        swi #0
    f:
        mov r1, #1
        add r2, r1, #2
        mov pc, lr
    g:
        mov r1, #1
        add r2, r1, #2
        mov pc, lr
    """
    reference = run_asm(src)
    module = module_from_source(src)
    result = run_sfx(module)
    out = run_image(layout(module))
    assert (out.exit_code, out.output) == (
        reference.exit_code, reference.output
    )


def test_crossjump_tail_merge():
    src = """
    _start:
        mov r5, #1
        cmp r5, #1
        beq other
        mov r1, #4
        add r2, r1, #6
        eor r0, r2, r1
        b finish
    other:
        mov r1, #4
        add r2, r1, #6
        eor r0, r2, r1
        b finish
    finish:
        swi #0
    """
    reference = run_asm(src)
    module = module_from_source(src)
    result = run_sfx(module)
    assert result.crossjump_extractions >= 1
    out = run_image(layout(module))
    assert (out.exit_code, out.output) == (
        reference.exit_code, reference.output
    )


def test_benefit_accounting_is_exact():
    src = """
    _start:
        push {r4, lr}
        mov r1, #3
        add r2, r1, #5
        eor r3, r2, r1
        orr r3, r3, #1
        mov r4, r3
        mov r1, #3
        add r2, r1, #5
        eor r3, r2, r1
        orr r3, r3, #1
        add r0, r4, r3
        swi #2
        mov r0, #0
        swi #0
    """
    module = module_from_source(src)
    before = module.num_instructions
    result = run_sfx(module)
    assert module.num_instructions == before - result.saved
    assert result.instructions_before == before


def test_respects_block_boundaries():
    # the repeated pair spans a branch target: not a contiguous run
    src = """
    _start:
        mov r1, #1
        cmp r1, #0
        beq mid
        mov r2, #2
    mid:
        mov r3, #3
        mov r2, #2
    mid2:
        mov r3, #3
        swi #0
    """
    module = module_from_source(src)
    result = run_sfx(module, SFXConfig(min_len=2))
    assert result.saved == 0
