"""The fault-injection harness: arming, firing, and — critically —
being provably inert when disarmed."""

import pytest

from repro.resilience import faultinject
from repro.resilience.errors import FaultInjected
from repro.resilience.faultinject import (
    FAULT_POINTS,
    arm,
    arm_from_env,
    armed_points,
    disarm_all,
    fault,
)
from repro.resilience.governor import RunGovernor, activate


def test_disarmed_is_inert():
    for point in FAULT_POINTS:
        assert fault(point) is None


def test_unknown_point_rejected_at_arm_time():
    with pytest.raises(ValueError, match="unknown fault point"):
        arm("mine.typo")
    assert armed_points() == []


def test_unknown_mode_rejected():
    with pytest.raises(ValueError, match="unknown fault mode"):
        arm("mis.solve:explode")


def test_spec_parsing_defaults():
    spec = arm("mis.solve")
    assert (spec.point, spec.mode, spec.at) == ("mis.solve", "raise", 1)
    spec = arm("mine.pass:interrupt:3")
    assert (spec.point, spec.mode, spec.at) == ("mine.pass", "interrupt", 3)


def test_raise_mode_fires_on_the_armed_hit_only():
    arm("mis.solve:raise:3")
    assert fault("mis.solve") is None
    assert fault("mis.solve") is None
    with pytest.raises(FaultInjected):
        fault("mis.solve")
    # one-shot: later hits pass through
    assert fault("mis.solve") is None


def test_at_zero_fires_every_hit():
    arm("mis.solve:raise:0")
    for _ in range(3):
        with pytest.raises(FaultInjected):
            fault("mis.solve")


def test_unarmed_point_inert_while_another_is_armed():
    arm("mis.solve")
    assert fault("mine.pass") is None


def test_interrupt_mode():
    arm("mine.pass:interrupt")
    with pytest.raises(KeyboardInterrupt):
        fault("mine.pass")


def test_deadline_mode_expires_active_governor():
    governor = RunGovernor()
    arm("mine.pass:deadline")
    with activate(governor):
        assert fault("mine.pass") == "deadline"
    assert governor.expired()


def test_corrupt_mode_returns_marker():
    arm("checkpoint.write:corrupt")
    assert fault("checkpoint.write") == "corrupt"


def test_arm_from_env():
    specs = arm_from_env({"REPRO_FAULT": "mis.solve:raise:2, mine.pass"})
    assert [s.point for s in specs] == ["mis.solve", "mine.pass"]
    assert armed_points() == ["mine.pass", "mis.solve"]
    disarm_all()
    assert arm_from_env({}) == []


def test_fault_injected_is_typed():
    error = FaultInjected("boom")
    assert error.code == "REPRO-FAULT"
    assert error.exit_code == 4


def test_disarmed_pipeline_is_bit_identical(shared_module_pair):
    """The guard test: a disarmed harness must not perturb the pipeline."""
    first, second = shared_module_pair
    from repro.pa.driver import PAConfig, run_pa

    run_pa(first, PAConfig())
    disarm_all()
    run_pa(second, PAConfig())
    assert first.render() == second.render()


@pytest.fixture
def shared_module_pair():
    from tests.conftest import SHARED_FRAGMENT_PROGRAM, module_from_source

    return (
        module_from_source(SHARED_FRAGMENT_PROGRAM),
        module_from_source(SHARED_FRAGMENT_PROGRAM),
    )
