"""The shared atomic writer every CLI output path goes through."""

import os

import pytest

from repro.resilience.atomicio import atomic_write_text


def test_writes_new_file(tmp_path):
    path = tmp_path / "out.txt"
    atomic_write_text(str(path), "hello\n")
    assert path.read_text() == "hello\n"


def test_replaces_existing_file(tmp_path):
    path = tmp_path / "out.txt"
    path.write_text("old")
    atomic_write_text(str(path), "new")
    assert path.read_text() == "new"


def test_no_temp_files_left_behind(tmp_path):
    path = tmp_path / "out.txt"
    atomic_write_text(str(path), "x" * 10_000)
    assert os.listdir(tmp_path) == ["out.txt"]


def test_failed_write_leaves_target_untouched(tmp_path, monkeypatch):
    path = tmp_path / "out.txt"
    path.write_text("precious")

    def exploding_fsync(fd):
        raise OSError("disk on fire")

    monkeypatch.setattr(os, "fsync", exploding_fsync)
    with pytest.raises(OSError):
        atomic_write_text(str(path), "torn")
    assert path.read_text() == "precious"
    assert os.listdir(tmp_path) == ["out.txt"]


def test_missing_directory_raises(tmp_path):
    with pytest.raises(OSError):
        atomic_write_text(str(tmp_path / "no" / "such" / "dir.txt"), "x")
