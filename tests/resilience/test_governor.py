"""The run governor: deadline, interrupt, degradation bookkeeping."""

import os
import signal

import pytest

from repro.resilience.governor import RunGovernor, activate, current


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now


def test_unbounded_by_default():
    governor = RunGovernor()
    assert governor.remaining() is None
    assert not governor.expired()
    assert not governor.should_stop()


def test_deadline_expiry():
    clock = FakeClock()
    governor = RunGovernor(time_budget=10.0, clock=clock)
    assert governor.remaining() == pytest.approx(10.0)
    assert not governor.should_stop()
    clock.now += 10.5
    assert governor.expired()
    assert governor.should_stop()


def test_force_expire_works_without_budget():
    governor = RunGovernor()
    governor.force_expire()
    assert governor.expired()
    assert governor.should_stop()


def test_interrupt_flag():
    governor = RunGovernor()
    governor.interrupt()
    assert governor.should_stop()
    assert not governor.expired()


def test_note_is_idempotent_and_ordered():
    governor = RunGovernor()
    governor.note("time_budget")
    governor.note("interrupted")
    governor.note("time_budget")
    assert governor.reasons == ["time_budget", "interrupted"]
    assert governor.degraded


def test_counters_accumulate():
    governor = RunGovernor()
    governor.count("mis.budget_exhausted")
    governor.count("mis.budget_exhausted", 2)
    assert governor.counters == {"mis.budget_exhausted": 3}


def test_activate_stack():
    outer = current()
    governor = RunGovernor()
    with activate(governor):
        assert current() is governor
        inner = RunGovernor()
        with activate(inner):
            assert current() is inner
        assert current() is governor
    assert current() is outer


def test_activate_pops_on_exception():
    outer = current()
    with pytest.raises(RuntimeError):
        with activate(RunGovernor()):
            raise RuntimeError("boom")
    assert current() is outer


def test_sigint_sets_flag_then_raises():
    governor = RunGovernor()
    with governor.signals():
        os.kill(os.getpid(), signal.SIGINT)
        # first delivery: graceful flag, no exception
        assert governor.interrupted
        with pytest.raises(KeyboardInterrupt):
            os.kill(os.getpid(), signal.SIGINT)
    # handlers restored: a SIGINT outside the context is the default
    # KeyboardInterrupt again
    with pytest.raises(KeyboardInterrupt):
        os.kill(os.getpid(), signal.SIGINT)


def test_sigterm_sets_flag():
    governor = RunGovernor()
    with governor.signals():
        os.kill(os.getpid(), signal.SIGTERM)
        assert governor.interrupted
        assert governor.should_stop()
