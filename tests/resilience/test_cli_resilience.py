"""The CLI resilience boundary: checkpoint/resume flags, fault arming,
and the structured-diagnostic contract (typed ``error[CODE]`` lines and
documented exit codes — never a traceback)."""

import json

import pytest

from repro.cli import main
from repro.report.ledger import read_jsonl
from repro.resilience.errors import (
    EXIT_CHECKPOINT,
    EXIT_FAULT,
    EXIT_INTERNAL,
    EXIT_VERIFY,
)

WORKLOAD = "crc"
COMMON = [WORKLOAD, "--max-nodes", "4"]


def test_checkpoint_resume_roundtrip_bit_identical(tmp_path, capsys):
    reference = tmp_path / "reference.s"
    assert main(["pa", *COMMON, "-o", str(reference)]) == 0

    checkpoint = tmp_path / "ck.json"
    partial = tmp_path / "partial.s"
    code = main(["pa", *COMMON,
                 "--checkpoint", str(checkpoint),
                 "--fault", "extract.apply:interrupt:2",
                 "-o", str(partial)])
    assert code == 0            # interrupted runs degrade, not die
    err = capsys.readouterr().err
    assert "note: run degraded (interrupted)" in err
    assert partial.read_text() != reference.read_text()

    resumed = tmp_path / "resumed.s"
    code = main(["pa", WORKLOAD,
                 "--resume", str(checkpoint),
                 "-o", str(resumed)])
    assert code == 0
    assert "resumed from round 0" in capsys.readouterr().err
    assert resumed.read_text() == reference.read_text()


def test_injected_fault_is_a_typed_diagnostic(capsys):
    code = main(["pa", *COMMON, "--fault", "mis.solve:raise"])
    assert code == EXIT_FAULT
    err = capsys.readouterr().err
    assert "error[REPRO-FAULT]" in err
    assert "Traceback" not in err


def test_fault_abort_leaves_run_abort_ledger_record(tmp_path, capsys):
    ledger_out = tmp_path / "ledger.jsonl"
    code = main(["pa", *COMMON, "--fault", "mine.pass:raise",
                 "--ledger-out", str(ledger_out)])
    assert code == EXIT_FAULT
    capsys.readouterr()
    aborts = [r for r in read_jsonl(str(ledger_out))
              if r["type"] == "run.abort"]
    assert len(aborts) == 1
    assert aborts[0]["code"] == "REPRO-FAULT"


def test_deadline_fault_degrades_to_exit_zero(capsys):
    code = main(["pa", *COMMON, "--fault", "mine.pass:deadline"])
    assert code == 0
    err = capsys.readouterr().err
    assert "note: run degraded (time_budget)" in err


def test_verify_recovery_over_cli(capsys):
    code = main(["pa", *COMMON, "--verify",
                 "--fault", "verify.counterexample:corrupt"])
    assert code == 0
    out, err = capsys.readouterr()
    assert "OK, verified" in out
    assert "verify_retries" in err


def test_exhausted_verify_retries_exit_two(capsys):
    code = main(["pa", *COMMON, "--verify",
                 "--fault", "verify.counterexample:corrupt:0",
                 "--verify-max-retries", "1"])
    assert code == EXIT_VERIFY
    err = capsys.readouterr().err
    assert "VERIFICATION FAILED" in err
    assert "Traceback" not in err


def test_resume_from_missing_checkpoint(tmp_path, capsys):
    code = main(["pa", WORKLOAD,
                 "--resume", str(tmp_path / "nope.json")])
    assert code == EXIT_CHECKPOINT
    assert "error[REPRO-CKPT]" in capsys.readouterr().err


def test_resume_from_corrupt_checkpoint(tmp_path, capsys):
    bad = tmp_path / "ck.json"
    bad.write_text("{\"schema\": \"repro.resilience.ckpt/1\"")
    code = main(["pa", WORKLOAD, "--resume", str(bad)])
    assert code == EXIT_CHECKPOINT
    assert "error[REPRO-CKPT]" in capsys.readouterr().err


def test_bad_fault_spec_rejected():
    with pytest.raises(SystemExit) as excinfo:
        main(["pa", *COMMON, "--fault", "mine.typo"])
    assert "unknown fault point" in str(excinfo.value)


def test_sfx_rejects_resilience_flags(tmp_path, capsys):
    with pytest.raises(SystemExit):
        main(["pa", WORKLOAD, "--engine", "sfx",
              "--checkpoint", str(tmp_path / "ck.json")])


def test_internal_error_is_typed(monkeypatch, capsys):
    import repro.cli as cli

    def explode(*args, **kwargs):
        raise RuntimeError("synthetic internal failure")

    monkeypatch.setattr(cli, "run_pa", explode)
    monkeypatch.delenv("REPRO_DEBUG", raising=False)
    code = main(["pa", *COMMON])
    assert code == EXIT_INTERNAL
    err = capsys.readouterr().err
    assert "error[REPRO-INTERNAL]" in err
    assert "synthetic internal failure" in err
    assert "Traceback" not in err


def test_repro_debug_reraises(monkeypatch):
    import repro.cli as cli

    def explode(*args, **kwargs):
        raise RuntimeError("boom")

    monkeypatch.setattr(cli, "run_pa", explode)
    monkeypatch.setenv("REPRO_DEBUG", "1")
    with pytest.raises(RuntimeError, match="boom"):
        main(["pa", *COMMON])


def test_checkpoint_file_may_already_exist(tmp_path):
    """Unlike the other outputs, the checkpoint is exempt from the
    clobber preflight — it is rewritten every round by design."""
    checkpoint = tmp_path / "ck.json"
    checkpoint.write_text("stale")
    assert main(["pa", *COMMON, "--checkpoint", str(checkpoint)]) == 0
    assert json.loads(checkpoint.read_text())["schema"] \
        == "repro.resilience.ckpt/1"


def test_env_armed_fault(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_FAULT", "mine.pass:raise")
    code = main(["pa", *COMMON])
    assert code == EXIT_FAULT
    assert "error[REPRO-FAULT]" in capsys.readouterr().err
