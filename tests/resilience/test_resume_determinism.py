"""Resume determinism: checkpoint after round 1, resume, and the final
binary must be bit-identical to the uninterrupted run — on all eight
workloads.

This is the differential guarantee that makes ``--checkpoint`` safe to
leave on in production runs: resuming never changes the result, only
the wall-clock shape of getting there.
"""

import pytest

from repro.pa.driver import PAConfig, config_from_dict, run_pa
from repro.resilience.checkpoint import (
    load_checkpoint,
    module_from_checkpoint,
)
from repro.workloads import PROGRAMS, compile_workload


def _config(**overrides):
    # max_nodes=4 keeps the whole 8-workload sweep inside the tier-1
    # time budget; the checkpoint path is depth-independent.
    return PAConfig(max_nodes=4, **overrides)


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_resume_bit_identical(name, tmp_path):
    uninterrupted = compile_workload(name)
    reference_result = run_pa(uninterrupted, _config())
    reference = uninterrupted.render()

    path = str(tmp_path / "ck.json")
    interrupted = compile_workload(name)
    partial = run_pa(interrupted, _config(max_rounds=1,
                                          checkpoint_path=path))

    if partial.rounds == 0:
        # nothing extractable: no round committed, no checkpoint —
        # the uninterrupted reference must agree nothing was found
        assert reference_result.rounds == 0
        return

    checkpoint = load_checkpoint(path)
    assert checkpoint.round == 0
    resumed_module = module_from_checkpoint(checkpoint)
    assert resumed_module.render() == interrupted.render()

    config = config_from_dict(checkpoint.config)
    config.max_rounds = PAConfig().max_rounds
    config.checkpoint_path = None
    resumed = run_pa(resumed_module, config, resume=checkpoint)

    assert resumed_module.render() == reference, (
        f"{name}: resumed binary differs from the uninterrupted run"
    )
    assert resumed.resumed_from_round == 0
    assert resumed.rounds == reference_result.rounds
    assert (
        [(r.round, r.method, r.new_symbol) for r in resumed.records]
        == [(r.round, r.method, r.new_symbol)
            for r in reference_result.records]
    )
    assert resumed.instructions_before == reference_result.instructions_before
    assert resumed.saved == reference_result.saved


def test_checkpoint_carries_fresh_counter(tmp_path):
    """A resumed run must draw the same fresh symbols the uninterrupted
    run would — the counter travels in the checkpoint."""
    path = str(tmp_path / "ck.json")
    module = compile_workload("crc")
    run_pa(module, _config(max_rounds=1, checkpoint_path=path))
    checkpoint = load_checkpoint(path)
    assert checkpoint.fresh == module._fresh
    assert checkpoint.fresh > 0
