"""Shared fixtures for the resilience suite.

Every test runs with a clean fault-injection registry — a leaked armed
fault would poison unrelated tests in the same process, so the disarm
is autouse on both sides.
"""

import pytest

from repro.resilience import faultinject


@pytest.fixture(autouse=True)
def clean_faults():
    faultinject.disarm_all()
    yield
    faultinject.disarm_all()
