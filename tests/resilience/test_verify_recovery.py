"""Verify-failure recovery: a translation-validation counterexample
rolls the round back, blocklists the offender, and re-mines — only an
exhausted retry budget degrades to the historical abort.

The counterexample is forged via the ``verify.counterexample`` fault
point in ``corrupt`` mode (non-raising: the validator sees the marker
and manufactures an equivalence failure for the first genuinely
rewritten block), so the recovery path is exercised against a real
candidate's origin coordinates.
"""

import pytest

from repro.report import ledger
from repro.pa.driver import PAConfig, run_pa
from repro.resilience.faultinject import arm
from repro.verify.lint import lint_module
from repro.verify.validate import TranslationValidationError
from repro.workloads import compile_workload, verify_workload

WORKLOAD = "crc"


def _config(**overrides):
    overrides.setdefault("verify", True)
    return PAConfig(max_nodes=4, **overrides)


def test_counterexample_triggers_rollback_blocklist_retry():
    module = compile_workload(WORKLOAD)
    arm("verify.counterexample:corrupt")      # one forged failure
    result = run_pa(module, _config())        # must not raise
    assert result.verify_retries == 1
    assert result.rolled_back_rounds == 1
    assert result.degraded
    assert "verify_retries" in result.degraded_reasons
    assert lint_module(module).ok
    verify_workload(WORKLOAD, module)


def test_retry_round_skips_the_blocklisted_candidate():
    reference = compile_workload(WORKLOAD)
    clean = run_pa(reference, _config())

    module = compile_workload(WORKLOAD)
    arm("verify.counterexample:corrupt")
    recovered = run_pa(module, _config())
    # recovery may skip the blocklisted extraction, so it can save at
    # most as much as the clean run — but the run must still finish
    # with a valid, verified module
    assert recovered.saved <= clean.saved
    assert recovered.rounds >= 1


def test_exhausted_retries_degrade_to_abort():
    module = compile_workload(WORKLOAD)
    before_asm = module.render()
    arm("verify.counterexample:corrupt:0")    # every verify fails
    with pytest.raises(TranslationValidationError):
        run_pa(module, _config(verify_max_retries=2))
    # the failed round was rolled back: the module is untouched
    assert module.render() == before_asm


def test_retry_budget_is_configurable():
    module = compile_workload(WORKLOAD)
    arm("verify.counterexample:corrupt:0")
    with pytest.raises(TranslationValidationError):
        run_pa(module, _config(verify_max_retries=0))


def test_retry_emits_ledger_records():
    ledger.reset()
    ledger.enable()
    try:
        module = compile_workload(WORKLOAD)
        arm("verify.counterexample:corrupt")
        run_pa(module, _config())
        retries = ledger.get().records_of("verify.retry")
        assert len(retries) == 1
        assert retries[0]["round"] == 0
        assert retries[0]["attempt"] == 1
        assert retries[0]["blocklisted"], "no fingerprints recorded"
        counterexamples = ledger.get().records_of("verify.counterexample")
        assert len(counterexamples) == 1
        assert counterexamples[0]["injected"] is True
        degraded = ledger.get().records_of("run.degraded")
        assert len(degraded) == 1
        assert "verify_retries" in degraded[0]["reasons"]
    finally:
        ledger.disable()
        ledger.reset()
